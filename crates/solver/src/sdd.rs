//! SDD systems as grounded Laplacians.
//!
//! Every SDD matrix with non-positive off-diagonal entries can be written as
//! `M = L(G) + diag(excess)` where `G` is a weighted graph and `excess ≥ 0` is the
//! diagonal slack (`M_ii − Σ_j≠i |M_ij|`). If some component of `G` has no positive
//! excess the matrix is singular on that component (it is a pure Laplacian there); we
//! then *ground* one vertex by adding artificial excess, which pins the solution
//! representative whose value at that vertex is zero — the standard way of making
//! Laplacian systems positive definite without changing the answer for compatible
//! right-hand sides.

use sgs_graph::{connectivity::connected_components, Graph};
use sgs_linalg::cg::LinearOperator;
use sgs_linalg::csr::CsrMatrix;
use sgs_linalg::laplacian::graph_from_sdd;

/// A positive-definite SDD operator `M = L(G) + diag(excess)`.
#[derive(Debug, Clone)]
pub struct GroundedLaplacian {
    graph: Graph,
    excess: Vec<f64>,
    grounded_vertices: Vec<usize>,
}

impl GroundedLaplacian {
    /// Wraps a connected-or-not graph Laplacian, grounding one vertex per component so
    /// the operator is positive definite.
    pub fn from_graph(graph: Graph) -> Self {
        let excess = vec![0.0; graph.n()];
        Self::from_graph_with_excess(graph, excess)
    }

    /// Wraps `L(G) + diag(excess)`, grounding one vertex in every component whose excess
    /// is identically zero.
    pub fn from_graph_with_excess(graph: Graph, mut excess: Vec<f64>) -> Self {
        assert_eq!(
            excess.len(),
            graph.n(),
            "excess length must equal vertex count"
        );
        assert!(
            excess.iter().all(|&e| e >= -1e-12),
            "excess must be non-negative"
        );
        for e in excess.iter_mut() {
            if *e < 0.0 {
                *e = 0.0;
            }
        }
        let (labels, count) = connected_components(&graph);
        let degrees = graph.weighted_degrees();
        let mut has_excess = vec![false; count];
        for (v, &e) in excess.iter().enumerate() {
            if e > 1e-12 {
                has_excess[labels[v]] = true;
            }
        }
        let mut grounded_vertices = Vec::new();
        // Ground the first vertex of each all-zero-excess component with a resistor
        // comparable to its degree (good conditioning, exactness for b ⟂ 1 per
        // component).
        let mut grounded_component = vec![false; count];
        for v in 0..graph.n() {
            let c = labels[v];
            if !has_excess[c] && !grounded_component[c] {
                let w = if degrees[v] > 0.0 { degrees[v] } else { 1.0 };
                excess[v] += w;
                grounded_component[c] = true;
                grounded_vertices.push(v);
            }
        }
        GroundedLaplacian {
            graph,
            excess,
            grounded_vertices,
        }
    }

    /// Builds a grounded Laplacian from an explicit SDD matrix (non-positive
    /// off-diagonals). Returns `None` if the matrix is not SDD in that form.
    pub fn from_sdd_matrix(m: &CsrMatrix) -> Option<Self> {
        let (graph, excess) = graph_from_sdd(m, 1e-9).ok()?;
        Some(Self::from_graph_with_excess(graph, excess))
    }

    /// The underlying graph (the negated off-diagonal part).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The diagonal excess (including any grounding added by the constructor).
    pub fn excess(&self) -> &[f64] {
        &self.excess
    }

    /// Vertices that received artificial grounding. The solution returned by the solver
    /// is the representative that is zero at these vertices.
    pub fn grounded_vertices(&self) -> &[usize] {
        &self.grounded_vertices
    }

    /// The full diagonal `D = degrees + excess`.
    pub fn diagonal(&self) -> Vec<f64> {
        self.graph
            .weighted_degrees()
            .iter()
            .zip(&self.excess)
            .map(|(d, e)| d + e)
            .collect()
    }

    /// Number of rows/columns.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of structural non-zeros below/above the diagonal (graph edges).
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// `y = M x = L(G) x + excess .* x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.graph.laplacian_apply(x);
        for ((yi, xi), ei) in y.iter_mut().zip(x).zip(&self.excess) {
            *yi += ei * xi;
        }
        y
    }

    /// Quadratic form `xᵀ M x`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        let y = self.apply(x);
        x.iter().zip(&y).map(|(a, b)| a * b).sum()
    }
}

impl LinearOperator for GroundedLaplacian {
    fn dim(&self) -> usize {
        self.n()
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        // Allocation-free: this is the hot SPMV of every PCG iteration. Same
        // operation order as `apply`, so results are bit-identical.
        self.graph.laplacian_apply_into(x, y);
        for ((yi, xi), ei) in y.iter_mut().zip(x).zip(&self.excess) {
            *yi += ei * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    #[test]
    fn pure_laplacian_gets_grounded_once_per_component() {
        let g = generators::cycle(10, 1.0);
        let gl = GroundedLaplacian::from_graph(g);
        assert_eq!(gl.grounded_vertices().len(), 1);
        assert!(gl.excess().iter().filter(|&&e| e > 0.0).count() == 1);
        // Two components -> two grounds.
        let mut two = Graph::new(6);
        two.add_edge(0, 1, 1.0).unwrap();
        two.add_edge(1, 2, 1.0).unwrap();
        two.add_edge(3, 4, 1.0).unwrap();
        two.add_edge(4, 5, 1.0).unwrap();
        let gl = GroundedLaplacian::from_graph(two);
        assert_eq!(gl.grounded_vertices().len(), 2);
    }
    use sgs_graph::Graph;

    #[test]
    fn excess_systems_are_not_grounded_again() {
        let g = generators::path(5, 1.0);
        let excess = vec![0.5, 0.0, 0.0, 0.0, 0.0];
        let gl = GroundedLaplacian::from_graph_with_excess(g, excess.clone());
        assert!(gl.grounded_vertices().is_empty());
        assert_eq!(gl.excess(), &excess[..]);
    }

    #[test]
    fn apply_matches_matrix_form() {
        let g = generators::grid2d(4, 4, 1.5);
        let excess: Vec<f64> = (0..16).map(|i| (i % 3) as f64 * 0.2).collect();
        let gl = GroundedLaplacian::from_graph_with_excess(g.clone(), excess.clone());
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let y = gl.apply(&x);
        let mut expected = g.laplacian_apply(&x);
        for (i, e) in expected.iter_mut().enumerate() {
            *e += excess[i] * x[i];
        }
        for (a, b) in y.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
        // Quadratic form is positive on non-zero vectors (PD after grounding/excess).
        assert!(gl.quadratic_form(&x) > 0.0);
        let ones = vec![1.0; 16];
        assert!(
            gl.quadratic_form(&ones) > 0.0,
            "grounded system is PD even on constants"
        );
    }

    #[test]
    fn from_sdd_matrix_round_trip() {
        let g = generators::erdos_renyi(30, 0.2, 1.0, 3);
        let mut triplets = Vec::new();
        let deg = g.weighted_degrees();
        for (i, &d) in deg.iter().enumerate() {
            triplets.push((i, i, d + if i == 0 { 2.0 } else { 0.0 }));
        }
        for e in g.edges() {
            triplets.push((e.u, e.v, -e.w));
            triplets.push((e.v, e.u, -e.w));
        }
        let m = CsrMatrix::from_triplets(30, &triplets);
        let gl = GroundedLaplacian::from_sdd_matrix(&m).expect("valid SDD matrix");
        assert!((gl.excess()[0] - 2.0).abs() < 1e-9);
        let x: Vec<f64> = (0..30).map(|i| i as f64 / 30.0).collect();
        let y1 = gl.apply(&x);
        let y2 = m.apply(&x);
        // Grounding may add excess to singular components; here component of vertex 0
        // already has excess, so no extra grounding should have occurred if connected.
        if sgs_graph::connectivity::is_connected(gl.graph()) {
            for (a, b) in y1.iter().zip(&y2) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn non_sdd_matrix_is_rejected() {
        let m =
            CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0), (0, 1, -5.0), (1, 0, -5.0)]);
        assert!(GroundedLaplacian::from_sdd_matrix(&m).is_none());
    }

    #[test]
    #[should_panic(expected = "excess")]
    fn negative_excess_is_rejected() {
        let g = generators::path(3, 1.0);
        let _ = GroundedLaplacian::from_graph_with_excess(g, vec![-1.0, 0.0, 0.0]);
    }
}
