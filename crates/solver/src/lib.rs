//! # sgs-solver
//!
//! A parallel SDD linear-system solver in the style of Section 4 of the paper: the
//! Peng–Spielman approximate-inverse-chain framework with `PARALLELSPARSIFY` plugged in
//! as the sparsification routine (Theorem 6).
//!
//! * [`sdd`] — representation of SDD systems as *grounded Laplacians*: a weighted graph
//!   plus a non-negative diagonal excess. General SDD matrices with non-positive
//!   off-diagonals map onto this form directly; singular Laplacian systems are grounded
//!   at one vertex, which pins the solution representative with `x₀ = 0`.
//! * [`chain`] — the approximate inverse chain `{M₁, M₂, …, M_d}`: each level reduces
//!   `M = D − A` to `D − A D⁻¹ A` (whose graph is a union of per-vertex cliques, built
//!   sparsely), then sparsifies that graph with `PARALLELSPARSIFY`. The chain applies
//!   `M⁻¹` approximately via the Peng–Spielman identity
//!   `(D − A)⁻¹ = ½ [D⁻¹ + (I + D⁻¹A)(D − A D⁻¹ A)⁻¹(I + A D⁻¹)]`.
//! * [`solve`] — the user-facing [`solve::SddSolver`]: preconditioned conjugate gradient
//!   on the original system with the chain as preconditioner, plus reference solvers
//!   (plain CG, Jacobi-PCG) for the comparison experiments (E8).
//!
//! The solver also plugs into the out-of-core streaming pipeline:
//! [`chain::Chain::build_from_stream`] / [`solve::SddSolver::for_stream`] ground and
//! chain a [`sgs_stream::StreamOutput`]'s sparsifier directly, so a graph far larger
//! than RAM can be streamed (optionally spilling through `sgs_stream`'s `SpillStore`)
//! and then solved without ever materialising it. The chain's
//! [`chain::ChainPreconditioner`] (via [`chain::Chain::preconditioner`]) applies the
//! approximate inverse through a reusable [`chain::ChainScratch`], keeping the PCG
//! outer loop allocation-free.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chain;
pub mod sdd;
pub mod solve;

pub use chain::{Chain, ChainConfig, ChainLevel, ChainPreconditioner, ChainScratch, StreamChain};
pub use sdd::GroundedLaplacian;
pub use solve::{SddSolver, SolveOutcome, SolveStats, SolverConfig, SolverMethod};
