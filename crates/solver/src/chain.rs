//! The Peng–Spielman approximate inverse chain with `PARALLELSPARSIFY` inside.
//!
//! For `M = D − A` (with `D = degrees + excess`, `A ≥ 0` the adjacency of the level's
//! graph) the identity
//!
//! ```text
//! (D − A)⁻¹ = ½ [ D⁻¹ + (I + D⁻¹ A)(D − A D⁻¹ A)⁻¹(I + A D⁻¹) ]
//! ```
//!
//! reduces a solve with `M` to a solve with `M̃ = D − A D⁻¹ A`. The graph of `M̃` is a
//! union of per-vertex cliques (every pair of neighbors of `v` becomes an edge of weight
//! `a_uv a_vw / d_v`); materialising those cliques would be quadratic in the degrees, so
//! high-degree cliques are replaced by sparse unbiased samples (the Corollary 6.4 step
//! of Peng–Spielman), and the result is then sparsified with `PARALLELSPARSIFY` — this
//! is precisely where Section 4 of the paper plugs its new sparsifier into the
//! framework. The recursion stops when the level is strongly diagonally dominant, where
//! a handful of Jacobi sweeps is an adequate (and linear, hence PCG-safe) base solver.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};
use sgs_graph::{Graph, GraphBuilder};
use sgs_linalg::cg::Preconditioner;

use crate::sdd::GroundedLaplacian;

/// Configuration for building an approximate inverse chain.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Per-level sparsification accuracy (the paper sets `ε = 1/O(log κ)`; the default
    /// is a practical fixed value which the experiments sweep).
    pub level_epsilon: f64,
    /// Sparsification factor `ρ` used when a level grows too dense.
    pub rho: f64,
    /// Bundle sizing for the inner `PARALLELSPARSIFY` calls.
    pub bundle_sizing: BundleSizing,
    /// Maximum chain depth.
    pub max_levels: usize,
    /// Stop recursing once `min(excess_i / degree_i)` exceeds this ratio (strong
    /// diagonal dominance: Jacobi converges geometrically).
    pub dominance_stop: f64,
    /// Number of Jacobi sweeps used by the base-case solver.
    pub base_jacobi_sweeps: usize,
    /// Degree above which a level-construction clique is sampled instead of built
    /// exactly.
    pub clique_sample_threshold: usize,
    /// Seed for clique sampling and sparsification.
    pub seed: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            level_epsilon: 0.5,
            rho: 4.0,
            bundle_sizing: BundleSizing::Fixed(3),
            max_levels: 25,
            dominance_stop: 4.0,
            base_jacobi_sweeps: 12,
            clique_sample_threshold: 16,
            seed: 0x50D5,
        }
    }
}

/// One level of the chain: the operator `M_i = L(graph) + diag(excess)`, stored with its
/// full diagonal for fast application.
#[derive(Debug, Clone)]
pub struct ChainLevel {
    /// The level's graph (off-diagonal part).
    pub graph: Graph,
    /// Diagonal excess of the level.
    pub excess: Vec<f64>,
    /// Cached full diagonal `degrees + excess`.
    pub diagonal: Vec<f64>,
}

impl ChainLevel {
    fn new(graph: Graph, excess: Vec<f64>) -> Self {
        let diagonal: Vec<f64> = graph
            .weighted_degrees()
            .iter()
            .zip(&excess)
            .map(|(d, e)| d + e)
            .collect();
        ChainLevel {
            graph,
            excess,
            diagonal,
        }
    }

    /// Adjacency application `y = A x` (off-diagonal only, positive weights).
    fn adjacency_apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.graph.n()];
        for e in self.graph.edges() {
            y[e.u] += e.w * x[e.v];
            y[e.v] += e.w * x[e.u];
        }
        y
    }

    /// Full operator application `y = (D − A) x = L x + excess .* x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.graph.laplacian_apply(x);
        for ((yi, xi), ei) in y.iter_mut().zip(x).zip(&self.excess) {
            *yi += ei * xi;
        }
        y
    }

    /// Ratio `min_v excess_v / degree_v` (∞ when the graph has no edges); the dominance
    /// measure that terminates the chain.
    fn dominance(&self) -> f64 {
        let deg = self.graph.weighted_degrees();
        let mut worst = f64::INFINITY;
        for (d, e) in deg.iter().zip(&self.excess) {
            if *d > 0.0 {
                worst = worst.min(e / d);
            }
        }
        worst
    }
}

/// The approximate inverse chain `{M₁, …, M_d}` plus the parameters needed to apply it.
#[derive(Debug, Clone)]
pub struct Chain {
    levels: Vec<ChainLevel>,
    config: ChainConfig,
}

impl Chain {
    /// Builds the chain for a grounded Laplacian.
    pub fn build(system: &GroundedLaplacian, config: &ChainConfig) -> Self {
        let mut levels = Vec::new();
        let mut current = ChainLevel::new(system.graph().clone(), system.excess().to_vec());
        let n = system.n();
        let target_edges = (2.0 * n as f64 * (n.max(2) as f64).log2()).ceil() as usize;
        for level_idx in 0..config.max_levels {
            let done = current.dominance() >= config.dominance_stop
                || current.graph.m() == 0
                || level_idx + 1 == config.max_levels;
            if done {
                levels.push(current);
                break;
            }
            let next = build_next_level(&current, config, level_idx, target_edges);
            levels.push(current);
            current = next;
        }
        Chain {
            levels,
            config: config.clone(),
        }
    }

    /// Number of levels in the chain.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The levels of the chain.
    pub fn levels(&self) -> &[ChainLevel] {
        &self.levels
    }

    /// Total number of edges stored across all levels (the chain-size quantity that
    /// Theorem 6 bounds).
    pub fn total_edges(&self) -> usize {
        self.levels.iter().map(|l| l.graph.m()).sum()
    }

    /// Applies the approximate inverse of the top-level operator to `b`.
    pub fn apply_inverse(&self, b: &[f64]) -> Vec<f64> {
        self.apply_inverse_from(0, b)
    }

    fn apply_inverse_from(&self, level: usize, b: &[f64]) -> Vec<f64> {
        let lvl = &self.levels[level];
        if level + 1 == self.levels.len() {
            return jacobi_sweeps(lvl, b, self.config.base_jacobi_sweeps);
        }
        // x = 1/2 [ D^{-1} b + (I + D^{-1} A) M̃^{-1} (I + A D^{-1}) b ]
        let d_inv_b: Vec<f64> = b
            .iter()
            .zip(&lvl.diagonal)
            .map(|(bi, di)| bi / di)
            .collect();
        let a_dinv_b = lvl.adjacency_apply(&d_inv_b);
        let y: Vec<f64> = b.iter().zip(&a_dinv_b).map(|(bi, ai)| bi + ai).collect();
        let z = self.apply_inverse_from(level + 1, &y);
        let a_z = lvl.adjacency_apply(&z);
        let x2: Vec<f64> = z
            .iter()
            .zip(a_z.iter().zip(&lvl.diagonal))
            .map(|(zi, (azi, di))| zi + azi / di)
            .collect();
        d_inv_b
            .iter()
            .zip(&x2)
            .map(|(a, b)| 0.5 * (a + b))
            .collect()
    }
}

impl Preconditioner for Chain {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let out = self.apply_inverse(r);
        z.copy_from_slice(&out);
    }
}

/// A fixed number of Jacobi sweeps for `M x = b`; a linear operator in `b`, which makes
/// it safe to use inside a (non-flexible) PCG iteration.
fn jacobi_sweeps(level: &ChainLevel, b: &[f64], sweeps: usize) -> Vec<f64> {
    let n = b.len();
    let mut x: Vec<f64> = b
        .iter()
        .zip(&level.diagonal)
        .map(|(bi, di)| bi / di)
        .collect();
    for _ in 0..sweeps {
        // x ← D⁻¹ (b + A x)
        let ax = level.adjacency_apply(&x);
        for i in 0..n {
            x[i] = (b[i] + ax[i]) / level.diagonal[i];
        }
    }
    x
}

/// Builds level `i + 1` from level `i`: the two-hop graph of `M̃ = D − A D⁻¹ A`
/// (cliques, sampled above the degree threshold), its diagonal excess, and a
/// `PARALLELSPARSIFY` pass when the graph grows beyond the target size.
fn build_next_level(
    level: &ChainLevel,
    config: &ChainConfig,
    level_idx: usize,
    target_edges: usize,
) -> ChainLevel {
    let n = level.graph.n();
    let adj = level.graph.adjacency();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(level_idx as u64 * 0xC11A));
    let mut builder = GraphBuilder::new(n);

    for v in 0..n {
        let neighbors = adj.neighbors(v);
        let deg = neighbors.len();
        if deg < 2 {
            continue;
        }
        let dv = level.diagonal[v];
        if deg <= config.clique_sample_threshold {
            // Exact clique.
            for i in 0..deg {
                for j in (i + 1)..deg {
                    let (a, b) = (&neighbors[i], &neighbors[j]);
                    if a.node == b.node {
                        continue;
                    }
                    let w = a.weight * b.weight / dv;
                    if w > 0.0 {
                        let _ = builder.add(a.node, b.node, w);
                    }
                }
            }
        } else {
            // Sparse unbiased approximation of the clique: sample endpoint pairs with
            // probability proportional to their weights and spread the clique's total
            // weight uniformly over the accepted samples.
            let total_w: f64 = neighbors.iter().map(|nb| nb.weight).sum();
            let sum_sq: f64 = neighbors.iter().map(|nb| nb.weight * nb.weight).sum();
            let clique_weight = (total_w * total_w - sum_sq) / (2.0 * dv);
            if clique_weight <= 0.0 {
                continue;
            }
            let samples = ((deg as f64) * (deg as f64).log2().max(1.0) * 2.0).ceil() as usize;
            // Cumulative distribution over neighbors, proportional to weight.
            let mut cumulative = Vec::with_capacity(deg);
            let mut acc = 0.0;
            for nb in neighbors {
                acc += nb.weight;
                cumulative.push(acc);
            }
            let draw = |rng: &mut ChaCha8Rng| -> usize {
                let x = rng.gen_range(0.0..acc);
                cumulative.partition_point(|&c| c < x).min(deg - 1)
            };
            let mut accepted = Vec::with_capacity(samples);
            for _ in 0..samples {
                let i = draw(&mut rng);
                let j = draw(&mut rng);
                if i != j && neighbors[i].node != neighbors[j].node {
                    accepted.push((neighbors[i].node, neighbors[j].node));
                }
            }
            if accepted.is_empty() {
                continue;
            }
            let w_each = clique_weight / accepted.len() as f64;
            for (a, b) in accepted {
                let _ = builder.add(a, b, w_each);
            }
        }
    }
    let two_hop = builder.build();

    // Exact diagonal excess of M̃: excess_u = D_u − Σ_v a_uv (Σ_w a_vw) / D_v.
    let a_row_sums = level.graph.weighted_degrees();
    let ratio: Vec<f64> = a_row_sums
        .iter()
        .zip(&level.diagonal)
        .map(|(s, d)| if *d > 0.0 { s / d } else { 0.0 })
        .collect();
    let a_ratio = level.adjacency_apply(&ratio);
    let excess: Vec<f64> = level
        .diagonal
        .iter()
        .zip(&a_ratio)
        .map(|(d, ar)| (d - ar).max(0.0))
        .collect();

    // Sparsify the two-hop graph when it exceeds the target size (the Section 4 step:
    // "bring the graph back to its original size" using Theorem 5).
    let graph = if two_hop.m() > target_edges {
        let cfg = SparsifyConfig::new(config.level_epsilon, config.rho)
            .with_bundle_sizing(config.bundle_sizing)
            .with_seed(config.seed.wrapping_add(0xF00D + level_idx as u64));
        parallel_sparsify(&two_hop, &cfg).sparsifier
    } else {
        two_hop
    };

    ChainLevel::new(graph, excess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;
    use sgs_linalg::vector;

    #[test]
    fn chain_has_bounded_depth_and_size() {
        let g = generators::erdos_renyi(300, 0.1, 1.0, 3);
        let system = GroundedLaplacian::from_graph(g);
        let chain = Chain::build(&system, &ChainConfig::default());
        assert!(chain.depth() >= 1);
        assert!(chain.depth() <= 25);
        assert!(chain.total_edges() > 0);
    }

    #[test]
    fn two_hop_level_has_nonnegative_excess_and_more_dominance() {
        let g = generators::grid2d(10, 10, 1.0);
        let system = GroundedLaplacian::from_graph(g);
        let chain = Chain::build(&system, &ChainConfig::default());
        for level in chain.levels() {
            assert!(level.excess.iter().all(|&e| e >= 0.0));
        }
        if chain.depth() >= 2 {
            let d0 = chain.levels()[0].dominance();
            let dl = chain.levels()[chain.depth() - 1].dominance();
            assert!(
                dl >= d0,
                "dominance should not decrease along the chain: {d0} -> {dl}"
            );
        }
    }

    #[test]
    fn apply_inverse_is_a_positive_definite_preconditioner() {
        // PCG requires the preconditioner to be a symmetric positive-definite linear
        // map; we check positivity of bᵀ P b on a batch of right-hand sides and that the
        // map is linear (it is built only from linear operations).
        let g = generators::erdos_renyi(200, 0.15, 1.0, 7);
        let system = GroundedLaplacian::from_graph(g);
        let chain = Chain::build(&system, &ChainConfig::default());
        let n = system.n();
        for seed in 0..5u64 {
            let b = vector::random_unit_orthogonal(n, seed);
            let x = chain.apply_inverse(&b);
            assert!(x.iter().all(|v| v.is_finite()));
            let btx = vector::dot(&b, &x);
            assert!(
                btx > 0.0,
                "preconditioner must be positive definite, got {btx}"
            );
        }
        // Linearity: P(2a - b) = 2 P(a) - P(b).
        let a = vector::random_unit_orthogonal(n, 101);
        let b = vector::random_unit_orthogonal(n, 102);
        let combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x - y).collect();
        let pa = chain.apply_inverse(&a);
        let pb = chain.apply_inverse(&b);
        let pc = chain.apply_inverse(&combo);
        for i in 0..n {
            let lin = 2.0 * pa[i] - pb[i];
            assert!((pc[i] - lin).abs() < 1e-9 * (1.0 + lin.abs()));
        }
    }

    #[test]
    fn jacobi_base_case_is_linear() {
        let g = generators::path(30, 1.0);
        let mut excess = vec![0.0; 30];
        for e in excess.iter_mut() {
            *e = 3.0; // strongly dominant
        }
        let level = ChainLevel::new(g, excess);
        let b1: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let b2: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).cos()).collect();
        let x1 = jacobi_sweeps(&level, &b1, 8);
        let x2 = jacobi_sweeps(&level, &b2, 8);
        let combined: Vec<f64> = b1.iter().zip(&b2).map(|(a, b)| 2.0 * a - 0.5 * b).collect();
        let x_combined = jacobi_sweeps(&level, &combined, 8);
        for i in 0..30 {
            let lin = 2.0 * x1[i] - 0.5 * x2[i];
            assert!(
                (x_combined[i] - lin).abs() < 1e-10,
                "Jacobi base case must be linear"
            );
        }
    }

    #[test]
    fn strongly_dominant_systems_terminate_immediately() {
        let g = generators::cycle(20, 1.0);
        let excess = vec![10.0; 20];
        let system = GroundedLaplacian::from_graph_with_excess(g, excess);
        let chain = Chain::build(&system, &ChainConfig::default());
        assert_eq!(chain.depth(), 1);
    }

    #[test]
    fn dense_levels_are_sparsified() {
        // A dense input: the two-hop graph would be denser still; the chain must keep
        // level sizes in check via PARALLELSPARSIFY.
        let g = generators::erdos_renyi(200, 0.3, 1.0, 9);
        let m_in = g.m();
        let system = GroundedLaplacian::from_graph(g);
        let chain = Chain::build(&system, &ChainConfig::default());
        for (i, level) in chain.levels().iter().enumerate().skip(1) {
            assert!(
                level.graph.m() <= 3 * m_in,
                "level {i} blew up: {} edges vs input {m_in}",
                level.graph.m()
            );
        }
    }
}
