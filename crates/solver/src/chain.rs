//! The Peng–Spielman approximate inverse chain with `PARALLELSPARSIFY` inside.
//!
//! For `M = D − A` (with `D = degrees + excess`, `A ≥ 0` the adjacency of the level's
//! graph) the identity
//!
//! ```text
//! (D − A)⁻¹ = ½ [ D⁻¹ + (I + D⁻¹ A)(D − A D⁻¹ A)⁻¹(I + A D⁻¹) ]
//! ```
//!
//! reduces a solve with `M` to a solve with `M̃ = D − A D⁻¹ A`. The graph of `M̃` is a
//! union of per-vertex cliques (every pair of neighbors of `v` becomes an edge of weight
//! `a_uv a_vw / d_v`); materialising those cliques would be quadratic in the degrees, so
//! high-degree cliques are replaced by sparse unbiased samples (the Corollary 6.4 step
//! of Peng–Spielman), and the result is then sparsified with `PARALLELSPARSIFY` — this
//! is precisely where Section 4 of the paper plugs its new sparsifier into the
//! framework. The recursion stops when the level is strongly diagonally dominant, where
//! a handful of Jacobi sweeps is an adequate (and linear, hence PCG-safe) base solver.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};
use sgs_graph::{Graph, GraphBuilder};
use sgs_linalg::cg::Preconditioner;
use sgs_stream::{StreamOutput, StreamStats};

use crate::sdd::GroundedLaplacian;

/// Configuration for building an approximate inverse chain.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// Per-level sparsification accuracy (the paper sets `ε = 1/O(log κ)`; the default
    /// is a practical fixed value which the experiments sweep).
    pub level_epsilon: f64,
    /// Sparsification factor `ρ` used when a level grows too dense.
    pub rho: f64,
    /// Bundle sizing for the inner `PARALLELSPARSIFY` calls.
    pub bundle_sizing: BundleSizing,
    /// Maximum chain depth.
    pub max_levels: usize,
    /// Stop recursing once `min(excess_i / degree_i)` exceeds this ratio (strong
    /// diagonal dominance: Jacobi converges geometrically).
    pub dominance_stop: f64,
    /// Number of Jacobi sweeps used by the base-case solver.
    pub base_jacobi_sweeps: usize,
    /// Degree above which a level-construction clique is sampled instead of built
    /// exactly.
    pub clique_sample_threshold: usize,
    /// Seed for clique sampling and sparsification.
    pub seed: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            level_epsilon: 0.5,
            rho: 4.0,
            bundle_sizing: BundleSizing::Fixed(3),
            max_levels: 25,
            dominance_stop: 4.0,
            base_jacobi_sweeps: 12,
            clique_sample_threshold: 16,
            seed: 0x50D5,
        }
    }
}

/// One level of the chain: the operator `M_i = L(graph) + diag(excess)`, stored with its
/// full diagonal for fast application.
#[derive(Debug, Clone)]
pub struct ChainLevel {
    /// The level's graph (off-diagonal part).
    pub graph: Graph,
    /// Diagonal excess of the level.
    pub excess: Vec<f64>,
    /// Cached full diagonal `degrees + excess`.
    pub diagonal: Vec<f64>,
}

impl ChainLevel {
    fn new(graph: Graph, excess: Vec<f64>) -> Self {
        let diagonal: Vec<f64> = graph
            .weighted_degrees()
            .iter()
            .zip(&excess)
            .map(|(d, e)| d + e)
            .collect();
        ChainLevel {
            graph,
            excess,
            diagonal,
        }
    }

    /// Adjacency application `y = A x` (off-diagonal only, positive weights).
    fn adjacency_apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.graph.n()];
        self.adjacency_apply_in(x, &mut y);
        y
    }

    /// Allocation-free [`adjacency_apply`](Self::adjacency_apply): overwrites `y` with
    /// `A x`, accumulating in the same edge order (bit-identical results).
    pub fn adjacency_apply_in(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        for e in self.graph.edges() {
            y[e.u] += e.w * x[e.v];
            y[e.v] += e.w * x[e.u];
        }
    }

    /// Full operator application `y = (D − A) x = L x + excess .* x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.graph.n()];
        self.apply_in(x, &mut y);
        y
    }

    /// Allocation-free [`apply`](Self::apply) writing into a caller-provided buffer.
    pub fn apply_in(&self, x: &[f64], y: &mut [f64]) {
        self.graph.laplacian_apply_into(x, y);
        for ((yi, xi), ei) in y.iter_mut().zip(x).zip(&self.excess) {
            *yi += ei * xi;
        }
    }

    /// Ratio `min_v excess_v / degree_v` (∞ when the graph has no edges); the dominance
    /// measure that terminates the chain.
    fn dominance(&self) -> f64 {
        let deg = self.graph.weighted_degrees();
        let mut worst = f64::INFINITY;
        for (d, e) in deg.iter().zip(&self.excess) {
            if *d > 0.0 {
                worst = worst.min(e / d);
            }
        }
        worst
    }
}

/// The approximate inverse chain `{M₁, …, M_d}` plus the parameters needed to apply it.
#[derive(Debug, Clone)]
pub struct Chain {
    levels: Vec<ChainLevel>,
    config: ChainConfig,
}

impl Chain {
    /// Builds the chain for a grounded Laplacian.
    pub fn build(system: &GroundedLaplacian, config: &ChainConfig) -> Self {
        let build_span = sgs_obs::span!("chain.build", n = system.n());
        let mut levels = Vec::new();
        let mut current = ChainLevel::new(system.graph().clone(), system.excess().to_vec());
        let n = system.n();
        let target_edges = (2.0 * n as f64 * (n.max(2) as f64).log2()).ceil() as usize;
        for level_idx in 0..config.max_levels {
            let done = current.dominance() >= config.dominance_stop
                || current.graph.m() == 0
                || level_idx + 1 == config.max_levels;
            if done {
                levels.push(current);
                break;
            }
            let next = build_next_level(&current, config, level_idx, target_edges);
            levels.push(current);
            current = next;
        }
        for (idx, level) in levels.iter().enumerate() {
            sgs_obs::point!(
                "chain.level",
                level = idx,
                n = level.graph.n(),
                m = level.graph.m(),
            );
        }
        drop(build_span);
        Chain {
            levels,
            config: config.clone(),
        }
    }

    /// Number of levels in the chain.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The levels of the chain.
    pub fn levels(&self) -> &[ChainLevel] {
        &self.levels
    }

    /// Total number of edges stored across all levels (the chain-size quantity that
    /// Theorem 6 bounds).
    pub fn total_edges(&self) -> usize {
        self.levels.iter().map(|l| l.graph.m()).sum()
    }

    /// Applies the approximate inverse of the top-level operator to `b`.
    pub fn apply_inverse(&self, b: &[f64]) -> Vec<f64> {
        self.apply_inverse_from(0, b)
    }

    /// Allocation-free [`apply_inverse`](Self::apply_inverse): writes the result into
    /// `out`, reusing the buffers of `scratch` (grown on first use, then stable).
    ///
    /// Performs the same floating-point operations in the same order as
    /// `apply_inverse`, so results are **bit-identical** — the CG outer loop can switch
    /// between the two without perturbing a single iterate.
    pub fn apply_inverse_in(&self, b: &[f64], out: &mut [f64], scratch: &mut ChainScratch) {
        let n = self.levels[0].graph.n();
        assert_eq!(b.len(), n, "right-hand side has wrong dimension");
        assert_eq!(out.len(), n, "output buffer has wrong dimension");
        scratch.prepare(self.levels.len(), n);
        self.apply_inverse_rec(0, b, out, &mut scratch.levels);
    }

    fn apply_inverse_rec(&self, level: usize, b: &[f64], out: &mut [f64], bufs: &mut [LevelBufs]) {
        let lvl = &self.levels[level];
        let (mine, rest) = bufs
            .split_first_mut()
            .expect("scratch shallower than chain");
        if level + 1 == self.levels.len() {
            jacobi_sweeps_in(lvl, b, self.config.base_jacobi_sweeps, out, &mut mine.tmp);
            return;
        }
        // x = 1/2 [ D^{-1} b + (I + D^{-1} A) M̃^{-1} (I + A D^{-1}) b ], with the
        // inner solve's result z landing directly in `out` (one shared buffer for the
        // whole recursion) and `tmp` serving as both A·D⁻¹b and A·z.
        for ((di, bi), d) in mine.din.iter_mut().zip(b).zip(&lvl.diagonal) {
            *di = bi / d;
        }
        lvl.adjacency_apply_in(&mine.din, &mut mine.tmp);
        for ((yi, bi), ai) in mine.rhs.iter_mut().zip(b).zip(&mine.tmp) {
            *yi = bi + ai;
        }
        self.apply_inverse_rec(level + 1, &mine.rhs, out, rest);
        lvl.adjacency_apply_in(out, &mut mine.tmp);
        for ((zi, di_b), (azi, d)) in out
            .iter_mut()
            .zip(&mine.din)
            .zip(mine.tmp.iter().zip(&lvl.diagonal))
        {
            let x2 = *zi + azi / d;
            *zi = 0.5 * (di_b + x2);
        }
    }

    /// A reusable, lock-guarded preconditioner view over this chain: each
    /// [`Preconditioner::apply`] call runs [`apply_inverse_in`](Self::apply_inverse_in)
    /// against one persistent [`ChainScratch`], so the PCG outer loop performs no
    /// per-iteration allocation.
    pub fn preconditioner(&self) -> ChainPreconditioner<'_> {
        ChainPreconditioner {
            chain: self,
            scratch: Mutex::new(ChainScratch::default()),
            applies: AtomicU64::new(0),
        }
    }

    /// Builds a chain (and the grounded system it preconditions) **directly from a
    /// streaming run's output** — the out-of-core path: the original graph, which may
    /// be arbitrarily larger than RAM, is never materialised; only its sparsifier
    /// (already resident, `O(n log n)` edges) is grounded and chained.
    pub fn build_from_stream(output: StreamOutput, config: &ChainConfig) -> StreamChain {
        let StreamOutput { sparsifier, stats } = output;
        let system = GroundedLaplacian::from_graph(sparsifier);
        let chain = Chain::build(&system, config);
        StreamChain {
            chain,
            system,
            stream_stats: stats,
        }
    }

    fn apply_inverse_from(&self, level: usize, b: &[f64]) -> Vec<f64> {
        let lvl = &self.levels[level];
        if level + 1 == self.levels.len() {
            return jacobi_sweeps(lvl, b, self.config.base_jacobi_sweeps);
        }
        // x = 1/2 [ D^{-1} b + (I + D^{-1} A) M̃^{-1} (I + A D^{-1}) b ]
        let d_inv_b: Vec<f64> = b
            .iter()
            .zip(&lvl.diagonal)
            .map(|(bi, di)| bi / di)
            .collect();
        let a_dinv_b = lvl.adjacency_apply(&d_inv_b);
        let y: Vec<f64> = b.iter().zip(&a_dinv_b).map(|(bi, ai)| bi + ai).collect();
        let z = self.apply_inverse_from(level + 1, &y);
        let a_z = lvl.adjacency_apply(&z);
        let x2: Vec<f64> = z
            .iter()
            .zip(a_z.iter().zip(&lvl.diagonal))
            .map(|(zi, (azi, di))| zi + azi / di)
            .collect();
        d_inv_b
            .iter()
            .zip(&x2)
            .map(|(a, b)| 0.5 * (a + b))
            .collect()
    }
}

impl Preconditioner for Chain {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let out = self.apply_inverse(r);
        z.copy_from_slice(&out);
    }
}

/// Per-level workspace for [`Chain::apply_inverse_in`]. One `d_inv_b`/`tmp`/`rhs`
/// triple per level; the solution itself lives in the caller's `out` buffer, shared by
/// the whole recursion.
#[derive(Debug, Default)]
struct LevelBufs {
    din: Vec<f64>,
    tmp: Vec<f64>,
    rhs: Vec<f64>,
}

/// Reusable buffers for [`Chain::apply_inverse_in`]: three n-vectors per chain level,
/// grown on first use and reused verbatim afterwards.
#[derive(Debug, Default)]
pub struct ChainScratch {
    levels: Vec<LevelBufs>,
}

impl ChainScratch {
    /// An empty scratch; buffers are sized on the first
    /// [`Chain::apply_inverse_in`] call.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, depth: usize, n: usize) {
        if self.levels.len() < depth {
            self.levels.resize_with(depth, LevelBufs::default);
        }
        for bufs in &mut self.levels[..depth] {
            bufs.din.resize(n, 0.0);
            bufs.tmp.resize(n, 0.0);
            bufs.rhs.resize(n, 0.0);
        }
    }
}

/// A [`Preconditioner`] over a [`Chain`] that owns a persistent [`ChainScratch`]
/// behind a mutex, making every application allocation-free after the first. Built via
/// [`Chain::preconditioner`].
#[derive(Debug)]
pub struct ChainPreconditioner<'a> {
    chain: &'a Chain,
    scratch: Mutex<ChainScratch>,
    applies: AtomicU64,
}

impl ChainPreconditioner<'_> {
    /// Number of chain applications performed through this view so far (one per
    /// PCG preconditioner application).
    pub fn applies(&self) -> u64 {
        self.applies.load(Ordering::Relaxed)
    }
}

impl Preconditioner for ChainPreconditioner<'_> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.applies.fetch_add(1, Ordering::Relaxed);
        let mut scratch = self.scratch.lock().expect("chain scratch lock poisoned");
        self.chain.apply_inverse_in(r, z, &mut scratch);
    }
}

/// A chain built from a streaming sparsifier run: the grounded system (of the
/// *sparsifier*, the only graph ever resident), its approximate inverse chain, and the
/// spill/accuracy ledger the stream carried. Produced by [`Chain::build_from_stream`].
#[derive(Debug)]
pub struct StreamChain {
    /// The approximate inverse chain over the sparsifier's grounded Laplacian.
    pub chain: Chain,
    /// The grounded system the chain preconditions.
    pub system: GroundedLaplacian,
    /// Accounting of the streaming run that produced the sparsifier (peak resident
    /// bytes, spill ledger, ε spent).
    pub stream_stats: StreamStats,
}

/// A fixed number of Jacobi sweeps for `M x = b`; a linear operator in `b`, which makes
/// it safe to use inside a (non-flexible) PCG iteration.
fn jacobi_sweeps(level: &ChainLevel, b: &[f64], sweeps: usize) -> Vec<f64> {
    let n = b.len();
    let mut x: Vec<f64> = b
        .iter()
        .zip(&level.diagonal)
        .map(|(bi, di)| bi / di)
        .collect();
    for _ in 0..sweeps {
        // x ← D⁻¹ (b + A x)
        let ax = level.adjacency_apply(&x);
        for i in 0..n {
            x[i] = (b[i] + ax[i]) / level.diagonal[i];
        }
    }
    x
}

/// Allocation-free [`jacobi_sweeps`] writing the iterate into `x` and using `ax` as the
/// adjacency scratch; identical operation order, bit-identical results.
fn jacobi_sweeps_in(level: &ChainLevel, b: &[f64], sweeps: usize, x: &mut [f64], ax: &mut [f64]) {
    for ((xi, bi), di) in x.iter_mut().zip(b).zip(&level.diagonal) {
        *xi = bi / di;
    }
    for _ in 0..sweeps {
        // x ← D⁻¹ (b + A x)
        level.adjacency_apply_in(x, ax);
        for i in 0..x.len() {
            x[i] = (b[i] + ax[i]) / level.diagonal[i];
        }
    }
}

/// Builds level `i + 1` from level `i`: the two-hop graph of `M̃ = D − A D⁻¹ A`
/// (cliques, sampled above the degree threshold), its diagonal excess, and a
/// `PARALLELSPARSIFY` pass when the graph grows beyond the target size.
fn build_next_level(
    level: &ChainLevel,
    config: &ChainConfig,
    level_idx: usize,
    target_edges: usize,
) -> ChainLevel {
    let n = level.graph.n();
    let adj = level.graph.adjacency();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(level_idx as u64 * 0xC11A));
    let mut builder = GraphBuilder::new(n);

    for v in 0..n {
        let neighbors = adj.neighbors(v);
        let deg = neighbors.len();
        if deg < 2 {
            continue;
        }
        let dv = level.diagonal[v];
        if deg <= config.clique_sample_threshold {
            // Exact clique.
            for i in 0..deg {
                for j in (i + 1)..deg {
                    let (a, b) = (&neighbors[i], &neighbors[j]);
                    if a.node == b.node {
                        continue;
                    }
                    let w = a.weight * b.weight / dv;
                    if w > 0.0 {
                        let _ = builder.add(a.node, b.node, w);
                    }
                }
            }
        } else {
            // Sparse unbiased approximation of the clique: sample endpoint pairs with
            // probability proportional to their weights and spread the clique's total
            // weight uniformly over the accepted samples.
            let total_w: f64 = neighbors.iter().map(|nb| nb.weight).sum();
            let sum_sq: f64 = neighbors.iter().map(|nb| nb.weight * nb.weight).sum();
            let clique_weight = (total_w * total_w - sum_sq) / (2.0 * dv);
            if clique_weight <= 0.0 {
                continue;
            }
            let samples = ((deg as f64) * (deg as f64).log2().max(1.0) * 2.0).ceil() as usize;
            // Cumulative distribution over neighbors, proportional to weight.
            let mut cumulative = Vec::with_capacity(deg);
            let mut acc = 0.0;
            for nb in neighbors {
                acc += nb.weight;
                cumulative.push(acc);
            }
            let draw = |rng: &mut ChaCha8Rng| -> usize {
                let x = rng.gen_range(0.0..acc);
                cumulative.partition_point(|&c| c < x).min(deg - 1)
            };
            let mut accepted = Vec::with_capacity(samples);
            for _ in 0..samples {
                let i = draw(&mut rng);
                let j = draw(&mut rng);
                if i != j && neighbors[i].node != neighbors[j].node {
                    accepted.push((neighbors[i].node, neighbors[j].node));
                }
            }
            if accepted.is_empty() {
                continue;
            }
            let w_each = clique_weight / accepted.len() as f64;
            for (a, b) in accepted {
                let _ = builder.add(a, b, w_each);
            }
        }
    }
    let two_hop = builder.build();

    // Exact diagonal excess of M̃: excess_u = D_u − Σ_v a_uv (Σ_w a_vw) / D_v.
    let a_row_sums = level.graph.weighted_degrees();
    let ratio: Vec<f64> = a_row_sums
        .iter()
        .zip(&level.diagonal)
        .map(|(s, d)| if *d > 0.0 { s / d } else { 0.0 })
        .collect();
    let a_ratio = level.adjacency_apply(&ratio);
    let excess: Vec<f64> = level
        .diagonal
        .iter()
        .zip(&a_ratio)
        .map(|(d, ar)| (d - ar).max(0.0))
        .collect();

    // Sparsify the two-hop graph when it exceeds the target size (the Section 4 step:
    // "bring the graph back to its original size" using Theorem 5).
    let graph = if two_hop.m() > target_edges {
        let cfg = SparsifyConfig::new(config.level_epsilon, config.rho)
            .with_bundle_sizing(config.bundle_sizing)
            .with_seed(config.seed.wrapping_add(0xF00D + level_idx as u64));
        parallel_sparsify(&two_hop, &cfg).sparsifier
    } else {
        two_hop
    };

    ChainLevel::new(graph, excess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;
    use sgs_linalg::vector;

    #[test]
    fn chain_has_bounded_depth_and_size() {
        let g = generators::erdos_renyi(300, 0.1, 1.0, 3);
        let system = GroundedLaplacian::from_graph(g);
        let chain = Chain::build(&system, &ChainConfig::default());
        assert!(chain.depth() >= 1);
        assert!(chain.depth() <= 25);
        assert!(chain.total_edges() > 0);
    }

    #[test]
    fn two_hop_level_has_nonnegative_excess_and_more_dominance() {
        let g = generators::grid2d(10, 10, 1.0);
        let system = GroundedLaplacian::from_graph(g);
        let chain = Chain::build(&system, &ChainConfig::default());
        for level in chain.levels() {
            assert!(level.excess.iter().all(|&e| e >= 0.0));
        }
        if chain.depth() >= 2 {
            let d0 = chain.levels()[0].dominance();
            let dl = chain.levels()[chain.depth() - 1].dominance();
            assert!(
                dl >= d0,
                "dominance should not decrease along the chain: {d0} -> {dl}"
            );
        }
    }

    #[test]
    fn apply_inverse_is_a_positive_definite_preconditioner() {
        // PCG requires the preconditioner to be a symmetric positive-definite linear
        // map; we check positivity of bᵀ P b on a batch of right-hand sides and that the
        // map is linear (it is built only from linear operations).
        let g = generators::erdos_renyi(200, 0.15, 1.0, 7);
        let system = GroundedLaplacian::from_graph(g);
        let chain = Chain::build(&system, &ChainConfig::default());
        let n = system.n();
        for seed in 0..5u64 {
            let b = vector::random_unit_orthogonal(n, seed);
            let x = chain.apply_inverse(&b);
            assert!(x.iter().all(|v| v.is_finite()));
            let btx = vector::dot(&b, &x);
            assert!(
                btx > 0.0,
                "preconditioner must be positive definite, got {btx}"
            );
        }
        // Linearity: P(2a - b) = 2 P(a) - P(b).
        let a = vector::random_unit_orthogonal(n, 101);
        let b = vector::random_unit_orthogonal(n, 102);
        let combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x - y).collect();
        let pa = chain.apply_inverse(&a);
        let pb = chain.apply_inverse(&b);
        let pc = chain.apply_inverse(&combo);
        for i in 0..n {
            let lin = 2.0 * pa[i] - pb[i];
            assert!((pc[i] - lin).abs() < 1e-9 * (1.0 + lin.abs()));
        }
    }

    #[test]
    fn jacobi_base_case_is_linear() {
        let g = generators::path(30, 1.0);
        let mut excess = vec![0.0; 30];
        for e in excess.iter_mut() {
            *e = 3.0; // strongly dominant
        }
        let level = ChainLevel::new(g, excess);
        let b1: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let b2: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).cos()).collect();
        let x1 = jacobi_sweeps(&level, &b1, 8);
        let x2 = jacobi_sweeps(&level, &b2, 8);
        let combined: Vec<f64> = b1.iter().zip(&b2).map(|(a, b)| 2.0 * a - 0.5 * b).collect();
        let x_combined = jacobi_sweeps(&level, &combined, 8);
        for i in 0..30 {
            let lin = 2.0 * x1[i] - 0.5 * x2[i];
            assert!(
                (x_combined[i] - lin).abs() < 1e-10,
                "Jacobi base case must be linear"
            );
        }
    }

    #[test]
    fn apply_inverse_in_is_bitwise_equal_to_apply_inverse() {
        // The `_in` path is the one the PCG loop uses; it must perform the exact same
        // floating-point operations as the allocating reference, so iterates (and
        // therefore every golden solve fixture) are unchanged to the last bit.
        let g = generators::erdos_renyi(180, 0.12, 1.0, 21);
        let system = GroundedLaplacian::from_graph(g);
        let chain = Chain::build(&system, &ChainConfig::default());
        assert!(chain.depth() >= 2, "want a recursive chain for this pin");
        let n = system.n();
        let mut scratch = ChainScratch::new();
        let mut out = vec![0.0; n];
        for seed in 0..4u64 {
            let b = vector::random_unit_orthogonal(n, seed);
            let reference = chain.apply_inverse(&b);
            // Scratch is deliberately reused across right-hand sides.
            chain.apply_inverse_in(&b, &mut out, &mut scratch);
            for (i, (a, c)) in reference.iter().zip(&out).enumerate() {
                assert_eq!(a.to_bits(), c.to_bits(), "component {i} diverged");
            }
        }
        // The mutex-guarded preconditioner view is the same computation.
        use sgs_linalg::cg::Preconditioner as _;
        let pre = chain.preconditioner();
        let b = vector::random_unit_orthogonal(n, 9);
        let reference = chain.apply_inverse(&b);
        let mut z = vec![0.0; n];
        pre.apply(&b, &mut z);
        assert_eq!(
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            z.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn build_from_stream_matches_building_from_the_sparsifier() {
        use sgs_stream::StreamConfig;
        use sgs_stream::StreamSparsifier;
        let g = generators::erdos_renyi(150, 0.2, 1.0, 13);
        let cfg = StreamConfig::new(0.5, g.m() / 2).with_seed(3);
        let mut s = StreamSparsifier::new(g.n(), cfg);
        s.ingest_batch(g.edges()).unwrap();
        let output = s.finish();
        let expect_edges = output.sparsifier.edges().to_vec();
        let chain_cfg = ChainConfig::default();
        let direct = {
            let system = GroundedLaplacian::from_graph(output.sparsifier.clone());
            Chain::build(&system, &chain_cfg)
        };
        let streamed = Chain::build_from_stream(output, &chain_cfg);
        assert_eq!(streamed.system.graph().edges(), &expect_edges[..]);
        assert_eq!(streamed.chain.depth(), direct.depth());
        assert_eq!(streamed.chain.total_edges(), direct.total_edges());
        assert!(streamed.stream_stats.edges_ingested > 0);
    }

    #[test]
    fn strongly_dominant_systems_terminate_immediately() {
        let g = generators::cycle(20, 1.0);
        let excess = vec![10.0; 20];
        let system = GroundedLaplacian::from_graph_with_excess(g, excess);
        let chain = Chain::build(&system, &ChainConfig::default());
        assert_eq!(chain.depth(), 1);
    }

    #[test]
    fn dense_levels_are_sparsified() {
        // A dense input: the two-hop graph would be denser still; the chain must keep
        // level sizes in check via PARALLELSPARSIFY.
        let g = generators::erdos_renyi(200, 0.3, 1.0, 9);
        let m_in = g.m();
        let system = GroundedLaplacian::from_graph(g);
        let chain = Chain::build(&system, &ChainConfig::default());
        for (i, level) in chain.levels().iter().enumerate().skip(1) {
            assert!(
                level.graph.m() <= 3 * m_in,
                "level {i} blew up: {} edges vs input {m_in}",
                level.graph.m()
            );
        }
    }
}
