//! The user-facing SDD solver (Theorem 6).
//!
//! [`SddSolver`] builds an approximate inverse chain once and then answers solves with
//! preconditioned conjugate gradient, using the chain as the preconditioner. Reference
//! methods (plain CG, Jacobi-preconditioned CG) are provided for the experiments that
//! compare iteration counts and work as the condition number grows (experiment E8).

use sgs_graph::Graph;
use sgs_linalg::cg::{cg_solve, pcg_solve, CgConfig, JacobiPreconditioner};
use sgs_linalg::csr::CsrMatrix;
use sgs_linalg::vector;

use sgs_stream::{StreamOutput, StreamStats};

use crate::chain::{Chain, ChainConfig, StreamChain};
use crate::sdd::GroundedLaplacian;

/// Which algorithm answers the solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverMethod {
    /// Conjugate gradient with the Peng–Spielman/`PARALLELSPARSIFY` chain as
    /// preconditioner (the paper's solver).
    ChainPcg,
    /// Conjugate gradient with a Jacobi (diagonal) preconditioner.
    JacobiPcg,
    /// Plain conjugate gradient.
    Cg,
}

/// Configuration of the solver.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Relative residual tolerance `τ`.
    pub tolerance: f64,
    /// Iteration cap for the outer PCG loop.
    pub max_iterations: usize,
    /// Chain construction parameters (used by [`SolverMethod::ChainPcg`]).
    pub chain: ChainConfig,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            tolerance: 1e-8,
            max_iterations: 2000,
            chain: ChainConfig::default(),
        }
    }
}

/// Result of a solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The computed solution.
    pub solution: Vec<f64>,
    /// Outer iterations used.
    pub iterations: usize,
    /// Final relative residual `‖b − M x‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Chain depth (0 for the reference methods).
    pub chain_depth: usize,
    /// Total edges stored in the chain (0 for the reference methods).
    pub chain_edges: usize,
    /// Solve counters (iterations, preconditioner applies, per-level work).
    pub stats: SolveStats,
}

/// Counters for one solve, suitable for absorption into an observability
/// `RunReport`. All values are deterministic for a fixed system and seed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Outer PCG/CG iterations.
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
    /// Preconditioner applications ([`SolverMethod::ChainPcg`] only; 0 for the
    /// reference methods, which either have no preconditioner or a diagonal one
    /// whose work is already counted by the iteration total).
    pub preconditioner_applies: u64,
    /// Per chain level: edges of that level × preconditioner applies — the
    /// chain-work decomposition of the solve (empty for reference methods).
    pub per_level_work: Vec<u64>,
}

/// A solver for SDD systems `M x = b` where `M = L(G) + diag(excess)`.
#[derive(Debug)]
pub struct SddSolver {
    system: GroundedLaplacian,
    chain: Option<Chain>,
    config: SolverConfig,
}

impl SddSolver {
    /// Builds a solver (and its chain) for a Laplacian system given by a graph. The
    /// returned solutions are the representatives that are zero at the grounded vertex.
    pub fn for_laplacian(graph: Graph, config: SolverConfig) -> Self {
        let system = GroundedLaplacian::from_graph(graph);
        Self::for_system(system, config)
    }

    /// Builds a solver for an explicit grounded-Laplacian system.
    pub fn for_system(system: GroundedLaplacian, config: SolverConfig) -> Self {
        let chain = Some(Chain::build(&system, &config.chain));
        SddSolver {
            system,
            chain,
            config,
        }
    }

    /// Builds a solver from an SDD matrix with non-positive off-diagonals. Returns
    /// `None` if the matrix is not of that form.
    pub fn for_sdd_matrix(matrix: &CsrMatrix, config: SolverConfig) -> Option<Self> {
        let system = GroundedLaplacian::from_sdd_matrix(matrix)?;
        Some(Self::for_system(system, config))
    }

    /// Builds a solver **directly from a streaming sparsification run** — the
    /// out-of-core path: the streamed graph is never materialised, only its sparsifier
    /// is grounded and chained. Returns the solver and the stream's accounting
    /// (spill ledger, peak resident bytes, ε spent).
    ///
    /// The solver answers solves against the *sparsifier's* Laplacian, which is a
    /// `(1 ± ε_total)` spectral proxy for the streamed graph's — solutions agree with
    /// the original system's up to the stream's accuracy budget.
    pub fn for_stream(output: StreamOutput, config: SolverConfig) -> (Self, StreamStats) {
        let StreamChain {
            chain,
            system,
            stream_stats,
        } = Chain::build_from_stream(output, &config.chain);
        (
            SddSolver {
                system,
                chain: Some(chain),
                config,
            },
            stream_stats,
        )
    }

    /// The underlying grounded system.
    pub fn system(&self) -> &GroundedLaplacian {
        &self.system
    }

    /// The chain built at construction time.
    pub fn chain(&self) -> Option<&Chain> {
        self.chain.as_ref()
    }

    /// Solves `M x = b` with the requested method.
    ///
    /// For grounded pure-Laplacian systems the right-hand side should be compatible
    /// (sum to zero per component); the solution returned is the representative that is
    /// zero at the grounded vertices.
    pub fn solve_with(&self, b: &[f64], method: SolverMethod) -> SolveOutcome {
        assert_eq!(
            b.len(),
            self.system.n(),
            "right-hand side has wrong dimension"
        );
        let cg_cfg = CgConfig {
            tolerance: self.config.tolerance,
            max_iterations: self.config.max_iterations,
            // The grounded operator is PD; no null-space projection is needed.
            project_ones: false,
        };
        // The solver is the sequential top-level PCG caller, so it opts into the
        // per-iteration residual trace; parallel inner solves (JL resistance
        // estimation) never enter a scope and stay silent.
        let solve_span = sgs_obs::span!("solver.solve", n = self.system.n());
        let scope = sgs_obs::trace_scope();
        let (outcome, chain_depth, chain_edges, applies, per_level_work) = match method {
            SolverMethod::ChainPcg => {
                let chain = self.chain.as_ref().expect("chain built at construction");
                // The re-entrant preconditioner reuses one scratch across all PCG
                // iterations (bit-identical to applying the chain directly).
                let pre = chain.preconditioner();
                let outcome = pcg_solve(&self.system, &pre, b, &cg_cfg);
                let applies = pre.applies();
                let per_level_work: Vec<u64> = chain
                    .levels()
                    .iter()
                    .map(|l| l.graph.m() as u64 * applies)
                    .collect();
                (
                    outcome,
                    chain.depth(),
                    chain.total_edges(),
                    applies,
                    per_level_work,
                )
            }
            SolverMethod::JacobiPcg => {
                let pre = JacobiPreconditioner::from_diagonal(&self.system.diagonal());
                (
                    pcg_solve(&self.system, &pre, b, &cg_cfg),
                    0,
                    0,
                    0,
                    Vec::new(),
                )
            }
            SolverMethod::Cg => (cg_solve(&self.system, b, &cg_cfg), 0, 0, 0, Vec::new()),
        };
        drop(scope);
        drop(solve_span);
        sgs_obs::point!(
            "solver.done",
            iterations = outcome.iterations,
            rel_residual = outcome.relative_residual,
            converged = outcome.converged,
            applies = applies,
        );
        SolveOutcome {
            stats: SolveStats {
                iterations: outcome.iterations,
                relative_residual: outcome.relative_residual,
                preconditioner_applies: applies,
                per_level_work,
            },
            solution: outcome.solution,
            iterations: outcome.iterations,
            relative_residual: outcome.relative_residual,
            converged: outcome.converged,
            chain_depth,
            chain_edges,
        }
    }

    /// Solves with the paper's method ([`SolverMethod::ChainPcg`]).
    pub fn solve(&self, b: &[f64]) -> SolveOutcome {
        self.solve_with(b, SolverMethod::ChainPcg)
    }
}

/// Convenience: solves the Laplacian system `L_G x = b` (with `b` projected to be
/// compatible) and returns the mean-zero representative of the solution.
pub fn solve_laplacian(graph: &Graph, b: &[f64], config: &SolverConfig) -> SolveOutcome {
    let mut rhs = b.to_vec();
    vector::project_out_ones(&mut rhs);
    let solver = SddSolver::for_laplacian(graph.clone(), config.clone());
    let mut out = solver.solve(&rhs);
    vector::project_out_ones(&mut out.solution);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    fn residual(system: &GroundedLaplacian, x: &[f64], b: &[f64]) -> f64 {
        let mx = system.apply(x);
        let r: Vec<f64> = b.iter().zip(&mx).map(|(bi, mi)| bi - mi).collect();
        vector::norm2(&r) / vector::norm2(b)
    }

    #[test]
    fn chain_pcg_solves_grid_laplacian() {
        let g = generators::grid2d(20, 20, 1.0);
        let solver = SddSolver::for_laplacian(g, SolverConfig::default());
        let n = solver.system().n();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let out = solver.solve(&b);
        assert!(out.converged, "residual {}", out.relative_residual);
        assert!(out.chain_depth >= 1);
        assert!(residual(solver.system(), &out.solution, &b) < 1e-6);
    }

    #[test]
    fn chain_pcg_and_cg_agree_on_the_solution() {
        let g = generators::erdos_renyi(150, 0.1, 1.0, 3);
        let solver = SddSolver::for_laplacian(g, SolverConfig::default());
        let n = solver.system().n();
        let mut b = vec![0.0; n];
        b[1] = 2.0;
        b[77] = -2.0;
        let chain = solver.solve_with(&b, SolverMethod::ChainPcg);
        let plain = solver.solve_with(&b, SolverMethod::Cg);
        assert!(chain.converged && plain.converged);
        for (a, c) in chain.solution.iter().zip(&plain.solution) {
            assert!((a - c).abs() < 1e-4, "{a} vs {c}");
        }
    }

    #[test]
    fn chain_pcg_needs_fewer_iterations_than_cg_on_ill_conditioned_systems() {
        // A long weighted path has condition number Θ(n²): plain CG needs many
        // iterations, the chain-preconditioned solver far fewer.
        let g = generators::path(400, 1.0);
        let solver = SddSolver::for_laplacian(g, SolverConfig::default());
        let n = solver.system().n();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let chain = solver.solve_with(&b, SolverMethod::ChainPcg);
        let plain = solver.solve_with(&b, SolverMethod::Cg);
        assert!(
            chain.converged,
            "chain residual {}",
            chain.relative_residual
        );
        assert!(
            chain.iterations < plain.iterations,
            "chain {} vs cg {}",
            chain.iterations,
            plain.iterations
        );
    }

    #[test]
    fn solves_systems_with_explicit_excess() {
        let g = generators::grid2d(10, 10, 1.0);
        let excess: Vec<f64> = (0..100)
            .map(|i| if i % 7 == 0 { 0.5 } else { 0.0 })
            .collect();
        let system = GroundedLaplacian::from_graph_with_excess(g, excess);
        let solver = SddSolver::for_system(system, SolverConfig::default());
        let b: Vec<f64> = (0..100).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        let out = solver.solve(&b);
        assert!(out.converged);
        assert!(residual(solver.system(), &out.solution, &b) < 1e-6);
    }

    #[test]
    fn solve_laplacian_returns_mean_zero_solution() {
        let g = generators::image_affinity_grid(12, 12, 30.0, 5);
        let n = g.n();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n / 2] = -1.0;
        let out = solve_laplacian(&g, &b, &SolverConfig::default());
        assert!(out.converged);
        let mean: f64 = out.solution.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 1e-8);
        // The solution satisfies L x = b up to the tolerance.
        let lx = g.laplacian_apply(&out.solution);
        let err: f64 = lx
            .iter()
            .zip(&b)
            .map(|(a, c)| (a - c) * (a - c))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-5, "err = {err}");
    }

    #[test]
    fn for_stream_solves_against_the_sparsifier() {
        use sgs_stream::{SpillConfig, StreamConfig, StreamSparsifier};
        let g = generators::erdos_renyi(200, 0.15, 1.0, 17);
        let stream_cfg = StreamConfig::new(0.5, g.m() / 2)
            .with_seed(11)
            .with_spill(SpillConfig::new(g.m()));
        let mut s = StreamSparsifier::new(g.n(), stream_cfg);
        for batch in g.edges().chunks(997) {
            s.ingest_batch(batch).unwrap();
        }
        let (solver, stream_stats) = SddSolver::for_stream(s.finish(), SolverConfig::default());
        assert!(stream_stats.edges_ingested == g.m() as u64);
        let n = solver.system().n();
        let mut b = vec![0.0; n];
        b[3] = 1.0;
        b[n - 4] = -1.0;
        let out = solver.solve(&b);
        assert!(out.converged, "residual {}", out.relative_residual);
        // Converged against the sparsifier's system (the stream's proxy)...
        assert!(residual(solver.system(), &out.solution, &b) < 1e-6);
        // ...which is a spectral proxy of the original: the exact solution of the
        // original system has comparable energy.
        let orig = SddSolver::for_laplacian(g, SolverConfig::default());
        let exact = orig.solve(&b);
        let e1 = vector::dot(&b, &out.solution);
        let e2 = vector::dot(&b, &exact.solution);
        assert!(e1 > 0.0 && e2 > 0.0);
        assert!(
            (e1 / e2 - 1.0).abs() < 0.75,
            "sparsifier solve energy drifted: {e1} vs {e2}"
        );
    }

    #[test]
    fn solver_from_sdd_matrix() {
        let g = generators::cycle(40, 2.0);
        let l = CsrMatrix::laplacian(&g);
        let solver = SddSolver::for_sdd_matrix(&l, SolverConfig::default()).expect("SDD");
        let n = 40;
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[20] = -1.0;
        let out = solver.solve(&b);
        assert!(out.converged);
        // Effective resistance between antipodal cycle vertices: (20 || 20 edges of
        // resistance 0.5 each) = (10 * 10) / 20 = 5.
        let er = out.solution[0] - out.solution[20];
        assert!((er - 5.0).abs() < 1e-4, "er = {er}");
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn dimension_mismatch_panics() {
        let g = generators::path(10, 1.0);
        let solver = SddSolver::for_laplacian(g, SolverConfig::default());
        let _ = solver.solve(&[1.0, -1.0]);
    }
}
