//! Distributed `PARALLELSAMPLE` and `PARALLELSPARSIFY` (Corollary 3 and the distributed
//! part of Theorems 4 and 5).
//!
//! The distributed versions are direct compositions of the distributed spanner:
//!
//! * a t-bundle is built by running the distributed spanner `t` times, each time on the
//!   residual edge set ("edges in earlier components declare themselves out", Section
//!   3.1), adding `O(t log² n)` rounds and `O(t m log n)` messages (Corollary 3);
//! * the uniform sampling step of Algorithm 1 is entirely local — every vertex owns the
//!   coin flips of its incident edges (the lower-endpoint owns the coin, so each edge is
//!   flipped exactly once) and no communication is needed. The coin is the shared
//!   counter-based [`edge_coin`] mix of `sgs-core`: each edge reads its own stateless
//!   stream position, so the outcome is independent of scheduling and costs two
//!   multiply-xor cascades instead of a fresh ChaCha8 key schedule per edge;
//! * `PARALLELSPARSIFY` repeats the above `⌈log ρ⌉` times.

use rayon::prelude::*;

use sgs_core::config::SparsifyConfig;
use sgs_core::edge_coin;
use sgs_graph::{Edge, EdgeId, Graph};

use crate::faults::FaultConfig;
use crate::network::NetworkMetrics;
use crate::spanner::{distributed_spanner_on_edges, DistSpannerConfig};

/// Result of a distributed sparsification run.
#[derive(Debug, Clone)]
pub struct DistSparsifyResult {
    /// The sparsified graph.
    pub sparsifier: Graph,
    /// Total communication metrics across every phase and round.
    pub metrics: NetworkMetrics,
    /// Number of `PARALLELSAMPLE` rounds executed.
    pub rounds_executed: usize,
    /// Number of edges contributed by bundles across all rounds (final round only for
    /// the single-round variant).
    pub bundle_edges: usize,
}

/// One distributed `PARALLELSAMPLE` round on `g`; `cfg` carries the round's accuracy
/// (`cfg.epsilon`) along with every other knob, matching the shared-memory API.
pub fn distributed_sample(g: &Graph, cfg: &SparsifyConfig) -> DistSparsifyResult {
    distributed_sample_with_faults(g, cfg, &FaultConfig::clean())
}

/// [`distributed_sample`] under a transport fault setup: every spanner run inherits
/// the fault plan (reseeded per run, so runs see independent fault streams) and the
/// optional reliable-delivery layer. A clean [`FaultConfig`] keeps the byte stream
/// identical to [`distributed_sample`].
pub fn distributed_sample_with_faults(
    g: &Graph,
    cfg: &SparsifyConfig,
    faults: &FaultConfig,
) -> DistSparsifyResult {
    let n = g.n();
    let m = g.m();
    let t = cfg.bundle_sizing.resolve(n, cfg.epsilon);
    let mut metrics = NetworkMetrics::default();

    // Build the t-bundle with t successive distributed spanner runs on residual edges.
    let mut in_bundle = vec![false; m];
    let mut active: Vec<EdgeId> = (0..m).collect();
    for i in 0..t {
        if active.is_empty() {
            break;
        }
        let run_seed = cfg
            .seed
            .wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let mut spanner_cfg = DistSpannerConfig::with_seed(run_seed);
        if !faults.is_clean() {
            // Derive an independent fault-coin stream per spanner run so round `i`'s
            // losses are not correlated with round `i + 1`'s.
            spanner_cfg.faults = faults
                .plan
                .clone()
                .with_seed(faults.plan.seed ^ run_seed.rotate_left(17));
            spanner_cfg.reliability = faults.reliability.clone();
        }
        let result = distributed_spanner_on_edges(g, &active, &spanner_cfg);
        metrics.absorb(&result.metrics);
        for &id in &result.edge_ids {
            in_bundle[id] = true;
        }
        active.retain(|&id| !in_bundle[id]);
    }

    // Local sampling: the lower-id endpoint of each off-bundle edge flips the coin.
    // No communication happens here, so the step also runs thread-parallel in the
    // simulator — each edge's coin is a counter mix of (seed, id), never of worker
    // scheduling, and kept edges collect in id order.
    let p = cfg.keep_probability;
    let reweight = 1.0 / p;
    let seed = cfg.seed ^ 0xD157_5A4D;
    let decide = |id: usize| -> Option<Edge> {
        let e = g.edge(id);
        if in_bundle[id] {
            Some(e)
        } else if edge_coin(seed, id as u64) < p {
            Some(Edge::new(e.u, e.v, e.w * reweight))
        } else {
            None
        }
    };
    let kept: Vec<Edge> = (0..m).into_par_iter().filter_map(decide).collect();
    // `active` was retained to exactly the off-bundle edges, so the split needs no
    // re-scan of the bitmap.
    let bundle_edges = m - active.len();
    let sparsifier = Graph::from_edges_unchecked(n, kept);

    DistSparsifyResult {
        sparsifier,
        metrics,
        rounds_executed: 1,
        bundle_edges,
    }
}

/// Distributed `PARALLELSPARSIFY`: `⌈log ρ⌉` rounds of [`distributed_sample`].
pub fn distributed_sparsify(g: &Graph, cfg: &SparsifyConfig) -> DistSparsifyResult {
    distributed_sparsify_with_faults(g, cfg, &FaultConfig::clean())
}

/// [`distributed_sparsify`] under a transport fault setup (see
/// [`distributed_sample_with_faults`]); a clean setup is byte-identical to
/// [`distributed_sparsify`].
pub fn distributed_sparsify_with_faults(
    g: &Graph,
    cfg: &SparsifyConfig,
    faults: &FaultConfig,
) -> DistSparsifyResult {
    let rounds = cfg.rounds();
    let per_round_eps = cfg.per_round_epsilon();
    let n = g.n();
    let stop_threshold =
        (cfg.stop_below_nlogn_factor * n as f64 * (n.max(2) as f64).log2()).ceil() as usize;

    let mut current = g.clone();
    let mut metrics = NetworkMetrics::default();
    let mut rounds_executed = 0;
    let mut bundle_edges = 0;
    for round in 0..rounds {
        if current.m() <= stop_threshold {
            break;
        }
        let mut round_cfg = cfg.clone();
        round_cfg.epsilon = per_round_eps;
        round_cfg.seed = cfg.seed.wrapping_add(round as u64 * 0xD00D);
        let mut round_faults = faults.clone();
        if !round_faults.is_clean() {
            // Per-round fault reseed, same rationale as the per-run reseed above.
            round_faults.plan = round_faults
                .plan
                .with_seed(faults.plan.seed ^ (round_cfg.seed).rotate_left(29));
        }
        let out = distributed_sample_with_faults(&current, &round_cfg, &round_faults);
        metrics.absorb(&out.metrics);
        bundle_edges = out.bundle_edges;
        current = out.sparsifier;
        rounds_executed += 1;
    }
    DistSparsifyResult {
        sparsifier: current,
        metrics,
        rounds_executed,
        bundle_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_core::config::BundleSizing;
    use sgs_graph::{connectivity::is_connected, generators};
    use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};

    fn cfg(seed: u64) -> SparsifyConfig {
        SparsifyConfig::new(0.75, 4.0)
            .with_bundle_sizing(BundleSizing::Fixed(2))
            .with_seed(seed)
    }

    #[test]
    fn distributed_sample_sparsifies_and_stays_connected() {
        let g = generators::erdos_renyi(150, 0.3, 1.0, 3);
        let out = distributed_sample(&g, &cfg(1));
        assert!(out.sparsifier.m() < g.m());
        assert!(is_connected(&out.sparsifier));
        assert!(out.bundle_edges > 0);
        assert!(out.metrics.rounds > 0);
        assert!(out.metrics.messages > 0);
    }

    #[test]
    fn communication_scales_with_bundle_size() {
        let g = generators::erdos_renyi(120, 0.25, 1.0, 7);
        let small = distributed_sample(&g, &cfg(1));
        let big = distributed_sample(&g, &cfg(1).with_bundle_sizing(BundleSizing::Fixed(6)));
        assert!(big.metrics.rounds > small.metrics.rounds);
        assert!(big.metrics.messages > small.metrics.messages);
    }

    #[test]
    fn corollary_3_bounds_hold() {
        let n = 100usize;
        let g = generators::erdos_renyi(n, 0.25, 1.0, 13);
        let t = 3usize;
        let out = distributed_sample(&g, &cfg(5).with_bundle_sizing(BundleSizing::Fixed(t)));
        let k = (n as f64).log2().ceil();
        let round_bound = (t as f64 * 4.0 * k * k) as usize + 10 * t;
        let msg_bound = (t as u64) * (6 * g.m() as u64 * k as u64 + 1000);
        assert!(
            out.metrics.rounds <= round_bound,
            "rounds {} > {round_bound}",
            out.metrics.rounds
        );
        assert!(
            out.metrics.messages <= msg_bound,
            "messages {} > {msg_bound}",
            out.metrics.messages
        );
        assert!(out.metrics.max_message_bits <= 64);
    }

    #[test]
    fn distributed_sparsify_matches_shared_memory_shape() {
        let g = generators::erdos_renyi(200, 0.4, 1.0, 17);
        let out = distributed_sparsify(&g, &cfg(3).with_bundle_sizing(BundleSizing::Fixed(4)));
        assert!(out.rounds_executed >= 1);
        assert!(out.sparsifier.m() < g.m(), "must shrink a dense graph");
        assert!(is_connected(&out.sparsifier));
        let b = approximation_bounds(&g, &out.sparsifier, &CertifyOptions::default());
        assert!(b.lower > 0.15 && b.upper < 4.0, "{b:?}");
    }

    #[test]
    fn sparse_input_is_left_untouched() {
        let g = generators::grid2d(20, 20, 1.0);
        let out = distributed_sparsify(&g, &cfg(2));
        assert_eq!(out.rounds_executed, 0);
        assert_eq!(out.sparsifier.m(), g.m());
        assert_eq!(out.metrics.messages, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(100, 0.3, 1.0, 23);
        let a = distributed_sample(&g, &cfg(9));
        let b = distributed_sample(&g, &cfg(9));
        assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
        assert_eq!(a.metrics, b.metrics);
    }
}
