//! The synchronous message-passing simulator.
//!
//! The simulator models the synchronous distributed (CONGEST-style) model used by the
//! paper: in every round each vertex may send one message along each incident edge;
//! messages sent in round `r` are delivered at the start of round `r + 1`. The simulator
//! enforces that messages travel only along edges of the communication graph and keeps
//! a full account of rounds, messages, and message sizes in bits, which are exactly the
//! quantities bounded by Theorem 2 and Corollary 3.

use std::collections::HashMap;

use sgs_graph::{Adjacency, Graph, NodeId};

/// Something that can report its own size in bits, for communication accounting.
///
/// The paper's bounds talk about messages of `O(log n)` bits; implementations should
/// count the number of vertex ids / weights / flags they carry.
pub trait MessageSize {
    /// Size of the message in bits.
    fn size_bits(&self) -> usize;
}

/// Communication metrics accumulated by a [`SyncNetwork`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkMetrics {
    /// Number of synchronous rounds executed.
    pub rounds: usize,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of bits delivered.
    pub total_bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
}

impl NetworkMetrics {
    /// Merges another metrics record into this one (rounds add up; used when an
    /// algorithm is composed of phases executed on separate networks).
    pub fn absorb(&mut self, other: &NetworkMetrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
    }
}

/// A synchronous network over the vertices of a graph.
///
/// `M` is the message type. Vertices address each other by [`NodeId`]; sending to a
/// non-neighbor panics, which keeps algorithm implementations honest about the model.
#[derive(Debug)]
pub struct SyncNetwork<M> {
    adjacency: Adjacency,
    n: usize,
    /// Outboxes for the current round, keyed by recipient.
    outboxes: Vec<Vec<(NodeId, M)>>,
    /// Inboxes delivered at the start of the current round.
    inboxes: Vec<Vec<(NodeId, M)>>,
    /// Fast neighbor lookup for the send-only-to-neighbors check.
    neighbor_sets: Vec<HashMap<NodeId, ()>>,
    metrics: NetworkMetrics,
}

impl<M: MessageSize + Clone> SyncNetwork<M> {
    /// Builds a network whose topology is the given graph.
    pub fn new(g: &Graph) -> Self {
        let adjacency = g.adjacency();
        let n = g.n();
        let neighbor_sets = (0..n)
            .map(|v| {
                adjacency
                    .neighbors(v)
                    .iter()
                    .map(|nb| (nb.node, ()))
                    .collect::<HashMap<_, _>>()
            })
            .collect();
        SyncNetwork {
            adjacency,
            n,
            outboxes: vec![Vec::new(); n],
            inboxes: vec![Vec::new(); n],
            neighbor_sets,
            metrics: NetworkMetrics::default(),
        }
    }

    /// Number of vertices in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The adjacency view of the communication topology.
    pub fn adjacency(&self) -> &Adjacency {
        &self.adjacency
    }

    /// Queues a message from `from` to its neighbor `to` for delivery next round.
    ///
    /// Panics if `to` is not adjacent to `from` — the CONGEST model only allows
    /// communication along edges.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        assert!(
            self.neighbor_sets[from].contains_key(&to),
            "vertex {from} attempted to send to non-neighbor {to}"
        );
        let bits = msg.size_bits();
        self.metrics.messages += 1;
        self.metrics.total_bits += bits as u64;
        self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
        self.outboxes[to].push((from, msg));
    }

    /// Broadcasts a message from `from` to all of its neighbors.
    pub fn broadcast(&mut self, from: NodeId, msg: M) {
        let neighbors: Vec<NodeId> = self
            .adjacency
            .neighbors(from)
            .iter()
            .map(|nb| nb.node)
            .collect();
        for to in neighbors {
            self.send(from, to, msg.clone());
        }
    }

    /// Ends the round: all queued messages become next round's inboxes.
    pub fn advance_round(&mut self) {
        self.metrics.rounds += 1;
        for v in 0..self.n {
            self.inboxes[v] = std::mem::take(&mut self.outboxes[v]);
        }
    }

    /// Messages delivered to `v` at the start of the current round.
    pub fn inbox(&self, v: NodeId) -> &[(NodeId, M)] {
        &self.inboxes[v]
    }

    /// Drains the inbox of `v` (avoids cloning when the recipient consumes messages).
    pub fn take_inbox(&mut self, v: NodeId) -> Vec<(NodeId, M)> {
        std::mem::take(&mut self.inboxes[v])
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u64);

    impl MessageSize for Ping {
        fn size_bits(&self) -> usize {
            64
        }
    }

    #[test]
    fn messages_are_delivered_next_round() {
        let g = generators::path(3, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.send(0, 1, Ping(7));
        assert!(
            net.inbox(1).is_empty(),
            "not delivered within the same round"
        );
        net.advance_round();
        assert_eq!(net.inbox(1), &[(0, Ping(7))]);
        net.advance_round();
        assert!(
            net.inbox(1).is_empty(),
            "inbox is cleared after the next round"
        );
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = generators::path(3, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.send(0, 2, Ping(1));
    }

    #[test]
    fn metrics_count_messages_rounds_and_bits() {
        let g = generators::star(5, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.broadcast(0, Ping(1));
        net.advance_round();
        for v in 1..5 {
            assert_eq!(net.inbox(v).len(), 1);
            net.send(v, 0, Ping(2));
        }
        net.advance_round();
        assert_eq!(net.inbox(0).len(), 4);
        let m = net.metrics();
        assert_eq!(m.rounds, 2);
        assert_eq!(m.messages, 8);
        assert_eq!(m.total_bits, 8 * 64);
        assert_eq!(m.max_message_bits, 64);
    }

    #[test]
    fn take_inbox_empties_it() {
        let g = generators::path(2, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.send(1, 0, Ping(3));
        net.advance_round();
        let msgs = net.take_inbox(0);
        assert_eq!(msgs.len(), 1);
        assert!(net.inbox(0).is_empty());
    }

    #[test]
    fn metrics_absorb_adds_up() {
        let mut a = NetworkMetrics {
            rounds: 2,
            messages: 10,
            total_bits: 640,
            max_message_bits: 64,
        };
        let b = NetworkMetrics {
            rounds: 3,
            messages: 5,
            total_bits: 100,
            max_message_bits: 20,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 15);
        assert_eq!(a.total_bits, 740);
        assert_eq!(a.max_message_bits, 64);
    }
}
