//! The synchronous message-passing simulator.
//!
//! The simulator models the synchronous distributed (CONGEST-style) model used by the
//! paper: in every round each vertex may send one message along each incident edge;
//! messages sent in round `r` are delivered at the start of round `r + 1`. The simulator
//! enforces that messages travel only along edges of the communication graph and keeps
//! a full account of rounds, messages, and message sizes in bits, which are exactly the
//! quantities bounded by Theorem 2 and Corollary 3.
//!
//! # Engine design (allocation-free hot path)
//!
//! The mailboxes are flat CSR buffers, not `Vec<Vec>` queues:
//!
//! * **Staging**: every send appends one `(from, to, msg)` record to a single reusable
//!   buffer; no per-vertex queue is touched.
//! * **Delivery** ([`SyncNetwork::advance_round`]): one stable counting sort by
//!   recipient turns the staged buffer into the next round's inbox CSR — per-vertex
//!   offset ranges over one flat message array. Communication metrics are counted
//!   here, *at delivery*: a message staged but never advanced is a protocol bug, not
//!   traffic, and [`SyncNetwork::metrics`] debug-asserts that nothing is left staged.
//! * **Topology**: the neighbor check behind [`SyncNetwork::send`] is a binary search
//!   in a sorted flat adjacency (CSR of neighbor ids), replacing per-vertex hash sets.
//! * **Vertex programs** ([`SyncNetwork::par_step`]): one round of per-vertex execution
//!   runs under rayon in contiguous vertex blocks cut by the density-aware
//!   [`BlockPartition`](sgs_spanner::partition) (degree-load balanced, a few blocks
//!   per thread, 64-vertex floor — the same partitioner the shared-memory engine
//!   uses). Each block stages its emissions into a private buffer and the buffers are
//!   concatenated in block order; blocks are ascending contiguous ranges, so the
//!   staged stream is in sender order for *any* partition — and because the delivery
//!   sort is stable, every inbox comes out sorted by `(recipient, sender)`. Fixed-seed
//!   protocol runs (outputs and `NetworkMetrics`) are therefore bitwise identical
//!   across thread counts even though the partition itself may vary with the pool
//!   width (`tests/parallelism.rs`).

use rayon::prelude::*;

use sgs_graph::{Graph, NodeId};
use sgs_spanner::BlockPartition;

use crate::faults::{FaultLayer, FaultPlan};

/// Something that can report its own size in bits, for communication accounting.
///
/// The paper's bounds talk about messages of `O(log n)` bits; implementations should
/// count the number of vertex ids / weights / flags they carry.
pub trait MessageSize {
    /// Size of the message in bits.
    fn size_bits(&self) -> usize;
}

/// Communication metrics accumulated by a [`SyncNetwork`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkMetrics {
    /// Number of synchronous rounds executed.
    pub rounds: usize,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of bits delivered.
    pub total_bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: usize,
    /// Messages destroyed by the fault layer (loss coins, failed links, crashed
    /// endpoints). Not counted in `messages`/`total_bits` — those bill delivery.
    pub dropped: u64,
    /// Extra copies injected by the fault layer's duplication coins (each copy is
    /// also billed as a delivered message).
    pub duplicated: u64,
    /// Messages the fault layer deferred to a later round (billed on actual delivery).
    pub delayed: u64,
    /// Data retransmissions issued by the reliable-delivery layer.
    pub retransmits: u64,
    /// Acknowledgement messages processed by the reliable-delivery layer.
    pub acks: u64,
    /// Duplicate data messages suppressed by the reliable layer's sequence numbers.
    pub dup_suppressed: u64,
    /// Messages abandoned after the reliable layer's retry budget was exhausted.
    pub abandoned: u64,
}

impl NetworkMetrics {
    /// Merges another metrics record into this one (rounds add up; used when an
    /// algorithm is composed of phases executed on separate networks).
    pub fn absorb(&mut self, other: &NetworkMetrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.retransmits += other.retransmits;
        self.acks += other.acks;
        self.dup_suppressed += other.dup_suppressed;
        self.abandoned += other.abandoned;
    }
}

/// An inbox entry: the sender and the message.
pub type Envelope<M> = (NodeId, M);

/// A staged message record: `(from, to, msg)`.
pub(crate) type Staged<M> = (u32, u32, M);

/// A synchronous network over the vertices of a graph.
///
/// `M` is the message type. Vertices address each other by [`NodeId`]; sending to a
/// non-neighbor panics, which keeps algorithm implementations honest about the model.
#[derive(Debug)]
pub struct SyncNetwork<M> {
    n: usize,
    /// Sorted flat adjacency: the neighbors of `v` are
    /// `nbr_ids[nbr_offsets[v]..nbr_offsets[v + 1]]`, ascending.
    nbr_offsets: Vec<u32>,
    nbr_ids: Vec<u32>,
    /// Messages staged for the next delivery, in emission order: `(from, to, msg)`.
    staged: Vec<Staged<M>>,
    /// Current round's inbox CSR: the inbox of `v` is
    /// `inbox_buf[inbox_offsets[v]..inbox_offsets[v + 1]]`, sorted by sender whenever
    /// the staging order was sender-ordered (always true for `par_step` rounds).
    inbox_offsets: Vec<u32>,
    inbox_buf: Vec<Envelope<M>>,
    /// Delivery scratch: per-recipient write cursors and the sort permutation.
    cursor: Vec<u32>,
    perm: Vec<u32>,
    /// Cached [`BlockPartition`] for [`SyncNetwork::par_step`], keyed by the pool
    /// width that built it (protocols run many rounds on one fixed topology).
    part_cache: Option<(usize, BlockPartition)>,
    /// Deterministic fault injection, if any. `None` keeps `advance_round` on the
    /// exact pre-fault code path (zero cost, byte-identical byte stream).
    faults: Option<FaultLayer<M>>,
    metrics: NetworkMetrics,
}

impl<M: MessageSize + Clone> SyncNetwork<M> {
    /// Builds a network whose topology is the given graph.
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let mut nbr_offsets = vec![0u32; n + 1];
        for e in g.edges() {
            nbr_offsets[e.u + 1] += 1;
            nbr_offsets[e.v + 1] += 1;
        }
        for v in 0..n {
            nbr_offsets[v + 1] += nbr_offsets[v];
        }
        let mut cursor: Vec<u32> = nbr_offsets.clone();
        let mut nbr_ids = vec![0u32; 2 * g.m()];
        for e in g.edges() {
            nbr_ids[cursor[e.u] as usize] = e.v as u32;
            cursor[e.u] += 1;
            nbr_ids[cursor[e.v] as usize] = e.u as u32;
            cursor[e.v] += 1;
        }
        for v in 0..n {
            nbr_ids[nbr_offsets[v] as usize..nbr_offsets[v + 1] as usize].sort_unstable();
        }
        SyncNetwork {
            n,
            nbr_offsets,
            nbr_ids,
            staged: Vec::new(),
            inbox_offsets: vec![0; n + 1],
            inbox_buf: Vec::new(),
            cursor,
            perm: Vec::new(),
            part_cache: None,
            faults: None,
            metrics: NetworkMetrics::default(),
        }
    }

    /// Builds a network with a deterministic fault plan installed.
    ///
    /// A [`FaultPlan::none()`] plan is not installed at all, so the fault-free path
    /// stays byte-identical to [`SyncNetwork::new`].
    pub fn with_faults(g: &Graph, plan: FaultPlan) -> Self {
        let mut net = Self::new(g);
        if !plan.is_none() {
            net.faults = Some(FaultLayer::new(plan));
        }
        net
    }

    /// Number of vertices in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The delivery round most recently completed (0 before the first
    /// [`SyncNetwork::advance_round`]).
    #[inline]
    pub fn round(&self) -> u64 {
        self.metrics.rounds as u64
    }

    /// Whether `v` is inside a crash window of the installed fault plan at the
    /// current round (always `false` without faults).
    #[inline]
    pub fn is_down(&self, v: NodeId) -> bool {
        match &self.faults {
            Some(fl) => fl.plan().is_down(v, self.round()),
            None => false,
        }
    }

    /// Directed-link index of the edge `from -> to` in the flat adjacency: the slot
    /// of `to` inside `from`'s sorted neighbor row. Used to key per-link state
    /// (sequence numbers, fault coins) without hashing.
    #[inline]
    pub(crate) fn link_index(&self, from: u32, to: u32) -> usize {
        let row =
            self.nbr_offsets[from as usize] as usize..self.nbr_offsets[from as usize + 1] as usize;
        let at = self.nbr_ids[row.clone()]
            .binary_search(&to)
            .expect("link_index along a non-edge");
        row.start + at
    }

    /// Number of directed links (2m).
    #[inline]
    pub(crate) fn num_links(&self) -> usize {
        self.nbr_ids.len()
    }

    /// True while messages are still staged or held back in the fault layer's delay
    /// queue — i.e. another `advance_round` could deliver something.
    pub(crate) fn in_flight(&self) -> bool {
        !self.staged.is_empty() || self.faults.as_ref().is_some_and(|fl| fl.has_delayed())
    }

    /// Mutable metrics access for the reliable-delivery layer's ledger columns.
    pub(crate) fn metrics_mut(&mut self) -> &mut NetworkMetrics {
        &mut self.metrics
    }

    /// Visits every staged record in staging order together with its directed-link
    /// index, allowing in-place rewrites (the reliable layer stamps sequence numbers
    /// here, after a `par_step` sweep and before `advance_round`).
    pub(crate) fn for_each_staged_with_link(&mut self, mut f: impl FnMut(u32, u32, usize, &mut M)) {
        let (offsets, ids, staged) = (&self.nbr_offsets, &self.nbr_ids, &mut self.staged);
        for (from, to, msg) in staged.iter_mut() {
            let row = offsets[*from as usize] as usize..offsets[*from as usize + 1] as usize;
            let at = ids[row.clone()]
                .binary_search(to)
                .expect("staged message along a non-edge");
            f(*from, *to, row.start + at, msg);
        }
    }

    /// The neighbors of `v` in the communication topology, ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        &self.nbr_ids[self.nbr_offsets[v] as usize..self.nbr_offsets[v + 1] as usize]
    }

    /// Queues a message from `from` to its neighbor `to` for delivery next round.
    ///
    /// Panics if `to` is not adjacent to `from` — the CONGEST model only allows
    /// communication along edges.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        assert!(
            self.neighbors(from).binary_search(&(to as u32)).is_ok(),
            "vertex {from} attempted to send to non-neighbor {to}"
        );
        self.staged.push((from as u32, to as u32, msg));
    }

    /// Broadcasts a message from `from` to all of its neighbors (ascending id order).
    pub fn broadcast(&mut self, from: NodeId, msg: M) {
        let row = self.nbr_offsets[from] as usize..self.nbr_offsets[from + 1] as usize;
        for i in row {
            let to = self.nbr_ids[i];
            self.staged.push((from as u32, to, msg.clone()));
        }
    }

    /// Ends the round: all staged messages become next round's inboxes.
    ///
    /// Delivery is a stable counting sort by recipient over the staging buffer, so
    /// each inbox preserves the staging order among its messages; combined with the
    /// sender-ordered staging of [`SyncNetwork::par_step`] this yields inboxes sorted
    /// by `(recipient, sender)`. Metrics are counted here — at delivery, not at send —
    /// so only traffic that actually reaches a vertex is billed.
    pub fn advance_round(&mut self) {
        // Snapshot the ledger so the per-round trace event can carry deltas
        // (messages/bits/fault columns for *this* round, not running totals).
        let before = sgs_obs::enabled().then(|| self.metrics.clone());
        self.metrics.rounds += 1;
        if self.faults.is_some() {
            // Fault path: run every staged (and newly-due delayed) message through the
            // plan's coins, then deliver the survivors through the same stable sort.
            let round = self.metrics.rounds as u64;
            let mut eff = {
                let Self {
                    faults,
                    staged,
                    nbr_offsets,
                    nbr_ids,
                    metrics,
                    ..
                } = self;
                let fl = faults.as_mut().expect("checked above");
                fl.apply(round, staged, metrics, |from, to| {
                    let row = nbr_offsets[from as usize] as usize
                        ..nbr_offsets[from as usize + 1] as usize;
                    let at = nbr_ids[row.clone()]
                        .binary_search(&to)
                        .expect("staged message along a non-edge");
                    row.start + at
                })
            };
            self.deliver(&eff);
            eff.clear();
            self.faults
                .as_mut()
                .expect("checked above")
                .restore_scratch(eff);
        } else {
            let staged = std::mem::take(&mut self.staged);
            self.deliver(&staged);
            self.staged = staged;
            self.staged.clear();
        }
        if let Some(before) = before {
            sgs_obs::point!(
                "congest.round",
                round = self.metrics.rounds,
                messages = self.metrics.messages - before.messages,
                bits = self.metrics.total_bits - before.total_bits,
                dropped = self.metrics.dropped - before.dropped,
                duplicated = self.metrics.duplicated - before.duplicated,
                delayed = self.metrics.delayed - before.delayed,
                retransmits = self.metrics.retransmits - before.retransmits,
                acks = self.metrics.acks - before.acks,
                dup_suppressed = self.metrics.dup_suppressed - before.dup_suppressed,
                abandoned = self.metrics.abandoned - before.abandoned,
            );
        }
    }

    /// Stable counting sort of `records` by recipient into the inbox CSR, billing
    /// metrics per delivered message.
    fn deliver(&mut self, records: &[Staged<M>]) {
        let n = self.n;
        let total = records.len();
        self.inbox_offsets.clear();
        self.inbox_offsets.resize(n + 1, 0);
        for &(_, to, _) in records {
            self.inbox_offsets[to as usize + 1] += 1;
        }
        for v in 0..n {
            self.inbox_offsets[v + 1] += self.inbox_offsets[v];
        }
        // `perm[j]` = record index delivered at position `j` (stable counting
        // placement).
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.inbox_offsets[..n]);
        self.perm.clear();
        self.perm.resize(total, 0);
        for (i, &(_, to, _)) in records.iter().enumerate() {
            let c = &mut self.cursor[to as usize];
            self.perm[*c as usize] = i as u32;
            *c += 1;
        }
        // Gather through the permutation with a clone per message. Messages in this
        // workspace are Copy-sized enums, so the clone is a memcpy and the gather's
        // sequential writes beat an in-place cycle-walk permutation (tried: ~10%
        // slower end-to-end on er(2000,60) due to the swap loop's locality). A future
        // heap-owning message type would prefer a move-based delivery.
        self.inbox_buf.clear();
        self.inbox_buf.reserve(total);
        for j in 0..total {
            let (from, _, ref msg) = records[self.perm[j] as usize];
            let bits = msg.size_bits();
            self.metrics.messages += 1;
            self.metrics.total_bits += bits as u64;
            self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
            self.inbox_buf.push((from as usize, msg.clone()));
        }
    }

    /// Messages delivered to `v` at the start of the current round.
    #[inline]
    pub fn inbox(&self, v: NodeId) -> &[Envelope<M>] {
        &self.inbox_buf[self.inbox_offsets[v] as usize..self.inbox_offsets[v + 1] as usize]
    }

    /// The metrics accumulated so far.
    ///
    /// Debug-asserts that no message is still staged: metrics are meant to be read at
    /// a protocol boundary, after the final [`SyncNetwork::advance_round`], and a
    /// message queued after the final round would otherwise silently vanish without
    /// being either delivered or billed.
    pub fn metrics(&self) -> &NetworkMetrics {
        debug_assert!(
            self.staged.is_empty(),
            "{} message(s) staged but never delivered when metrics were read",
            self.staged.len()
        );
        &self.metrics
    }

    /// Runs one parallel vertex sweep of a vertex program.
    ///
    /// `step(scratch, block_out, v, inbox, outbox)` is invoked for every vertex: it may
    /// read the current round's inbox, emit messages through the outbox, and record
    /// per-block results in `block_out` (the per-block payloads are returned in block
    /// order). Vertices are processed under rayon in contiguous blocks cut by the
    /// density-aware [`BlockPartition`] (degree-balanced, a few blocks per thread,
    /// 64-vertex floor; cached per pool width since the topology is fixed); `scratch`
    /// builds one reusable per-worker scratch value (the stamped-slot pattern of the
    /// shared-memory engine). Emissions are staged in vertex order for any partition
    /// and any worker interleaving, so a subsequent [`SyncNetwork::advance_round`]
    /// delivers inboxes sorted by `(recipient, sender)` and the whole round is
    /// deterministic in the thread count.
    ///
    /// Note that this only *stages* messages — the caller decides when the round ends
    /// by calling [`SyncNetwork::advance_round`], which keeps multi-sweep rounds (e.g.
    /// "process the previous inbox, then emit") expressible.
    pub fn par_step<T, B, F>(&mut self, scratch: impl Fn() -> T + Sync, step: F) -> Vec<B>
    where
        M: Send + Sync,
        T: Send,
        B: Send + Default,
        F: Fn(&mut T, &mut B, NodeId, &[Envelope<M>], &mut VertexOutbox<'_, M>) + Sync,
    {
        let n = self.n;
        let threads = rayon::current_num_threads();
        if self.part_cache.as_ref().map(|&(t, _)| t) != Some(threads) {
            let nbr_offsets = &self.nbr_offsets;
            let part = BlockPartition::adaptive(n, threads, |v| {
                (nbr_offsets[v + 1] - nbr_offsets[v]) as usize
            });
            self.part_cache = Some((threads, part));
        }
        let out: Vec<(Vec<Staged<M>>, B)> = {
            let part = &self.part_cache.as_ref().expect("cached above").1;
            let n_blocks = part.len();
            let inbox_offsets = &self.inbox_offsets;
            let inbox_buf = &self.inbox_buf;
            let nbr_offsets = &self.nbr_offsets;
            let nbr_ids = &self.nbr_ids;
            // A vertex inside a crash window neither executes nor emits this sweep
            // (omission model: local state is preserved across the window).
            let plan = self.faults.as_ref().map(|fl| fl.plan());
            let down_round = self.metrics.rounds as u64;
            (0..n_blocks)
                .into_par_iter()
                .map_init(&scratch, |sc, block| {
                    let mut msgs: Vec<Staged<M>> = Vec::new();
                    let mut payload = B::default();
                    for v in part.block(block) {
                        if let Some(p) = plan {
                            if p.is_down(v, down_round) {
                                continue;
                            }
                        }
                        let inbox =
                            &inbox_buf[inbox_offsets[v] as usize..inbox_offsets[v + 1] as usize];
                        let neighbors =
                            &nbr_ids[nbr_offsets[v] as usize..nbr_offsets[v + 1] as usize];
                        let mut outbox = VertexOutbox {
                            from: v as u32,
                            neighbors,
                            buf: &mut msgs,
                        };
                        step(sc, &mut payload, v, inbox, &mut outbox);
                    }
                    (msgs, payload)
                })
                .collect()
        };
        let mut payloads = Vec::with_capacity(out.len());
        for (msgs, payload) in out {
            self.staged.extend(msgs);
            payloads.push(payload);
        }
        payloads
    }
}

/// The per-vertex message sink handed to a [`SyncNetwork::par_step`] vertex program.
///
/// Enforces the same edges-only discipline as [`SyncNetwork::send`].
pub struct VertexOutbox<'a, M> {
    from: u32,
    neighbors: &'a [u32],
    buf: &'a mut Vec<Staged<M>>,
}

impl<'a, M> VertexOutbox<'a, M> {
    /// Builds an outbox over an externally owned staging buffer — used by the
    /// reliable-delivery layer to present a protocol-typed outbox while the real
    /// transport stages wrapped messages underneath.
    pub(crate) fn over(from: u32, neighbors: &'a [u32], buf: &'a mut Vec<Staged<M>>) -> Self {
        VertexOutbox {
            from,
            neighbors,
            buf,
        }
    }

    /// The sorted neighbor row this outbox enforces.
    pub(crate) fn neighbor_row(&self) -> &'a [u32] {
        self.neighbors
    }

    /// Queues a message from the current vertex to its neighbor `to`.
    ///
    /// Panics if `to` is not adjacent — the CONGEST model only allows communication
    /// along edges.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&(to as u32)).is_ok(),
            "vertex {} attempted to send to non-neighbor {to}",
            self.from
        );
        self.buf.push((self.from, to as u32, msg));
    }

    /// Broadcasts a message to every neighbor (ascending id order).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for &to in self.neighbors {
            self.buf.push((self.from, to, msg.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u64);

    impl MessageSize for Ping {
        fn size_bits(&self) -> usize {
            64
        }
    }

    #[test]
    fn messages_are_delivered_next_round() {
        let g = generators::path(3, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.send(0, 1, Ping(7));
        assert!(
            net.inbox(1).is_empty(),
            "not delivered within the same round"
        );
        net.advance_round();
        assert_eq!(net.inbox(1), &[(0, Ping(7))]);
        net.advance_round();
        assert!(
            net.inbox(1).is_empty(),
            "inbox is cleared after the next round"
        );
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = generators::path(3, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.send(0, 2, Ping(1));
    }

    #[test]
    fn metrics_count_messages_rounds_and_bits() {
        let g = generators::star(5, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.broadcast(0, Ping(1));
        net.advance_round();
        for v in 1..5 {
            assert_eq!(net.inbox(v).len(), 1);
            net.send(v, 0, Ping(2));
        }
        net.advance_round();
        assert_eq!(net.inbox(0).len(), 4);
        let m = net.metrics();
        assert_eq!(m.rounds, 2);
        assert_eq!(m.messages, 8);
        assert_eq!(m.total_bits, 8 * 64);
        assert_eq!(m.max_message_bits, 64);
    }

    #[test]
    fn metrics_are_counted_at_delivery_not_at_send() {
        let g = generators::path(2, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.advance_round(); // empty round, so metrics can be read safely below
        assert_eq!(net.metrics().messages, 0);
        net.send(0, 1, Ping(1));
        net.advance_round();
        assert_eq!(net.metrics().messages, 1);
        assert_eq!(net.metrics().total_bits, 64);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "staged but never delivered")]
    fn reading_metrics_with_undelivered_messages_panics() {
        let g = generators::path(2, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.send(0, 1, Ping(1));
        let _ = net.metrics();
    }

    #[test]
    fn inboxes_are_sorted_by_recipient_then_sender() {
        // Manual sends in deliberately descending sender order: the delivery sort is
        // stable in *staging* order, so a par_step sweep (which stages in vertex
        // order) is what yields (recipient, sender); emulate it here by staging
        // through par_step.
        let g = generators::complete(5, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.par_step(
            || (),
            |_, _: &mut (), v, _inbox, out| {
                out.broadcast(Ping(v as u64));
            },
        );
        net.advance_round();
        for v in 0..5 {
            let senders: Vec<NodeId> = net.inbox(v).iter().map(|&(from, _)| from).collect();
            let mut sorted = senders.clone();
            sorted.sort_unstable();
            assert_eq!(senders, sorted, "inbox of {v} not sorted by sender");
            assert_eq!(senders.len(), 4);
        }
    }

    #[test]
    fn par_step_reads_inboxes_and_reports_payloads() {
        let g = generators::path(4, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::new(&g);
        net.par_step(
            || (),
            |_, _: &mut (), v, _inbox, out| {
                if v + 1 < 4 {
                    out.send(v + 1, Ping(v as u64 * 10));
                }
            },
        );
        net.advance_round();
        // Each vertex sums what it received; payloads come back per block.
        let sums: Vec<u64> = net.par_step(
            || (),
            |_, acc: &mut u64, _v, inbox, _out| {
                *acc += inbox.iter().map(|(_, p)| p.0).sum::<u64>();
            },
        );
        assert_eq!(sums.iter().sum::<u64>(), 30);
        net.advance_round();
        assert_eq!(net.metrics().messages, 3);
    }

    #[test]
    fn metrics_absorb_adds_up() {
        let mut a = NetworkMetrics {
            rounds: 2,
            messages: 10,
            total_bits: 640,
            max_message_bits: 64,
            ..NetworkMetrics::default()
        };
        let b = NetworkMetrics {
            rounds: 3,
            messages: 5,
            total_bits: 100,
            max_message_bits: 20,
            retransmits: 2,
            dropped: 4,
            ..NetworkMetrics::default()
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 15);
        assert_eq!(a.total_bits, 740);
        assert_eq!(a.max_message_bits, 64);
        assert_eq!(a.retransmits, 2);
        assert_eq!(a.dropped, 4);
    }
}
