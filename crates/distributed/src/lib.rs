//! # sgs-distributed
//!
//! A synchronous message-passing (CONGEST-style) simulator and the distributed versions
//! of the paper's algorithms.
//!
//! The paper's distributed claims (Theorem 2, Corollary 3, and the distributed half of
//! Theorems 4 and 5) are stated in the synchronous distributed model: computation
//! proceeds in lock-step rounds, in each round every vertex may send one message of
//! `O(log n)` bits along each incident edge, and the measures of interest are the number
//! of rounds and the total communication. Reproducing those measures does not require a
//! physical cluster — it requires an execution environment that *enforces* the
//! communication discipline and *counts* rounds, messages and bits. That is what
//! [`network::SyncNetwork`] provides.
//!
//! * [`network`] — the simulator: flat CSR mailboxes, lock-step round execution with a
//!   rayon-parallel vertex-program step API ([`network::SyncNetwork::par_step`]), and
//!   [`network::NetworkMetrics`] accounting (counted at delivery).
//! * [`spanner`] — the distributed Baswana–Sen spanner (Theorem 2): cluster sampling is
//!   propagated along cluster trees, so an iteration with cluster radius `i` takes
//!   `O(i)` rounds and the whole construction `O(log² n)` rounds with `O(m log n)`
//!   messages of `O(log n)` bits.
//! * [`sparsify`] — the distributed `PARALLELSAMPLE` / `PARALLELSPARSIFY` (Corollary 3 +
//!   Theorem 5): bundles are built by iterating the distributed spanner on residual
//!   edges; the uniform sampling step is purely local and costs no communication.
//! * [`faults`] — deterministic fault injection ([`faults::FaultPlan`]: seeded message
//!   loss/duplication/delay coins, link outages, vertex crash windows) and a reliable
//!   ack/retransmit delivery layer ([`faults::ReliableNet`]) with a bounded retry
//!   budget, so the degradation of the construction under unreliable networks is
//!   measurable and bit-for-bit replayable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod faults;
pub mod network;
pub mod spanner;
pub mod sparsify;

pub use faults::{FaultConfig, FaultPlan, ReliabilityConfig, ReliableNet};
pub use network::{NetworkMetrics, SyncNetwork};
pub use spanner::{distributed_spanner, DistSpannerConfig, DistSpannerResult};
pub use sparsify::{
    distributed_sample, distributed_sample_with_faults, distributed_sparsify,
    distributed_sparsify_with_faults, DistSparsifyResult,
};
