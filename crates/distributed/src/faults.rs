//! Deterministic fault injection and reliable delivery for the CONGEST simulator.
//!
//! Real deployments violate the synchronous model's delivery guarantee first: messages
//! are lost, duplicated, delayed, links flap, and nodes crash. This module makes those
//! failures *first-class and replayable*:
//!
//! * [`FaultPlan`] — a seeded description of the fault process: i.i.d. message
//!   drop/duplication/bounded-delay probabilities, scheduled per-link failure windows,
//!   and vertex crash–restart windows (omission model: a crashed vertex neither
//!   executes, sends, nor receives during its window, but keeps its local state).
//! * [`FaultLayer`] — the transport hook applied inside
//!   [`SyncNetwork::advance_round`]'s delivery sort. Every fault coin is keyed
//!   splitmix64-style on `(round, from, to, seq)` — the same counter-mix discipline as
//!   `sgs_core::edge_coin` — so outcomes depend only on the message's position in the
//!   traffic stream, never on scheduling: fixed-seed runs are bitwise identical across
//!   thread counts, and [`FaultPlan::none()`] leaves the byte stream and
//!   [`NetworkMetrics`] untouched.
//! * [`ReliableNet`] — a reliable-delivery protocol layered over the faulty transport:
//!   per-directed-link sequence numbers, positive acks, round-based
//!   timeout/retransmit with exponential backoff and a bounded retry budget, and
//!   duplicate suppression. One *logical* round (`advance_round`) runs as many
//!   transport sub-rounds as needed to either deliver or abandon every staged
//!   message, so a protocol built on top sees a lossless (if slower) network until
//!   the retry budget is exhausted. Retransmits, acks, drops, and suppressed
//!   duplicates are ledgered as [`NetworkMetrics`] columns.

use std::collections::HashMap;

use sgs_graph::{Graph, NodeId};

use crate::network::{Envelope, MessageSize, NetworkMetrics, Staged, SyncNetwork, VertexOutbox};

/// splitmix64 finalizer — the same mixer behind `sgs_core::edge_coin`.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Raw 64 deterministic bits for the fault coin keyed on `(round, from, to, seq)`.
///
/// The key is a pure stream position: the `seq`-th message staged on the directed link
/// `from -> to` for delivery at `round`. No scheduling state enters the key, so the
/// coin is bitwise identical across thread counts and replayable from the seed alone.
#[inline]
pub fn fault_bits(seed: u64, round: u64, from: u32, to: u32, seq: u64) -> u64 {
    let mut h = splitmix64(seed);
    h = splitmix64(h ^ round);
    h = splitmix64(h ^ (((from as u64) << 32) | to as u64));
    splitmix64(h ^ seq)
}

/// A uniform coin in `[0, 1)` keyed on `(round, from, to, seq)` — see [`fault_bits`].
#[inline]
pub fn fault_coin(seed: u64, round: u64, from: u32, to: u32, seq: u64) -> f64 {
    (fault_bits(seed, round, from, to, seq) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Domain-separation salts so the drop/duplication/delay coins of one message are
/// independent draws.
const DROP_SALT: u64 = 0xD509_0000_0000_0001;
const DUP_SALT: u64 = 0xD0B1_0000_0000_0002;
const DELAY_SALT: u64 = 0xDE1A_0000_0000_0003;
const DELAY_MAG_SALT: u64 = 0xDE1A_0000_0000_0004;

/// A scheduled bidirectional link outage: messages on `{u, v}` (either direction) are
/// destroyed when their delivery round falls in `[from_round, until_round)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFailure {
    /// One endpoint of the failed link.
    pub u: NodeId,
    /// The other endpoint of the failed link.
    pub v: NodeId,
    /// First delivery round (inclusive) at which the link is down.
    pub from_round: u64,
    /// First delivery round at which the link is healed again (exclusive bound).
    pub until_round: u64,
}

/// A vertex crash–restart window: during `[from_round, until_round)` the vertex does
/// not execute vertex programs, its sends are destroyed, and messages addressed to it
/// are destroyed. Local state survives the window (omission-failure model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed vertex.
    pub vertex: NodeId,
    /// First round (inclusive) of the outage.
    pub from_round: u64,
    /// First round after the restart (exclusive bound).
    pub until_round: u64,
}

/// A seeded, deterministic description of the fault process.
///
/// `FaultPlan::none()` (also `Default`) injects nothing and is never installed as a
/// transport layer at all, so the fault-free path stays byte-identical to a network
/// built without faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault coin ([`fault_coin`]).
    pub seed: u64,
    /// Per-message i.i.d. loss probability.
    pub drop_prob: f64,
    /// Per-message i.i.d. duplication probability (one extra copy, same round).
    pub dup_prob: f64,
    /// Per-message i.i.d. delay probability.
    pub delay_prob: f64,
    /// Upper bound (inclusive) on the extra rounds a delayed message waits; the
    /// actual delay is uniform in `1..=max_delay`, drawn deterministically.
    pub max_delay: u32,
    /// Scheduled link outages.
    pub link_failures: Vec<LinkFailure>,
    /// Scheduled vertex crash windows.
    pub crashes: Vec<CrashWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead (the layer is not installed).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 2,
            link_failures: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Whether this plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.delay_prob == 0.0
            && self.link_failures.is_empty()
            && self.crashes.is_empty()
    }

    /// The classic benchmark adversary: i.i.d. message loss with probability `p`.
    pub fn iid_loss(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            drop_prob: p,
            ..Self::none()
        }
    }

    /// Replaces the coin seed (used to derive independent per-run plans).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the i.i.d. duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Sets the i.i.d. delay probability and the delay bound in rounds.
    pub fn with_delay(mut self, p: f64, max_delay: u32) -> Self {
        self.delay_prob = p;
        self.max_delay = max_delay.max(1);
        self
    }

    /// Schedules a bidirectional outage of edge `{u, v}` over `[from_round, until_round)`.
    pub fn with_link_failure(
        mut self,
        u: NodeId,
        v: NodeId,
        from_round: u64,
        until_round: u64,
    ) -> Self {
        self.link_failures.push(LinkFailure {
            u,
            v,
            from_round,
            until_round,
        });
        self
    }

    /// Schedules a crash–restart window for `vertex` over `[from_round, until_round)`.
    pub fn with_crash(mut self, vertex: NodeId, from_round: u64, until_round: u64) -> Self {
        self.crashes.push(CrashWindow {
            vertex,
            from_round,
            until_round,
        });
        self
    }

    /// Whether `v` is inside a crash window at `round`.
    #[inline]
    pub fn is_down(&self, v: NodeId, round: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.vertex == v && c.from_round <= round && round < c.until_round)
    }

    /// Whether the link `{u, v}` is inside an outage window at `round`.
    #[inline]
    pub fn link_failed(&self, u: u32, v: u32, round: u64) -> bool {
        self.link_failures.iter().any(|lf| {
            ((lf.u == u as usize && lf.v == v as usize)
                || (lf.u == v as usize && lf.v == u as usize))
                && lf.from_round <= round
                && round < lf.until_round
        })
    }
}

/// The transport fault hook owned by a [`SyncNetwork`] built with
/// [`SyncNetwork::with_faults`]. Applies the plan's coins to every staged message at
/// delivery time and keeps the bounded-delay queue.
#[derive(Debug)]
pub(crate) struct FaultLayer<M> {
    plan: FaultPlan,
    /// Per-directed-link message counters — the `seq` half of the coin key. Every
    /// staged message consumes one position whatever its fate, so one message's
    /// outcome never shifts another's coins.
    link_seq: Vec<u64>,
    /// Held-back messages: `(due_round, from, to, msg)`, in injection order.
    delayed: Vec<(u64, u32, u32, M)>,
    delayed_scratch: Vec<(u64, u32, u32, M)>,
    /// Reusable effective-delivery buffer returned by `apply`.
    eff: Vec<Staged<M>>,
}

impl<M: Clone> FaultLayer<M> {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultLayer {
            plan,
            link_seq: Vec::new(),
            delayed: Vec::new(),
            delayed_scratch: Vec::new(),
            eff: Vec::new(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn has_delayed(&self) -> bool {
        !self.delayed.is_empty()
    }

    /// Returns the effective-delivery scratch buffer after the caller is done with it.
    pub(crate) fn restore_scratch(&mut self, eff: Vec<Staged<M>>) {
        self.eff = eff;
    }

    /// Runs every staged message (and newly-due delayed message) through the plan for
    /// delivery at `round`, returning the list that actually gets delivered.
    /// `link_ix` maps a directed edge to its flat-adjacency slot for the `seq`
    /// counters.
    pub(crate) fn apply(
        &mut self,
        round: u64,
        staged: &mut Vec<Staged<M>>,
        metrics: &mut NetworkMetrics,
        link_ix: impl Fn(u32, u32) -> usize,
    ) -> Vec<Staged<M>> {
        let mut eff = std::mem::take(&mut self.eff);
        eff.clear();
        // Due delayed messages deliver first, in injection order. Their coins were
        // consumed when first staged; only the structural checks re-apply (the link
        // or recipient may have gone down while the message was in flight).
        let mut delayed = std::mem::take(&mut self.delayed);
        let mut keep = std::mem::take(&mut self.delayed_scratch);
        keep.clear();
        for (due, from, to, msg) in delayed.drain(..) {
            if due <= round {
                if self.plan.link_failed(from, to, round) || self.plan.is_down(to as usize, round) {
                    metrics.dropped += 1;
                } else {
                    eff.push((from, to, msg));
                }
            } else {
                keep.push((due, from, to, msg));
            }
        }
        self.delayed_scratch = delayed;
        self.delayed = keep;
        for (from, to, msg) in staged.drain(..) {
            let l = link_ix(from, to);
            if self.link_seq.len() <= l {
                self.link_seq.resize(l + 1, 0);
            }
            let seq = self.link_seq[l];
            self.link_seq[l] += 1;
            // Scheduled omissions: sender down at send time (the previous round),
            // recipient down at delivery time, or the link itself out.
            if self.plan.link_failed(from, to, round)
                || self.plan.is_down(to as usize, round)
                || self.plan.is_down(from as usize, round.saturating_sub(1))
            {
                metrics.dropped += 1;
                continue;
            }
            if self.plan.drop_prob > 0.0
                && fault_coin(self.plan.seed ^ DROP_SALT, round, from, to, seq)
                    < self.plan.drop_prob
            {
                metrics.dropped += 1;
                continue;
            }
            if self.plan.delay_prob > 0.0
                && fault_coin(self.plan.seed ^ DELAY_SALT, round, from, to, seq)
                    < self.plan.delay_prob
            {
                let span = self.plan.max_delay.max(1) as u64;
                let extra =
                    1 + fault_bits(self.plan.seed ^ DELAY_MAG_SALT, round, from, to, seq) % span;
                metrics.delayed += 1;
                self.delayed.push((round + extra, from, to, msg));
                continue;
            }
            if self.plan.dup_prob > 0.0
                && fault_coin(self.plan.seed ^ DUP_SALT, round, from, to, seq) < self.plan.dup_prob
            {
                metrics.duplicated += 1;
                eff.push((from, to, msg.clone()));
            }
            eff.push((from, to, msg));
        }
        eff
    }
}

/// Tuning knobs of the [`ReliableNet`] ack/retransmit protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Sub-rounds without an ack before the first retransmission.
    pub timeout_rounds: u32,
    /// Maximum number of retransmissions per message; once exhausted the message is
    /// abandoned (ledgered in [`NetworkMetrics::abandoned`]) and the protocol above
    /// must degrade gracefully.
    pub retry_budget: u32,
    /// Double the timeout after every retransmission of a message.
    pub backoff: bool,
    /// Hard cap on transport sub-rounds per logical round; on overflow all pending
    /// messages are abandoned and the round drains. A safety net for adversarial
    /// plans, far above anything the default budget can reach.
    pub max_subrounds: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            timeout_rounds: 2,
            retry_budget: 4,
            backoff: true,
            max_subrounds: 512,
        }
    }
}

/// Wire format of the reliable layer: payloads carry a per-link sequence number,
/// acks echo it back.
#[derive(Debug, Clone, PartialEq)]
pub enum Reliable<M> {
    /// A payload message stamped with the sender's per-link sequence number.
    Data {
        /// Per-directed-link sequence number (dense, starting at 0).
        seq: u32,
        /// The wrapped protocol message.
        msg: M,
    },
    /// Acknowledgement echoing the sequence number of a received `Data`.
    Ack {
        /// Sequence number being acknowledged.
        seq: u32,
    },
}

impl<M: MessageSize> MessageSize for Reliable<M> {
    fn size_bits(&self) -> usize {
        match self {
            Reliable::Data { msg, .. } => 32 + msg.size_bits(),
            Reliable::Ack { .. } => 32,
        }
    }
}

/// An in-flight, not-yet-acked data message.
#[derive(Debug)]
struct Pending<M> {
    from: u32,
    to: u32,
    seq: u32,
    msg: M,
    /// Sub-round of the most recent (re)transmission.
    sent_sub: u32,
    retries: u32,
    acked: bool,
}

/// A reliable-delivery network: the same vertex-program API as [`SyncNetwork`], but
/// each logical [`ReliableNet::advance_round`] runs ack/retransmit sub-rounds on the
/// underlying (faulty) transport until every staged message is delivered exactly once
/// or abandoned after the retry budget.
///
/// Determinism: sequence numbers are stamped in staging order (deterministic for
/// `par_step` sweeps), retransmissions and acks are issued in deterministic sweeps,
/// and all fault coins are keyed on stream positions — so fixed-seed runs are
/// bitwise identical across thread counts.
#[derive(Debug)]
pub struct ReliableNet<M> {
    net: SyncNetwork<Reliable<M>>,
    cfg: ReliabilityConfig,
    n: usize,
    /// Next sequence number per directed link.
    next_seq: Vec<u32>,
    /// Sequence numbers received per directed link within the current logical round
    /// (duplicate suppression); cleared via `touched` at round end.
    seen: Vec<Vec<u32>>,
    touched: Vec<u32>,
    pending: Vec<Pending<M>>,
    pending_ix: HashMap<(u32, u32, u32), u32>,
    /// Logical deliveries accumulated this round: `(to, from, msg)`.
    acc: Vec<(u32, u32, M)>,
    /// Ack emissions queued during an inbox sweep: `(acker, data_sender, seq)`.
    ack_queue: Vec<(u32, u32, u32)>,
    /// Logical inbox CSR presented to the protocol.
    inbox_offsets: Vec<u32>,
    inbox_buf: Vec<Envelope<M>>,
    cursor: Vec<u32>,
    perm: Vec<u32>,
}

impl<M: MessageSize + Clone> ReliableNet<M> {
    /// Builds a reliable network over `g` with the given fault plan underneath.
    pub fn new(g: &Graph, plan: FaultPlan, cfg: ReliabilityConfig) -> Self {
        let net: SyncNetwork<Reliable<M>> = SyncNetwork::with_faults(g, plan);
        let links = net.num_links();
        let n = net.n();
        ReliableNet {
            net,
            cfg,
            n,
            next_seq: vec![0; links],
            seen: vec![Vec::new(); links],
            touched: Vec::new(),
            pending: Vec::new(),
            pending_ix: HashMap::new(),
            acc: Vec::new(),
            ack_queue: Vec::new(),
            inbox_offsets: vec![0; n + 1],
            inbox_buf: Vec::new(),
            cursor: Vec::new(),
            perm: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Messages logically delivered to `v` by the last [`ReliableNet::advance_round`].
    #[inline]
    pub fn inbox(&self, v: NodeId) -> &[Envelope<M>] {
        &self.inbox_buf[self.inbox_offsets[v] as usize..self.inbox_offsets[v + 1] as usize]
    }

    /// Transport metrics (rounds counts *sub*-rounds — the protocol's real cost).
    pub fn metrics(&self) -> &NetworkMetrics {
        self.net.metrics()
    }

    /// One parallel vertex sweep, mirroring [`SyncNetwork::par_step`]: the protocol
    /// sees its own message type and the *logical* inboxes; emissions are wrapped
    /// into sequenced [`Reliable::Data`] frames underneath.
    pub fn par_step<T, B, F>(&mut self, scratch: impl Fn() -> T + Sync, step: F) -> Vec<B>
    where
        M: Send + Sync,
        T: Send,
        B: Send + Default,
        F: Fn(&mut T, &mut B, NodeId, &[Envelope<M>], &mut VertexOutbox<'_, M>) + Sync,
    {
        let payloads = {
            let ReliableNet {
                net,
                inbox_offsets,
                inbox_buf,
                ..
            } = self;
            let inbox_offsets = &*inbox_offsets;
            let inbox_buf = &*inbox_buf;
            net.par_step(
                || (scratch(), Vec::<Staged<M>>::new()),
                |(sc, local), payload, v, _raw_inbox, out| {
                    local.clear();
                    let lb = &inbox_buf[inbox_offsets[v] as usize..inbox_offsets[v + 1] as usize];
                    {
                        let mut shim = VertexOutbox::over(v as u32, out.neighbor_row(), local);
                        step(sc, payload, v, lb, &mut shim);
                    }
                    for (_from, to, m) in local.drain(..) {
                        // Sequence numbers are stamped after the sweep, in staging
                        // order, so they are deterministic in the thread count.
                        out.send(to as usize, Reliable::Data { seq: 0, msg: m });
                    }
                },
            )
        };
        let ReliableNet {
            net,
            next_seq,
            pending,
            pending_ix,
            ..
        } = self;
        net.for_each_staged_with_link(|from, to, link, rmsg| {
            if let Reliable::Data { seq, msg } = rmsg {
                *seq = next_seq[link];
                next_seq[link] = next_seq[link].wrapping_add(1);
                pending_ix.insert((from, to, *seq), pending.len() as u32);
                pending.push(Pending {
                    from,
                    to,
                    seq: *seq,
                    msg: msg.clone(),
                    sent_sub: 0,
                    retries: 0,
                    acked: false,
                });
            }
        });
        payloads
    }

    /// Completes one logical round: runs transport sub-rounds (delivery, acks,
    /// timeouts, retransmissions) until every staged message has been delivered and
    /// acked, or abandoned after the retry budget, and nothing is left in flight.
    /// Afterwards [`ReliableNet::inbox`] holds each vertex's deduplicated logical
    /// deliveries, sorted by `(recipient, sender)` arrival order.
    pub fn advance_round(&mut self) {
        let mut sub: u32 = 0;
        loop {
            self.net.advance_round();
            sub += 1;
            let mut dup_sup = 0u64;
            let mut acks_seen = 0u64;
            {
                let ReliableNet {
                    net,
                    seen,
                    touched,
                    pending,
                    pending_ix,
                    acc,
                    ack_queue,
                    ..
                } = self;
                for v in 0..net.n() {
                    for &(from, ref rmsg) in net.inbox(v) {
                        match rmsg {
                            Reliable::Data { seq, msg } => {
                                let l = net.link_index(from as u32, v as u32);
                                if seen[l].contains(seq) {
                                    dup_sup += 1;
                                } else {
                                    if seen[l].is_empty() {
                                        touched.push(l as u32);
                                    }
                                    seen[l].push(*seq);
                                    acc.push((v as u32, from as u32, msg.clone()));
                                }
                                // Always (re-)ack: the previous ack may have been lost.
                                ack_queue.push((v as u32, from as u32, *seq));
                            }
                            Reliable::Ack { seq } => {
                                acks_seen += 1;
                                if let Some(i) = pending_ix.remove(&(v as u32, from as u32, *seq)) {
                                    pending[i as usize].acked = true;
                                }
                            }
                        }
                    }
                }
            }
            {
                let m = self.net.metrics_mut();
                m.dup_suppressed += dup_sup;
                m.acks += acks_seen;
            }
            for (acker, sender, seq) in std::mem::take(&mut self.ack_queue) {
                self.net
                    .send(acker as usize, sender as usize, Reliable::Ack { seq });
            }
            // Compact acked entries, keeping the index in sync.
            if self.pending.iter().any(|p| p.acked) {
                self.pending.retain(|p| !p.acked);
                self.pending_ix.clear();
                for (i, p) in self.pending.iter().enumerate() {
                    self.pending_ix.insert((p.from, p.to, p.seq), i as u32);
                }
            }
            // Timeout sweep: retransmit overdue messages, abandon exhausted ones.
            let cap_hit = sub >= self.cfg.max_subrounds;
            let mut retransmits = 0u64;
            let mut abandoned = 0u64;
            let mut resend: Vec<(u32, u32, Reliable<M>)> = Vec::new();
            for p in &mut self.pending {
                let threshold = if self.cfg.backoff {
                    self.cfg
                        .timeout_rounds
                        .saturating_mul(1u32 << p.retries.min(16))
                } else {
                    self.cfg.timeout_rounds
                };
                if cap_hit || sub.saturating_sub(p.sent_sub) >= threshold {
                    if cap_hit || p.retries >= self.cfg.retry_budget {
                        abandoned += 1;
                        p.acked = true; // reuse the flag to drop it below
                    } else {
                        retransmits += 1;
                        p.retries += 1;
                        p.sent_sub = sub;
                        resend.push((
                            p.from,
                            p.to,
                            Reliable::Data {
                                seq: p.seq,
                                msg: p.msg.clone(),
                            },
                        ));
                    }
                }
            }
            if abandoned > 0 {
                self.pending.retain(|p| !p.acked);
                self.pending_ix.clear();
                for (i, p) in self.pending.iter().enumerate() {
                    self.pending_ix.insert((p.from, p.to, p.seq), i as u32);
                }
            }
            for (from, to, frame) in resend {
                self.net.send(from as usize, to as usize, frame);
            }
            {
                let m = self.net.metrics_mut();
                m.retransmits += retransmits;
                m.abandoned += abandoned;
            }
            if self.pending.is_empty() && !self.net.in_flight() {
                break;
            }
        }
        // Seal the logical round: clear per-link duplicate state and expose the
        // accumulated deliveries as the logical inbox CSR (stable sort by recipient).
        for &l in &self.touched {
            self.seen[l as usize].clear();
        }
        self.touched.clear();
        let n = self.n;
        let total = self.acc.len();
        self.inbox_offsets.clear();
        self.inbox_offsets.resize(n + 1, 0);
        for &(to, _, _) in &self.acc {
            self.inbox_offsets[to as usize + 1] += 1;
        }
        for v in 0..n {
            self.inbox_offsets[v + 1] += self.inbox_offsets[v];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.inbox_offsets[..n]);
        self.perm.clear();
        self.perm.resize(total, 0);
        for (i, &(to, _, _)) in self.acc.iter().enumerate() {
            let c = &mut self.cursor[to as usize];
            self.perm[*c as usize] = i as u32;
            *c += 1;
        }
        self.inbox_buf.clear();
        self.inbox_buf.reserve(total);
        for j in 0..total {
            let (_, from, ref msg) = self.acc[self.perm[j] as usize];
            self.inbox_buf.push((from as usize, msg.clone()));
        }
        self.acc.clear();
    }
}

/// Fault-injection setup for the distributed sparsification drivers: the transport
/// fault plan plus (optionally) the reliable-delivery layer on top.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// The transport fault process applied inside the simulator.
    pub plan: FaultPlan,
    /// When set, run every spanner instance behind the reliable-delivery layer.
    pub reliability: Option<ReliabilityConfig>,
}

impl FaultConfig {
    /// No faults, no recovery layer — the byte-identical clean path.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Whether this setup changes anything relative to the clean path.
    pub fn is_clean(&self) -> bool {
        self.plan.is_none() && self.reliability.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(u64);

    impl MessageSize for Ping {
        fn size_bits(&self) -> usize {
            64
        }
    }

    #[test]
    fn fault_coin_is_deterministic_and_unit_range() {
        let a = fault_coin(7, 3, 0, 1, 5);
        let b = fault_coin(7, 3, 0, 1, 5);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
        assert_ne!(a, fault_coin(7, 3, 0, 1, 6), "seq enters the key");
        assert_ne!(a, fault_coin(7, 4, 0, 1, 5), "round enters the key");
        assert_ne!(a, fault_coin(8, 3, 0, 1, 5), "seed enters the key");
    }

    #[test]
    fn none_plan_is_not_installed_and_changes_nothing() {
        let g = generators::star(6, 1.0);
        let mut clean: SyncNetwork<Ping> = SyncNetwork::new(&g);
        let mut nop: SyncNetwork<Ping> = SyncNetwork::with_faults(&g, FaultPlan::none());
        for net in [&mut clean, &mut nop] {
            net.broadcast(0, Ping(9));
            net.advance_round();
        }
        assert_eq!(clean.metrics(), nop.metrics());
        for v in 0..6 {
            assert_eq!(clean.inbox(v), nop.inbox(v));
        }
    }

    #[test]
    fn certain_loss_drops_everything() {
        let g = generators::star(5, 1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::with_faults(&g, FaultPlan::iid_loss(1, 1.0));
        net.broadcast(0, Ping(1));
        net.advance_round();
        let m = net.metrics();
        assert_eq!(m.messages, 0);
        assert_eq!(m.dropped, 4);
        for v in 1..5 {
            assert!(net.inbox(v).is_empty());
        }
    }

    #[test]
    fn certain_duplication_doubles_delivery() {
        let g = generators::path(2, 1.0);
        let plan = FaultPlan::none().with_seed(3).with_duplication(1.0);
        let mut net: SyncNetwork<Ping> = SyncNetwork::with_faults(&g, plan);
        net.send(0, 1, Ping(5));
        net.advance_round();
        assert_eq!(net.inbox(1), &[(0, Ping(5)), (0, Ping(5))]);
        assert_eq!(net.metrics().messages, 2);
        assert_eq!(net.metrics().duplicated, 1);
    }

    #[test]
    fn certain_delay_defers_delivery_within_bound() {
        let g = generators::path(2, 1.0);
        let plan = FaultPlan::none().with_seed(11).with_delay(1.0, 1);
        let mut net: SyncNetwork<Ping> = SyncNetwork::with_faults(&g, plan);
        net.send(0, 1, Ping(5));
        net.advance_round();
        assert!(net.inbox(1).is_empty(), "held back one round");
        assert_eq!(net.metrics().delayed, 1);
        net.advance_round();
        assert_eq!(net.inbox(1), &[(0, Ping(5))], "due exactly one round later");
        assert_eq!(net.metrics().messages, 1);
    }

    #[test]
    fn link_failure_window_destroys_messages_then_heals() {
        let g = generators::path(2, 1.0);
        let plan = FaultPlan::none().with_link_failure(0, 1, 1, 2);
        let mut net: SyncNetwork<Ping> = SyncNetwork::with_faults(&g, plan);
        net.send(0, 1, Ping(1));
        net.advance_round(); // round 1: link down
        assert!(net.inbox(1).is_empty());
        assert_eq!(net.metrics().dropped, 1);
        net.send(0, 1, Ping(2));
        net.advance_round(); // round 2: healed
        assert_eq!(net.inbox(1), &[(0, Ping(2))]);
    }

    #[test]
    fn crashed_vertex_neither_runs_nor_receives() {
        let g = generators::path(3, 1.0);
        let plan = FaultPlan::none().with_crash(1, 0, 2);
        let mut net: SyncNetwork<Ping> = SyncNetwork::with_faults(&g, plan);
        // Sweep at round 0: vertex 1 is down and must not execute.
        net.par_step(
            || (),
            |_, _: &mut (), v, _inbox, out| {
                out.broadcast(Ping(v as u64));
            },
        );
        net.advance_round(); // round 1: messages to 1 are destroyed
        assert!(
            net.inbox(1).is_empty(),
            "crashed recipient receives nothing"
        );
        assert_eq!(
            net.inbox(0).len() + net.inbox(2).len(),
            0,
            "crashed 1 sent nothing"
        );
        assert_eq!(net.metrics().dropped, 2, "0->1 and 2->1 destroyed");
        // After the window the vertex participates again.
        net.par_step(
            || (),
            |_, _: &mut (), v, _inbox, out| {
                out.broadcast(Ping(v as u64));
            },
        );
        net.advance_round(); // round 2: v1 down at send time (round 1)? window is [0,2): up from round 2 on; sends staged at round 1 are checked against round 1 -> still down
        net.par_step(
            || (),
            |_, _: &mut (), v, _inbox, out| {
                out.broadcast(Ping(v as u64));
            },
        );
        net.advance_round(); // round 3: fully healed
        assert_eq!(net.inbox(0).len(), 1);
        assert_eq!(net.inbox(2).len(), 1);
    }

    #[test]
    fn reliable_net_clean_path_delivers_once_with_acks() {
        let g = generators::star(5, 1.0);
        let mut net: ReliableNet<Ping> =
            ReliableNet::new(&g, FaultPlan::none(), ReliabilityConfig::default());
        net.par_step(
            || (),
            |_, _: &mut (), v, _inbox, out| {
                if v == 0 {
                    out.broadcast(Ping(42));
                }
            },
        );
        net.advance_round();
        for v in 1..5 {
            assert_eq!(net.inbox(v), &[(0, Ping(42))]);
        }
        let m = net.metrics();
        assert_eq!(m.acks, 4, "one ack per delivery");
        assert_eq!(m.retransmits, 0);
        assert_eq!(m.abandoned, 0);
        assert_eq!(m.dup_suppressed, 0);
    }

    #[test]
    fn reliable_net_recovers_every_message_under_heavy_loss() {
        let g = generators::complete(6, 1.0);
        let plan = FaultPlan::iid_loss(0xBAD, 0.4)
            .with_duplication(0.2)
            .with_delay(0.2, 3);
        let cfg = ReliabilityConfig {
            retry_budget: 16,
            ..ReliabilityConfig::default()
        };
        let mut net: ReliableNet<Ping> = ReliableNet::new(&g, plan, cfg);
        net.par_step(
            || (),
            |_, _: &mut (), v, _inbox, out| {
                out.broadcast(Ping(v as u64));
            },
        );
        net.advance_round();
        for v in 0..6 {
            let mut senders: Vec<usize> = net.inbox(v).iter().map(|&(f, _)| f).collect();
            senders.sort_unstable();
            let expect: Vec<usize> = (0..6).filter(|&u| u != v).collect();
            assert_eq!(senders, expect, "vertex {v} missing logical deliveries");
        }
        let m = net.metrics();
        assert!(m.retransmits > 0, "loss must force retransmissions");
        assert_eq!(m.abandoned, 0, "generous budget recovers everything");
    }

    #[test]
    fn reliable_net_abandons_after_budget_and_terminates() {
        let g = generators::path(2, 1.0);
        let plan = FaultPlan::iid_loss(7, 1.0);
        let cfg = ReliabilityConfig {
            timeout_rounds: 1,
            retry_budget: 3,
            backoff: false,
            max_subrounds: 64,
        };
        let mut net: ReliableNet<Ping> = ReliableNet::new(&g, plan, cfg);
        net.par_step(
            || (),
            |_, _: &mut (), v, _inbox, out| {
                if v == 0 {
                    out.send(1, Ping(1));
                }
            },
        );
        net.advance_round();
        assert!(net.inbox(1).is_empty(), "total loss delivers nothing");
        let m = net.metrics();
        assert_eq!(m.abandoned, 1);
        assert_eq!(m.retransmits, 3, "exactly the retry budget");
    }

    #[test]
    fn reliable_net_runs_are_identical_across_seeds_reuse() {
        // Same seed, two fresh nets: byte-identical metrics and inboxes.
        let g = generators::complete(5, 1.0);
        let plan = FaultPlan::iid_loss(99, 0.3);
        let run = || {
            let mut net: ReliableNet<Ping> =
                ReliableNet::new(&g, plan.clone(), ReliabilityConfig::default());
            net.par_step(
                || (),
                |_, _: &mut (), v, _inbox, out| {
                    out.broadcast(Ping(v as u64));
                },
            );
            net.advance_round();
            let inboxes: Vec<Vec<Envelope<Ping>>> = (0..5).map(|v| net.inbox(v).to_vec()).collect();
            (net.metrics().clone(), inboxes)
        };
        assert_eq!(run(), run());
    }
}
