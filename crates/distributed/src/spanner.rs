//! Distributed Baswana–Sen spanner (Theorem 2 of the paper).
//!
//! The algorithm is the same clustering process as the shared-memory version in
//! `sgs_spanner::baswana_sen`, expressed as a synchronous message-passing protocol on
//! the [`SyncNetwork`] simulator:
//!
//! * **Sampling propagation** — at iteration `i` every cluster center flips its coin
//!   locally and the outcome travels down the cluster tree, one hop per round. Cluster
//!   radii are bounded by the iteration index, so this costs `O(i)` rounds and messages
//!   only along tree edges.
//! * **Neighbor exchange** — one round in which every vertex tells its neighbors its
//!   cluster id and the cluster's sampled flag (`O(log n)`-bit messages, `O(m)` of them
//!   per iteration).
//! * **Local decision** — each vertex in an unsampled cluster picks the spanner edges
//!   exactly as in the sequential algorithm and notifies the affected neighbors
//!   (`Kill` / `Child` messages).
//!
//! Total: `O(log² n)` rounds, `O(m log n)` messages of `O(log n)` bits — the bounds of
//! Theorem 2, which experiment E2 measures.
//!
//! # Engine design (allocation-free hot path)
//!
//! The protocol state mirrors the shared-memory engine of `sgs_spanner::baswana_sen`:
//!
//! * The per-vertex "alive incident edges" `BTreeMap` is gone. Active edges live in a
//!   flat edge view plus a [`ViewCsr`] incidence — the same structure (literally the
//!   same type) the shared-memory engine uses — and aliveness is two bitmaps, one per
//!   endpoint. (Per-endpoint, not per-edge: the two sides of an edge can disagree for
//!   the tail of an iteration, and the duplicate `Kill` traffic this produces is part
//!   of the pinned communication metrics.)
//! * The per-vertex "neighbor info" `BTreeMap` is gone. What a vertex broadcast in the
//!   last exchange is mirrored in two flat arrays (`reported_center` /
//!   `reported_sampled`); a vertex only ever consults entries of *adjacent* vertices,
//!   which is exactly the set of `ClusterInfo` messages it received, so the mirror is
//!   observationally identical to the per-vertex map (and the messages themselves
//!   still travel through the simulator and are billed).
//! * Per-round vertex execution runs through [`SyncNetwork::par_step`] under rayon,
//!   over density-aware `BlockPartition` blocks: decision sweeps use the
//!   cluster-stamped scratch pattern and emit flat per-block add/kill batches. The
//!   batches are committed by a parallel conflict-free flag pass (spanner adds only
//!   ever store `true`, and each vertex retires only its *own* side of an edge, so
//!   every mask slot sees writes of a single value) plus a small sequential per-vertex
//!   state sweep — fixed-seed runs stay bitwise identical across thread counts.
//!
//! The rewrite changes *nothing* observable: `tests/golden_distributed.rs` pins edge
//! ids and full `NetworkMetrics` captured from the pre-rewrite implementation.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use sgs_graph::{EdgeId, Graph, NodeId};
use sgs_spanner::baswana_sen::{EdgeView, ViewCsr};
use sgs_spanner::AtomicFlags;

use crate::faults::{FaultPlan, ReliabilityConfig, ReliableNet};
use crate::network::{Envelope, MessageSize, NetworkMetrics, SyncNetwork, VertexOutbox};

/// Messages exchanged by the distributed spanner protocol.
#[derive(Debug, Clone, Copy)]
pub enum SpannerMsg {
    /// Propagated down a cluster tree: "our cluster's sampled flag for this iteration".
    SampledFlag {
        /// Whether the cluster was sampled.
        sampled: bool,
    },
    /// Neighbor exchange: "my cluster id and its sampled flag".
    ClusterInfo {
        /// Cluster center id of the sender (or `None` if unclustered).
        center: Option<NodeId>,
        /// Whether the sender's cluster is sampled this iteration.
        sampled: bool,
    },
    /// "The edge with this id is no longer under consideration."
    Kill {
        /// Global edge id being retired.
        edge: EdgeId,
    },
    /// "You are my parent in the cluster tree."
    Child,
}

impl MessageSize for SpannerMsg {
    fn size_bits(&self) -> usize {
        // Vertex/edge ids are O(log n) bits; we account 32 bits per id plus flag bits,
        // comfortably within the O(log n) message-size regime of Theorem 2.
        match self {
            SpannerMsg::SampledFlag { .. } => 1,
            SpannerMsg::ClusterInfo { .. } => 33,
            SpannerMsg::Kill { .. } => 32,
            SpannerMsg::Child => 1,
        }
    }
}

/// Configuration for the distributed spanner.
#[derive(Debug, Clone)]
pub struct DistSpannerConfig {
    /// Stretch parameter `k`; defaults to `⌈log₂ n⌉`.
    pub k: Option<usize>,
    /// RNG seed for the cluster sampling.
    pub seed: u64,
    /// Deterministic transport faults to inject; [`FaultPlan::none()`] (the default)
    /// keeps the protocol on the exact pre-fault code path.
    pub faults: FaultPlan,
    /// Runs the protocol over the reliable ack/retransmit delivery layer
    /// ([`ReliableNet`]) when set. Independent of `faults`: the layer can also run on
    /// a clean network (pure overhead measurement), and a faulty network can run
    /// without it (raw degradation).
    pub reliability: Option<ReliabilityConfig>,
}

impl Default for DistSpannerConfig {
    fn default() -> Self {
        DistSpannerConfig {
            k: None,
            seed: 0xD157,
            faults: FaultPlan::none(),
            reliability: None,
        }
    }
}

impl DistSpannerConfig {
    /// Config with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        DistSpannerConfig {
            seed,
            ..Default::default()
        }
    }

    /// Overrides the stretch parameter.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Installs a deterministic fault plan on the transport.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Enables the reliable-delivery (ack/retransmit) layer.
    pub fn with_fault_tolerance(mut self, cfg: ReliabilityConfig) -> Self {
        self.reliability = Some(cfg);
        self
    }

    /// Whether this config departs from the clean, reliability-assuming protocol.
    fn fault_mode(&self) -> bool {
        self.reliability.is_some() || !self.faults.is_none()
    }
}

/// Result of the distributed spanner protocol.
#[derive(Debug, Clone)]
pub struct DistSpannerResult {
    /// Edge ids (into the input graph) selected for the spanner.
    pub edge_ids: Vec<EdgeId>,
    /// Communication metrics of the run.
    pub metrics: NetworkMetrics,
}

/// Sentinel for "no cluster" / "no parent" in the flat state arrays.
const NONE32: u32 = u32::MAX;

/// The protocol's transport: the raw simulator (possibly with faults installed) or
/// the reliable ack/retransmit layer on top of it. Both expose the same vertex-program
/// surface, so the protocol phases are transport-agnostic.
#[derive(Debug)]
enum Net {
    Raw(Box<SyncNetwork<SpannerMsg>>),
    Ft(Box<ReliableNet<SpannerMsg>>),
}

impl Net {
    fn inbox(&self, v: NodeId) -> &[Envelope<SpannerMsg>] {
        match self {
            Net::Raw(net) => net.inbox(v),
            Net::Ft(net) => net.inbox(v),
        }
    }

    fn advance_round(&mut self) {
        match self {
            Net::Raw(net) => net.advance_round(),
            Net::Ft(net) => net.advance_round(),
        }
    }

    fn metrics(&self) -> &NetworkMetrics {
        match self {
            Net::Raw(net) => net.metrics(),
            Net::Ft(net) => net.metrics(),
        }
    }

    fn par_step<T, B, F>(&mut self, scratch: impl Fn() -> T + Sync, step: F) -> Vec<B>
    where
        T: Send,
        B: Send + Default,
        F: Fn(&mut T, &mut B, NodeId, &[Envelope<SpannerMsg>], &mut VertexOutbox<'_, SpannerMsg>)
            + Sync,
    {
        match self {
            Net::Raw(net) => net.par_step(scratch, step),
            Net::Ft(net) => net.par_step(scratch, step),
        }
    }
}

/// What a vertex knows about a neighbor's last `ClusterInfo` broadcast.
///
/// The clean protocol reads the simulator-global `reported_*` mirrors — valid only
/// because delivery is guaranteed ([`MirrorInfo`], `known` ≡ true, compiled to the
/// exact pre-fault loads). Under faults, knowledge is whatever actually *arrived*
/// ([`RecvInfo`]): per-directed-link payloads with a freshness bit, so a lost
/// broadcast reads as "unknown" and the decision sweeps degrade conservatively
/// instead of acting on stale state.
trait NbrInfo: Copy + Sync {
    /// `other`'s cluster center as known to `v` ([`NONE32`] = unclustered or unknown).
    fn center(&self, v: NodeId, other: NodeId) -> u32;
    /// `other`'s sampled flag as known to `v` (false when unknown).
    fn sampled(&self, v: NodeId, other: NodeId) -> bool;
    /// Whether `v` actually holds fresh info about `other` from the last exchange.
    fn known(&self, v: NodeId, other: NodeId) -> bool;
}

/// Reliable-delivery knowledge: the global broadcast mirrors.
#[derive(Clone, Copy)]
struct MirrorInfo<'a> {
    rep_c: &'a [u32],
    rep_s: &'a [bool],
}

impl NbrInfo for MirrorInfo<'_> {
    #[inline]
    fn center(&self, _v: NodeId, other: NodeId) -> u32 {
        self.rep_c[other]
    }

    #[inline]
    fn sampled(&self, _v: NodeId, other: NodeId) -> bool {
        self.rep_s[other]
    }

    #[inline]
    fn known(&self, _v: NodeId, _other: NodeId) -> bool {
        true
    }
}

/// Received-message knowledge for fault mode, backed by a [`FaultView`].
#[derive(Clone, Copy)]
struct RecvInfo<'a> {
    offsets: &'a [u32],
    ids: &'a [u32],
    c: &'a [u32],
    s: &'a [bool],
    fresh: &'a [bool],
}

impl<'a> RecvInfo<'a> {
    fn new(fv: &'a FaultView) -> Self {
        RecvInfo {
            offsets: &fv.offsets,
            ids: &fv.ids,
            c: &fv.c,
            s: &fv.s,
            fresh: &fv.fresh,
        }
    }

    /// Flat slot of the directed link `other -> v` inside `v`'s sorted neighbor row.
    #[inline]
    fn slot(&self, v: NodeId, other: NodeId) -> usize {
        let start = self.offsets[v] as usize;
        let end = self.offsets[v + 1] as usize;
        start
            + self.ids[start..end]
                .binary_search(&(other as u32))
                .expect("neighbor info lookup along a non-edge")
    }
}

impl NbrInfo for RecvInfo<'_> {
    #[inline]
    fn center(&self, v: NodeId, other: NodeId) -> u32 {
        let s = self.slot(v, other);
        if self.fresh[s] {
            self.c[s]
        } else {
            NONE32
        }
    }

    #[inline]
    fn sampled(&self, v: NodeId, other: NodeId) -> bool {
        let s = self.slot(v, other);
        self.fresh[s] && self.s[s]
    }

    #[inline]
    fn known(&self, v: NodeId, other: NodeId) -> bool {
        self.fresh[self.slot(v, other)]
    }
}

/// Fault-mode neighbor knowledge: for every directed link `u -> v`, the last
/// `ClusterInfo` payload that actually reached `v`, with a per-exchange freshness bit.
/// Refreshed from the inboxes after every Phase B exchange.
#[derive(Debug)]
struct FaultView {
    /// Sorted flat adjacency, same layout as the simulator's.
    offsets: Vec<u32>,
    ids: Vec<u32>,
    /// Received payloads per link slot (slot of sender inside receiver's row).
    c: Vec<u32>,
    s: Vec<bool>,
    fresh: Vec<bool>,
}

impl FaultView {
    fn new(g: &Graph) -> FaultView {
        let n = g.n();
        let mut offsets = vec![0u32; n + 1];
        for e in g.edges() {
            offsets[e.u + 1] += 1;
            offsets[e.v + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut ids = vec![0u32; 2 * g.m()];
        for e in g.edges() {
            ids[cursor[e.u] as usize] = e.v as u32;
            cursor[e.u] += 1;
            ids[cursor[e.v] as usize] = e.u as u32;
            cursor[e.v] += 1;
        }
        for v in 0..n {
            ids[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        let links = ids.len();
        FaultView {
            offsets,
            ids,
            c: vec![NONE32; links],
            s: vec![false; links],
            fresh: vec![false; links],
        }
    }

    /// Replaces the view with what the latest exchange actually delivered.
    fn refresh(&mut self, net: &Net) {
        self.fresh.iter_mut().for_each(|f| *f = false);
        let n = self.offsets.len() - 1;
        for v in 0..n {
            for &(from, ref msg) in net.inbox(v) {
                if let SpannerMsg::ClusterInfo { center, sampled } = *msg {
                    let start = self.offsets[v] as usize;
                    let end = self.offsets[v + 1] as usize;
                    let slot = start
                        + self.ids[start..end]
                            .binary_search(&(from as u32))
                            .expect("ClusterInfo from a non-neighbor");
                    self.c[slot] = center.map_or(NONE32, |c| c as u32);
                    self.s[slot] = sampled;
                    self.fresh[slot] = true;
                }
            }
        }
    }
}

/// Flat per-vertex protocol state. The old per-vertex `BTreeMap`s (alive edges,
/// neighbor info) live in the [`Protocol`]'s global flat arrays instead.
#[derive(Debug, Clone, Copy)]
struct VertState {
    /// Cluster center, or [`NONE32`] once the vertex leaves the clustering.
    center: u32,
    /// Parent in the cluster tree, or [`NONE32`].
    parent: u32,
    /// This iteration's cluster flag, as known to the vertex.
    sampled: bool,
    /// Whether the flag has arrived this iteration (centers know immediately).
    knows_flag: bool,
}

/// Per-worker scratch for the decision sweeps: cluster-stamped slots plus a
/// touched-list, giving O(degree) grouping with O(degree) cleanup and zero per-vertex
/// allocation (the shared-memory engine's `RoundScratch` pattern).
struct ClusterScratch {
    stamp: u32,
    last_seen: Vec<u32>,
    best_w: Vec<f64>,
    best_idx: Vec<u32>,
    /// The adjacent cluster's sampled flag, stored once when the group is created
    /// (every member reports the same flag).
    grp_sampled: Vec<bool>,
    touched: Vec<u32>,
}

/// Shared read-only context of one grouping sweep: the edge view plus the
/// per-endpoint aliveness bitmaps and the neighbor-knowledge source (the global
/// mirrors in the clean protocol, the received-message view in fault mode).
#[derive(Clone, Copy)]
struct RowCtx<'a, I> {
    view: &'a [EdgeView],
    alive_a: &'a [bool],
    alive_b: &'a [bool],
    info: I,
}

impl ClusterScratch {
    fn new(n: usize) -> ClusterScratch {
        ClusterScratch {
            stamp: 0,
            last_seen: vec![0; n],
            best_w: vec![0.0; n],
            best_idx: vec![0; n],
            grp_sampled: vec![false; n],
            touched: Vec::new(),
        }
    }

    /// Groups `v`'s own-side alive edges by the neighbor's reported cluster into the
    /// stamped slots + touched list: per group the lightest edge (first-seen on ties,
    /// i.e. lowest edge id) and the cluster's sampled flag. Both the Phase C decision
    /// sweep and the final joining sweep run exactly this grouping.
    fn group_row<I: NbrInfo>(&mut self, v: NodeId, c_v: u32, row: &[u32], ctx: &RowCtx<'_, I>) {
        self.stamp += 1;
        let stamp = self.stamp;
        self.touched.clear();
        for &idx32 in row {
            let idx = idx32 as usize;
            let (_, a, b, w) = ctx.view[idx];
            let (own_alive, other) = if a == v {
                (ctx.alive_a[idx], b)
            } else {
                (ctx.alive_b[idx], a)
            };
            if !own_alive {
                continue;
            }
            let c_o = ctx.info.center(v, other);
            if c_o == NONE32 || c_o == c_v {
                // Neighbor is unclustered, unheard-from (fault mode), or shares the
                // cluster; intra-cluster edges retire in the local sweep.
                continue;
            }
            let c = c_o as usize;
            if self.last_seen[c] != stamp {
                self.last_seen[c] = stamp;
                self.best_w[c] = w;
                self.best_idx[c] = idx32;
                self.grp_sampled[c] = ctx.info.sampled(v, other);
                self.touched.push(c_o);
            } else if w < self.best_w[c] {
                self.best_w[c] = w;
                self.best_idx[c] = idx32;
            }
        }
    }
}

/// Compact Phase C outcome of one vertex; the add/kill view-index lists live in the
/// owning [`PhaseCBatch`]'s flat buffers.
#[derive(Debug, Clone, Copy)]
struct PhaseCDecision {
    v: u32,
    /// New cluster center, or [`NONE32`] when the vertex leaves the clustering.
    new_center: u32,
    /// New parent (the endpoint behind the joining edge), or [`NONE32`].
    new_parent: u32,
    add_len: u32,
    kill_len: u32,
}

/// Phase C decisions of one vertex block: per-vertex records plus flat add/kill
/// view-index lists (segments in record order).
#[derive(Debug, Default)]
struct PhaseCBatch {
    verts: Vec<PhaseCDecision>,
    adds: Vec<u32>,
    kills: Vec<u32>,
}

/// Joining-phase adds of one vertex block.
#[derive(Debug, Default)]
struct JoinBatch {
    adds: Vec<u32>,
}

/// The full protocol state of one `distributed_spanner_on_edges` run.
struct Protocol {
    n: usize,
    k: usize,
    net: Net,
    /// Per-link received neighbor knowledge; `Some` exactly in fault mode (faults
    /// installed and/or the reliable layer enabled), where the global mirrors below
    /// would assume delivery that may not have happened.
    fault_view: Option<FaultView>,
    rng: ChaCha8Rng,
    sample_prob: f64,
    /// The active edge view (original ids, ascending) and its flat incidence.
    view: Vec<EdgeView>,
    csr: ViewCsr,
    /// Global edge id → view index (or [`NONE32`]), for `Kill` receipt.
    idx_of: Vec<u32>,
    states: Vec<VertState>,
    /// Cluster-tree children, fed by `Child` messages. Entries can go stale when a
    /// child leaves for another cluster — the resulting extra flag messages are part
    /// of the protocol's (pinned) communication footprint, exactly as before.
    children: Vec<Vec<NodeId>>,
    /// Own-side aliveness of `view[idx]`: `alive_a` is endpoint `view[idx].1`'s side,
    /// `alive_b` endpoint `view[idx].2`'s.
    alive_a: Vec<bool>,
    alive_b: Vec<bool>,
    in_spanner: Vec<bool>,
    /// What each vertex broadcast in the most recent exchange ([`NONE32`] when it did
    /// not broadcast): the simulator-global mirror of the `ClusterInfo` payloads.
    reported_center: Vec<u32>,
    reported_sampled: Vec<bool>,
    /// This iteration's center coin flips (index = vertex id).
    coins: Vec<bool>,
}

impl Protocol {
    fn new(g: &Graph, active: &[EdgeId], cfg: &DistSpannerConfig) -> Protocol {
        let n = g.n();
        let k = resolve_k(n, cfg);
        // Normalise the active set (the old per-vertex BTreeMaps sorted and
        // deduplicated implicitly).
        let mut ids: Vec<EdgeId> = active.to_vec();
        ids.sort_unstable();
        ids.dedup();
        let view: Vec<EdgeView> = ids
            .iter()
            .map(|&id| {
                let e = g.edge(id);
                (id, e.u, e.v, e.w)
            })
            .collect();
        let csr = ViewCsr::build(n, &view);
        let mut idx_of = vec![NONE32; g.m()];
        for (idx, &(id, _, _, _)) in view.iter().enumerate() {
            idx_of[id] = idx as u32;
        }
        let m_view = view.len();
        let net = if let Some(rc) = &cfg.reliability {
            Net::Ft(Box::new(ReliableNet::new(
                g,
                cfg.faults.clone(),
                rc.clone(),
            )))
        } else {
            Net::Raw(Box::new(SyncNetwork::with_faults(g, cfg.faults.clone())))
        };
        Protocol {
            n,
            k,
            net,
            fault_view: cfg.fault_mode().then(|| FaultView::new(g)),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            sample_prob: (n as f64).powf(-1.0 / k as f64),
            view,
            csr,
            idx_of,
            states: (0..n)
                .map(|v| VertState {
                    center: v as u32,
                    parent: NONE32,
                    sampled: false,
                    knows_flag: false,
                })
                .collect(),
            children: vec![Vec::new(); n],
            alive_a: vec![true; m_view],
            alive_b: vec![true; m_view],
            in_spanner: vec![false; m_view],
            reported_center: vec![NONE32; n],
            reported_sampled: vec![false; n],
            coins: Vec::with_capacity(n),
        }
    }

    /// Runs the whole protocol and returns the selected original edge ids, sorted.
    fn run(&mut self) -> Vec<EdgeId> {
        for it in 1..self.k {
            self.iteration(it);
        }
        self.finale();
        self.selected_edge_ids()
    }

    /// The original ids of the edges selected so far, sorted.
    fn selected_edge_ids(&self) -> Vec<EdgeId> {
        let mut edge_ids: Vec<EdgeId> = self
            .view
            .iter()
            .zip(&self.in_spanner)
            .filter_map(|(&(id, _, _, _), &inb)| if inb { Some(id) } else { None })
            .collect();
        edge_ids.sort_unstable();
        edge_ids
    }

    /// One clustering iteration: sampling propagation (Phase A), neighbor exchange
    /// (Phase B), local decisions + notifications (Phase C), then the local
    /// intra-cluster cleanup. Costs `it + 2` simulator rounds.
    fn iteration(&mut self, it: usize) {
        self.phase_a(it);
        self.phase_b();
        self.phase_c();
        self.process_kills_and_children();
        self.retain_intra_cluster();
    }

    /// Phase A: centers flip this iteration's coin; flags travel one hop per round
    /// down the cluster trees for `it` rounds (cluster radii are below `it`).
    fn phase_a(&mut self, it: usize) {
        let prob = self.sample_prob;
        self.coins.clear();
        for _ in 0..self.n {
            self.coins.push(self.rng.gen::<f64>() < prob);
        }
        let coins = &self.coins;
        self.states.par_iter_mut().enumerate().for_each(|(v, st)| {
            // Reset both flags at iteration start: a vertex that somehow misses the
            // propagation below must act as "not sampled", not replay the previous
            // iteration's flag (see `stale_sampled_flag_is_reset_each_iteration`).
            st.knows_flag = false;
            st.sampled = false;
            if st.center == v as u32 {
                st.sampled = coins[v];
                st.knows_flag = true;
            }
        });
        for _ in 0..it {
            let states = &self.states;
            let children = &self.children;
            self.net.par_step(
                || (),
                |_, _: &mut (), v, _inbox, out: &mut VertexOutbox<'_, SpannerMsg>| {
                    let st = &states[v];
                    if st.knows_flag {
                        for &c in &children[v] {
                            out.send(
                                c,
                                SpannerMsg::SampledFlag {
                                    sampled: st.sampled,
                                },
                            );
                        }
                    }
                },
            );
            self.net.advance_round();
            let net = &self.net;
            self.states.par_iter_mut().enumerate().for_each(|(v, st)| {
                for &(from, ref msg) in net.inbox(v) {
                    if let SpannerMsg::SampledFlag { sampled } = *msg {
                        if st.parent == from as u32 && !st.knows_flag {
                            st.sampled = sampled;
                            st.knows_flag = true;
                        }
                    }
                }
            });
        }
    }

    /// Phase B: the neighbor exchange. In the clean protocol every *clustered* vertex
    /// broadcasts its cluster info and the payloads are mirrored into the
    /// `reported_*` arrays ("no message" reliably means "unclustered"). In fault mode
    /// that inference is unsound — a missing message may simply have been lost — so
    /// *every* vertex broadcasts (unclustered ones with `center: None`) and each
    /// vertex's knowledge is rebuilt from what actually reached it
    /// ([`FaultView::refresh`]).
    fn phase_b(&mut self) {
        let fault_mode = self.fault_view.is_some();
        if !fault_mode {
            for (v, st) in self.states.iter().enumerate() {
                self.reported_center[v] = st.center;
                self.reported_sampled[v] = st.sampled;
            }
        }
        let states = &self.states;
        self.net.par_step(
            || (),
            |_, _: &mut (), v, _inbox, out: &mut VertexOutbox<'_, SpannerMsg>| {
                let st = &states[v];
                if fault_mode || st.center != NONE32 {
                    out.broadcast(SpannerMsg::ClusterInfo {
                        center: (st.center != NONE32).then_some(st.center as usize),
                        sampled: st.sampled,
                    });
                }
            },
        );
        self.net.advance_round();
        let Protocol {
            net, fault_view, ..
        } = self;
        if let Some(fv) = fault_view {
            fv.refresh(net);
        }
    }

    /// Phase C: vertices in unsampled clusters decide (two stamped-scratch passes over
    /// their incidence row), stage `Kill` / `Child` notifications, and the flat
    /// decision batches are committed by a parallel conflict-free flag pass plus a
    /// small sequential per-vertex state sweep. Dispatches on the neighbor-knowledge
    /// source; the generic body is [`phase_c_impl`].
    fn phase_c(&mut self) {
        let Protocol {
            net,
            n,
            view,
            csr,
            states,
            children,
            alive_a,
            alive_b,
            in_spanner,
            reported_center,
            reported_sampled,
            fault_view,
            ..
        } = self;
        let sw = SweepState {
            net,
            n: *n,
            view,
            csr,
            states,
            children,
            alive_a,
            alive_b,
            in_spanner,
        };
        match fault_view {
            Some(fv) => phase_c_impl(sw, RecvInfo::new(fv)),
            None => phase_c_impl(
                sw,
                MirrorInfo {
                    rep_c: reported_center,
                    rep_s: reported_sampled,
                },
            ),
        }
    }

    /// Delivers the Phase C notifications: `Kill` retires the receiver's side of the
    /// edge, `Child` extends the receiver's cluster-tree children (inboxes are sorted
    /// by sender, so the children order is reproducible). Runs in parallel over
    /// vertices: a `Kill` only flips the *receiver's* side of the edge (disjoint per
    /// vertex) and each `children[v]` is written only by its owner, walking its own
    /// inbox in order — identical to the sequential sweep.
    fn process_kills_and_children(&mut self) {
        let net = &self.net;
        let idx_of = &self.idx_of;
        let view = &self.view;
        let alive_a = AtomicFlags::new(&mut self.alive_a);
        let alive_b = AtomicFlags::new(&mut self.alive_b);
        self.children
            .par_iter_mut()
            .enumerate()
            .for_each(|(v, children)| {
                for &(from, msg) in net.inbox(v) {
                    match msg {
                        SpannerMsg::Kill { edge } => {
                            let idx = idx_of[edge];
                            debug_assert_ne!(idx, NONE32, "Kill for an edge outside the view");
                            let (_, a, _, _) = view[idx as usize];
                            if a == v {
                                alive_a.set(idx as usize, false);
                            } else {
                                alive_b.set(idx as usize, false);
                            }
                        }
                        SpannerMsg::Child => children.push(from),
                        _ => {}
                    }
                }
            });
    }

    /// Intra-cluster edges retire locally (no message needed: both endpoints can see
    /// the shared center from the latest exchange — in fault mode only if the
    /// exchange actually arrived). Each endpoint drops its own side; the per-edge
    /// flag writes commute, so the sweeps run in parallel.
    fn retain_intra_cluster(&mut self) {
        let Protocol {
            states,
            view,
            alive_a,
            alive_b,
            reported_center,
            reported_sampled,
            fault_view,
            ..
        } = self;
        match fault_view {
            Some(fv) => {
                retain_intra_cluster_impl(states, view, alive_a, alive_b, RecvInfo::new(fv))
            }
            None => retain_intra_cluster_impl(
                states,
                view,
                alive_a,
                alive_b,
                MirrorInfo {
                    rep_c: reported_center,
                    rep_s: reported_sampled,
                },
            ),
        }
    }

    /// Phase 2: final vertex–cluster joining — one more exchange, then every vertex
    /// keeps the lightest still-alive edge into each adjacent foreign cluster. In
    /// fault mode an extra conservative pass keeps every still-alive edge whose
    /// endpoint knowledge is missing or mutually unclustered, so lost exchanges can
    /// only make the spanner *larger*, never disconnect the surviving computation.
    fn finale(&mut self) {
        self.phase_b();
        let Protocol {
            net,
            n,
            view,
            csr,
            states,
            children,
            alive_a,
            alive_b,
            in_spanner,
            reported_center,
            reported_sampled,
            fault_view,
            ..
        } = self;
        let sw = SweepState {
            net,
            n: *n,
            view,
            csr,
            states,
            children,
            alive_a,
            alive_b,
            in_spanner,
        };
        match fault_view {
            Some(fv) => finale_impl(sw, RecvInfo::new(fv), true),
            None => finale_impl(
                sw,
                MirrorInfo {
                    rep_c: reported_center,
                    rep_s: reported_sampled,
                },
                false,
            ),
        }
    }
}

/// Disjoint mutable borrows of the protocol state shared by the generic decision
/// sweeps ([`phase_c_impl`], [`finale_impl`]) — destructured out of [`Protocol`] so
/// the neighbor-knowledge source (which borrows other `Protocol` fields) can be
/// passed alongside.
struct SweepState<'a> {
    net: &'a mut Net,
    n: usize,
    view: &'a [EdgeView],
    csr: &'a ViewCsr,
    states: &'a mut Vec<VertState>,
    children: &'a mut Vec<Vec<NodeId>>,
    alive_a: &'a mut Vec<bool>,
    alive_b: &'a mut Vec<bool>,
    in_spanner: &'a mut Vec<bool>,
}

/// The Phase C body, generic over the neighbor-knowledge source. With [`MirrorInfo`]
/// (`known` ≡ true) this compiles to exactly the pre-fault decision logic; with
/// [`RecvInfo`] every kill is gated on *fresh* knowledge of the neighbor, so a lost
/// broadcast degrades to "leave the edge alive" (a possibly larger spanner), never to
/// acting on stale state.
fn phase_c_impl<I: NbrInfo>(sw: SweepState<'_>, info: I) {
    let SweepState {
        net,
        n,
        view,
        csr,
        states,
        children,
        alive_a,
        alive_b,
        in_spanner,
    } = sw;
    let batches: Vec<PhaseCBatch> = {
        let states: &[VertState] = states;
        let alive_a: &[bool] = alive_a;
        let alive_b: &[bool] = alive_b;
        let ctx = RowCtx {
            view,
            alive_a,
            alive_b,
            info,
        };
        net.par_step(
            || ClusterScratch::new(n),
            |sc, batch: &mut PhaseCBatch, v, _inbox, out| {
                let st = &states[v];
                let c_v = st.center;
                if c_v == NONE32 || st.sampled {
                    // Unclustered vertices are settled; sampled clusters carry over.
                    return;
                }
                let row = csr.row(v);

                // Pass 1: the shared stamped grouping sweep.
                sc.group_row(v, c_v, row, &ctx);

                let adds_before = batch.adds.len();
                let kills_before = batch.kills.len();
                let new_center;
                let new_parent;
                if sc.touched.is_empty() {
                    // No clustered foreign neighbor: the vertex leaves the clustering
                    // and every still-alive own-side edge with *known* neighbor state
                    // leaves the protocol (without fresh knowledge the edge stays
                    // alive — the neighbor may be mid-join on the other side).
                    new_center = NONE32;
                    new_parent = NONE32;
                    for &idx32 in row {
                        let idx = idx32 as usize;
                        let (_, a, b, _) = view[idx];
                        let (own_alive, other) = if a == v {
                            (alive_a[idx], b)
                        } else {
                            (alive_b[idx], a)
                        };
                        if own_alive && info.known(v, other) {
                            batch.kills.push(idx32);
                        }
                    }
                } else {
                    // Lightest edge into a *sampled* adjacent cluster, ties broken by
                    // cluster id so the choice is grouping-order independent.
                    let mut best: Option<(f64, u32)> = None;
                    for &c in &sc.touched {
                        if sc.grp_sampled[c as usize] {
                            let w = sc.best_w[c as usize];
                            let better = match best {
                                None => true,
                                Some((w0, c0)) => w < w0 || (w == w0 && c < c0),
                            };
                            if better {
                                best = Some((w, c));
                            }
                        }
                    }
                    match best {
                        None => {
                            // No sampled cluster adjacent: keep one lightest edge per
                            // adjacent cluster, discard everything else (that is
                            // known), and leave.
                            new_center = NONE32;
                            new_parent = NONE32;
                            for &idx32 in row {
                                let idx = idx32 as usize;
                                let (_, a, b, _) = view[idx];
                                let (own_alive, other) = if a == v {
                                    (alive_a[idx], b)
                                } else {
                                    (alive_b[idx], a)
                                };
                                if !own_alive || !info.known(v, other) {
                                    continue;
                                }
                                let c_o = info.center(v, other);
                                if c_o != NONE32 && c_o != c_v && sc.best_idx[c_o as usize] == idx32
                                {
                                    batch.adds.push(idx32);
                                }
                                batch.kills.push(idx32);
                            }
                        }
                        Some((w_star, c_star)) => {
                            // Join the sampled cluster through its lightest edge; also
                            // keep the lightest edge into every strictly lighter
                            // neighbor cluster.
                            let best_idx = sc.best_idx[c_star as usize];
                            let (_, a, b, _) = view[best_idx as usize];
                            let p = if a == v { b } else { a };
                            new_center = c_star;
                            new_parent = p as u32;
                            batch.adds.push(best_idx);
                            for &idx32 in row {
                                let idx = idx32 as usize;
                                let (_, a, b, _) = view[idx];
                                let (own_alive, other) = if a == v {
                                    (alive_a[idx], b)
                                } else {
                                    (alive_b[idx], a)
                                };
                                if !own_alive {
                                    continue;
                                }
                                let c_o = info.center(v, other);
                                if c_o == NONE32 || c_o == c_v {
                                    continue;
                                }
                                if c_o == c_star {
                                    batch.kills.push(idx32);
                                } else if sc.best_w[c_o as usize] < w_star {
                                    if sc.best_idx[c_o as usize] == idx32 {
                                        batch.adds.push(idx32);
                                    }
                                    batch.kills.push(idx32);
                                }
                            }
                        }
                    }
                }

                // Notifications: one Kill per retired own-side edge, one Child to the
                // new parent.
                for &idx32 in &batch.kills[kills_before..] {
                    let (id, a, b, _) = view[idx32 as usize];
                    let other = if a == v { b } else { a };
                    out.send(other, SpannerMsg::Kill { edge: id });
                }
                if new_parent != NONE32 {
                    out.send(new_parent as usize, SpannerMsg::Child);
                }
                batch.verts.push(PhaseCDecision {
                    v: v as u32,
                    new_center,
                    new_parent,
                    add_len: (batch.adds.len() - adds_before) as u32,
                    kill_len: (batch.kills.len() - kills_before) as u32,
                });
            },
        )
    };

    // Two-phase commit, parallel half: the edge-proportional flag writes. They are
    // conflict-free — `in_spanner` adds only ever store `true`, and a vertex kills
    // only its *own* side of an edge (`alive_a` for endpoint `a`, `alive_b` for
    // `b`), each side owned by exactly one vertex — so the final masks are the
    // same for every commit order and fixed-seed runs stay bitwise identical
    // across thread counts.
    {
        let in_spanner = AtomicFlags::new(in_spanner);
        let alive_a = AtomicFlags::new(alive_a);
        let alive_b = AtomicFlags::new(alive_b);
        batches.par_iter().for_each(|batch| {
            let mut adds_pos = 0usize;
            let mut kills_pos = 0usize;
            for dec in &batch.verts {
                let v = dec.v as usize;
                for &idx in &batch.adds[adds_pos..adds_pos + dec.add_len as usize] {
                    in_spanner.set(idx as usize, true);
                }
                adds_pos += dec.add_len as usize;
                for &idx in &batch.kills[kills_pos..kills_pos + dec.kill_len as usize] {
                    let (_, a, _, _) = view[idx as usize];
                    if a == v {
                        alive_a.set(idx as usize, false);
                    } else {
                        alive_b.set(idx as usize, false);
                    }
                }
                kills_pos += dec.kill_len as usize;
            }
        });
    }
    // Sequential half: the per-vertex state writes, O(decided vertices) per
    // iteration (each vertex appears in exactly one batch).
    for batch in &batches {
        for dec in &batch.verts {
            let v = dec.v as usize;
            // Leaving the clustering and re-clustering are the same writes: the
            // decision's center/parent are NONE32 for a vertex that left.
            let st = &mut states[v];
            st.center = dec.new_center;
            st.parent = dec.new_parent;
            children[v].clear();
        }
    }
    net.advance_round();
}

/// The intra-cluster retirement sweep, generic over the neighbor-knowledge source.
fn retain_intra_cluster_impl<I: NbrInfo>(
    states: &[VertState],
    view: &[EdgeView],
    alive_a: &mut [bool],
    alive_b: &mut [bool],
    info: I,
) {
    alive_a
        .par_iter_mut()
        .zip(view.par_iter())
        .for_each(|(alive, &(_, a, b, _))| {
            if *alive {
                let c = states[a].center;
                if c != NONE32 && info.center(a, b) == c {
                    *alive = false;
                }
            }
        });
    alive_b
        .par_iter_mut()
        .zip(view.par_iter())
        .for_each(|(alive, &(_, a, b, _))| {
            if *alive {
                let c = states[b].center;
                if c != NONE32 && info.center(b, a) == c {
                    *alive = false;
                }
            }
        });
}

/// The final joining sweep, generic over the neighbor-knowledge source. With
/// `conservative` set (fault mode), every still-alive own-side edge whose neighbor
/// is unheard-from — or where both sides ended up unclustered, a pairing the clean
/// protocol can never leave alive — is kept as well.
fn finale_impl<I: NbrInfo>(sw: SweepState<'_>, info: I, conservative: bool) {
    let SweepState {
        net,
        n,
        view,
        csr,
        states,
        alive_a,
        alive_b,
        in_spanner,
        ..
    } = sw;
    let states: &[VertState] = states;
    let alive_a: &[bool] = alive_a;
    let alive_b: &[bool] = alive_b;
    let batches: Vec<JoinBatch> = {
        let ctx = RowCtx {
            view,
            alive_a,
            alive_b,
            info,
        };
        net.par_step(
            || ClusterScratch::new(n),
            |sc, batch: &mut JoinBatch, v, _inbox, _out| {
                sc.group_row(v, states[v].center, csr.row(v), &ctx);
                for &c in &sc.touched {
                    batch.adds.push(sc.best_idx[c as usize]);
                }
            },
        )
    };
    // Same-value (`true`) writes commute, so the joining adds commit in parallel.
    {
        let in_spanner = AtomicFlags::new(in_spanner);
        batches.par_iter().for_each(|batch| {
            for &idx in &batch.adds {
                in_spanner.set(idx as usize, true);
            }
        });
    }
    if conservative {
        for (idx, &(_, a, b, _)) in view.iter().enumerate() {
            let keep_a = alive_a[idx]
                && (!info.known(a, b)
                    || (states[a].center == NONE32 && info.center(a, b) == NONE32));
            let keep_b = alive_b[idx]
                && (!info.known(b, a)
                    || (states[b].center == NONE32 && info.center(b, a) == NONE32));
            if keep_a || keep_b {
                in_spanner[idx] = true;
            }
        }
    }
}

fn resolve_k(n: usize, cfg: &DistSpannerConfig) -> usize {
    cfg.k
        .unwrap_or_else(|| (n.max(2) as f64).log2().ceil() as usize)
        .max(1)
}

/// Runs the distributed Baswana–Sen spanner on the communication graph `g`, restricted
/// to the edges listed in `active` (global edge ids). Passing all edge ids computes a
/// spanner of `g` itself; the bundle construction passes residual edge sets.
pub fn distributed_spanner_on_edges(
    g: &Graph,
    active: &[EdgeId],
    cfg: &DistSpannerConfig,
) -> DistSpannerResult {
    let n = g.n();
    let k = resolve_k(n, cfg);
    if n <= 2 || k <= 1 || active.is_empty() {
        return DistSpannerResult {
            edge_ids: active.to_vec(),
            metrics: NetworkMetrics::default(),
        };
    }
    let mut proto = Protocol::new(g, active, cfg);
    let edge_ids = proto.run();
    DistSpannerResult {
        edge_ids,
        metrics: proto.net.metrics().clone(),
    }
}

/// Runs the distributed Baswana–Sen spanner on all edges of `g`.
pub fn distributed_spanner(g: &Graph, cfg: &DistSpannerConfig) -> DistSpannerResult {
    let active: Vec<EdgeId> = (0..g.m()).collect();
    distributed_spanner_on_edges(g, &active, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{connectivity::is_connected, generators, stretch};

    fn verify_spanner(g: &Graph, result: &DistSpannerResult, k: usize) {
        let h = g.with_edge_ids(&result.edge_ids);
        if is_connected(g) {
            assert!(is_connected(&h), "distributed spanner must stay connected");
        }
        let s = stretch::max_stretch(g, &h);
        assert!(
            s <= (2 * k - 1) as f64 + 1e-9,
            "stretch {s} exceeds 2k-1 with k = {k}"
        );
    }

    #[test]
    fn produces_a_valid_spanner_on_dense_graph() {
        let g = generators::complete(64, 1.0);
        let k = (64f64).log2().ceil() as usize;
        let r = distributed_spanner(&g, &DistSpannerConfig::with_seed(3));
        verify_spanner(&g, &r, k);
        assert!(
            r.edge_ids.len() < g.m() / 2,
            "spanner should be much smaller than K_n"
        );
    }

    #[test]
    fn produces_a_valid_spanner_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generators::erdos_renyi_weighted(100, 0.2, 0.5, 2.0, seed);
            if !is_connected(&g) {
                continue;
            }
            let k = (100f64).log2().ceil() as usize;
            let r = distributed_spanner(&g, &DistSpannerConfig::with_seed(seed + 7));
            verify_spanner(&g, &r, k);
        }
    }

    #[test]
    fn round_and_message_bounds_match_theorem_2() {
        let n = 128usize;
        let g = generators::erdos_renyi(n, 0.15, 1.0, 11);
        let m = g.m() as u64;
        let k = (n as f64).log2().ceil();
        let r = distributed_spanner(&g, &DistSpannerConfig::with_seed(5));
        // Rounds: O(log^2 n). Constant chosen generously but meaningfully.
        let round_bound = (4.0 * k * k) as usize + 10;
        assert!(
            r.metrics.rounds <= round_bound,
            "rounds {} > {round_bound}",
            r.metrics.rounds
        );
        // Communication: O(m log n) messages.
        let msg_bound = 6 * m * k as u64 + 1000;
        assert!(
            r.metrics.messages <= msg_bound,
            "messages {} > {msg_bound}",
            r.metrics.messages
        );
        // Message size: O(log n) bits.
        assert!(r.metrics.max_message_bits <= 64);
    }

    #[test]
    fn restricting_to_a_subset_of_edges_only_uses_those_edges() {
        let g = generators::complete(30, 1.0);
        let active: Vec<EdgeId> = (0..g.m()).filter(|id| id % 2 == 0).collect();
        let r = distributed_spanner_on_edges(&g, &active, &DistSpannerConfig::with_seed(1));
        let active_set: std::collections::HashSet<_> = active.iter().copied().collect();
        for id in &r.edge_ids {
            assert!(
                active_set.contains(id),
                "edge {id} was not in the active set"
            );
        }
    }

    #[test]
    fn unsorted_active_set_is_normalised() {
        // The old per-vertex BTreeMaps sorted the active ids implicitly; the flat view
        // must behave identically when the caller passes an arbitrary order.
        let g = generators::erdos_renyi(60, 0.3, 1.0, 5);
        let cfg = DistSpannerConfig::with_seed(2);
        let sorted: Vec<EdgeId> = (0..g.m()).collect();
        let mut shuffled: Vec<EdgeId> = sorted.iter().rev().copied().collect();
        shuffled.extend_from_slice(&sorted[..10]); // duplicates too
        let a = distributed_spanner_on_edges(&g, &sorted, &cfg);
        let b = distributed_spanner_on_edges(&g, &shuffled, &cfg);
        assert_eq!(a.edge_ids, b.edge_ids);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn trivial_inputs() {
        let g = Graph::from_tuples(2, vec![(0, 1, 1.0)]).unwrap();
        let r = distributed_spanner(&g, &DistSpannerConfig::default());
        assert_eq!(r.edge_ids, vec![0]);
        let empty = Graph::new(4);
        let r = distributed_spanner(&empty, &DistSpannerConfig::default());
        assert!(r.edge_ids.is_empty());
    }
    use sgs_graph::Graph;

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(80, 0.2, 1.0, 9);
        let a = distributed_spanner(&g, &DistSpannerConfig::with_seed(4));
        let b = distributed_spanner(&g, &DistSpannerConfig::with_seed(4));
        assert_eq!(a.edge_ids, b.edge_ids);
        assert_eq!(a.metrics, b.metrics);
    }

    /// Regression test for the stale-sampled-flag bug: `VertState::sampled` must be
    /// reset at iteration start, so a vertex that misses the flag propagation acts as
    /// "not sampled" instead of replaying the previous iteration's flag.
    ///
    /// The shipped protocol always delivers the flag (propagation runs `it` rounds
    /// against a cluster radius of at most `it − 1`), so the miss is *simulated*: after
    /// the first iteration every cluster tree is severed (children lists cleared) in
    /// two otherwise identical runs, and in one of them every non-center vertex is
    /// additionally poisoned with `sampled = true`. With the reset, the poison is dead
    /// state and both runs must agree bit-for-bit; without it, the poisoned run
    /// broadcasts the stale flags in Phase B and selects a different spanner.
    #[test]
    fn stale_sampled_flag_is_reset_each_iteration() {
        let g = generators::erdos_renyi(120, 0.15, 1.0, 21);
        let cfg = DistSpannerConfig::with_seed(6);
        let active: Vec<EdgeId> = (0..g.m()).collect();

        let run = |poison: bool| -> (Vec<EdgeId>, NetworkMetrics) {
            let mut proto = Protocol::new(&g, &active, &cfg);
            proto.iteration(1);
            for children in proto.children.iter_mut() {
                children.clear(); // sever every cluster tree: propagation now misses
            }
            if poison {
                for (v, st) in proto.states.iter_mut().enumerate() {
                    if st.center != NONE32 && st.center != v as u32 {
                        st.sampled = true; // the stale flag the reset must erase
                    }
                }
            }
            for it in 2..proto.k {
                proto.iteration(it);
            }
            proto.finale();
            (proto.selected_edge_ids(), proto.net.metrics().clone())
        };

        let (clean_ids, clean_metrics) = run(false);
        let (poisoned_ids, poisoned_metrics) = run(true);
        assert_eq!(
            clean_ids, poisoned_ids,
            "a stale sampled flag leaked into the protocol output"
        );
        assert_eq!(clean_metrics, poisoned_metrics);
    }
}
