//! Distributed Baswana–Sen spanner (Theorem 2 of the paper).
//!
//! The algorithm is the same clustering process as the shared-memory version in
//! `sgs_spanner::baswana_sen`, expressed as a synchronous message-passing protocol on
//! the [`SyncNetwork`] simulator:
//!
//! * **Sampling propagation** — at iteration `i` every cluster center flips its coin
//!   locally and the outcome travels down the cluster tree, one hop per round. Cluster
//!   radii are bounded by the iteration index, so this costs `O(i)` rounds and messages
//!   only along tree edges.
//! * **Neighbor exchange** — one round in which every vertex tells its neighbors its
//!   cluster id and the cluster's sampled flag (`O(log n)`-bit messages, `O(m)` of them
//!   per iteration).
//! * **Local decision** — each vertex in an unsampled cluster picks the spanner edges
//!   exactly as in the sequential algorithm and notifies the affected neighbors
//!   (`Kill` / `Child` messages).
//!
//! Total: `O(log² n)` rounds, `O(m log n)` messages of `O(log n)` bits — the bounds of
//! Theorem 2, which experiment E2 measures.

use std::collections::BTreeMap;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use sgs_graph::{EdgeId, Graph, NodeId};

use crate::network::{MessageSize, NetworkMetrics, SyncNetwork};

/// Messages exchanged by the distributed spanner protocol.
#[derive(Debug, Clone)]
pub enum SpannerMsg {
    /// Propagated down a cluster tree: "our cluster's sampled flag for this iteration".
    SampledFlag {
        /// Whether the cluster was sampled.
        sampled: bool,
    },
    /// Neighbor exchange: "my cluster id and its sampled flag".
    ClusterInfo {
        /// Cluster center id of the sender (or `None` if unclustered).
        center: Option<NodeId>,
        /// Whether the sender's cluster is sampled this iteration.
        sampled: bool,
    },
    /// "The edge with this id is no longer under consideration."
    Kill {
        /// Global edge id being retired.
        edge: EdgeId,
    },
    /// "You are my parent in the cluster tree."
    Child,
}

impl MessageSize for SpannerMsg {
    fn size_bits(&self) -> usize {
        // Vertex/edge ids are O(log n) bits; we account 32 bits per id plus flag bits,
        // comfortably within the O(log n) message-size regime of Theorem 2.
        match self {
            SpannerMsg::SampledFlag { .. } => 1,
            SpannerMsg::ClusterInfo { .. } => 33,
            SpannerMsg::Kill { .. } => 32,
            SpannerMsg::Child => 1,
        }
    }
}

/// Configuration for the distributed spanner.
#[derive(Debug, Clone)]
pub struct DistSpannerConfig {
    /// Stretch parameter `k`; defaults to `⌈log₂ n⌉`.
    pub k: Option<usize>,
    /// RNG seed for the cluster sampling.
    pub seed: u64,
}

impl Default for DistSpannerConfig {
    fn default() -> Self {
        DistSpannerConfig {
            k: None,
            seed: 0xD157,
        }
    }
}

impl DistSpannerConfig {
    /// Config with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        DistSpannerConfig {
            seed,
            ..Default::default()
        }
    }

    /// Overrides the stretch parameter.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }
}

/// Result of the distributed spanner protocol.
#[derive(Debug, Clone)]
pub struct DistSpannerResult {
    /// Edge ids (into the input graph) selected for the spanner.
    pub edge_ids: Vec<EdgeId>,
    /// Communication metrics of the run.
    pub metrics: NetworkMetrics,
}

/// Per-vertex protocol state.
#[derive(Debug, Clone)]
struct VertexState {
    center: Option<NodeId>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    sampled: bool,
    /// Alive flags for the *incident* edges, keyed by global edge id.
    alive: BTreeMap<EdgeId, (NodeId, f64)>,
    /// Neighbor cluster info gathered in the most recent exchange.
    neighbor_info: BTreeMap<NodeId, (Option<NodeId>, bool)>,
}

/// Runs the distributed Baswana–Sen spanner on the communication graph `g`, restricted
/// to the edges listed in `active` (global edge ids). Passing all edge ids computes a
/// spanner of `g` itself; the bundle construction passes residual edge sets.
pub fn distributed_spanner_on_edges(
    g: &Graph,
    active: &[EdgeId],
    cfg: &DistSpannerConfig,
) -> DistSpannerResult {
    let n = g.n();
    let k = cfg
        .k
        .unwrap_or_else(|| (n.max(2) as f64).log2().ceil() as usize)
        .max(1);
    if n <= 2 || k <= 1 || active.is_empty() {
        return DistSpannerResult {
            edge_ids: active.to_vec(),
            metrics: NetworkMetrics::default(),
        };
    }

    let mut net: SyncNetwork<SpannerMsg> = SyncNetwork::new(g);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Initial state: every vertex is its own cluster; alive edges are the active ones.
    let mut state: Vec<VertexState> = (0..n)
        .map(|v| VertexState {
            center: Some(v),
            parent: None,
            children: Vec::new(),
            sampled: false,
            alive: BTreeMap::new(),
            neighbor_info: BTreeMap::new(),
        })
        .collect();
    for &id in active {
        let e = g.edge(id);
        state[e.u].alive.insert(id, (e.v, e.w));
        state[e.v].alive.insert(id, (e.u, e.w));
    }
    let mut in_spanner = vec![false; g.m()];

    for iteration in 1..k {
        // --- Phase A: cluster centers sample themselves; flags travel down the trees.
        let sampled_centers: Vec<bool> = (0..n)
            .map(|_| rng.gen::<f64>() < (n as f64).powf(-1.0 / k as f64))
            .collect();
        let mut knows_flag = vec![false; n];
        for v in 0..n {
            if state[v].center == Some(v) {
                state[v].sampled = sampled_centers[v];
                knows_flag[v] = true;
            }
        }
        // Propagate for `iteration` rounds (cluster radius is below the iteration index).
        for _ in 0..iteration {
            let mut to_send: Vec<(NodeId, NodeId, bool)> = Vec::new();
            for v in 0..n {
                if knows_flag[v] {
                    for &c in &state[v].children {
                        to_send.push((v, c, state[v].sampled));
                    }
                }
            }
            for (from, to, sampled) in to_send {
                net.send(from, to, SpannerMsg::SampledFlag { sampled });
            }
            net.advance_round();
            for v in 0..n {
                let inbox = net.take_inbox(v);
                for (from, msg) in inbox {
                    if let SpannerMsg::SampledFlag { sampled } = msg {
                        if state[v].parent == Some(from) && !knows_flag[v] {
                            state[v].sampled = sampled;
                            knows_flag[v] = true;
                        }
                    }
                }
            }
        }

        // --- Phase B: every clustered vertex tells its neighbors its cluster info.
        for (v, st) in state.iter().enumerate() {
            if st.center.is_some() {
                net.broadcast(
                    v,
                    SpannerMsg::ClusterInfo {
                        center: st.center,
                        sampled: st.sampled,
                    },
                );
            }
        }
        net.advance_round();
        for (v, st) in state.iter_mut().enumerate() {
            st.neighbor_info.clear();
            let inbox = net.take_inbox(v);
            for (from, msg) in inbox {
                if let SpannerMsg::ClusterInfo { center, sampled } = msg {
                    st.neighbor_info.insert(from, (center, sampled));
                }
            }
        }

        // --- Phase C: local decisions for vertices in unsampled clusters.
        #[derive(Default)]
        struct PhaseCOut {
            new_parent: Option<NodeId>,
            new_center: Option<NodeId>,
            unclustered: bool,
            add: Vec<EdgeId>,
            kill: Vec<(NodeId, EdgeId)>,
        }
        /// Edges from one vertex into a single adjacent cluster: the lightest edge
        /// (weight, id, neighbor endpoint) plus every member edge for kill bookkeeping.
        struct AdjacentCluster {
            min_w: f64,
            min_edge: EdgeId,
            min_neighbor: NodeId,
            members: Vec<(NodeId, EdgeId)>,
        }
        let mut outcomes: Vec<Option<PhaseCOut>> = (0..n).map(|_| None).collect();
        for v in 0..n {
            let c_v = match state[v].center {
                Some(c) => c,
                None => continue,
            };
            if state[v].sampled {
                continue; // members of sampled clusters carry over
            }
            // Group alive edges by the neighbor's cluster.
            let mut groups: BTreeMap<NodeId, AdjacentCluster> = BTreeMap::new();
            for (&eid, &(other, w)) in &state[v].alive {
                let (other_center, other_sampled) = match state[v].neighbor_info.get(&other) {
                    Some(&(Some(c), s)) => (c, s),
                    _ => continue,
                };
                if other_center == c_v {
                    continue;
                }
                let entry = groups.entry(other_center).or_insert(AdjacentCluster {
                    min_w: f64::INFINITY,
                    min_edge: EdgeId::MAX,
                    min_neighbor: other,
                    members: Vec::new(),
                });
                if w < entry.min_w {
                    entry.min_w = w;
                    entry.min_edge = eid;
                    entry.min_neighbor = other;
                }
                entry.members.push((other, eid));
                // Remember whether this cluster is sampled by stashing it via the flag
                // of any reporting member (all members report the same flag).
                let _ = other_sampled;
            }
            let mut out = PhaseCOut::default();
            if groups.is_empty() {
                out.unclustered = true;
                outcomes[v] = Some(out);
                continue;
            }
            // Lightest edge into a sampled adjacent cluster, deterministic tie-break.
            let best_sampled = groups
                .iter()
                .filter(|(_, grp)| {
                    matches!(
                        state[v].neighbor_info.get(&grp.min_neighbor),
                        Some(&(_, true))
                    )
                })
                .min_by(|a, b| {
                    a.1.min_w
                        .partial_cmp(&b.1.min_w)
                        .unwrap()
                        .then_with(|| a.0.cmp(b.0))
                })
                .map(|(&c, grp)| (c, grp.min_w, grp.min_edge, grp.min_neighbor));
            match best_sampled {
                None => {
                    for (_, grp) in groups {
                        out.add.push(grp.min_edge);
                        out.kill.extend(grp.members);
                    }
                    out.unclustered = true;
                }
                Some((c_star, w_star, best_eid, best_other)) => {
                    out.new_center = Some(c_star);
                    out.new_parent = Some(best_other);
                    out.add.push(best_eid);
                    for (c, grp) in groups {
                        if c == c_star {
                            out.kill.extend(grp.members);
                        } else if grp.min_w < w_star {
                            out.add.push(grp.min_edge);
                            out.kill.extend(grp.members);
                        }
                    }
                }
            }
            outcomes[v] = Some(out);
        }

        // Apply outcomes: send Kill / Child notifications, update local state.
        for v in 0..n {
            let out = match outcomes[v].take() {
                Some(o) => o,
                None => continue,
            };
            for eid in out.add {
                in_spanner[eid] = true;
            }
            for (other, eid) in &out.kill {
                state[v].alive.remove(eid);
                net.send(v, *other, SpannerMsg::Kill { edge: *eid });
            }
            if out.unclustered {
                state[v].center = None;
                state[v].parent = None;
                state[v].children.clear();
                // Edges of an unclustered vertex leave the protocol entirely.
                let remaining: Vec<(NodeId, EdgeId)> = state[v]
                    .alive
                    .iter()
                    .map(|(&eid, &(other, _))| (other, eid))
                    .collect();
                for (other, eid) in remaining {
                    state[v].alive.remove(&eid);
                    net.send(v, other, SpannerMsg::Kill { edge: eid });
                }
            } else if let (Some(c), Some(p)) = (out.new_center, out.new_parent) {
                state[v].center = Some(c);
                state[v].parent = Some(p);
                state[v].children.clear();
                net.send(v, p, SpannerMsg::Child);
            }
        }
        net.advance_round();
        for (v, st) in state.iter_mut().enumerate() {
            let inbox = net.take_inbox(v);
            for (from, msg) in inbox {
                match msg {
                    SpannerMsg::Kill { edge } => {
                        st.alive.remove(&edge);
                    }
                    SpannerMsg::Child => {
                        st.children.push(from);
                    }
                    _ => {}
                }
            }
        }

        // Intra-cluster edges retire locally (no message needed: both endpoints will see
        // the shared center in the next exchange). We drop them here to keep `alive`
        // small; each endpoint discovers the same fact symmetrically next iteration, so
        // we only drop those already observable from the latest exchange.
        for st in state.iter_mut() {
            if let Some(c_v) = st.center {
                let neighbor_info = &st.neighbor_info;
                st.alive.retain(|_, &mut (other, _)| {
                    !matches!(neighbor_info.get(&other), Some(&(Some(c_o), _)) if c_o == c_v)
                });
            }
        }
    }

    // --- Phase 2: final vertex–cluster joining.
    for (v, st) in state.iter().enumerate() {
        if st.center.is_some() {
            net.broadcast(
                v,
                SpannerMsg::ClusterInfo {
                    center: st.center,
                    sampled: st.sampled,
                },
            );
        }
    }
    net.advance_round();
    for (v, st) in state.iter_mut().enumerate() {
        st.neighbor_info.clear();
        let inbox = net.take_inbox(v);
        for (from, msg) in inbox {
            if let SpannerMsg::ClusterInfo { center, sampled } = msg {
                st.neighbor_info.insert(from, (center, sampled));
            }
        }
    }
    for st in state.iter() {
        let mut best: BTreeMap<NodeId, (f64, EdgeId)> = BTreeMap::new();
        for (&eid, &(other, w)) in &st.alive {
            let other_center = match st.neighbor_info.get(&other) {
                Some(&(Some(c), _)) => c,
                _ => continue,
            };
            if st.center == Some(other_center) {
                continue;
            }
            let entry = best
                .entry(other_center)
                .or_insert((f64::INFINITY, EdgeId::MAX));
            if w < entry.0 {
                *entry = (w, eid);
            }
        }
        for (_, (_, eid)) in best {
            in_spanner[eid] = true;
        }
    }

    let mut edge_ids: Vec<EdgeId> = in_spanner
        .iter()
        .enumerate()
        .filter_map(|(id, &inb)| if inb { Some(id) } else { None })
        .collect();
    edge_ids.sort_unstable();
    DistSpannerResult {
        edge_ids,
        metrics: net.metrics().clone(),
    }
}

/// Runs the distributed Baswana–Sen spanner on all edges of `g`.
pub fn distributed_spanner(g: &Graph, cfg: &DistSpannerConfig) -> DistSpannerResult {
    let active: Vec<EdgeId> = (0..g.m()).collect();
    distributed_spanner_on_edges(g, &active, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{connectivity::is_connected, generators, stretch};

    fn verify_spanner(g: &Graph, result: &DistSpannerResult, k: usize) {
        let h = g.with_edge_ids(&result.edge_ids);
        if is_connected(g) {
            assert!(is_connected(&h), "distributed spanner must stay connected");
        }
        let s = stretch::max_stretch(g, &h);
        assert!(
            s <= (2 * k - 1) as f64 + 1e-9,
            "stretch {s} exceeds 2k-1 with k = {k}"
        );
    }

    #[test]
    fn produces_a_valid_spanner_on_dense_graph() {
        let g = generators::complete(64, 1.0);
        let k = (64f64).log2().ceil() as usize;
        let r = distributed_spanner(&g, &DistSpannerConfig::with_seed(3));
        verify_spanner(&g, &r, k);
        assert!(
            r.edge_ids.len() < g.m() / 2,
            "spanner should be much smaller than K_n"
        );
    }

    #[test]
    fn produces_a_valid_spanner_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generators::erdos_renyi_weighted(100, 0.2, 0.5, 2.0, seed);
            if !is_connected(&g) {
                continue;
            }
            let k = (100f64).log2().ceil() as usize;
            let r = distributed_spanner(&g, &DistSpannerConfig::with_seed(seed + 7));
            verify_spanner(&g, &r, k);
        }
    }

    #[test]
    fn round_and_message_bounds_match_theorem_2() {
        let n = 128usize;
        let g = generators::erdos_renyi(n, 0.15, 1.0, 11);
        let m = g.m() as u64;
        let k = (n as f64).log2().ceil();
        let r = distributed_spanner(&g, &DistSpannerConfig::with_seed(5));
        // Rounds: O(log^2 n). Constant chosen generously but meaningfully.
        let round_bound = (4.0 * k * k) as usize + 10;
        assert!(
            r.metrics.rounds <= round_bound,
            "rounds {} > {round_bound}",
            r.metrics.rounds
        );
        // Communication: O(m log n) messages.
        let msg_bound = 6 * m * k as u64 + 1000;
        assert!(
            r.metrics.messages <= msg_bound,
            "messages {} > {msg_bound}",
            r.metrics.messages
        );
        // Message size: O(log n) bits.
        assert!(r.metrics.max_message_bits <= 64);
    }

    #[test]
    fn restricting_to_a_subset_of_edges_only_uses_those_edges() {
        let g = generators::complete(30, 1.0);
        let active: Vec<EdgeId> = (0..g.m()).filter(|id| id % 2 == 0).collect();
        let r = distributed_spanner_on_edges(&g, &active, &DistSpannerConfig::with_seed(1));
        let active_set: std::collections::HashSet<_> = active.iter().copied().collect();
        for id in &r.edge_ids {
            assert!(
                active_set.contains(id),
                "edge {id} was not in the active set"
            );
        }
    }

    #[test]
    fn trivial_inputs() {
        let g = Graph::from_tuples(2, vec![(0, 1, 1.0)]).unwrap();
        let r = distributed_spanner(&g, &DistSpannerConfig::default());
        assert_eq!(r.edge_ids, vec![0]);
        let empty = Graph::new(4);
        let r = distributed_spanner(&empty, &DistSpannerConfig::default());
        assert!(r.edge_ids.is_empty());
    }
    use sgs_graph::Graph;

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(80, 0.2, 1.0, 9);
        let a = distributed_spanner(&g, &DistSpannerConfig::with_seed(4));
        let b = distributed_spanner(&g, &DistSpannerConfig::with_seed(4));
        assert_eq!(a.edge_ids, b.edge_ids);
        assert_eq!(a.metrics, b.metrics);
    }
}
