//! t-bundle spanners (Definition 1 of the paper).
//!
//! A t-bundle spanner of `G` is `H = H₁ + … + H_t` where `H_i` is a spanner of
//! `G − Σ_{j<i} H_j`. Lemma 1 shows that every edge *outside* the bundle has
//! `w_e · R_e[G] ≤ log n / t`: the `t` edge-disjoint spanner paths between its endpoints
//! act as parallel resistors, certifying a small effective resistance. That certificate
//! is what allows Algorithm 1 to sample off-bundle edges uniformly.
//!
//! The construction below peels spanners iteratively (Section 3.1): edges already placed
//! in earlier components simply "declare themselves out" of later iterations, which is
//! why the construction parallelises/distributes as easily as a single spanner.
//!
//! Implementation-wise the peeling runs on a [`SpannerEngine`]: the flat CSR incidence
//! over the edge view is built **once** per bundle and compacted in place after each
//! component, instead of re-collecting the remaining edges and rebuilding a
//! `Vec<Vec<usize>>` incidence structure `t` times.

use sgs_graph::{EdgeId, Graph};

use crate::baswana_sen::{SpannerConfig, SpannerEngine, SpannerPhases, SpannerResult};

/// Configuration for the t-bundle construction.
#[derive(Debug, Clone)]
pub struct BundleConfig {
    /// Number of spanner components `t`.
    pub t: usize,
    /// Configuration forwarded to every per-component spanner call (the seed is
    /// perturbed per component so components draw independent randomness).
    pub spanner: SpannerConfig,
}

impl BundleConfig {
    /// Bundle of `t` components with default spanner settings.
    pub fn new(t: usize) -> Self {
        BundleConfig {
            t,
            spanner: SpannerConfig::default(),
        }
    }

    /// Sets the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.spanner.seed = seed;
        self
    }

    /// Enables or disables rayon parallelism inside each spanner call.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.spanner.parallel = parallel;
        self
    }
}

/// Result of a t-bundle construction.
#[derive(Debug, Clone)]
pub struct BundleResult {
    /// Edge ids of each component `H_i` (ids into the input graph).
    pub components: Vec<Vec<EdgeId>>,
    /// Membership mask over the input graph's edges: `true` if the edge belongs to any
    /// component of the bundle.
    pub in_bundle: Vec<bool>,
    /// Total number of edges in the bundle.
    pub bundle_size: usize,
    /// Accumulated spanner work (edge examinations) across components; experiment E3
    /// compares this against the `O(t · m log n)` bound of Corollary 2.
    pub work: u64,
    /// Accumulated per-phase wall-clock across components (a measurement, excluded
    /// from determinism comparisons — see [`SpannerPhases`]).
    pub phases: SpannerPhases,
}

impl BundleResult {
    /// The bundle `H = Σ H_i` as a graph on the same vertex set.
    pub fn bundle_graph(&self, g: &Graph) -> Graph {
        let mut ids: Vec<EdgeId> = Vec::with_capacity(self.bundle_size);
        ids.extend(
            self.in_bundle
                .iter()
                .enumerate()
                .filter_map(|(id, &inb)| if inb { Some(id) } else { None }),
        );
        g.with_edge_ids(&ids)
    }

    /// Ids of the edges of `g` that are *not* in the bundle (the uniformly sampled set
    /// of Algorithm 1).
    pub fn off_bundle_ids(&self) -> Vec<EdgeId> {
        let mut ids: Vec<EdgeId> = Vec::with_capacity(self.off_bundle_count());
        ids.extend(
            self.in_bundle
                .iter()
                .enumerate()
                .filter_map(|(id, &inb)| if inb { None } else { Some(id) }),
        );
        ids
    }

    /// Number of edges outside the bundle.
    pub fn off_bundle_count(&self) -> usize {
        self.in_bundle.len() - self.bundle_size
    }
}

/// Computes a t-bundle spanner of `g`.
///
/// Each component is a Baswana–Sen spanner of the graph formed by the edges not yet
/// assigned to earlier components. The construction stops early if the remaining graph
/// runs out of edges (every edge is then in the bundle, and the Lemma 1 certificate is
/// vacuously unnecessary).
pub fn t_bundle(g: &Graph, cfg: &BundleConfig) -> BundleResult {
    // One engine for the whole bundle: the CSR incidence is compacted in place as
    // components are peeled off, never rebuilt.
    let mut engine = SpannerEngine::from_graph(g);
    t_bundle_on_engine(&mut engine, cfg)
}

/// Computes a t-bundle on an engine that has already been pointed at the graph (via
/// [`SpannerEngine::from_graph`] / [`SpannerEngine::reset_from_graph`]).
///
/// This is the re-entrant entry used by batch pipelines: the engine's view/CSR/mask
/// allocations survive across calls, so repeated bundles over a stream of graphs stop
/// paying the `O(m)` setup allocation per call. The engine's view is consumed
/// (compacted) exactly as by [`t_bundle`]; results are byte-identical.
pub fn t_bundle_on_engine(engine: &mut SpannerEngine, cfg: &BundleConfig) -> BundleResult {
    let m = engine.m();
    let mut in_bundle = vec![false; m];
    // Every component consumes at least one edge, so at most `m` of the `t` requested
    // components can materialise — never preallocate by raw `t` (the paper sizing at
    // tiny ε resolves to astronomically large `t`).
    let mut components = Vec::with_capacity(cfg.t.min(m));
    let mut work = 0u64;
    let mut phases = SpannerPhases::default();

    for i in 0..cfg.t {
        if engine.is_empty() {
            break;
        }
        let mut spanner_cfg = cfg.spanner.clone();
        spanner_cfg.seed = cfg
            .spanner
            .seed
            .wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let SpannerResult {
            edge_ids,
            work: w,
            phases: p,
            ..
        } = engine.spanner(&spanner_cfg);
        work += w;
        phases.absorb(&p);
        for &id in &edge_ids {
            in_bundle[id] = true;
        }
        // Drop the edges that entered this component from the engine's view.
        engine.peel_spanner_edges();
        components.push(edge_ids);
    }

    let bundle_size = in_bundle.iter().filter(|&&b| b).count();
    BundleResult {
        components,
        in_bundle,
        bundle_size,
        work,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{connectivity::is_connected, generators, stretch};

    #[test]
    fn components_are_edge_disjoint() {
        let g = generators::erdos_renyi(120, 0.3, 1.0, 3);
        let b = t_bundle(&g, &BundleConfig::new(4).with_seed(1));
        let mut seen = vec![false; g.m()];
        for comp in &b.components {
            for &id in comp {
                assert!(!seen[id], "edge {id} appears in two components");
                seen[id] = true;
            }
        }
        let total: usize = b.components.iter().map(Vec::len).sum();
        assert_eq!(total, b.bundle_size);
        assert_eq!(b.off_bundle_count(), g.m() - b.bundle_size);
    }

    #[test]
    fn each_component_is_a_spanner_of_the_residual_graph() {
        let g = generators::complete(60, 1.0);
        let b = t_bundle(&g, &BundleConfig::new(3).with_seed(7));
        let bound = 2.0 * (60f64).log2().ceil() + 1e-9;
        // Residual graph before component i: edges not in components 0..i.
        let mut assigned = vec![false; g.m()];
        for comp in &b.components {
            let residual_ids: Vec<usize> = (0..g.m()).filter(|&id| !assigned[id]).collect();
            let residual = g.with_edge_ids(&residual_ids);
            // Map component edge ids into the residual graph's index space.
            let comp_graph = g.with_edge_ids(comp);
            if is_connected(&residual) {
                let s = stretch::max_stretch(&residual, &comp_graph);
                assert!(s <= bound, "component stretch {s} exceeds {bound}");
            }
            for &id in comp {
                assigned[id] = true;
            }
        }
    }

    #[test]
    fn bundle_size_scales_roughly_linearly_in_t() {
        let g = generators::erdos_renyi(200, 0.4, 1.0, 9);
        let b1 = t_bundle(&g, &BundleConfig::new(1).with_seed(5));
        let b4 = t_bundle(&g, &BundleConfig::new(4).with_seed(5));
        assert!(b4.bundle_size > b1.bundle_size);
        // Corollary 2: a t-bundle has O(t · n log n) edges in expectation. Check against
        // a generous constant rather than against the 1-bundle (later components are
        // built on sparser residual graphs and can individually be larger).
        let budget = (4.0 * 6.0 * 200.0 * (200f64).log2()) as usize;
        assert!(
            b4.bundle_size <= budget,
            "4-bundle ({}) exceeds the O(t n log n) budget ({budget})",
            b4.bundle_size
        );
    }

    #[test]
    fn huge_t_swallows_the_whole_graph() {
        let g = generators::grid2d(8, 8, 1.0);
        // A grid is sparse: a handful of components exhausts every edge.
        let b = t_bundle(&g, &BundleConfig::new(50).with_seed(2));
        assert_eq!(b.bundle_size, g.m());
        assert!(b.components.len() < 50, "construction should stop early");
        assert!(b.off_bundle_ids().is_empty());
    }

    #[test]
    fn off_bundle_ids_partition_the_edge_set() {
        let g = generators::erdos_renyi(100, 0.3, 1.0, 4);
        let b = t_bundle(&g, &BundleConfig::new(2).with_seed(11));
        let off = b.off_bundle_ids();
        assert_eq!(off.len() + b.bundle_size, g.m());
        for id in off {
            assert!(!b.in_bundle[id]);
        }
    }

    #[test]
    fn bundle_graph_contains_exactly_the_bundle_edges() {
        let g = generators::erdos_renyi(80, 0.25, 1.0, 21);
        let b = t_bundle(&g, &BundleConfig::new(3).with_seed(3));
        let bg = b.bundle_graph(&g);
        assert_eq!(bg.m(), b.bundle_size);
        assert_eq!(bg.n(), g.n());
    }

    #[test]
    fn zero_components_gives_empty_bundle() {
        let g = generators::complete(20, 1.0);
        let b = t_bundle(&g, &BundleConfig::new(0).with_seed(1));
        assert_eq!(b.bundle_size, 0);
        assert!(b.components.is_empty());
        assert_eq!(b.off_bundle_count(), g.m());
    }

    #[test]
    fn reused_engine_is_byte_identical_to_fresh_engine() {
        // A single engine reset across a sequence of different graphs must reproduce
        // exactly what a fresh engine per graph produces — this is the contract the
        // re-entrant sparsify path (`SparsifyEngine` / `sgs-stream`) relies on.
        let graphs = [
            generators::erdos_renyi(150, 0.2, 1.0, 3),
            generators::complete(50, 1.0),
            generators::grid2d(12, 12, 1.0),
            generators::erdos_renyi(200, 0.1, 1.0, 8),
        ];
        let cfg = BundleConfig::new(3).with_seed(17);
        let mut engine = crate::SpannerEngine::empty();
        for g in &graphs {
            engine.reset_from_graph(g);
            let reused = t_bundle_on_engine(&mut engine, &cfg);
            let fresh = t_bundle(g, &cfg);
            assert_eq!(reused.in_bundle, fresh.in_bundle);
            assert_eq!(reused.components, fresh.components);
            assert_eq!(reused.bundle_size, fresh.bundle_size);
            assert_eq!(reused.work, fresh.work);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(150, 0.2, 1.0, 8);
        let a = t_bundle(&g, &BundleConfig::new(3).with_seed(42));
        let b = t_bundle(&g, &BundleConfig::new(3).with_seed(42));
        assert_eq!(a.in_bundle, b.in_bundle);
    }

    #[test]
    fn bundle_size_and_off_bundle_count_are_consistent() {
        // Direct consistency check of the preallocated accessors: sizes reported by
        // `bundle_size`, `off_bundle_count`, `off_bundle_ids` and the mask must agree,
        // and the two id lists must partition 0..m.
        for (t, seed) in [(1usize, 5u64), (3, 5), (4, 77)] {
            let g = generators::erdos_renyi(90, 0.3, 1.0, 13);
            let b = t_bundle(&g, &BundleConfig::new(t).with_seed(seed));
            let mask_count = b.in_bundle.iter().filter(|&&x| x).count();
            assert_eq!(b.bundle_size, mask_count);
            assert_eq!(b.off_bundle_count(), g.m() - mask_count);
            let off = b.off_bundle_ids();
            assert_eq!(off.len(), b.off_bundle_count());
            // `with_capacity` guarantees *at least* the request; growth past it would
            // mean the up-front sizing was wrong.
            assert!(
                off.capacity() >= b.off_bundle_count(),
                "undersized prealloc"
            );
            let bg = b.bundle_graph(&g);
            assert_eq!(bg.m(), b.bundle_size);
            let mut all: Vec<usize> = off;
            all.extend((0..g.m()).filter(|&id| b.in_bundle[id]));
            all.sort_unstable();
            assert_eq!(all, (0..g.m()).collect::<Vec<_>>());
        }
    }
}
