//! The Baswana–Sen randomized spanner construction.
//!
//! Reference: S. Baswana and S. Sen, *A simple and linear time randomized algorithm for
//! computing sparse spanners in weighted graphs*, Random Structures & Algorithms 2007
//! (reference [1] of the paper). The algorithm computes a `(2k − 1)`-spanner with
//! `O(k · n^{1 + 1/k})` edges in expectation via `k − 1` rounds of randomized cluster
//! growing followed by a vertex–cluster joining phase.
//!
//! With `k = ⌈log₂ n⌉` the expected size is `O(n log n)` and the stretch is below
//! `2 log₂ n`, which is exactly the "spanner" object of the paper (Theorem 1). The
//! per-vertex decisions inside one round depend only on the previous round's clustering
//! and on each vertex's own incident edges, so they parallelise trivially — this is the
//! CRCW PRAM adaptation the paper leans on (Corollary 2), realised here with rayon.

use std::collections::BTreeMap;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use sgs_graph::{EdgeId, Graph, NodeId};

/// Configuration for the Baswana–Sen construction.
#[derive(Debug, Clone)]
pub struct SpannerConfig {
    /// Stretch parameter `k`; the spanner has stretch `2k − 1`. Defaults to
    /// `⌈log₂ n⌉` when `None`, matching the paper's `log n`-spanner.
    pub k: Option<usize>,
    /// RNG seed; cluster sampling is the only source of randomness.
    pub seed: u64,
    /// Process vertices of each round in parallel with rayon.
    pub parallel: bool,
}

impl Default for SpannerConfig {
    fn default() -> Self {
        SpannerConfig {
            k: None,
            seed: 0xBA5EBA11,
            parallel: true,
        }
    }
}

impl SpannerConfig {
    /// Config with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        SpannerConfig {
            seed,
            ..Default::default()
        }
    }

    /// Overrides the stretch parameter `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Enables or disables rayon parallelism.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Result of a spanner construction.
#[derive(Debug, Clone)]
pub struct SpannerResult {
    /// Ids (into the input graph / edge view) of the edges kept in the spanner,
    /// deduplicated and sorted.
    pub edge_ids: Vec<EdgeId>,
    /// Number of clustering rounds executed (`k − 1` plus the joining phase).
    pub rounds: usize,
    /// Work counter: total number of edge examinations across all rounds. Experiment E1
    /// compares this against the `O(m log n)` bound of Theorem 1.
    pub work: u64,
}

impl SpannerResult {
    /// Materialises the spanner as a graph over the same vertex set as `g`.
    pub fn to_graph(&self, g: &Graph) -> Graph {
        g.with_edge_ids(&self.edge_ids)
    }
}

/// A lightweight edge view: `(original id, u, v, w)`. The bundle construction feeds
/// progressively smaller views into the same spanner code without copying graphs.
pub type EdgeView = (EdgeId, NodeId, NodeId, f64);

/// Computes a Baswana–Sen spanner of `g`.
pub fn baswana_sen_spanner(g: &Graph, cfg: &SpannerConfig) -> SpannerResult {
    let view: Vec<EdgeView> = g
        .edges()
        .iter()
        .enumerate()
        .map(|(id, e)| (id, e.u, e.v, e.w))
        .collect();
    baswana_sen_on_view(g.n(), &view, cfg)
}

/// Per-vertex decision computed within one clustering round.
#[derive(Debug, Default, Clone)]
struct Decision {
    new_center: Option<NodeId>,
    became_unclustered: bool,
    add: Vec<usize>,
    kill: Vec<usize>,
    work: u64,
}

/// Computes a Baswana–Sen spanner over an explicit edge view on `n` vertices.
///
/// Returns original edge ids (the first component of each view entry).
pub fn baswana_sen_on_view(n: usize, view: &[EdgeView], cfg: &SpannerConfig) -> SpannerResult {
    let m = view.len();
    let k = cfg
        .k
        .unwrap_or_else(|| (n.max(2) as f64).log2().ceil() as usize)
        .max(1);
    if n <= 2 || k <= 1 || m == 0 {
        // Stretch-1 spanner (or trivial graph): keep everything.
        let mut ids: Vec<EdgeId> = view.iter().map(|&(id, _, _, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        return SpannerResult {
            edge_ids: ids,
            rounds: 0,
            work: m as u64,
        };
    }

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let sample_prob = (n as f64).powf(-1.0 / k as f64);

    // Incidence lists over the view (indices into `view`).
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (idx, &(_, u, v, _)) in view.iter().enumerate() {
        incident[u].push(idx);
        incident[v].push(idx);
    }

    let mut center: Vec<Option<NodeId>> = (0..n).map(Some).collect();
    let mut alive = vec![true; m];
    let mut in_spanner = vec![false; m];
    let mut total_work = 0u64;
    let mut rounds = 0usize;

    for _round in 1..k {
        rounds += 1;
        // Sample cluster centers for this round.
        let sampled: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < sample_prob).collect();

        let process = |v: NodeId| -> Option<Decision> {
            let c_v = center[v]?;
            if sampled[c_v] {
                // Vertices in sampled clusters carry over unchanged.
                return None;
            }
            let mut dec = Decision {
                new_center: None,
                ..Default::default()
            };
            // Group alive incident edges by the cluster of the other endpoint. A BTreeMap
            // keeps the iteration order deterministic, so runs are reproducible across
            // seeds and across the parallel/sequential code paths.
            let mut groups: BTreeMap<NodeId, (f64, usize, Vec<usize>)> = BTreeMap::new();
            for &idx in &incident[v] {
                dec.work += 1;
                if !alive[idx] {
                    continue;
                }
                let (_, a, b, w) = view[idx];
                let other = if a == v { b } else { a };
                let c_other = match center[other] {
                    Some(c) => c,
                    None => continue, // should not happen: unclustered vertices have no alive edges
                };
                if c_other == c_v {
                    continue; // intra-cluster edges are removed lazily below
                }
                let entry =
                    groups
                        .entry(c_other)
                        .or_insert((f64::INFINITY, usize::MAX, Vec::new()));
                if w < entry.0 {
                    entry.0 = w;
                    entry.1 = idx;
                }
                entry.2.push(idx);
            }
            if groups.is_empty() {
                dec.became_unclustered = true;
                return Some(dec);
            }
            // Lightest edge into a *sampled* adjacent cluster, if any. Ties are broken
            // by cluster id so the choice is deterministic.
            let best_sampled = groups.iter().filter(|(c, _)| sampled[**c]).min_by(|a, b| {
                a.1 .0
                    .partial_cmp(&b.1 .0)
                    .unwrap()
                    .then_with(|| a.0.cmp(b.0))
            });
            match best_sampled {
                None => {
                    // No sampled neighbor cluster: keep one lightest edge per adjacent
                    // cluster and discard the rest; v leaves the clustering.
                    for (_, (_, best_idx, all)) in groups {
                        dec.add.push(best_idx);
                        dec.kill.extend(all);
                    }
                    dec.became_unclustered = true;
                }
                Some((&c_star, &(w_star, best_idx_star, _))) => {
                    // Join the sampled cluster through its lightest edge.
                    dec.new_center = Some(c_star);
                    dec.add.push(best_idx_star);
                    for (c, (w_c, best_idx, all)) in groups {
                        if c == c_star {
                            dec.kill.extend(all);
                        } else if w_c < w_star {
                            dec.add.push(best_idx);
                            dec.kill.extend(all);
                        }
                    }
                }
            }
            Some(dec)
        };

        let mut decisions: Vec<(NodeId, Decision)> = if cfg.parallel {
            (0..n)
                .into_par_iter()
                .filter_map(|v| process(v).map(|d| (v, d)))
                .collect()
        } else {
            (0..n).filter_map(|v| process(v).map(|d| (v, d))).collect()
        };
        // Apply in vertex order so the parallel and sequential paths are bit-identical.
        decisions.sort_by_key(|(v, _)| *v);

        // Apply the decisions sequentially (cheap: proportional to edges touched).
        let mut new_center = center.clone();
        for (v, dec) in decisions {
            total_work += dec.work;
            for idx in dec.add {
                in_spanner[idx] = true;
            }
            for idx in dec.kill {
                alive[idx] = false;
            }
            if dec.became_unclustered {
                new_center[v] = None;
                // Any still-alive incident edge of an unclustered vertex is dead weight;
                // they were all either added or killed above, but parallel edges from
                // the same group may linger — kill them defensively.
                for &idx in &incident[v] {
                    if alive[idx] && !in_spanner[idx] {
                        let (_, a, b, _) = view[idx];
                        let other = if a == v { b } else { a };
                        if center[other].is_some() {
                            alive[idx] = false;
                        }
                    }
                }
            } else if let Some(c) = dec.new_center {
                new_center[v] = Some(c);
            }
        }
        center = new_center;

        // Remove intra-cluster edges of the new clustering.
        for (idx, &(_, u, v, _)) in view.iter().enumerate() {
            if alive[idx] {
                total_work += 1;
                if let (Some(cu), Some(cv)) = (center[u], center[v]) {
                    if cu == cv {
                        alive[idx] = false;
                    }
                }
            }
        }
    }

    // Phase 2: vertex–cluster joining on the final clustering.
    rounds += 1;
    let joining = |v: NodeId| -> Decision {
        let mut dec = Decision::default();
        let mut best: BTreeMap<NodeId, (f64, usize)> = BTreeMap::new();
        for &idx in &incident[v] {
            dec.work += 1;
            if !alive[idx] {
                continue;
            }
            let (_, a, b, w) = view[idx];
            let other = if a == v { b } else { a };
            if let Some(c_other) = center[other] {
                if center[v] == Some(c_other) {
                    continue;
                }
                let entry = best.entry(c_other).or_insert((f64::INFINITY, usize::MAX));
                if w < entry.0 {
                    *entry = (w, idx);
                }
            }
        }
        for (_, (_, idx)) in best {
            dec.add.push(idx);
        }
        dec
    };
    let final_decisions: Vec<Decision> = if cfg.parallel {
        (0..n).into_par_iter().map(joining).collect()
    } else {
        (0..n).map(joining).collect()
    };
    for dec in final_decisions {
        total_work += dec.work;
        for idx in dec.add {
            in_spanner[idx] = true;
        }
    }

    let mut edge_ids: Vec<EdgeId> = view
        .iter()
        .enumerate()
        .filter_map(|(idx, &(id, _, _, _))| if in_spanner[idx] { Some(id) } else { None })
        .collect();
    edge_ids.sort_unstable();
    edge_ids.dedup();
    SpannerResult {
        edge_ids,
        rounds,
        work: total_work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{connectivity::is_connected, generators, stretch};

    fn check_spanner_invariants(g: &Graph, cfg: &SpannerConfig) -> (usize, f64) {
        let result = baswana_sen_spanner(g, cfg);
        let h = result.to_graph(g);
        // The spanner must span every connected component.
        if is_connected(g) {
            assert!(is_connected(&h), "spanner must be connected when G is");
        }
        let k = cfg
            .k
            .unwrap_or_else(|| (g.n() as f64).log2().ceil() as usize)
            .max(1);
        let bound = (2 * k - 1) as f64 + 1e-9;
        let max_stretch = stretch::max_stretch(g, &h);
        assert!(
            max_stretch <= bound,
            "stretch {max_stretch} exceeds 2k-1 = {bound} (k = {k})"
        );
        (h.m(), max_stretch)
    }

    #[test]
    fn spanner_of_sparse_graph_keeps_almost_everything() {
        let g = generators::cycle(30, 1.0);
        let (m, _) = check_spanner_invariants(&g, &SpannerConfig::with_seed(1));
        assert!(m >= 29, "cycle spanner keeps at least a spanning structure");
    }

    #[test]
    fn spanner_of_complete_graph_is_much_smaller() {
        let n = 120;
        let g = generators::complete(n, 1.0);
        let cfg = SpannerConfig::with_seed(7);
        let (m, _) = check_spanner_invariants(&g, &cfg);
        // O(n log n) edges versus n(n-1)/2 ≈ 7140.
        let k = (n as f64).log2().ceil();
        let budget = (6.0 * n as f64 * k) as usize;
        assert!(m <= budget, "spanner size {m} exceeds budget {budget}");
        assert!(m < g.m() / 3, "spanner should be much sparser than K_n");
    }

    #[test]
    fn stretch_bound_holds_on_weighted_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi_weighted(150, 0.15, 0.1, 10.0, seed);
            if !is_connected(&g) {
                continue;
            }
            check_spanner_invariants(&g, &SpannerConfig::with_seed(seed * 31 + 1));
        }
    }

    #[test]
    fn explicit_small_k_gives_denser_spanner_with_smaller_stretch() {
        let g = generators::erdos_renyi(200, 0.2, 1.0, 3);
        let loose = baswana_sen_spanner(&g, &SpannerConfig::with_seed(5));
        let tight = baswana_sen_spanner(&g, &SpannerConfig::with_seed(5).with_k(2));
        // k = 2 gives a 3-spanner: more edges, tighter stretch.
        let h_tight = tight.to_graph(&g);
        let s = stretch::max_stretch(&g, &h_tight);
        assert!(s <= 3.0 + 1e-9, "3-spanner stretch was {s}");
        assert!(tight.edge_ids.len() >= loose.edge_ids.len() / 2);
    }

    #[test]
    fn parallel_and_sequential_agree_for_same_seed() {
        let g = generators::erdos_renyi(150, 0.15, 1.0, 11);
        let par = baswana_sen_spanner(&g, &SpannerConfig::with_seed(9).with_parallel(true));
        let seq = baswana_sen_spanner(&g, &SpannerConfig::with_seed(9).with_parallel(false));
        assert_eq!(par.edge_ids, seq.edge_ids);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::preferential_attachment(300, 4, 1.0, 2);
        let a = baswana_sen_spanner(&g, &SpannerConfig::with_seed(3));
        let b = baswana_sen_spanner(&g, &SpannerConfig::with_seed(3));
        let c = baswana_sen_spanner(&g, &SpannerConfig::with_seed(4));
        assert_eq!(a.edge_ids, b.edge_ids);
        assert!(a.edge_ids != c.edge_ids || a.edge_ids.len() == g.m());
    }

    #[test]
    fn work_is_near_linear_in_m_per_round() {
        let g = generators::erdos_renyi(300, 0.1, 1.0, 5);
        let result = baswana_sen_spanner(&g, &SpannerConfig::with_seed(1));
        let k = (300f64).log2().ceil() as u64;
        // Work is bounded by a small constant times k · m (Theorem 1: O(m log n)).
        assert!(
            result.work <= 8 * k * g.m() as u64 + 1000,
            "work {} vs bound {}",
            result.work,
            8 * k * g.m() as u64
        );
        assert!(result.rounds as u64 <= k + 1);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = Graph::new(0);
        let r = baswana_sen_spanner(&g, &SpannerConfig::default());
        assert!(r.edge_ids.is_empty());
        let g = Graph::new(5);
        let r = baswana_sen_spanner(&g, &SpannerConfig::default());
        assert!(r.edge_ids.is_empty());
        let g = Graph::from_tuples(2, vec![(0, 1, 3.0)]).unwrap();
        let r = baswana_sen_spanner(&g, &SpannerConfig::default());
        assert_eq!(r.edge_ids, vec![0]);
    }

    #[test]
    fn disconnected_graph_gets_spanner_per_component() {
        let mut g = generators::complete(20, 1.0);
        // Add a second complete component on 20 more vertices.
        let other = generators::complete(20, 1.0);
        let mut big = Graph::new(40);
        for e in g.edges() {
            big.add_edge(e.u, e.v, e.w).unwrap();
        }
        for e in other.edges() {
            big.add_edge(20 + e.u, 20 + e.v, e.w).unwrap();
        }
        g = big;
        let r = baswana_sen_spanner(&g, &SpannerConfig::with_seed(2));
        let h = r.to_graph(&g);
        let (labels, count) = sgs_graph::connectivity::connected_components(&h);
        assert_eq!(count, 2);
        // Components must not be merged or split.
        assert_eq!(labels[0], labels[19]);
        assert_eq!(labels[20], labels[39]);
        assert_ne!(labels[0], labels[20]);
        let s = stretch::max_stretch(&g, &h);
        assert!(s <= 2.0 * (40f64).log2().ceil() + 1.0);
    }
}
