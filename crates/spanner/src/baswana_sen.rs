//! The Baswana–Sen randomized spanner construction.
//!
//! Reference: S. Baswana and S. Sen, *A simple and linear time randomized algorithm for
//! computing sparse spanners in weighted graphs*, Random Structures & Algorithms 2007
//! (reference [1] of the paper). The algorithm computes a `(2k − 1)`-spanner with
//! `O(k · n^{1 + 1/k})` edges in expectation via `k − 1` rounds of randomized cluster
//! growing followed by a vertex–cluster joining phase.
//!
//! With `k = ⌈log₂ n⌉` the expected size is `O(n log n)` and the stretch is below
//! `2 log₂ n`, which is exactly the "spanner" object of the paper (Theorem 1). The
//! per-vertex decisions inside one round depend only on the previous round's clustering
//! and on each vertex's own incident edges, so they parallelise trivially — this is the
//! CRCW PRAM adaptation the paper leans on (Corollary 2), realised here with rayon.
//!
//! # Engine design (allocation-free hot path)
//!
//! The implementation is built for zero per-vertex heap traffic:
//!
//! * **Flat CSR incidence** ([`ViewCsr`]): `offsets` + `indices` arrays built once per
//!   view (counting sort), instead of `Vec<Vec<usize>>`. The t-bundle construction
//!   *compacts* the arrays in place as edges are peeled into components, so the
//!   structure is built once per bundle, not once per component.
//! * **Cluster-stamped scratch** ([`RoundScratch`]): the per-vertex grouping of incident
//!   edges by neighbouring cluster uses `last_seen`/`best_w`/`best_idx` slots indexed by
//!   cluster id plus a touched-list for O(degree) cleanup — replacing a per-vertex
//!   `BTreeMap` allocation. Scratch is threaded through rayon with `map_init`, so each
//!   worker chunk reuses one instance.
//! * **Flat decision batches** ([`RoundBatch`]): vertices are processed in contiguous
//!   blocks cut by the density-aware [`BlockPartition`](crate::partition) (edge-load
//!   balanced, a few blocks per thread, 64-vertex floor) and each block emits compact
//!   per-vertex records plus shared flat `adds`/`kills` id lists — replacing two
//!   `Vec`s per vertex per round.
//! * **Parallel two-phase commit**: decision batches are committed through shared
//!   relaxed-atomic views ([`crate::atomic`]) instead of a sequential sweep. This is
//!   safe — and bit-identical to the sequential order — because the commit is
//!   order-invariant: every edge a vertex *adds* it also *kills* (both branches of
//!   `process_block`), so `in_spanner` is a plain union; `center_next` slots are
//!   written by exactly one vertex each; and the defensive kill of an unclustered
//!   vertex's leftover edges depends only on round-start state on any edge that is not
//!   already batch-killed. The final masks after the commit are therefore identical
//!   under any interleaving — the CRCW "common write" model of Corollary 2.
//!
//! The outputs (edge ids, round count, and the `work` counter) are byte-for-byte
//! identical to the original `BTreeMap`-based implementation; `tests/golden_spanner.rs`
//! pins that equivalence against pre-rewrite fixtures, and `tests/parallelism.rs` pins
//! it across pool widths. Wall-clock per phase (decide / apply / sweep / join) is
//! reported via [`SpannerPhases`] so the scaling experiments can prove the apply phase
//! is no longer a serial section.

use std::time::Instant;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use sgs_graph::{EdgeId, Graph, NodeId};

use crate::atomic::{AtomicFlags, AtomicIds};
use crate::partition::BlockPartition;

/// Configuration for the Baswana–Sen construction.
#[derive(Debug, Clone)]
pub struct SpannerConfig {
    /// Stretch parameter `k`; the spanner has stretch `2k − 1`. Defaults to
    /// `⌈log₂ n⌉` when `None`, matching the paper's `log n`-spanner.
    pub k: Option<usize>,
    /// RNG seed; cluster sampling is the only source of randomness.
    pub seed: u64,
    /// Process vertices of each round in parallel with rayon.
    pub parallel: bool,
}

impl Default for SpannerConfig {
    fn default() -> Self {
        SpannerConfig {
            k: None,
            seed: 0xBA5EBA11,
            parallel: true,
        }
    }
}

impl SpannerConfig {
    /// Config with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        SpannerConfig {
            seed,
            ..Default::default()
        }
    }

    /// Overrides the stretch parameter `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Enables or disables rayon parallelism.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Result of a spanner construction.
#[derive(Debug, Clone)]
pub struct SpannerResult {
    /// Ids (into the input graph / edge view) of the edges kept in the spanner,
    /// deduplicated and sorted.
    pub edge_ids: Vec<EdgeId>,
    /// Number of clustering rounds executed (`k − 1` plus the joining phase).
    pub rounds: usize,
    /// Work counter: total number of edge examinations across all rounds. Experiment E1
    /// compares this against the `O(m log n)` bound of Theorem 1.
    pub work: u64,
    /// Wall-clock spent per engine phase. Timings are *measurements*, not outputs:
    /// they vary run to run and are deliberately excluded from every determinism
    /// comparison (golden fixtures, cross-thread-count tests).
    pub phases: SpannerPhases,
}

/// Wall-clock breakdown of one spanner construction, in milliseconds.
///
/// `decide` is the per-vertex clustering decision sweep, `apply` the decision commit,
/// `sweep` the intra-cluster edge removal, and `join` the final vertex–cluster joining
/// phase. Since the parallel two-phase commit landed, *every* phase runs on the rayon
/// pool when `parallel` is set — `exp_scaling` reports these columns so CI can see
/// that no phase stays serial as threads grow.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpannerPhases {
    /// Clustering decision sweeps (all rounds).
    pub decide_ms: f64,
    /// Decision commits (all rounds).
    pub apply_ms: f64,
    /// Intra-cluster edge removal sweeps (all rounds).
    pub sweep_ms: f64,
    /// Vertex–cluster joining phase (decide + commit).
    pub join_ms: f64,
}

impl SpannerPhases {
    /// Accumulates another breakdown into this one (used by the t-bundle loop and the
    /// sampling pipeline to aggregate across components and rounds).
    pub fn absorb(&mut self, other: &SpannerPhases) {
        self.decide_ms += other.decide_ms;
        self.apply_ms += other.apply_ms;
        self.sweep_ms += other.sweep_ms;
        self.join_ms += other.join_ms;
    }

    /// Total measured wall-clock across the phases.
    pub fn total_ms(&self) -> f64 {
        self.decide_ms + self.apply_ms + self.sweep_ms + self.join_ms
    }
}

/// Milliseconds elapsed since `start`.
#[inline]
fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

impl SpannerResult {
    /// Materialises the spanner as a graph over the same vertex set as `g`.
    pub fn to_graph(&self, g: &Graph) -> Graph {
        g.with_edge_ids(&self.edge_ids)
    }
}

/// A lightweight edge view: `(original id, u, v, w)`. The bundle construction feeds
/// progressively smaller views into the same spanner code without copying graphs.
pub type EdgeView = (EdgeId, NodeId, NodeId, f64);

/// Sentinel for "no cluster" in the flat center array (`Option<NodeId>` without the
/// branch/space overhead).
const NO_CLUSTER: u32 = u32::MAX;

// Decision batching distributes vertices to workers in contiguous blocks cut by the
// density-aware `BlockPartition` (see `crate::partition`): edge-load balanced, a few
// blocks per thread, 64-vertex floor. The partition may vary with the pool width —
// outputs cannot, because the decision records depend only on round-start state and
// the commit is order-invariant (module docs above).

/// Flat CSR incidence over an edge view: `indices[offsets[v]..offsets[v+1]]` are the
/// view indices of the edges incident to vertex `v`, in ascending order.
///
/// Edge indices are `u32`; views are capped at `u32::MAX / 2` edges (the `indices`
/// array stores every edge twice), which `build` asserts.
#[derive(Debug, Clone, Default)]
pub struct ViewCsr {
    offsets: Vec<u32>,
    indices: Vec<u32>,
    /// Scratch for the counting-sort write cursors, kept so [`ViewCsr::rebuild`] is
    /// allocation-free in steady state (batch engines rebuild the same CSR per batch).
    cursor: Vec<u32>,
}

impl ViewCsr {
    /// Builds the incidence structure with a two-pass counting sort.
    pub fn build(n: usize, view: &[EdgeView]) -> ViewCsr {
        let mut csr = ViewCsr::default();
        csr.rebuild(n, view);
        csr
    }

    /// Rebuilds the incidence structure in place over a new view, reusing the existing
    /// `offsets`/`indices`/`cursor` allocations. Semantically identical to
    /// [`ViewCsr::build`]; the re-entrant sparsify engine calls this once per batch
    /// instead of allocating three fresh vectors.
    pub fn rebuild(&mut self, n: usize, view: &[EdgeView]) {
        assert!(
            view.len() <= (u32::MAX / 2) as usize,
            "edge view too large for u32 CSR indices"
        );
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &(_, u, v, _) in view {
            self.offsets[u + 1] += 1;
            self.offsets[v + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.offsets[..n]);
        self.indices.clear();
        self.indices.resize(2 * view.len(), 0);
        for (idx, &(_, u, v, _)) in view.iter().enumerate() {
            self.indices[self.cursor[u] as usize] = idx as u32;
            self.cursor[u] += 1;
            self.indices[self.cursor[v] as usize] = idx as u32;
            self.cursor[v] += 1;
        }
    }

    /// The incident edge indices of `v` (ascending).
    #[inline]
    pub fn row(&self, v: NodeId) -> &[u32] {
        &self.indices[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Removes every edge for which `remap[idx] == u32::MAX` and renumbers the
    /// survivors, compacting `offsets`/`indices` in place with a single left-to-right
    /// sweep (the write cursor never passes the read cursor). Per-row ascending order
    /// is preserved because `remap` is monotone on the survivors.
    fn compact(&mut self, remap: &[u32]) {
        let n = self.n();
        let mut cursor = 0usize;
        let mut row_start = self.offsets[0] as usize;
        for v in 0..n {
            let row_end = self.offsets[v + 1] as usize;
            self.offsets[v] = cursor as u32;
            for i in row_start..row_end {
                let new_idx = remap[self.indices[i] as usize];
                if new_idx != u32::MAX {
                    self.indices[cursor] = new_idx;
                    cursor += 1;
                }
            }
            row_start = row_end;
        }
        self.offsets[n] = cursor as u32;
        self.indices.truncate(cursor);
    }
}

/// Per-worker scratch for one clustering/joining pass: cluster-stamped slots plus a
/// touched-list, giving O(degree) grouping with O(degree) cleanup and zero per-vertex
/// allocation. One instance per rayon worker chunk via `map_init`.
struct RoundScratch {
    /// Stamp of the vertex currently being processed; `last_seen[c] == stamp` marks
    /// cluster `c`'s slots as live for this vertex.
    stamp: u32,
    last_seen: Vec<u32>,
    best_w: Vec<f64>,
    best_idx: Vec<u32>,
    touched: Vec<u32>,
}

impl RoundScratch {
    fn new(n: usize) -> RoundScratch {
        RoundScratch {
            stamp: 0,
            last_seen: vec![0; n],
            best_w: vec![0.0; n],
            best_idx: vec![0; n],
            touched: Vec::new(),
        }
    }
}

/// Compact per-vertex outcome of one clustering round; the add/kill edge ids live in
/// the owning [`RoundBatch`]'s flat buffers.
#[derive(Debug, Clone, Copy)]
struct VertDecision {
    v: u32,
    /// New cluster center, or [`NO_CLUSTER`] when unchanged / leaving the clustering.
    new_center: u32,
    became_unclustered: bool,
    add_len: u32,
    kill_len: u32,
}

/// Decisions of one vertex block: per-vertex records plus flat add/kill edge-id lists
/// (segments in record order), replacing two `Vec`s per vertex per round.
#[derive(Debug, Default)]
struct RoundBatch {
    verts: Vec<VertDecision>,
    adds: Vec<u32>,
    kills: Vec<u32>,
    work: u64,
}

/// Reusable per-run state; the t-bundle engine keeps one instance alive across
/// components so the masks and center arrays are allocated once per bundle.
#[derive(Debug, Default)]
struct EngineState {
    center: Vec<u32>,
    center_next: Vec<u32>,
    alive: Vec<bool>,
    in_spanner: Vec<bool>,
    sampled: Vec<bool>,
    /// Old-index → new-index map used by [`SpannerEngine::peel_spanner_edges`].
    remap: Vec<u32>,
}

impl EngineState {
    fn reset(&mut self, n: usize, m: usize) {
        self.center.clear();
        self.center.extend(0..n as u32);
        self.center_next.clear();
        self.center_next.resize(n, NO_CLUSTER);
        self.alive.clear();
        self.alive.resize(m, true);
        self.in_spanner.clear();
        self.in_spanner.resize(m, false);
        self.sampled.clear();
        self.sampled.resize(n, false);
    }
}

/// Computes a Baswana–Sen spanner of `g`.
pub fn baswana_sen_spanner(g: &Graph, cfg: &SpannerConfig) -> SpannerResult {
    let view: Vec<EdgeView> = g
        .edges()
        .iter()
        .enumerate()
        .map(|(id, e)| (id, e.u, e.v, e.w))
        .collect();
    baswana_sen_on_view(g.n(), &view, cfg)
}

/// Computes a Baswana–Sen spanner over an explicit edge view on `n` vertices.
///
/// Returns original edge ids (the first component of each view entry).
pub fn baswana_sen_on_view(n: usize, view: &[EdgeView], cfg: &SpannerConfig) -> SpannerResult {
    if let Some(result) = trivial_spanner(n, view, cfg) {
        return result;
    }
    let csr = ViewCsr::build(n, view);
    let mut state = EngineState::default();
    run_spanner(n, view, &csr, cfg, &mut state)
}

/// The trivial cases (stretch-1 spanner / empty input): keep everything.
fn trivial_spanner(n: usize, view: &[EdgeView], cfg: &SpannerConfig) -> Option<SpannerResult> {
    let m = view.len();
    let k = resolve_k(n, cfg);
    if n <= 2 || k <= 1 || m == 0 {
        let mut ids: Vec<EdgeId> = view.iter().map(|&(id, _, _, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        return Some(SpannerResult {
            edge_ids: ids,
            rounds: 0,
            work: m as u64,
            phases: SpannerPhases::default(),
        });
    }
    None
}

fn resolve_k(n: usize, cfg: &SpannerConfig) -> usize {
    cfg.k
        .unwrap_or_else(|| (n.max(2) as f64).log2().ceil() as usize)
        .max(1)
}

/// Computes the clustering-round decisions for one vertex block.
///
/// Two passes over each vertex's CSR row: the first accumulates per-neighbour-cluster
/// `(min weight, first best index)` stats in the stamped scratch slots, the second
/// emits the add/kill ids into the batch's flat buffers. The `work` counter counts one
/// examination per incident edge of each decided vertex (first pass only), exactly
/// matching the historical `BTreeMap` implementation.
#[allow(clippy::too_many_arguments)]
fn process_block(
    verts: std::ops::Range<usize>,
    view: &[EdgeView],
    csr: &ViewCsr,
    center: &[u32],
    alive: &[bool],
    sampled: &[bool],
    scratch: &mut RoundScratch,
) -> RoundBatch {
    let mut batch = RoundBatch::default();
    for v in verts {
        let c_v = center[v];
        if c_v == NO_CLUSTER || sampled[c_v as usize] {
            // Unclustered vertices are settled; sampled clusters carry over unchanged.
            continue;
        }
        let row = csr.row(v);
        batch.work += row.len() as u64;

        // Pass 1: group alive inter-cluster edges by the other endpoint's cluster.
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        scratch.touched.clear();
        for &idx32 in row {
            let idx = idx32 as usize;
            if !alive[idx] {
                continue;
            }
            let (_, a, b, w) = view[idx];
            let other = if a == v { b } else { a };
            let c_other = center[other];
            if c_other == NO_CLUSTER || c_other == c_v {
                // Unclustered neighbours hold no alive edges; intra-cluster edges are
                // removed lazily by the sweep below.
                continue;
            }
            let c = c_other as usize;
            if scratch.last_seen[c] != stamp {
                scratch.last_seen[c] = stamp;
                scratch.best_w[c] = w;
                scratch.best_idx[c] = idx32;
                scratch.touched.push(c_other);
            } else if w < scratch.best_w[c] {
                scratch.best_w[c] = w;
                scratch.best_idx[c] = idx32;
            }
        }

        if scratch.touched.is_empty() {
            batch.verts.push(VertDecision {
                v: v as u32,
                new_center: NO_CLUSTER,
                became_unclustered: true,
                add_len: 0,
                kill_len: 0,
            });
            continue;
        }

        // Lightest edge into a *sampled* adjacent cluster, if any. Ties are broken by
        // cluster id so the choice is deterministic regardless of grouping order.
        let mut best_sampled: Option<(f64, u32)> = None;
        for &c in &scratch.touched {
            if sampled[c as usize] {
                let w = scratch.best_w[c as usize];
                let better = match best_sampled {
                    None => true,
                    Some((w0, c0)) => w < w0 || (w == w0 && c < c0),
                };
                if better {
                    best_sampled = Some((w, c));
                }
            }
        }

        // Pass 2: emit add/kill ids into the flat buffers.
        let adds_before = batch.adds.len();
        let kills_before = batch.kills.len();
        let (new_center, became_unclustered) = match best_sampled {
            None => {
                // No sampled neighbor cluster: keep one lightest edge per adjacent
                // cluster and discard the rest; v leaves the clustering.
                for &idx32 in row {
                    let idx = idx32 as usize;
                    if !alive[idx] {
                        continue;
                    }
                    let (_, a, b, _) = view[idx];
                    let other = if a == v { b } else { a };
                    let c_other = center[other];
                    if c_other == NO_CLUSTER || c_other == c_v {
                        continue;
                    }
                    if scratch.best_idx[c_other as usize] == idx32 {
                        batch.adds.push(idx32);
                    }
                    batch.kills.push(idx32);
                }
                (NO_CLUSTER, true)
            }
            Some((w_star, c_star)) => {
                // Join the sampled cluster through its lightest edge; also keep the
                // lightest edge into every strictly lighter neighbour cluster.
                batch.adds.push(scratch.best_idx[c_star as usize]);
                for &idx32 in row {
                    let idx = idx32 as usize;
                    if !alive[idx] {
                        continue;
                    }
                    let (_, a, b, _) = view[idx];
                    let other = if a == v { b } else { a };
                    let c_other = center[other];
                    if c_other == NO_CLUSTER || c_other == c_v {
                        continue;
                    }
                    if c_other == c_star {
                        batch.kills.push(idx32);
                    } else if scratch.best_w[c_other as usize] < w_star {
                        if scratch.best_idx[c_other as usize] == idx32 {
                            batch.adds.push(idx32);
                        }
                        batch.kills.push(idx32);
                    }
                }
                (c_star, false)
            }
        };
        batch.verts.push(VertDecision {
            v: v as u32,
            new_center,
            became_unclustered,
            add_len: (batch.adds.len() - adds_before) as u32,
            kill_len: (batch.kills.len() - kills_before) as u32,
        });
    }
    batch
}

/// Computes the joining-phase adds for one vertex block: the lightest alive edge into
/// every adjacent foreign cluster (add-only, so no per-vertex records are needed).
fn join_block(
    verts: std::ops::Range<usize>,
    view: &[EdgeView],
    csr: &ViewCsr,
    center: &[u32],
    alive: &[bool],
    scratch: &mut RoundScratch,
) -> RoundBatch {
    let mut batch = RoundBatch::default();
    for v in verts {
        let row = csr.row(v);
        batch.work += row.len() as u64;
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        scratch.touched.clear();
        let c_v = center[v];
        for &idx32 in row {
            let idx = idx32 as usize;
            if !alive[idx] {
                continue;
            }
            let (_, a, b, w) = view[idx];
            let other = if a == v { b } else { a };
            let c_other = center[other];
            if c_other == NO_CLUSTER || c_other == c_v {
                continue;
            }
            let c = c_other as usize;
            if scratch.last_seen[c] != stamp {
                scratch.last_seen[c] = stamp;
                scratch.best_w[c] = w;
                scratch.best_idx[c] = idx32;
                scratch.touched.push(c_other);
            } else if w < scratch.best_w[c] {
                scratch.best_w[c] = w;
                scratch.best_idx[c] = idx32;
            }
        }
        for &c in &scratch.touched {
            batch.adds.push(scratch.best_idx[c as usize]);
        }
    }
    batch
}

/// Commits one decision batch through shared atomic views.
///
/// Safe — and *final-state identical* — under any interleaving with other batches:
///
/// * `in_spanner` stores are a plain union of the batch add lists;
/// * `alive` stores only ever flip `true → false` within a commit;
/// * `center_next[v]` is written solely by the batch that owns vertex `v`;
/// * the defensive kill of an unclustered vertex's leftovers reads the *round-start*
///   `center` array, and its transient `alive`/`in_spanner` reads can only change its
///   decision on edges some batch kills anyway (every added edge is also killed by
///   the adding vertex, so a skipped defensive kill is always covered by a batch
///   kill).
///
/// The same function serves the sequential path (`batches.iter()` instead of
/// `par_iter`), which keeps the two paths literally one code path.
fn apply_batch(
    batch: &RoundBatch,
    view: &[EdgeView],
    csr: &ViewCsr,
    center: &[u32],
    alive: AtomicFlags<'_>,
    in_spanner: AtomicFlags<'_>,
    center_next: AtomicIds<'_>,
) {
    let mut adds_pos = 0usize;
    let mut kills_pos = 0usize;
    for dec in &batch.verts {
        for &idx in &batch.adds[adds_pos..adds_pos + dec.add_len as usize] {
            in_spanner.set(idx as usize, true);
        }
        adds_pos += dec.add_len as usize;
        for &idx in &batch.kills[kills_pos..kills_pos + dec.kill_len as usize] {
            alive.set(idx as usize, false);
        }
        kills_pos += dec.kill_len as usize;
        let v = dec.v as usize;
        if dec.became_unclustered {
            center_next.set(v, NO_CLUSTER);
            // Any still-alive incident edge of an unclustered vertex is dead weight;
            // they were all either added or killed above, but parallel edges from the
            // same group may linger — kill them defensively.
            for &idx32 in csr.row(v) {
                let idx = idx32 as usize;
                if alive.get(idx) && !in_spanner.get(idx) {
                    let (_, a, b, _) = view[idx];
                    let other = if a == v { b } else { a };
                    if center[other] != NO_CLUSTER {
                        alive.set(idx, false);
                    }
                }
            }
        } else if dec.new_center != NO_CLUSTER {
            center_next.set(v, dec.new_center);
        }
    }
}

/// Runs the full construction over a prepared CSR view. `state` buffers are reset here
/// and may be reused across calls (the t-bundle engine does).
fn run_spanner(
    n: usize,
    view: &[EdgeView],
    csr: &ViewCsr,
    cfg: &SpannerConfig,
    state: &mut EngineState,
) -> SpannerResult {
    let m = view.len();
    let k = resolve_k(n, cfg);
    debug_assert!(n > 2 && k > 1 && m > 0, "trivial cases handled by caller");
    state.reset(n, m);

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let sample_prob = (n as f64).powf(-1.0 / k as f64);
    let threads = if cfg.parallel {
        rayon::current_num_threads()
    } else {
        1
    };
    // Density-aware blocks (degree-load balanced, 64-vertex floor). The partition may
    // depend on the pool width; outputs cannot (see module docs).
    let part = BlockPartition::adaptive(n, threads, |v| csr.row(v).len());
    let n_blocks = part.len();
    let mut total_work = 0u64;
    let mut rounds = 0usize;
    let mut phases = SpannerPhases::default();

    for _round in 1..k {
        rounds += 1;
        // Sample cluster centers for this round (the only RNG consumer: n draws per
        // round, a stream pinned by the golden fixtures).
        for s in state.sampled.iter_mut() {
            *s = rng.gen::<f64>() < sample_prob;
        }

        let (center, alive, sampled) = (&state.center, &state.alive, &state.sampled);
        let t_decide = Instant::now();
        let decide_span = sgs_obs::span!("spanner.decide", round = rounds);
        let batches: Vec<RoundBatch> = if cfg.parallel {
            (0..n_blocks)
                .into_par_iter()
                .map_init(
                    || RoundScratch::new(n),
                    |scratch, b| {
                        process_block(part.block(b), view, csr, center, alive, sampled, scratch)
                    },
                )
                .collect()
        } else {
            let mut scratch = RoundScratch::new(n);
            (0..n_blocks)
                .map(|b| {
                    process_block(
                        part.block(b),
                        view,
                        csr,
                        center,
                        alive,
                        sampled,
                        &mut scratch,
                    )
                })
                .collect()
        };
        drop(decide_span);
        phases.decide_ms += ms_since(t_decide);

        // Commit the decisions. The commit is order-invariant (see `apply_batch`), so
        // the parallel path runs every batch concurrently through shared atomic views
        // and still lands bit-identical to the sequential block-order walk.
        let t_apply = Instant::now();
        let apply_span = sgs_obs::span!("spanner.apply", round = rounds);
        state.center_next.copy_from_slice(&state.center);
        {
            let alive = AtomicFlags::new(&mut state.alive);
            let in_spanner = AtomicFlags::new(&mut state.in_spanner);
            let center_next = AtomicIds::new(&mut state.center_next);
            let center = &state.center;
            let commit = |batch: &RoundBatch| {
                apply_batch(batch, view, csr, center, alive, in_spanner, center_next)
            };
            if cfg.parallel {
                batches.par_iter().for_each(commit);
            } else {
                batches.iter().for_each(commit);
            }
        }
        for batch in &batches {
            total_work += batch.work;
        }
        drop(apply_span);
        phases.apply_ms += ms_since(t_apply);
        std::mem::swap(&mut state.center, &mut state.center_next);

        // Remove intra-cluster edges of the new clustering. The per-edge flag writes
        // commute, so this sweep runs in parallel; the u64 work tally is combined in
        // chunk order and stays deterministic.
        let t_sweep = Instant::now();
        let sweep_span = sgs_obs::span!("spanner.sweep", round = rounds);
        let center = &state.center;
        let sweep = |(a, &(_, u, v, _)): (&mut bool, &EdgeView)| -> u64 {
            if *a {
                let cu = center[u];
                if cu != NO_CLUSTER && cu == center[v] {
                    *a = false;
                }
                1
            } else {
                0
            }
        };
        total_work += if cfg.parallel {
            state
                .alive
                .par_iter_mut()
                .zip(view.par_iter())
                .map(sweep)
                .sum::<u64>()
        } else {
            state.alive.iter_mut().zip(view.iter()).map(sweep).sum()
        };
        drop(sweep_span);
        phases.sweep_ms += ms_since(t_sweep);
        sgs_obs::point!("spanner.round", round = rounds, work = total_work);
    }

    // Phase 2: vertex–cluster joining on the final clustering.
    rounds += 1;
    let t_join = Instant::now();
    let join_span = sgs_obs::span!("spanner.join", round = rounds);
    let (center, alive) = (&state.center, &state.alive);
    let join_batches: Vec<RoundBatch> = if cfg.parallel {
        (0..n_blocks)
            .into_par_iter()
            .map_init(
                || RoundScratch::new(n),
                |scratch, b| join_block(part.block(b), view, csr, center, alive, scratch),
            )
            .collect()
    } else {
        let mut scratch = RoundScratch::new(n);
        (0..n_blocks)
            .map(|b| join_block(part.block(b), view, csr, center, alive, &mut scratch))
            .collect()
    };
    // Join adds are a plain union, so the commit parallelises the same way.
    {
        let in_spanner = AtomicFlags::new(&mut state.in_spanner);
        let commit = |batch: &RoundBatch| {
            for &idx in &batch.adds {
                in_spanner.set(idx as usize, true);
            }
        };
        if cfg.parallel {
            join_batches.par_iter().for_each(commit);
        } else {
            join_batches.iter().for_each(commit);
        }
    }
    for batch in &join_batches {
        total_work += batch.work;
    }
    drop(join_span);
    phases.join_ms += ms_since(t_join);

    let mut edge_ids: Vec<EdgeId> = view
        .iter()
        .enumerate()
        .filter_map(|(idx, &(id, _, _, _))| {
            if state.in_spanner[idx] {
                Some(id)
            } else {
                None
            }
        })
        .collect();
    edge_ids.sort_unstable();
    edge_ids.dedup();
    sgs_obs::point!(
        "spanner.run",
        rounds = rounds,
        work = total_work,
        edges = edge_ids.len(),
    );
    SpannerResult {
        edge_ids,
        rounds,
        work: total_work,
        phases,
    }
}

/// A reusable spanner engine over a shrinking edge view.
///
/// The t-bundle construction peels `t` spanners off the same graph; this engine builds
/// the flat CSR incidence **once** and compacts it (and the view) in place after each
/// component, instead of rebuilding `remaining` + incidence per component. The
/// per-run masks and center arrays are owned by the engine and reused across runs.
#[derive(Debug)]
pub struct SpannerEngine {
    n: usize,
    view: Vec<EdgeView>,
    csr: ViewCsr,
    state: EngineState,
}

impl SpannerEngine {
    /// Builds an engine over an explicit view.
    pub fn new(n: usize, view: Vec<EdgeView>) -> SpannerEngine {
        let csr = ViewCsr::build(n, &view);
        SpannerEngine {
            n,
            view,
            csr,
            state: EngineState::default(),
        }
    }

    /// Builds an engine over all edges of `g` (view ids = graph edge ids).
    pub fn from_graph(g: &Graph) -> SpannerEngine {
        let mut engine = SpannerEngine::empty();
        engine.reset_from_graph(g);
        engine
    }

    /// Creates an engine with no view and no allocations; combine with
    /// [`SpannerEngine::reset_from_graph`] for reuse across many graphs.
    pub fn empty() -> SpannerEngine {
        SpannerEngine {
            n: 0,
            view: Vec::new(),
            csr: ViewCsr::default(),
            state: EngineState::default(),
        }
    }

    /// Re-targets the engine at `g`, reusing every internal allocation (view, CSR
    /// offsets/indices, per-run masks). After this call the engine is in exactly the
    /// state [`SpannerEngine::from_graph`] would produce — batch pipelines
    /// (`sgs-stream`) call this once per batch so steady-state sparsification performs
    /// no `O(m)` engine allocations.
    pub fn reset_from_graph(&mut self, g: &Graph) {
        self.n = g.n();
        self.view.clear();
        self.view.extend(
            g.edges()
                .iter()
                .enumerate()
                .map(|(id, e)| (id, e.u, e.v, e.w)),
        );
        self.csr.rebuild(self.n, &self.view);
        // Stale in_spanner state from a previous run must not leak into a `peel` on the
        // new view; `spanner`/`run_spanner` resize it, but clear defensively.
        self.state.in_spanner.clear();
    }

    /// Number of edges currently in the view.
    pub fn m(&self) -> usize {
        self.view.len()
    }

    /// True when no edges remain.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// The current edge view (ids are original input ids).
    pub fn view(&self) -> &[EdgeView] {
        &self.view
    }

    /// Runs one Baswana–Sen construction over the current view.
    pub fn spanner(&mut self, cfg: &SpannerConfig) -> SpannerResult {
        if let Some(result) = trivial_spanner(self.n, &self.view, cfg) {
            // Mark everything in-spanner so `peel_spanner_edges` drains the view.
            self.state.in_spanner.clear();
            self.state.in_spanner.resize(self.view.len(), true);
            return result;
        }
        run_spanner(self.n, &self.view, &self.csr, cfg, &mut self.state)
    }

    /// Removes the edges selected by the most recent [`SpannerEngine::spanner`] call
    /// from the view, compacting the view and the CSR incidence in place.
    pub fn peel_spanner_edges(&mut self) {
        let m = self.view.len();
        debug_assert_eq!(self.state.in_spanner.len(), m, "peel before any run");
        let remap = &mut self.state.remap;
        remap.clear();
        remap.resize(m, u32::MAX);
        let mut kept = 0u32;
        for (slot, &taken) in remap.iter_mut().zip(&self.state.in_spanner) {
            if !taken {
                *slot = kept;
                kept += 1;
            }
        }
        // Compact the view in place (retain preserves order, matching a rebuild).
        let in_spanner = &self.state.in_spanner;
        let mut idx = 0usize;
        self.view.retain(|_| {
            let keep = !in_spanner[idx];
            idx += 1;
            keep
        });
        self.csr.compact(remap);
        debug_assert_eq!(self.view.len(), kept as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{connectivity::is_connected, generators, stretch};

    fn check_spanner_invariants(g: &Graph, cfg: &SpannerConfig) -> (usize, f64) {
        let result = baswana_sen_spanner(g, cfg);
        let h = result.to_graph(g);
        // The spanner must span every connected component.
        if is_connected(g) {
            assert!(is_connected(&h), "spanner must be connected when G is");
        }
        let k = cfg
            .k
            .unwrap_or_else(|| (g.n() as f64).log2().ceil() as usize)
            .max(1);
        let bound = (2 * k - 1) as f64 + 1e-9;
        let max_stretch = stretch::max_stretch(g, &h);
        assert!(
            max_stretch <= bound,
            "stretch {max_stretch} exceeds 2k-1 = {bound} (k = {k})"
        );
        (h.m(), max_stretch)
    }

    #[test]
    fn spanner_of_sparse_graph_keeps_almost_everything() {
        let g = generators::cycle(30, 1.0);
        let (m, _) = check_spanner_invariants(&g, &SpannerConfig::with_seed(1));
        assert!(m >= 29, "cycle spanner keeps at least a spanning structure");
    }

    #[test]
    fn spanner_of_complete_graph_is_much_smaller() {
        let n = 120;
        let g = generators::complete(n, 1.0);
        let cfg = SpannerConfig::with_seed(7);
        let (m, _) = check_spanner_invariants(&g, &cfg);
        // O(n log n) edges versus n(n-1)/2 ≈ 7140.
        let k = (n as f64).log2().ceil();
        let budget = (6.0 * n as f64 * k) as usize;
        assert!(m <= budget, "spanner size {m} exceeds budget {budget}");
        assert!(m < g.m() / 3, "spanner should be much sparser than K_n");
    }

    #[test]
    fn stretch_bound_holds_on_weighted_random_graphs() {
        for seed in 0..3 {
            let g = generators::erdos_renyi_weighted(150, 0.15, 0.1, 10.0, seed);
            if !is_connected(&g) {
                continue;
            }
            check_spanner_invariants(&g, &SpannerConfig::with_seed(seed * 31 + 1));
        }
    }

    #[test]
    fn explicit_small_k_gives_denser_spanner_with_smaller_stretch() {
        let g = generators::erdos_renyi(200, 0.2, 1.0, 3);
        let loose = baswana_sen_spanner(&g, &SpannerConfig::with_seed(5));
        let tight = baswana_sen_spanner(&g, &SpannerConfig::with_seed(5).with_k(2));
        // k = 2 gives a 3-spanner: more edges, tighter stretch.
        let h_tight = tight.to_graph(&g);
        let s = stretch::max_stretch(&g, &h_tight);
        assert!(s <= 3.0 + 1e-9, "3-spanner stretch was {s}");
        assert!(tight.edge_ids.len() >= loose.edge_ids.len() / 2);
    }

    #[test]
    fn parallel_and_sequential_agree_for_same_seed() {
        let g = generators::erdos_renyi(150, 0.15, 1.0, 11);
        let par = baswana_sen_spanner(&g, &SpannerConfig::with_seed(9).with_parallel(true));
        let seq = baswana_sen_spanner(&g, &SpannerConfig::with_seed(9).with_parallel(false));
        assert_eq!(par.edge_ids, seq.edge_ids);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::preferential_attachment(300, 4, 1.0, 2);
        let a = baswana_sen_spanner(&g, &SpannerConfig::with_seed(3));
        let b = baswana_sen_spanner(&g, &SpannerConfig::with_seed(3));
        let c = baswana_sen_spanner(&g, &SpannerConfig::with_seed(4));
        assert_eq!(a.edge_ids, b.edge_ids);
        assert!(a.edge_ids != c.edge_ids || a.edge_ids.len() == g.m());
    }

    #[test]
    fn work_is_near_linear_in_m_per_round() {
        let g = generators::erdos_renyi(300, 0.1, 1.0, 5);
        let result = baswana_sen_spanner(&g, &SpannerConfig::with_seed(1));
        let k = (300f64).log2().ceil() as u64;
        // Work is bounded by a small constant times k · m (Theorem 1: O(m log n)).
        assert!(
            result.work <= 8 * k * g.m() as u64 + 1000,
            "work {} vs bound {}",
            result.work,
            8 * k * g.m() as u64
        );
        assert!(result.rounds as u64 <= k + 1);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = Graph::new(0);
        let r = baswana_sen_spanner(&g, &SpannerConfig::default());
        assert!(r.edge_ids.is_empty());
        let g = Graph::new(5);
        let r = baswana_sen_spanner(&g, &SpannerConfig::default());
        assert!(r.edge_ids.is_empty());
        let g = Graph::from_tuples(2, vec![(0, 1, 3.0)]).unwrap();
        let r = baswana_sen_spanner(&g, &SpannerConfig::default());
        assert_eq!(r.edge_ids, vec![0]);
    }

    #[test]
    fn disconnected_graph_gets_spanner_per_component() {
        let mut g = generators::complete(20, 1.0);
        // Add a second complete component on 20 more vertices.
        let other = generators::complete(20, 1.0);
        let mut big = Graph::new(40);
        for e in g.edges() {
            big.add_edge(e.u, e.v, e.w).unwrap();
        }
        for e in other.edges() {
            big.add_edge(20 + e.u, 20 + e.v, e.w).unwrap();
        }
        g = big;
        let r = baswana_sen_spanner(&g, &SpannerConfig::with_seed(2));
        let h = r.to_graph(&g);
        let (labels, count) = sgs_graph::connectivity::connected_components(&h);
        assert_eq!(count, 2);
        // Components must not be merged or split.
        assert_eq!(labels[0], labels[19]);
        assert_eq!(labels[20], labels[39]);
        assert_ne!(labels[0], labels[20]);
        let s = stretch::max_stretch(&g, &h);
        assert!(s <= 2.0 * (40f64).log2().ceil() + 1.0);
    }

    #[test]
    fn csr_build_matches_nested_incidence() {
        let g = generators::erdos_renyi(60, 0.2, 1.0, 3);
        let view: Vec<EdgeView> = g
            .edges()
            .iter()
            .enumerate()
            .map(|(id, e)| (id, e.u, e.v, e.w))
            .collect();
        let csr = ViewCsr::build(g.n(), &view);
        let mut nested: Vec<Vec<u32>> = vec![Vec::new(); g.n()];
        for (idx, &(_, u, v, _)) in view.iter().enumerate() {
            nested[u].push(idx as u32);
            nested[v].push(idx as u32);
        }
        assert_eq!(csr.n(), g.n());
        for (v, row) in nested.iter().enumerate() {
            assert_eq!(csr.row(v), row.as_slice(), "row {v}");
        }
    }

    #[test]
    fn csr_compact_equals_rebuild_from_compacted_view() {
        let g = generators::erdos_renyi(80, 0.25, 1.0, 9);
        let view: Vec<EdgeView> = g
            .edges()
            .iter()
            .enumerate()
            .map(|(id, e)| (id, e.u, e.v, e.w))
            .collect();
        let mut csr = ViewCsr::build(g.n(), &view);
        // Kill every third edge, remap the survivors.
        let mut remap = vec![u32::MAX; view.len()];
        let mut kept_view = Vec::new();
        let mut kept = 0u32;
        for (idx, &e) in view.iter().enumerate() {
            if idx % 3 != 0 {
                remap[idx] = kept;
                kept += 1;
                kept_view.push(e);
            }
        }
        csr.compact(&remap);
        let rebuilt = ViewCsr::build(g.n(), &kept_view);
        assert_eq!(csr.offsets, rebuilt.offsets);
        assert_eq!(csr.indices, rebuilt.indices);
    }

    #[test]
    fn engine_peel_matches_fresh_view_runs() {
        // Peeling two components through the engine must equal running the old-style
        // "rebuild the remaining view" loop by hand.
        let g = generators::erdos_renyi(120, 0.3, 1.0, 17);
        let cfg = SpannerConfig::with_seed(33);
        let mut engine = SpannerEngine::from_graph(&g);
        let first = engine.spanner(&cfg);
        engine.peel_spanner_edges();
        let second = engine.spanner(&cfg);

        let view: Vec<EdgeView> = g
            .edges()
            .iter()
            .enumerate()
            .map(|(id, e)| (id, e.u, e.v, e.w))
            .collect();
        let first_ref = baswana_sen_on_view(g.n(), &view, &cfg);
        assert_eq!(first.edge_ids, first_ref.edge_ids);
        let in_first: std::collections::HashSet<usize> =
            first_ref.edge_ids.iter().copied().collect();
        let remaining: Vec<EdgeView> = view
            .iter()
            .filter(|&&(id, _, _, _)| !in_first.contains(&id))
            .copied()
            .collect();
        let second_ref = baswana_sen_on_view(g.n(), &remaining, &cfg);
        assert_eq!(second.edge_ids, second_ref.edge_ids);
        assert_eq!(engine.m(), remaining.len());
        engine.peel_spanner_edges();
        assert_eq!(engine.m(), remaining.len() - second_ref.edge_ids.len());
    }
}
