//! The classical greedy spanner, used as a deterministic baseline and test oracle.
//!
//! Edges are processed in order of increasing resistance (`1 / w`); an edge is added to
//! the spanner unless its endpoints are already connected inside the partial spanner by
//! a path of resistance at most `stretch · (1 / w)`. The result is a spanner with
//! multiplicative stretch at most `stretch` by construction. The greedy spanner is
//! denser to compute (`O(m · Dijkstra)`) but simple enough to serve as a correctness
//! oracle for the randomized construction.

use sgs_graph::traversal::dijkstra_with_lengths;
use sgs_graph::{EdgeId, Graph};

/// Computes a greedy `stretch`-spanner of `g`, returning the kept edge ids.
pub fn greedy_spanner(g: &Graph, stretch: f64) -> Vec<EdgeId> {
    assert!(stretch >= 1.0, "stretch must be at least 1");
    let n = g.n();
    let mut order: Vec<EdgeId> = (0..g.m()).collect();
    // Increasing resistance = decreasing weight.
    order.sort_by(|&a, &b| {
        let ra = 1.0 / g.edge(a).w;
        let rb = 1.0 / g.edge(b).w;
        ra.partial_cmp(&rb).unwrap().then_with(|| a.cmp(&b))
    });

    let mut kept: Vec<EdgeId> = Vec::new();
    let mut partial = Graph::new(n);
    for id in order {
        let e = g.edge(id);
        let limit = stretch / e.w;
        let adj = partial.adjacency();
        let dist = dijkstra_with_lengths(&adj, e.u, |w| 1.0 / w, Some(limit));
        if dist[e.v] > limit {
            partial.push_edge_unchecked(e.u, e.v, e.w);
            kept.push(id);
        }
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{connectivity::is_connected, generators, stretch};

    #[test]
    fn greedy_spanner_respects_stretch_bound() {
        let g = generators::erdos_renyi_weighted(60, 0.3, 0.5, 2.0, 3);
        assert!(is_connected(&g));
        for target in [2.0, 4.0, 8.0] {
            let ids = greedy_spanner(&g, target);
            let h = g.with_edge_ids(&ids);
            let s = stretch::max_stretch(&g, &h);
            assert!(s <= target + 1e-9, "stretch {s} > {target}");
        }
    }

    #[test]
    fn larger_stretch_gives_sparser_spanner() {
        let g = generators::complete(40, 1.0);
        let tight = greedy_spanner(&g, 1.5);
        let loose = greedy_spanner(&g, 8.0);
        assert!(loose.len() <= tight.len());
        assert!(loose.len() < g.m());
    }

    #[test]
    fn stretch_one_keeps_every_edge_of_a_simple_graph() {
        let g = generators::grid2d(5, 5, 1.0);
        let ids = greedy_spanner(&g, 1.0);
        assert_eq!(ids.len(), g.m());
    }

    #[test]
    fn spanner_preserves_connectivity() {
        let g = generators::preferential_attachment(120, 3, 1.0, 7);
        let ids = greedy_spanner(&g, 6.0);
        let h = g.with_edge_ids(&ids);
        assert!(is_connected(&h));
    }

    #[test]
    fn greedy_and_baswana_sen_sizes_are_comparable_on_dense_graphs() {
        let g = generators::complete(80, 1.0);
        let k = (80f64).log2().ceil();
        let greedy = greedy_spanner(&g, 2.0 * k);
        let bs = crate::baswana_sen::baswana_sen_spanner(
            &g,
            &crate::baswana_sen::SpannerConfig::with_seed(3),
        );
        // Both should be well below the complete graph's edge count; the randomized
        // construction may be a constant factor larger.
        assert!(greedy.len() < g.m() / 4);
        assert!(bs.edge_ids.len() < g.m() / 2);
    }
}
