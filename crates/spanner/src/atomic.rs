//! Shared atomic views over flag and id arrays for parallel decision commits.
//!
//! The spanner engines commit per-vertex decision batches by flipping flags in shared
//! `Vec<bool>` masks (`alive`, `in_spanner`) and writing per-vertex slots in a
//! `Vec<u32>` (`center_next`). Those writes are *conflict-free* in the sense that any
//! two concurrent writes to the same slot store the same value (flags only ever move
//! one way within a commit, and each `u32` slot is owned by exactly one vertex) — but
//! Rust's aliasing rules still forbid touching a `&mut [bool]` from two threads.
//! These wrappers reinterpret the exclusive borrow as a slice of relaxed atomics for
//! the duration of the commit, which is exactly the synchronization-free CRCW
//! ("common" write rule) model the paper's PRAM adaptation assumes.
//!
//! All accesses are `Relaxed`: the commit is bracketed by rayon's fork/join, which
//! publishes every store to the joining thread, and no load inside the commit is used
//! to establish ordering between threads.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// A shared view over a `&mut [bool]`, writable from many threads at once.
#[derive(Clone, Copy)]
pub struct AtomicFlags<'a>(&'a [AtomicBool]);

impl<'a> AtomicFlags<'a> {
    /// Reinterprets an exclusive bool slice as shared atomic flags.
    pub fn new(flags: &'a mut [bool]) -> AtomicFlags<'a> {
        // SAFETY: `AtomicBool` is documented to have the same size, alignment and bit
        // validity as `bool`, and the `&mut` borrow guarantees no other reference
        // observes the slice while this view (which borrows it) is alive.
        let ptr = flags.as_mut_ptr() as *const AtomicBool;
        AtomicFlags(unsafe { std::slice::from_raw_parts(ptr, flags.len()) })
    }

    /// Reads slot `i`. The value may be mid-commit; callers must only depend on it in
    /// ways that are invariant under commit order (see module docs).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.0[i].load(Ordering::Relaxed)
    }

    /// Writes slot `i`.
    #[inline]
    pub fn set(&self, i: usize, value: bool) {
        self.0[i].store(value, Ordering::Relaxed);
    }
}

/// A shared view over a `&mut [u32]`, writable from many threads at once.
#[derive(Clone, Copy)]
pub struct AtomicIds<'a>(&'a [AtomicU32]);

impl<'a> AtomicIds<'a> {
    /// Reinterprets an exclusive u32 slice as shared atomic slots.
    pub fn new(ids: &'a mut [u32]) -> AtomicIds<'a> {
        // SAFETY: `AtomicU32` has the same in-memory representation as `u32` (per the
        // std docs), and the exclusive borrow rules out non-atomic aliasing.
        let ptr = ids.as_mut_ptr() as *const AtomicU32;
        AtomicIds(unsafe { std::slice::from_raw_parts(ptr, ids.len()) })
    }

    /// Writes slot `i`.
    #[inline]
    pub fn set(&self, i: usize, value: u32) {
        self.0[i].store(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn concurrent_same_value_flag_writes_land() {
        let mut flags = vec![false; 1024];
        {
            let view = AtomicFlags::new(&mut flags);
            (0..8usize).into_par_iter().for_each(|_| {
                for i in (0..1024).step_by(2) {
                    view.set(i, true);
                }
            });
            assert!(view.get(0) && !view.get(1));
        }
        for (i, &f) in flags.iter().enumerate() {
            assert_eq!(f, i % 2 == 0);
        }
    }

    #[test]
    fn disjoint_id_writes_land() {
        let mut ids = vec![u32::MAX; 512];
        {
            let view = AtomicIds::new(&mut ids);
            (0..512usize).into_par_iter().for_each(|i| {
                view.set(i, i as u32);
            });
        }
        for (i, &x) in ids.iter().enumerate() {
            assert_eq!(x, i as u32);
        }
    }
}
