//! Density-aware vertex block partitioning for parallel vertex sweeps.
//!
//! The spanner engine (and the CONGEST simulator's `par_step`) distribute per-vertex
//! work to rayon in *blocks* of contiguous vertices. Historically the block size was a
//! fixed 256 vertices — a function of `n` only, which made the applied decision order
//! independent of the pool width, but also made the work grain blind to both the
//! machine (4 threads over a 300-vertex graph got 2 blocks) and the degree
//! distribution (on a preferential-attachment graph one block can hold 100× the edge
//! work of another).
//!
//! [`BlockPartition`] replaces the fixed size with an adaptive, density-aware cut: the
//! vertex range `0..n` is split into contiguous blocks of approximately equal *edge
//! load* (degree mass, pdGRASS-style), targeting a few blocks per thread with a floor
//! of [`MIN_BLOCK_VERTICES`] vertices per block.
//!
//! # Why depending on the thread count is safe here
//!
//! The partition may legitimately vary with `rayon::current_num_threads()` because
//! every consumer commits block results in a way that is *partition-invariant*:
//!
//! * the spanner's decision phase emits per-vertex records whose content depends only
//!   on round-start state, and its commit is order-invariant (see
//!   `baswana_sen::apply_batch`), so the final masks and the `work` tally are
//!   identical under any block boundaries;
//! * the CONGEST `par_step` concatenates staged messages in block order — blocks are
//!   ascending contiguous ranges, so the staging order is the global vertex order for
//!   any partition, and the delivery sort (stable, by recipient) yields identical
//!   inboxes and metrics.
//!
//! `tests/parallelism.rs` pins both facts across pool widths {1, 2, 3, 4, 8}.

/// Minimum vertices per block: below this the per-block bookkeeping (scratch init,
/// batch allocation) dominates the work the block carries.
pub const MIN_BLOCK_VERTICES: usize = 64;

/// Target blocks per thread. A few blocks per worker lets the chunk-claiming pool
/// balance skewed blocks without making blocks so small that batch overhead returns.
const BLOCKS_PER_THREAD: usize = 4;

/// A partition of the vertex range `0..n` into contiguous blocks of roughly equal
/// edge load.
#[derive(Debug, Clone)]
pub struct BlockPartition {
    /// Block `i` covers vertices `starts[i]..starts[i + 1]`.
    starts: Vec<u32>,
}

impl BlockPartition {
    /// Cuts `0..n` into at most `threads × 4` contiguous blocks of approximately equal
    /// accumulated `load` (plus one unit per vertex, so zero-degree stretches still
    /// split), with at least [`MIN_BLOCK_VERTICES`] vertices per block.
    ///
    /// `load(v)` is typically the degree of `v`; the cut is deterministic in
    /// `(n, threads, load)`.
    pub fn adaptive(n: usize, threads: usize, load: impl Fn(usize) -> usize) -> BlockPartition {
        let max_blocks = (n / MIN_BLOCK_VERTICES).max(1);
        let target = (threads.max(1) * BLOCKS_PER_THREAD).clamp(1, max_blocks);
        let mut starts = Vec::with_capacity(target + 1);
        starts.push(0u32);
        if n == 0 {
            return BlockPartition { starts };
        }
        let total: u64 = (0..n).map(|v| load(v) as u64 + 1).sum();
        let mut acc = 0u64;
        let mut block_start = 0usize;
        for v in 0..n {
            acc += load(v) as u64 + 1;
            let filled = v + 1;
            let cut = starts.len(); // 1-based index of the boundary we are looking for
            if cut < target
                && filled - block_start >= MIN_BLOCK_VERTICES
                && n - filled >= MIN_BLOCK_VERTICES
                && acc * target as u64 >= total * cut as u64
            {
                starts.push(filled as u32);
                block_start = filled;
            }
        }
        starts.push(n as u32);
        BlockPartition { starts }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// True when the partition covers an empty vertex range.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 || self.starts[self.len()] == 0
    }

    /// The vertex range of block `i`.
    #[inline]
    pub fn block(&self, i: usize) -> std::ops::Range<usize> {
        self.starts[i] as usize..self.starts[i + 1] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(part: &BlockPartition, n: usize) {
        let mut next = 0usize;
        for i in 0..part.len() {
            let r = part.block(i);
            assert_eq!(r.start, next, "blocks must be contiguous");
            assert!(r.end > r.start, "blocks must be non-empty");
            next = r.end;
        }
        assert_eq!(next, n, "blocks must cover 0..n");
    }

    #[test]
    fn uniform_load_splits_evenly() {
        let n = 10_000;
        let part = BlockPartition::adaptive(n, 4, |_| 10);
        check_cover(&part, n);
        assert!(part.len() > 1 && part.len() <= 16);
        for i in 0..part.len() {
            assert!(part.block(i).len() >= MIN_BLOCK_VERTICES);
        }
        let sizes: Vec<usize> = (0..part.len()).map(|i| part.block(i).len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= n / part.len(), "even loads give even blocks");
    }

    #[test]
    fn skewed_load_gives_small_blocks_around_heavy_vertices() {
        // First 100 vertices carry 99% of the load.
        let n = 4096;
        let part = BlockPartition::adaptive(n, 4, |v| if v < 100 { 1000 } else { 1 });
        check_cover(&part, n);
        assert!(part.len() > 2);
        // The heavy prefix is cut at the floor (64 heavy vertices already exceed the
        // per-block load share), while the light tail collects into large blocks.
        assert_eq!(part.block(0).len(), MIN_BLOCK_VERTICES);
        let last = part.block(part.len() - 1);
        assert!(
            last.len() > 8 * MIN_BLOCK_VERTICES,
            "light tail block was only {} vertices",
            last.len()
        );
        // A uniform partition of the same range would put ~n/len heavy vertices in
        // block 0; the density-aware cut keeps it at the floor instead.
        assert!(part.block(0).len() < n / part.len());
    }

    #[test]
    fn small_and_empty_ranges() {
        let part = BlockPartition::adaptive(0, 8, |_| 1);
        assert_eq!(part.len(), 0, "n = 0 keeps zero blocks");
        assert!(part.is_empty());
        let part = BlockPartition::adaptive(10, 8, |_| 1);
        check_cover(&part, 10);
        assert_eq!(part.len(), 1, "n below the floor is a single block");
        let part = BlockPartition::adaptive(MIN_BLOCK_VERTICES * 2, 8, |_| 1);
        check_cover(&part, MIN_BLOCK_VERTICES * 2);
        assert!(part.len() <= 2);
    }

    #[test]
    fn deterministic_in_inputs_only() {
        let a = BlockPartition::adaptive(5000, 4, |v| v % 17);
        let b = BlockPartition::adaptive(5000, 4, |v| v % 17);
        assert_eq!(a.starts, b.starts);
        // More threads → at least as many blocks (until the floor caps it).
        let c = BlockPartition::adaptive(5000, 8, |v| v % 17);
        assert!(c.len() >= a.len());
    }
}
