//! # sgs-spanner
//!
//! Spanner constructions for the spectral-sparsification suite:
//!
//! * [`baswana_sen`] — the randomized clustering algorithm of Baswana and Sen that
//!   computes a `(2k − 1)`-spanner with `O(k · n^{1 + 1/k})` edges in expectation. With
//!   `k = ⌈log₂ n⌉` this is the `O(n log n)`-edge, `≤ 2 log n`-stretch spanner invoked by
//!   Theorems 1 and 2 of the paper. A rayon-parallel variant mirrors the CRCW PRAM
//!   adaptation (Corollary 2).
//! * [`greedy`] — the classical greedy spanner, used as a deterministic baseline and as
//!   a correctness oracle in tests.
//! * [`bundle`] — t-bundle spanners (Definition 1): `H = H₁ + … + H_t` where `H_i` is a
//!   spanner of `G − Σ_{j<i} H_j`. The bundle certifies the effective-resistance upper
//!   bound of Lemma 1, which experiments E3 validates directly.
//!
//! All constructions return *edge ids into the input graph*, so downstream code (the
//! sampler of Algorithm 1) can cheaply partition the input into "bundle" and
//! "off-bundle" edges.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic;
pub mod baswana_sen;
pub mod bundle;
pub mod greedy;
pub mod partition;

pub use atomic::{AtomicFlags, AtomicIds};
pub use baswana_sen::{
    baswana_sen_on_view, baswana_sen_spanner, EdgeView, SpannerConfig, SpannerEngine,
    SpannerPhases, SpannerResult, ViewCsr,
};
pub use bundle::{t_bundle, t_bundle_on_engine, BundleConfig, BundleResult};
pub use greedy::greedy_spanner;
pub use partition::BlockPartition;

/// Default stretch target `2 ⌈log₂ n⌉` used when the caller does not override `k`.
///
/// The paper calls a `log n`-spanner any subgraph with stretch at most `2 log n`
/// (Section 2); both the Baswana–Sen construction with `k = ⌈log₂ n⌉` and the greedy
/// construction with this target satisfy that definition.
pub fn default_stretch_bound(n: usize) -> f64 {
    2.0 * (n.max(2) as f64).log2().ceil()
}
