//! Node storage for the merge-and-reduce tree: resident or spilled to disk.
//!
//! The [`crate::StreamSparsifier`] keeps its pending sparsifiers behind the
//! [`EdgeStore`] trait. [`MemStore`] holds every node in RAM — byte-identical to the
//! pre-trait engine. [`SpillStore`] bounds the edge bytes the store keeps resident:
//! when a `put` pushes it over budget, the **deepest** pending node (ties broken
//! oldest-first) is written to disk in the bit-exact binary format of
//! `sgs_graph::io` and read back only when a reduction takes it.
//!
//! ## Determinism contract
//!
//! Spill and readback decisions are functions of node sizes, depths, and arrival
//! order — all pure functions of the stream position — and the binary format
//! round-trips `f64` weights as exact bits. A fixed-seed run therefore produces
//! **bitwise identical** output (edges, weights, and every algorithmic stats column)
//! under `MemStore` and `SpillStore`, at any batch chop and any thread count; only
//! the [`SpillLedger`] columns record the difference. The store never draws
//! randomness: no vendored (or any) RNG is involved in deciding what spills.
//!
//! Deep nodes are the right ones to evict: a depth-`j` node is touched again only
//! when the tree accumulates enough *younger* data to force a depth-`j` merge, so the
//! deepest nodes are the coldest — the out-of-core analogue of merging
//! oldest-first.

use std::fs;
use std::mem;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use sgs_graph::{Edge, Graph, GraphError, Result};

use crate::stats::SpillLedger;

/// Bytes one resident edge occupies (`usize` endpoints + `f64` weight).
pub const EDGE_BYTES: usize = mem::size_of::<Edge>();

/// Opaque handle to a node held by an [`EdgeStore`]. Handles are dense, increase in
/// `put` order (the tie-break key of the spill policy), and are invalidated by
/// [`EdgeStore::take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeHandle(usize);

/// Where the merge tree keeps pending sparsifiers.
///
/// Implementations must be deterministic: identical `put`/`take` sequences must
/// yield identical graphs back (the binary spill format guarantees bit-exact weight
/// round-trips), and any internal placement policy may depend only on the sequence
/// itself — never on wall-clock, addresses, or randomness.
pub trait EdgeStore: std::fmt::Debug {
    /// Stores a node produced at application depth `depth`, returning its handle.
    fn put(&mut self, depth: usize, g: Graph) -> Result<NodeHandle>;

    /// Removes and returns a node (reading it back from disk if it was spilled).
    fn take(&mut self, h: NodeHandle) -> Result<Graph>;

    /// Edge count of a stored node, available without any readback.
    fn node_edges(&self, h: NodeHandle) -> usize;

    /// Edges currently held **in RAM** by the store (spilled nodes excluded).
    fn resident_edges(&self) -> usize;

    /// The spill/readback ledger (all zeros for stores that never spill).
    fn ledger(&self) -> SpillLedger;
}

/// The all-resident store: every node stays in RAM, exactly as before the
/// [`EdgeStore`] abstraction existed.
#[derive(Debug, Default)]
pub struct MemStore {
    nodes: Vec<Option<Graph>>,
    resident: usize,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl EdgeStore for MemStore {
    fn put(&mut self, _depth: usize, g: Graph) -> Result<NodeHandle> {
        let h = NodeHandle(self.nodes.len());
        self.resident += g.m();
        self.nodes.push(Some(g));
        Ok(h)
    }

    fn take(&mut self, h: NodeHandle) -> Result<Graph> {
        let g = self.nodes[h.0].take().expect("node handle already taken");
        self.resident -= g.m();
        Ok(g)
    }

    fn node_edges(&self, h: NodeHandle) -> usize {
        self.nodes[h.0].as_ref().expect("node handle taken").m()
    }

    fn resident_edges(&self) -> usize {
        self.resident
    }

    fn ledger(&self) -> SpillLedger {
        SpillLedger::default()
    }
}

/// Configuration of a [`SpillStore`].
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Edge-byte budget of the store: after every `put`, nodes are spilled (deepest
    /// first) until the store's resident edges fit in this many bytes. Note this
    /// bounds the *store* only — the engine's leaf buffer and in-flight merge unions
    /// stay in RAM regardless (see `StreamStats::peak_resident_bytes` for the
    /// end-to-end census).
    pub max_resident_bytes: usize,
    /// Directory for spill files; a unique subdirectory is created under it (and
    /// removed on drop). `None` uses the system temp directory.
    pub directory: Option<PathBuf>,
}

impl SpillConfig {
    /// A spill budget in bytes, spilling to the system temp directory.
    pub fn new(max_resident_bytes: usize) -> SpillConfig {
        SpillConfig {
            max_resident_bytes,
            directory: None,
        }
    }

    /// Overrides the directory spill files are created under.
    pub fn with_directory<P: Into<PathBuf>>(mut self, dir: P) -> Self {
        self.directory = Some(dir.into());
        self
    }
}

/// Distinguishes concurrently-created spill directories within one process; the pid
/// distinguishes processes sharing a temp dir.
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
enum SlotState {
    Resident(Graph),
    /// On disk at the slot's spill path; `n` is re-checked on readback.
    Spilled {
        n: usize,
    },
}

#[derive(Debug)]
struct Slot {
    depth: usize,
    m: usize,
    state: SlotState,
}

/// The out-of-core store: keeps at most `max_resident_bytes` of edges in RAM,
/// spilling the deepest (coldest) nodes to disk in the binary format.
///
/// The spill directory is created lazily on first spill and removed when the store
/// is dropped. Each node is one file; a file is deleted as soon as its node is read
/// back.
#[derive(Debug)]
pub struct SpillStore {
    cfg: SpillConfig,
    /// Unique directory holding the spill files, `None` until the first spill.
    dir: Option<PathBuf>,
    slots: Vec<Option<Slot>>,
    resident: usize,
    ledger: SpillLedger,
}

impl SpillStore {
    /// Creates an empty store. No filesystem activity happens until the first spill.
    pub fn new(cfg: SpillConfig) -> SpillStore {
        SpillStore {
            cfg,
            dir: None,
            slots: Vec::new(),
            resident: 0,
            ledger: SpillLedger::default(),
        }
    }

    /// The ledger accessor, also available through [`EdgeStore::ledger`].
    pub fn spill_ledger(&self) -> SpillLedger {
        self.ledger
    }

    fn ensure_dir(&mut self) -> Result<PathBuf> {
        if let Some(dir) = &self.dir {
            return Ok(dir.clone());
        }
        let base = self
            .cfg
            .directory
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        let unique = format!(
            "sgs-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let dir = base.join(unique);
        fs::create_dir_all(&dir)?;
        self.dir = Some(dir.clone());
        Ok(dir)
    }

    fn spill_path(dir: &std::path::Path, id: usize) -> PathBuf {
        dir.join(format!("node-{id:08}.sgsb"))
    }

    /// Spills resident nodes (deepest first, oldest first within a depth) until the
    /// store fits its byte budget. Pure function of the put/take sequence.
    fn enforce_budget(&mut self) -> Result<()> {
        while self.resident * EDGE_BYTES > self.cfg.max_resident_bytes {
            // Deepest resident node; ties broken by lowest id (oldest). Skip empty
            // graphs — spilling zero edges frees nothing and would loop forever.
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(id, s)| match s {
                    Some(Slot {
                        depth,
                        m,
                        state: SlotState::Resident(_),
                    }) if *m > 0 => Some((*depth, id, *m)),
                    _ => None,
                })
                .max_by(|a, b| (a.0, std::cmp::Reverse(a.1)).cmp(&(b.0, std::cmp::Reverse(b.1))));
            let Some((_, id, m)) = victim else {
                break;
            };
            let dir = self.ensure_dir()?;
            let path = SpillStore::spill_path(&dir, id);
            let slot = self.slots[id].as_mut().expect("victim exists");
            let SlotState::Resident(g) = &slot.state else {
                unreachable!("victim is resident");
            };
            sgs_graph::io::write_bin_file(g, &path)?;
            let n = g.n();
            let bytes = fs::metadata(&path)?.len();
            slot.state = SlotState::Spilled { n };
            self.resident -= m;
            self.ledger.spilled_nodes += 1;
            self.ledger.spilled_edges += m as u64;
            self.ledger.spilled_bytes += bytes;
            sgs_obs::point!("stream.spill", node = id, edges = m, bytes = bytes);
        }
        Ok(())
    }
}

impl EdgeStore for SpillStore {
    fn put(&mut self, depth: usize, g: Graph) -> Result<NodeHandle> {
        let h = NodeHandle(self.slots.len());
        self.resident += g.m();
        self.slots.push(Some(Slot {
            depth,
            m: g.m(),
            state: SlotState::Resident(g),
        }));
        self.enforce_budget()?;
        Ok(h)
    }

    fn take(&mut self, h: NodeHandle) -> Result<Graph> {
        let slot = self.slots[h.0].take().expect("node handle already taken");
        match slot.state {
            SlotState::Resident(g) => {
                self.resident -= slot.m;
                Ok(g)
            }
            SlotState::Spilled { n } => {
                let dir = self.dir.as_ref().expect("spilled node implies a dir");
                let path = SpillStore::spill_path(dir, h.0);
                let bytes = fs::metadata(&path)?.len();
                let g = sgs_graph::io::read_bin_file(&path)?;
                if g.n() != n || g.m() != slot.m {
                    return Err(GraphError::Io(format!(
                        "spill file {} does not match its node: expected n={n} m={}, \
                         got n={} m={}",
                        path.display(),
                        slot.m,
                        g.n(),
                        g.m()
                    )));
                }
                // Best-effort delete; a leftover file is reclaimed with the dir.
                let _ = fs::remove_file(&path);
                self.ledger.readback_nodes += 1;
                self.ledger.readback_edges += slot.m as u64;
                self.ledger.readback_bytes += bytes;
                sgs_obs::point!("stream.readback", node = h.0, edges = slot.m, bytes = bytes);
                Ok(g)
            }
        }
    }

    fn node_edges(&self, h: NodeHandle) -> usize {
        self.slots[h.0].as_ref().expect("node handle taken").m
    }

    fn resident_edges(&self) -> usize {
        self.resident
    }

    fn ledger(&self) -> SpillLedger {
        self.ledger
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        if let Some(dir) = &self.dir {
            let _ = fs::remove_dir_all(dir);
        }
    }
}

/// Storage selection for a [`crate::StreamConfig`].
#[derive(Debug, Clone, Default)]
pub enum StorageConfig {
    /// Every pending node stays in RAM ([`MemStore`]); the pre-trait behavior.
    #[default]
    Memory,
    /// Cold nodes spill to disk ([`SpillStore`]) under the configured byte budget.
    Spill(SpillConfig),
}

impl StorageConfig {
    /// Builds the configured store.
    pub(crate) fn build(&self) -> Box<dyn EdgeStore> {
        match self {
            StorageConfig::Memory => Box::new(MemStore::new()),
            StorageConfig::Spill(cfg) => Box::new(SpillStore::new(cfg.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    fn node(n: usize, m: usize, seed: u64) -> Graph {
        // A deterministic multigraph with exactly m edges.
        let mut g = Graph::new(n);
        let mut s = seed;
        for i in 0..m {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (s >> 33) as usize % n;
            let v = (u + 1 + (s as usize % (n - 1))) % n;
            let (u, v) = if u == v { (u, (u + 1) % n) } else { (u, v) };
            g.push_edge_unchecked(u.min(v), u.max(v), 1.0 + (i as f64) * 0.25);
        }
        g
    }

    #[test]
    fn mem_store_round_trips_without_ledger_activity() {
        let mut store = MemStore::new();
        let g = node(10, 25, 3);
        let edges = g.edges().to_vec();
        let h = store.put(0, g).unwrap();
        assert_eq!(store.node_edges(h), 25);
        assert_eq!(store.resident_edges(), 25);
        let back = store.take(h).unwrap();
        assert_eq!(back.edges(), edges.as_slice());
        assert_eq!(store.resident_edges(), 0);
        assert_eq!(store.ledger(), SpillLedger::default());
    }

    #[test]
    fn spill_store_spills_deepest_and_reads_back_bit_exact() {
        // Budget of 30 edges: the third put must push something out.
        let mut store = SpillStore::new(SpillConfig::new(30 * EDGE_BYTES));
        let shallow = node(12, 10, 1);
        let deep = node(12, 15, 2);
        let deeper = node(12, 12, 3);
        let (se, de, dpe) = (
            shallow.edges().to_vec(),
            deep.edges().to_vec(),
            deeper.edges().to_vec(),
        );
        let h0 = store.put(0, shallow).unwrap();
        let h2 = store.put(2, deep).unwrap();
        assert_eq!(store.ledger().spilled_nodes, 0, "under budget: no spill");
        let h1 = store.put(1, deeper).unwrap();
        // 37 edges resident > 30: the depth-2 node (deepest) spills; 22 fit.
        let ledger = store.ledger();
        assert_eq!(ledger.spilled_nodes, 1);
        assert_eq!(ledger.spilled_edges, 15);
        assert!(ledger.spilled_bytes > 0);
        assert_eq!(store.resident_edges(), 22);
        // node_edges needs no readback.
        assert_eq!(store.node_edges(h2), 15);
        assert_eq!(store.ledger().readback_nodes, 0);
        // Every node comes back bit-exact, spilled or not.
        let back2 = store.take(h2).unwrap();
        assert_eq!(back2.edges(), de.as_slice());
        assert_eq!(store.ledger().readback_nodes, 1);
        assert_eq!(store.ledger().readback_edges, 15);
        assert_eq!(store.take(h0).unwrap().edges(), se.as_slice());
        assert_eq!(store.take(h1).unwrap().edges(), dpe.as_slice());
        assert_eq!(store.resident_edges(), 0);
    }

    #[test]
    fn spill_store_ties_break_oldest_first() {
        // Same depth everywhere: the budget forces the oldest node out first.
        let mut store = SpillStore::new(SpillConfig::new(25 * EDGE_BYTES));
        let h0 = store.put(0, node(8, 10, 1)).unwrap();
        let h1 = store.put(0, node(8, 10, 2)).unwrap();
        let _h2 = store.put(0, node(8, 10, 3)).unwrap();
        // 30 > 25: spill h0 (oldest); 20 fit.
        assert_eq!(store.ledger().spilled_nodes, 1);
        assert_eq!(store.resident_edges(), 20);
        let _ = store.take(h1).unwrap();
        assert_eq!(store.ledger().readback_nodes, 0, "h1 was resident");
        let _ = store.take(h0).unwrap();
        assert_eq!(store.ledger().readback_nodes, 1, "h0 was the victim");
    }

    #[test]
    fn spill_store_cleans_its_directory_on_drop() {
        let base = std::env::temp_dir().join("sgs_spill_drop_test");
        std::fs::create_dir_all(&base).unwrap();
        let dir;
        {
            let mut store = SpillStore::new(SpillConfig::new(EDGE_BYTES).with_directory(&base));
            let _ = store.put(0, generators::grid2d(4, 4, 1.0)).unwrap();
            let _ = store.put(1, generators::grid2d(4, 4, 1.0)).unwrap();
            assert!(store.ledger().spilled_nodes > 0);
            dir = store.dir.clone().unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn zero_budget_keeps_empty_graphs_resident() {
        // Empty nodes cannot be usefully spilled; the enforcement loop must not spin.
        let mut store = SpillStore::new(SpillConfig::new(0));
        let h = store.put(0, Graph::new(5)).unwrap();
        assert_eq!(store.resident_edges(), 0);
        assert_eq!(store.take(h).unwrap().n(), 5);
    }
}
