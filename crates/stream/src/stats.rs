//! Accounting for the merge-and-reduce tree.
//!
//! The streaming engine's contract is *bounded memory with a provable accuracy
//! budget*; [`StreamStats`] carries the numbers that substantiate both halves — peak
//! resident edges for the memory claim, and the per-depth ε/work ledger for the
//! accuracy claim.

/// Counters of one application depth of the reduce tree (depth 0 = leaf reductions,
/// depth `j` = reductions whose inputs already went through `j` sparsifications).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelStats {
    /// The ε spent by each reduction at this depth.
    pub epsilon: f64,
    /// Number of reductions run at this depth.
    pub reductions: u64,
    /// Total edges entering reductions at this depth (union sizes; raw edges for
    /// leaves).
    pub edges_in: u64,
    /// Total edges surviving reductions at this depth.
    pub edges_out: u64,
    /// Spanner work (edge examinations) accumulated at this depth.
    pub spanner_work: u64,
    /// Sampling work (edges touched by coin flips) accumulated at this depth.
    pub sampling_work: u64,
}

/// Ledger entry of the ER-weighted final pass (when `StreamConfig::final_pass` is
/// set and `finish` ran it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErPassStats {
    /// The ε reserved for (and, if `resampled`, spent by) the pass.
    pub epsilon: f64,
    /// Edges entering the pass (the tree's final sparsifier).
    pub m_in: u64,
    /// Edges surviving the pass.
    pub m_out: u64,
    /// Laplacian solves performed by the resistance estimate.
    pub solves: u64,
    /// Whether the pass actually resampled; `false` means it short-circuited (its
    /// sample budget covered the input) and spent no accuracy.
    pub resampled: bool,
}

/// Byte-level ledger of an [`crate::store::EdgeStore`]: what was written to and read
/// back from disk, and the high-water mark of edge bytes actually held in RAM.
///
/// These are the *storage* columns of [`StreamStats`] — unlike every other column
/// they legitimately differ between `MemStore` and `SpillStore` on the same stream
/// (that difference is the whole point), so determinism fixtures comparing the two
/// stores must exclude them (see [`StreamStats::eq_modulo_storage`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillLedger {
    /// Tree nodes written to disk.
    pub spilled_nodes: u64,
    /// Edges written to disk (sum over spilled nodes).
    pub spilled_edges: u64,
    /// Bytes written to disk (binary-format file sizes, headers included).
    pub spilled_bytes: u64,
    /// Spilled nodes read back for a reduction.
    pub readback_nodes: u64,
    /// Edges read back from disk.
    pub readback_edges: u64,
    /// Bytes read back from disk.
    pub readback_bytes: u64,
}

/// Aggregated counters for one streaming run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    /// Total edges ingested.
    pub edges_ingested: u64,
    /// Number of `ingest_*` calls (the caller's batching granularity — informational;
    /// it never influences the output).
    pub batches_ingested: u64,
    /// Leaf reductions fired (full leaves during the stream plus at most one short
    /// leaf at `finish`).
    pub leaves: u64,
    /// Reductions forced by budget pressure rather than a full fan-in.
    pub forced_reductions: u64,
    /// Maximum number of simultaneously resident edges observed: leaf buffer +
    /// pending sparsifiers + in-flight merge unions. This is the number the
    /// `budget_edges` knob bounds (engine workspace such as the spanner CSR is
    /// proportional to the same quantity and not double-counted).
    pub peak_resident_edges: usize,
    /// Application depth of the final sparsifier (number of ε-schedule entries its
    /// data passed through on the deepest path).
    pub final_depth: usize,
    /// Maximum edge **bytes** simultaneously held in RAM: the same census points as
    /// [`peak_resident_edges`](Self::peak_resident_edges), but counting only edges
    /// actually resident (spilled nodes excluded) at `size_of::<Edge>()` bytes each,
    /// plus the transient read-back spike while a spilled child is drained into the
    /// merge scratch. With `MemStore` this is exactly `24 · peak_resident_edges`-ish;
    /// with `SpillStore` it is the number the out-of-core RSS budget bounds.
    pub peak_resident_bytes: usize,
    /// Per-depth ledger, indexed by application depth.
    pub levels: Vec<LevelStats>,
    /// Ledger of the ER-weighted final pass, `None` unless one was configured and ran.
    pub er_pass: Option<ErPassStats>,
    /// Spill/readback ledger of the node store (all zeros under `MemStore`).
    pub spill: SpillLedger,
}

impl StreamStats {
    /// The level entry for depth `j`, growing the ledger on first use.
    pub(crate) fn level_mut(&mut self, j: usize, epsilon: f64) -> &mut LevelStats {
        while self.levels.len() <= j {
            self.levels.push(LevelStats::default());
        }
        let level = &mut self.levels[j];
        level.epsilon = epsilon;
        level
    }

    /// Total ε actually spent: the sum of the schedule entries of every depth where at
    /// least one reduction *sampled* (reductions whose input was already below the
    /// early-stop threshold return it unchanged, cost no accuracy, and are not
    /// charged). Always at most the configured `ε_total` — this is the accounting side
    /// of the end-to-end `(1 ± ε_total)` guarantee.
    pub fn epsilon_spent(&self) -> f64 {
        let tree: f64 = self
            .levels
            .iter()
            .filter(|l| l.sampling_work > 0)
            .map(|l| l.epsilon)
            .sum();
        // The final pass only charges its reservation when it actually resampled.
        let pass = self
            .er_pass
            .as_ref()
            .filter(|p| p.resampled)
            .map(|p| p.epsilon)
            .unwrap_or(0.0);
        tree + pass
    }

    /// Equality of every *algorithmic* column, ignoring the storage columns
    /// ([`spill`](Self::spill) and [`peak_resident_bytes`](Self::peak_resident_bytes))
    /// that legitimately differ between `MemStore` and `SpillStore`. This is the
    /// comparison the spill-determinism fixtures pin: same edges, same weights, same
    /// ledger — only *where the bytes lived* may differ.
    pub fn eq_modulo_storage(&self, other: &StreamStats) -> bool {
        let mut a = self.clone();
        let mut b = other.clone();
        a.spill = SpillLedger::default();
        b.spill = SpillLedger::default();
        a.peak_resident_bytes = 0;
        b.peak_resident_bytes = 0;
        a == b
    }

    /// Total work proxy across all reductions (spanner + sampling operations), the
    /// same measure as `sgs_core::WorkStats::total_work`.
    pub fn total_work(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.spanner_work + l.sampling_work)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_grows_and_aggregates() {
        let mut s = StreamStats::default();
        {
            let l0 = s.level_mut(0, 0.25);
            l0.reductions += 2;
            l0.spanner_work += 10;
            l0.sampling_work += 5;
        }
        {
            let l2 = s.level_mut(2, 0.0625);
            l2.reductions += 1;
            l2.sampling_work += 7;
        }
        assert_eq!(s.levels.len(), 3);
        assert_eq!(s.levels[1].reductions, 0);
        // Depth 1 never ran, so its ε is not spent.
        assert!((s.epsilon_spent() - (0.25 + 0.0625)).abs() < 1e-12);
        assert_eq!(s.total_work(), 22);
    }

    #[test]
    fn default_is_empty() {
        let s = StreamStats::default();
        assert_eq!(s.epsilon_spent(), 0.0);
        assert_eq!(s.total_work(), 0);
        assert_eq!(s.peak_resident_edges, 0);
        assert!(s.er_pass.is_none());
    }

    #[test]
    fn er_pass_charges_epsilon_only_when_resampled() {
        let mut s = StreamStats::default();
        s.level_mut(0, 0.25).sampling_work += 1;
        s.er_pass = Some(ErPassStats {
            epsilon: 0.1,
            m_in: 100,
            m_out: 100,
            solves: 0,
            resampled: false,
        });
        assert!((s.epsilon_spent() - 0.25).abs() < 1e-12);
        s.er_pass.as_mut().unwrap().resampled = true;
        assert!((s.epsilon_spent() - 0.35).abs() < 1e-12);
    }
}
