//! Configuration of the semi-streaming sparsifier.

use sgs_core::{BundleSizing, SamplingPolicy, SparsifyConfig};

use crate::store::{SpillConfig, StorageConfig};

/// SplitMix64 finalizer (same mix as `sgs_core::sample`): full 64-bit avalanche.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// Configuration of a [`crate::StreamSparsifier`].
///
/// The two primary knobs are the end-to-end accuracy `epsilon` (`ε_total`) and the
/// resident-memory budget `budget_edges`; everything else tunes the shape of the
/// merge-and-reduce tree and is forwarded to the per-reduction `PARALLELSPARSIFY`
/// calls.
///
/// ## The ε-budget schedule
///
/// Every reduction at application depth `j` (leaves are `j = 0`, a merge of depth-`j`
/// nodes is application `j + 1`) runs `PARALLELSPARSIFY` at accuracy
///
/// ```text
/// ε_j = ε_total · (1 − r) · r^j          (r = level_ratio, default 1/2)
/// ```
///
/// so a node at depth `d` approximates the union of its raw edges within
/// `Π_{j<d} (1 ± ε_j)`, and because `Σ_{j≥0} ε_j = ε_total` the final sparsifier is a
/// `(1 ± ε_total)`-ish approximation of the whole stream at **any** tree depth — the
/// schedule never runs out, so the guarantee survives forced (budget-pressure)
/// reductions that deepen the tree beyond `log_arity(#leaves)`. (Formally
/// `Π(1+ε_j) ≤ e^{ε_total}` and `Π(1−ε_j) ≥ 1 − ε_total`; for small `ε_total` these
/// are the usual `(1 ± ε_total)` bounds, the same first-order composition the paper
/// uses when `PARALLELSPARSIFY` splits `ε` across its `⌈log ρ⌉` rounds.)
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// End-to-end accuracy target `ε_total` in `(0, 1]`.
    pub epsilon: f64,
    /// Resident-edge budget: the engine keeps (buffer + pending sparsifiers) at or
    /// under this many edges, forcing extra reductions when sparsifiers alone would
    /// exceed `budget_edges − leaf_capacity()`.
    pub budget_edges: usize,
    /// Merge fan-in `k` of the reduce tree (how many same-depth sparsifiers are
    /// unioned per reduction). Must be ≥ 2.
    pub arity: usize,
    /// Sparsification factor `ρ` forwarded to each `PARALLELSPARSIFY` reduction.
    pub rho: f64,
    /// Geometric ratio `r ∈ (0, 1)` of the per-depth ε schedule (see the type docs).
    pub level_ratio: f64,
    /// Bundle sizing rule forwarded to every reduction. As everywhere in this repo,
    /// [`BundleSizing::Paper`] gives the provable constants (and swallows practical
    /// graphs whole), the default scaled rule gives practical compression.
    pub bundle_sizing: BundleSizing,
    /// Off-bundle keep probability forwarded to every reduction.
    pub keep_probability: f64,
    /// Base RNG seed; every reduction derives its own seed from (depth, index), so
    /// results depend only on the edge stream and this value.
    pub seed: u64,
    /// Run the per-reduction sparsification under rayon.
    pub parallel: bool,
    /// Early-stop threshold forwarded to every reduction (`PARALLELSPARSIFY` leaves
    /// graphs with at most this many times `n log₂ n` edges untouched).
    pub stop_below_nlogn_factor: f64,
    /// Sampling strategy of depth-0 (leaf) reductions. Leaves see raw, large batches
    /// where Laplacian solves are at their most expensive and the uniform coin's
    /// variance has not compounded yet — uniform is the right default.
    pub leaf_sampling: SamplingPolicy,
    /// Sampling strategy of interior (depth ≥ 1, including forced) reductions. Deep
    /// chains compound uniform-sampling variance multiplicatively; leverage-aware
    /// sampling here ([`SamplingPolicy::effective_resistance`]) keeps interior nodes
    /// near the `n log n` floor instead.
    pub interior_sampling: SamplingPolicy,
    /// Optional ER-weighted final pass over the finished sparsifier (see
    /// [`FinalPassConfig`]). `None` (the default) leaves `finish()` byte-identical to
    /// the tree output; `Some` reserves `epsilon_fraction` of `ε_total` for the pass
    /// and runs the merge-and-reduce tree at the remaining `(1 − f) · ε_total`.
    pub final_pass: Option<FinalPassConfig>,
    /// Where pending tree nodes live: [`StorageConfig::Memory`] (the default; every
    /// node resident, byte-identical to the pre-spill engine) or
    /// [`StorageConfig::Spill`], which bounds the store's resident edge bytes by
    /// spilling cold deep nodes to disk. Storage placement never affects the output
    /// (see `crate::store` for the determinism contract).
    pub storage: StorageConfig,
}

/// Configuration of the ER-weighted final pass run by `StreamSparsifier::finish`.
///
/// The pass resamples the finished sparsifier with Spielman–Srivastava `w_e · R_e`
/// probabilities (`sgs_core::resparsify_er`), spending `epsilon_fraction · ε_total`
/// of the stream's accuracy budget. It composes with the tree's schedule exactly like
/// one more level: the tree certifies `H ≈ G` within `(1 − f) ε_total`, the pass
/// certifies `H' ≈ H` within `f ε_total`, and first-order composition gives
/// `H' ≈ G` within `ε_total`.
#[derive(Debug, Clone)]
pub struct FinalPassConfig {
    /// Fraction `f ∈ (0, 1)` of `ε_total` reserved for the pass (default 1/3).
    pub epsilon_fraction: f64,
    /// Oversampling constant of the pass's `q = c · n log₂ n / ε²` sample budget.
    pub oversample: f64,
    /// When `Some(shrink)`, the pass auto-tunes its budget from the sparsifier it
    /// actually receives — targeting `m_in / shrink` kept edges — instead of the
    /// fixed `oversample` constant (see `sgs_core::ErPassConfig::auto_shrink`).
    pub auto_shrink: Option<f64>,
    /// JL projection rows (= Laplacian solves) of the resistance estimate.
    pub jl_dims: usize,
    /// CG tolerance of each solve.
    pub cg_tol: f64,
}

impl FinalPassConfig {
    /// Practical defaults: a third of the ε budget, oversample 0.25, 8 rows at `1e-4`.
    pub fn new() -> FinalPassConfig {
        FinalPassConfig {
            epsilon_fraction: 1.0 / 3.0,
            oversample: 0.25,
            auto_shrink: None,
            jl_dims: 8,
            cg_tol: 1e-4,
        }
    }

    /// Overrides the ε fraction (must be in `(0, 1)`).
    pub fn with_epsilon_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f < 1.0, "epsilon fraction must be in (0, 1)");
        self.epsilon_fraction = f;
        self
    }

    /// Overrides the oversampling constant (must be positive; switches off
    /// auto-tuning).
    pub fn with_oversample(mut self, c: f64) -> Self {
        assert!(c > 0.0, "oversample must be positive");
        self.oversample = c;
        self.auto_shrink = None;
        self
    }

    /// Auto-tunes the pass budget from the observed sparsifier size: target
    /// `m_in / shrink` kept edges instead of the fixed constant.
    pub fn with_auto_oversample(mut self, shrink: f64) -> Self {
        assert!(shrink >= 1.0, "shrink must be at least 1");
        self.auto_shrink = Some(shrink);
        self
    }

    /// Overrides the JL dimensions (must be positive).
    pub fn with_jl_dims(mut self, k: usize) -> Self {
        assert!(k > 0, "jl_dims must be positive");
        self.jl_dims = k;
        self
    }

    /// Overrides the CG tolerance (must be positive).
    pub fn with_cg_tol(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "cg_tol must be positive");
        self.cg_tol = tol;
        self
    }
}

impl Default for FinalPassConfig {
    fn default() -> Self {
        FinalPassConfig::new()
    }
}

impl StreamConfig {
    /// Creates a configuration with accuracy `ε_total` and a resident-edge budget,
    /// with the same practical defaults as [`SparsifyConfig::new`] (scaled bundle,
    /// keep probability 1/4, parallel on) plus a binary merge tree (`arity = 2`,
    /// `r = 1/2`).
    ///
    /// Two defaults differ deliberately from the one-shot sparsifier: `ρ = 2` — each
    /// reduction performs a *single* sampling round, because the tree itself supplies
    /// the repeated halving and extra rounds per reduction would only compound
    /// sampling error — and `stop_below_nlogn_factor = 0.5`, because a streaming
    /// engine must keep compressing down toward its memory budget where the one-shot
    /// default (2.0) would declare leaf-sized graphs "sparse enough" and stack them
    /// uncompressed.
    pub fn new(epsilon: f64, budget_edges: usize) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        assert!(budget_edges >= 2, "budget_edges must be at least 2");
        StreamConfig {
            epsilon,
            budget_edges,
            arity: 2,
            rho: 2.0,
            level_ratio: 0.5,
            bundle_sizing: BundleSizing::Scaled(0.5),
            keep_probability: 0.25,
            seed: 0xC0FFEE,
            parallel: true,
            stop_below_nlogn_factor: 0.5,
            leaf_sampling: SamplingPolicy::uniform(),
            interior_sampling: SamplingPolicy::uniform(),
            final_pass: None,
            storage: StorageConfig::Memory,
        }
    }

    /// Overrides the merge fan-in (must be ≥ 2).
    pub fn with_arity(mut self, arity: usize) -> Self {
        assert!(arity >= 2, "arity must be at least 2");
        self.arity = arity;
        self
    }

    /// Overrides the per-reduction sparsification factor `ρ` (must be ≥ 1).
    pub fn with_rho(mut self, rho: f64) -> Self {
        assert!(rho >= 1.0, "rho must be at least 1");
        self.rho = rho;
        self
    }

    /// Overrides the geometric ε-schedule ratio (must be in `(0, 1)`).
    pub fn with_level_ratio(mut self, r: f64) -> Self {
        assert!(r > 0.0 && r < 1.0, "level ratio must be in (0, 1)");
        self.level_ratio = r;
        self
    }

    /// Overrides the bundle sizing rule.
    pub fn with_bundle_sizing(mut self, sizing: BundleSizing) -> Self {
        self.bundle_sizing = sizing;
        self
    }

    /// Overrides the off-bundle keep probability (must be in `(0, 1)`).
    pub fn with_keep_probability(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "keep probability must be in (0, 1)");
        self.keep_probability = p;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables rayon parallelism inside reductions.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Overrides the sampling strategy of depth-0 (leaf) reductions.
    pub fn with_leaf_sampling(mut self, sampling: SamplingPolicy) -> Self {
        self.leaf_sampling = sampling;
        self
    }

    /// Overrides the sampling strategy of interior (depth ≥ 1) reductions.
    pub fn with_interior_sampling(mut self, sampling: SamplingPolicy) -> Self {
        self.interior_sampling = sampling;
        self
    }

    /// Enables the ER-weighted final pass (see [`FinalPassConfig`]).
    pub fn with_final_pass(mut self, pass: FinalPassConfig) -> Self {
        self.final_pass = Some(pass);
        self
    }

    /// Overrides the node-storage backend.
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Enables out-of-core node storage (see [`SpillConfig`]): pending tree nodes
    /// beyond the spill budget are written to disk and read back only at reduction
    /// time, with fixed-seed output bitwise identical to in-memory storage.
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.storage = StorageConfig::Spill(spill);
        self
    }

    /// Maximum raw edges buffered before a leaf reduction fires: half the budget (the
    /// other half is reserved for the pending sparsifiers of the tree).
    ///
    /// The actual trigger is adaptive — a leaf fires as soon as
    /// `2·buffer + resident_sparsifiers ≥ budget_edges` (with the buffer at least
    /// [`StreamConfig::min_leaf_edges`]), so the resident census through a leaf
    /// reduction never exceeds the budget: the output of a reduction is never larger
    /// than its input, hence `buffer + resident + leaf_output ≤ 2·buffer + resident`.
    /// Both trigger inputs are deterministic functions of the stream position alone —
    /// never of how the caller chopped the stream into batches — which is what makes
    /// fixed-seed output identical for 1 batch and for 1000 batches of the same edge
    /// sequence.
    pub fn leaf_capacity(&self) -> usize {
        (self.budget_edges / 2).max(1)
    }

    /// Minimum leaf size (an eighth of the budget): prevents degenerate one-edge
    /// leaves when the pending sparsifiers cannot be compressed below the budget
    /// (budgets under the spectral-sparsity floor `~n log n` run in this degraded
    /// mode — the engine still works, with resident memory pinned at the floor).
    pub fn min_leaf_edges(&self) -> usize {
        (self.budget_edges / 8).max(1)
    }

    /// The ε fraction reserved for the final pass (0 when no pass is configured).
    pub fn final_pass_epsilon(&self) -> f64 {
        self.final_pass
            .as_ref()
            .map(|fp| self.epsilon * fp.epsilon_fraction)
            .unwrap_or(0.0)
    }

    /// The ε available to the merge-and-reduce tree: `ε_total` minus the final-pass
    /// reservation. Without a final pass this is exactly `ε_total`, so the schedule —
    /// and every fixed-seed output — is unchanged from the pass-free engine.
    pub fn tree_epsilon(&self) -> f64 {
        self.epsilon - self.final_pass_epsilon()
    }

    /// The ε spent by a reduction at application depth `j` (see the type docs; the
    /// geometric schedule is taken over [`StreamConfig::tree_epsilon`]).
    pub fn level_epsilon(&self, j: usize) -> f64 {
        let eps = self.tree_epsilon() * (1.0 - self.level_ratio) * self.level_ratio.powi(j as i32);
        // Very deep (forced) chains would underflow to 0, which SparsifyConfig
        // rejects; clamp to a subnormal-free floor. ε this small is pure accounting.
        eps.max(1e-300)
    }

    /// The `SparsifyConfig` for reduction number `index` at application depth `j`.
    ///
    /// Depth 0 gets [`StreamConfig::leaf_sampling`], everything deeper (including
    /// forced reductions) gets [`StreamConfig::interior_sampling`].
    pub(crate) fn reduction_config(&self, j: usize, index: u64) -> SparsifyConfig {
        let sampling = if j == 0 {
            self.leaf_sampling.clone()
        } else {
            self.interior_sampling.clone()
        };
        let mut cfg = SparsifyConfig::new(self.level_epsilon(j).min(1.0), self.rho)
            .with_bundle_sizing(self.bundle_sizing)
            .with_keep_probability(self.keep_probability)
            .with_parallel(self.parallel)
            .with_sampling(sampling)
            .with_seed(splitmix64(
                splitmix64(self.seed ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ index,
            ));
        cfg.stop_below_nlogn_factor = self.stop_below_nlogn_factor;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_schedule_sums_to_epsilon_total() {
        let cfg = StreamConfig::new(0.8, 1000);
        let sum: f64 = (0..200).map(|j| cfg.level_epsilon(j)).sum();
        assert!(sum <= 0.8 + 1e-9, "schedule overspends: {sum}");
        assert!(
            sum > 0.8 - 1e-6,
            "schedule should converge to ε_total: {sum}"
        );
        // Geometric decay with the configured ratio.
        assert!((cfg.level_epsilon(1) / cfg.level_epsilon(0) - 0.5).abs() < 1e-12);
        let custom = StreamConfig::new(0.8, 1000).with_level_ratio(0.25);
        assert!((custom.level_epsilon(1) / custom.level_epsilon(0) - 0.25).abs() < 1e-12);
        // Deep levels never reach zero (SparsifyConfig would reject it).
        assert!(cfg.level_epsilon(5000) > 0.0);
    }

    #[test]
    fn leaf_capacity_is_half_the_budget() {
        assert_eq!(StreamConfig::new(0.5, 1000).leaf_capacity(), 500);
        assert_eq!(StreamConfig::new(0.5, 3).leaf_capacity(), 1);
        assert_eq!(StreamConfig::new(0.5, 2).leaf_capacity(), 1);
    }

    #[test]
    fn reduction_configs_are_distinct_per_depth_and_index() {
        let cfg = StreamConfig::new(0.5, 1000).with_seed(7);
        let a = cfg.reduction_config(0, 0);
        let b = cfg.reduction_config(0, 1);
        let c = cfg.reduction_config(1, 0);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
        assert_ne!(b.seed, c.seed);
        assert!((a.epsilon - 0.25).abs() < 1e-12);
        assert!((c.epsilon - 0.125).abs() < 1e-12);
        // Deterministic.
        assert_eq!(a.seed, cfg.reduction_config(0, 0).seed);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = StreamConfig::new(0.0, 100);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_arity() {
        let _ = StreamConfig::new(0.5, 100).with_arity(1);
    }

    #[test]
    #[should_panic(expected = "level ratio")]
    fn rejects_bad_level_ratio() {
        let _ = StreamConfig::new(0.5, 100).with_level_ratio(1.0);
    }

    #[test]
    fn final_pass_reserves_epsilon_fraction() {
        let plain = StreamConfig::new(0.6, 1000);
        assert_eq!(plain.final_pass_epsilon(), 0.0);
        assert_eq!(plain.tree_epsilon(), 0.6);

        let with_pass = StreamConfig::new(0.6, 1000)
            .with_final_pass(FinalPassConfig::new().with_epsilon_fraction(0.5));
        assert!((with_pass.final_pass_epsilon() - 0.3).abs() < 1e-12);
        assert!((with_pass.tree_epsilon() - 0.3).abs() < 1e-12);
        // Tree schedule + pass reservation still sums to ε_total.
        let tree_sum: f64 = (0..200).map(|j| with_pass.level_epsilon(j)).sum();
        assert!(tree_sum + with_pass.final_pass_epsilon() <= 0.6 + 1e-9);
    }

    #[test]
    fn per_depth_sampling_policy_selection() {
        use sgs_core::SamplingPolicy;
        let cfg = StreamConfig::new(0.5, 1000)
            .with_interior_sampling(SamplingPolicy::effective_resistance(4, 1e-3));
        assert_eq!(cfg.reduction_config(0, 0).sampling.name(), "uniform");
        assert_eq!(
            cfg.reduction_config(1, 0).sampling.name(),
            "effective-resistance"
        );
        assert_eq!(
            cfg.reduction_config(3, 2).sampling.name(),
            "effective-resistance"
        );
    }
}
