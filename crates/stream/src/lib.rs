//! # sgs-stream
//!
//! Bounded-memory **semi-streaming spectral sparsification**: ingest a graph as an
//! arbitrary sequence of edge batches and produce a `(1 ± ε_total)` spectral
//! sparsifier while keeping at most a configured number of edges resident.
//!
//! The engine is a *merge-and-reduce tree* over `PARALLELSPARSIFY` (Algorithm 2 of the
//! paper). The composition fact it leans on is the one the paper itself iterates
//! across rounds — a `(1 ± ε₂)` sparsifier of a union of `(1 ± ε₁)` sparsifiers is a
//! `(1 ± ε₁)(1 ± ε₂)` sparsifier of the union — applied across *slices of the edge
//! stream*: raw edges are buffered into leaves, each leaf is sparsified, and `k`
//! same-depth sparsifiers are repeatedly unioned ([`sgs_graph::ops::merge_union`],
//! duplicate weights accumulated) and resparsified, with a geometric ε schedule
//! (`ε_j = ε_total (1−r) r^j`, `Σ ε_j = ε_total`) so the end-to-end guarantee holds at
//! any tree depth. Input size is thereby decoupled from resident memory: the stream
//! may be far larger than RAM, arrive from an iterator, a channel, or the chunked
//! [`sgs_graph::io::EdgeBatchReader`].
//!
//! Fixed-seed output is bitwise identical across rayon thread counts **and** across
//! batch boundaries (leaves fire on stream position, not on `ingest` call shape).
//!
//! Node storage is pluggable ([`store::EdgeStore`]): by default every pending
//! sparsifier stays resident ([`store::MemStore`]); [`StreamConfig::with_spill`]
//! switches to [`store::SpillStore`], which bounds the store's resident edge bytes
//! by writing cold deep tree nodes to disk in `sgs_graph::io`'s bit-exact binary
//! format and reading them back only at reduction time. Spill placement is a pure
//! function of stream position, so fixed-seed output stays bitwise identical across
//! storage backends too — only the [`SpillLedger`] columns of [`StreamStats`]
//! differ.
//!
//! ```
//! use sgs_graph::generators;
//! use sgs_stream::{StreamConfig, StreamSparsifier};
//! use sgs_core::BundleSizing;
//!
//! let g = generators::erdos_renyi(400, 0.4, 1.0, 7); // ~32k edges
//! let budget = g.m() / 2;                            // resident-edge budget
//! let cfg = StreamConfig::new(0.75, budget)
//!     .with_bundle_sizing(BundleSizing::Fixed(2))
//!     .with_seed(1);
//!
//! let mut stream = StreamSparsifier::new(g.n(), cfg);
//! for batch in g.edges().chunks(1000) {              // any batching works
//!     stream.ingest_batch(batch).unwrap();
//! }
//! let out = stream.finish();
//! assert!(out.sparsifier.m() < g.m() / 2);
//! assert!(out.stats.peak_resident_edges <= budget + 2000);
//! assert!(out.stats.epsilon_spent() <= 0.75);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod sparsifier;
pub mod stats;
pub mod store;

pub use config::{FinalPassConfig, StreamConfig};
pub use sparsifier::{StreamOutput, StreamSparsifier};
pub use stats::{ErPassStats, LevelStats, SpillLedger, StreamStats};
pub use store::{EdgeStore, MemStore, NodeHandle, SpillConfig, SpillStore, StorageConfig};

/// Commonly used items for downstream crates and examples.
pub mod prelude {
    pub use crate::config::{FinalPassConfig, StreamConfig};
    pub use crate::sparsifier::{StreamOutput, StreamSparsifier};
    pub use crate::stats::{ErPassStats, LevelStats, SpillLedger, StreamStats};
    pub use crate::store::{EdgeStore, MemStore, SpillConfig, SpillStore, StorageConfig};
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_core::{parallel_sparsify, BundleSizing};
    use sgs_graph::io::EdgeBatchReader;
    use sgs_graph::{generators, Edge, Graph};

    fn cfg(budget: usize, seed: u64) -> StreamConfig {
        StreamConfig::new(0.75, budget)
            .with_bundle_sizing(BundleSizing::Fixed(3))
            .with_seed(seed)
    }

    fn stream_in_batches(g: &Graph, c: &StreamConfig, batches: usize) -> StreamOutput {
        let mut s = StreamSparsifier::new(g.n(), c.clone());
        let chunk = g.m().div_ceil(batches.max(1)).max(1);
        for batch in g.edges().chunks(chunk) {
            s.ingest_batch(batch).unwrap();
        }
        s.finish()
    }

    #[test]
    fn output_is_independent_of_batch_chop() {
        let g = generators::erdos_renyi(300, 0.3, 1.0, 11);
        let c = cfg(g.m() / 3, 5);
        let one = stream_in_batches(&g, &c, 1);
        for batches in [2, 7, 16, 333] {
            let many = stream_in_batches(&g, &c, batches);
            assert_eq!(
                one.sparsifier.edges(),
                many.sparsifier.edges(),
                "{batches} batches changed the output"
            );
            // Only the batch census may differ; the tree accounting must match.
            assert_eq!(one.stats.leaves, many.stats.leaves);
            assert_eq!(one.stats.levels, many.stats.levels);
            assert_eq!(
                one.stats.peak_resident_edges,
                many.stats.peak_resident_edges
            );
            assert_eq!(one.stats.forced_reductions, many.stats.forced_reductions);
        }
    }

    #[test]
    fn stays_within_budget_plus_one_batch() {
        // Dense workload with the budget comfortably above the sparsifier floor
        // (t · n log n-ish): the census must never exceed budget + one ingest batch,
        // and the buffer alone must always fit in half the budget.
        let g = generators::erdos_renyi(300, 0.5, 1.0, 3); // m ≈ 22k
        let budget = g.m() / 2;
        let c = StreamConfig::new(0.75, budget)
            .with_bundle_sizing(BundleSizing::Fixed(2))
            .with_seed(9);
        let batch = g.m() / 16;
        let mut s = StreamSparsifier::new(g.n(), c);
        for chunk in g.edges().chunks(batch.max(1)) {
            s.ingest_batch(chunk).unwrap();
            assert!(
                s.resident_edges() <= budget + batch,
                "resident census {} exceeds budget {budget} + batch {batch}",
                s.resident_edges()
            );
        }
        let out = s.finish();
        assert!(
            out.stats.peak_resident_edges <= budget + batch,
            "peak {} exceeds budget {budget} + batch {batch}",
            out.stats.peak_resident_edges
        );
        assert!(out.stats.peak_resident_edges > 0);
        assert!(out.sparsifier.m() < g.m() / 2);
    }

    #[test]
    fn unbounded_budget_reduces_exactly_once() {
        // With the whole stream inside one leaf, the engine is PARALLELSPARSIFY at
        // ε_0 on the (identically ordered) input — pending tree machinery never runs.
        let g = generators::erdos_renyi(250, 0.3, 1.0, 21);
        let c = cfg(10 * g.m(), 4);
        let out = stream_in_batches(&g, &c, 5);
        assert_eq!(out.stats.leaves, 1);
        assert_eq!(out.stats.forced_reductions, 0);
        assert_eq!(out.stats.final_depth, 1);
        let expected = parallel_sparsify(&g, &c.reduction_config(0, 0));
        assert_eq!(out.sparsifier.edges(), expected.sparsifier.edges());
    }

    #[test]
    fn epsilon_ledger_never_overspends() {
        let g = generators::erdos_renyi(300, 0.4, 1.0, 17);
        for budget_div in [2, 4, 8] {
            let c = cfg(g.m() / budget_div, 2);
            let out = stream_in_batches(&g, &c, 12);
            let spent = out.stats.epsilon_spent();
            assert!(
                spent <= 0.75 + 1e-12,
                "budget/{budget_div}: ε ledger overspent: {spent}"
            );
            assert!(out.stats.final_depth >= 1);
            // Every level that ran has a consistent in/out ledger. (A level may have
            // zero sampling work: reductions whose input was already below the
            // early-stop threshold are identity passes and spend no ε.)
            for l in &out.stats.levels {
                if l.reductions > 0 {
                    assert!(l.edges_in >= l.edges_out);
                }
            }
        }
    }

    #[test]
    fn ingest_validates_and_batches_atomically() {
        let mut s = StreamSparsifier::new(5, cfg(100, 1));
        // Invalid batch: nothing lands.
        let bad = [Edge::new(0, 1, 1.0), Edge::new(0, 9, 1.0)];
        assert!(s.ingest_batch(&bad).is_err());
        assert_eq!(s.stats().edges_ingested, 0);
        assert_eq!(s.resident_edges(), 0);
        // Self-loops and bad weights are rejected.
        assert!(s.ingest_batch(&[Edge::new(2, 2, 1.0)]).is_err());
        assert!(s.ingest_batch(&[Edge::new(0, 1, -1.0)]).is_err());
        assert!(s.ingest_batch(&[Edge::new(0, 1, f64::NAN)]).is_err());
        // Valid edges land.
        s.ingest_batch(&[Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0)])
            .unwrap();
        assert_eq!(s.stats().edges_ingested, 2);
        let out = s.finish();
        assert_eq!(out.sparsifier.m(), 2);
        // Only the successful batch counts.
        assert_eq!(out.stats.batches_ingested, 1);
    }

    /// Failure-atomicity contract: a failed `ingest_batch` changes nothing and the
    /// sparsifier stays usable; a partial `ingest_iter` failure poisons it, every
    /// further ingest call names the original error, and `finish` still produces the
    /// validly-ingested prefix.
    #[test]
    fn failed_ingest_is_atomic_or_poisons() {
        use sgs_graph::GraphError;

        // ingest_batch: atomic — the exact state (stats included) survives the error
        // and identical input afterwards yields the unperturbed output.
        let g = generators::erdos_renyi(120, 0.3, 1.0, 19);
        let c = cfg(g.m() / 3, 7);
        let clean = stream_in_batches(&g, &c, 4);
        let mut s = StreamSparsifier::new(g.n(), c.clone());
        let chunk = g.m().div_ceil(4);
        for (i, batch) in g.edges().chunks(chunk).enumerate() {
            if i == 2 {
                let mut bad = batch.to_vec();
                bad.push(Edge::new(0, g.n() + 5, 1.0));
                let before = (s.resident_edges(), s.stats().clone());
                assert!(s.ingest_batch(&bad).is_err());
                assert_eq!(before.0, s.resident_edges());
                assert_eq!(&before.1, s.stats());
                assert!(s.poisoned().is_none());
            }
            s.ingest_batch(batch).unwrap();
        }
        assert_eq!(clean.sparsifier.edges(), s.finish().sparsifier.edges());

        // ingest_iter failing before the first edge: state unchanged, not poisoned.
        let mut s = StreamSparsifier::new(5, cfg(100, 1));
        assert!(s.ingest_iter([Edge::new(2, 2, 1.0)]).is_err());
        assert!(s.poisoned().is_none());
        assert_eq!(s.stats().batches_ingested, 0);
        assert_eq!(s.resident_edges(), 0);

        // ingest_iter failing after partial progress: poisoned, and every ingest
        // entry point now reports the original failure.
        let partial = [
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, f64::INFINITY),
            Edge::new(2, 3, 1.0),
        ];
        assert!(s.ingest_iter(partial).is_err());
        let why = s
            .poisoned()
            .expect("partial failure must poison")
            .to_string();
        assert!(
            why.contains("inf"),
            "poison reason should name the cause: {why}"
        );
        assert_eq!(s.stats().edges_ingested, 1, "valid prefix stays ingested");
        for result in [
            s.ingest_batch(&[Edge::new(0, 1, 1.0)]),
            s.ingest_iter([Edge::new(0, 1, 1.0)]).map(|_| ()),
        ] {
            match result {
                Err(GraphError::Poisoned(msg)) => assert!(msg.contains("inf"), "{msg}"),
                other => panic!("expected Poisoned, got {other:?}"),
            }
        }
        let mut reader = EdgeBatchReader::new("5 1\n0 1 1.0\n".as_bytes()).expect("valid header");
        assert!(matches!(
            s.ingest_reader(&mut reader, 8),
            Err(GraphError::Poisoned(_))
        ));
        // finish still hands back the valid prefix.
        assert_eq!(s.finish().sparsifier.m(), 1);

        // ingest_reader failing after a full chunk landed: poisoned too.
        let text = "5 3\n0 1 1.0\n1 2 1.0\nzebra\n";
        let mut reader = EdgeBatchReader::new(text.as_bytes()).unwrap();
        let mut s = StreamSparsifier::new(5, cfg(100, 1));
        assert!(s.ingest_reader(&mut reader, 2).is_err());
        assert!(s.poisoned().is_some());
        assert_eq!(s.stats().edges_ingested, 2);
    }

    #[test]
    fn empty_stream_finishes_empty() {
        let s = StreamSparsifier::new(7, cfg(100, 1));
        let out = s.finish();
        assert_eq!(out.sparsifier.n(), 7);
        assert_eq!(out.sparsifier.m(), 0);
        assert_eq!(out.stats.leaves, 0);
        assert_eq!(out.stats.final_depth, 0);
    }

    #[test]
    fn iterator_and_reader_ingestion_match_batches() {
        let g = generators::erdos_renyi(200, 0.3, 1.0, 31);
        let c = cfg(g.m() / 3, 13);

        let by_batches = stream_in_batches(&g, &c, 9);

        let mut by_iter = StreamSparsifier::new(g.n(), c.clone());
        let count = by_iter.ingest_iter(g.edges().iter().copied()).unwrap();
        assert_eq!(count, g.m() as u64);
        let by_iter = by_iter.finish();
        assert_eq!(by_batches.sparsifier.edges(), by_iter.sparsifier.edges());

        let text = sgs_graph::io::to_string(&g);
        let mut reader = EdgeBatchReader::new(text.as_bytes()).unwrap();
        let mut by_reader = StreamSparsifier::new(reader.n(), c.clone());
        let count = by_reader.ingest_reader(&mut reader, 777).unwrap();
        assert_eq!(count, g.m() as u64);
        let by_reader = by_reader.finish();
        assert_eq!(by_batches.sparsifier.edges(), by_reader.sparsifier.edges());
    }

    #[test]
    fn channel_ingestion_works() {
        let g = generators::erdos_renyi(150, 0.3, 1.0, 41);
        let c = cfg(g.m() / 2, 3);
        let (tx, rx) = std::sync::mpsc::channel::<Edge>();
        for &e in g.edges() {
            tx.send(e).unwrap();
        }
        drop(tx);
        let mut s = StreamSparsifier::new(g.n(), c.clone());
        s.ingest_iter(rx).unwrap();
        let via_channel = s.finish();
        let direct = stream_in_batches(&g, &c, 1);
        assert_eq!(via_channel.sparsifier.edges(), direct.sparsifier.edges());
    }

    #[test]
    fn different_seeds_differ_and_same_seed_repeats() {
        let g = generators::erdos_renyi(250, 0.4, 1.0, 2);
        let a = stream_in_batches(&g, &cfg(g.m() / 4, 5), 8);
        let b = stream_in_batches(&g, &cfg(g.m() / 4, 5), 8);
        let d = stream_in_batches(&g, &cfg(g.m() / 4, 6), 8);
        assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
        assert_ne!(a.sparsifier.edges(), d.sparsifier.edges());
    }

    #[test]
    fn spectral_quality_is_preserved_end_to_end() {
        use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};
        let g = generators::erdos_renyi(300, 0.5, 1.0, 19); // dense: ~22k edges
                                                            // Budget headroom (m/2) and a gentle keep probability: the quality regime.
                                                            // Tighter budgets force deeper resparsification chains whose error compounds
                                                            // per level — that frontier is measured by exp_stream and pinned (loosely) in
                                                            // the golden/acceptance suites, not asserted here.
        let c = StreamConfig::new(0.75, g.m() / 2)
            .with_bundle_sizing(BundleSizing::Fixed(2))
            .with_keep_probability(0.5)
            .with_seed(23);
        let out = stream_in_batches(&g, &c, 10);
        assert!(out.sparsifier.m() < g.m());
        assert!(sgs_graph::connectivity::is_connected(&out.sparsifier));
        let b = approximation_bounds(&g, &out.sparsifier, &CertifyOptions::default());
        // Practical bundle sizing trades the proof for constants (as everywhere in
        // this repo): assert a healthy two-sided envelope rather than the paper ε.
        assert!(b.lower > 0.2, "lower {b:?}");
        assert!(b.upper < 4.0, "upper {b:?}");
    }

    #[test]
    fn er_policy_and_final_pass_shrink_output_within_ledger() {
        use sgs_core::SamplingPolicy;
        let g = generators::erdos_renyi(300, 0.4, 1.0, 29);
        let base = cfg(g.m() / 4, 7);
        let er = base
            .clone()
            .with_interior_sampling(SamplingPolicy::effective_resistance(4, 1e-3))
            .with_final_pass(
                // The pass budget is q = c · n log n / ε²; with ε_pass = ε_total/3 the
                // ε² denominator inflates q, so the compressing regime needs a small c
                // (the default 0.25 short-circuits on tree outputs this small).
                FinalPassConfig::new()
                    .with_oversample(0.04)
                    .with_jl_dims(4)
                    .with_cg_tol(1e-3),
            );
        let uniform_out = stream_in_batches(&g, &base, 8);
        let er_out = stream_in_batches(&g, &er, 8);
        // The pass ran, its ledger is recorded, and ε stays within ε_total.
        let pass = er_out.stats.er_pass.as_ref().expect("final pass ledger");
        assert!(pass.resampled, "pass should resample: {pass:?}");
        assert_eq!(pass.m_out, er_out.sparsifier.m() as u64);
        assert!(er_out.stats.epsilon_spent() <= 0.75 + 1e-12);
        // The ER path must compress strictly better than the uniform path.
        assert!(
            er_out.sparsifier.m() < uniform_out.sparsifier.m(),
            "er m_out {} vs uniform {}",
            er_out.sparsifier.m(),
            uniform_out.sparsifier.m()
        );
        assert!(sgs_graph::connectivity::is_connected(&er_out.sparsifier));
        // Batch-chop invariance holds on the ER path too.
        let rechopped = stream_in_batches(&g, &er, 33);
        assert_eq!(er_out.sparsifier.edges(), rechopped.sparsifier.edges());
        assert_eq!(er_out.stats.er_pass, rechopped.stats.er_pass);
    }

    #[test]
    fn final_pass_short_circuit_leaves_output_unchanged() {
        // Paper-faithful oversampling: the pass's budget covers any practical input,
        // so it must return the tree output untouched and charge no ε.
        let g = generators::erdos_renyi(200, 0.3, 1.0, 11);
        let base = cfg(g.m() / 3, 5);
        let with_pass = base
            .clone()
            .with_final_pass(FinalPassConfig::new().with_oversample(24.0));
        let plain = stream_in_batches(&g, &base, 6);
        let passed = stream_in_batches(&g, &with_pass, 6);
        let ledger = passed.stats.er_pass.as_ref().expect("pass ledger");
        assert!(!ledger.resampled);
        assert_eq!(ledger.solves, 0);
        // ε accounting: the no-op pass costs nothing, but the tree ran at the reduced
        // (1 − f) ε_total schedule, so outputs legitimately differ from `plain`.
        assert!(passed.stats.epsilon_spent() <= plain.stats.epsilon_spent() + 1e-12);
        assert_eq!(ledger.m_in, ledger.m_out);
    }

    #[test]
    fn spill_store_output_is_bitwise_identical_to_memory() {
        // A budget comfortably above the compression floor (m/2 with arity-2
        // bundles keeps forced reductions at zero): the tree parks cold deep nodes,
        // which is where spilling pays. Under budget pressure every forced
        // reduction re-unions the whole pending set in RAM, so the peak is the
        // union itself and no storage policy can lower it — the ledger columns
        // still hold there, but the RAM-win assertion below would not.
        let g = generators::erdos_renyi(300, 0.4, 1.0, 29);
        let base = StreamConfig::new(0.75, g.m() / 2)
            .with_bundle_sizing(BundleSizing::Fixed(2))
            .with_seed(7);
        let mem_out = stream_in_batches(&g, &base, 16);
        assert_eq!(
            mem_out.stats.forced_reductions, 0,
            "healthy regime required"
        );
        // A store budget a small fraction of the tree budget guarantees real
        // spilling.
        let spill = base
            .clone()
            .with_spill(SpillConfig::new(g.m() / 24 * crate::store::EDGE_BYTES));
        let spill_out = stream_in_batches(&g, &spill, 16);
        assert_eq!(mem_out.sparsifier.edges(), spill_out.sparsifier.edges());
        assert!(
            mem_out.stats.eq_modulo_storage(&spill_out.stats),
            "algorithmic stats must not depend on storage:\n{:?}\nvs\n{:?}",
            mem_out.stats,
            spill_out.stats
        );
        let ledger = spill_out.stats.spill;
        assert!(ledger.spilled_nodes > 0, "spilling must actually happen");
        assert!(ledger.readback_nodes <= ledger.spilled_nodes);
        assert_eq!(mem_out.stats.spill, SpillLedger::default());
        // The whole point: spilling lowers the RAM high-water mark.
        assert!(
            spill_out.stats.peak_resident_bytes < mem_out.stats.peak_resident_bytes,
            "spill peak {} vs mem peak {}",
            spill_out.stats.peak_resident_bytes,
            mem_out.stats.peak_resident_bytes
        );
    }

    #[test]
    fn forced_reductions_kick_in_under_tight_budgets() {
        let g = generators::erdos_renyi(300, 0.4, 1.0, 29);
        let tight = cfg(g.m() / 8, 7);
        let out = stream_in_batches(&g, &tight, 16);
        assert!(
            out.stats.forced_reductions > 0,
            "budget m/8 should trigger forced reductions: {:?}",
            out.stats
        );
        // Deep trees are fine: the ε ledger still fits.
        assert!(out.stats.epsilon_spent() <= 0.75 + 1e-12);
    }
}
