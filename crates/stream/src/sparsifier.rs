//! The bounded-memory merge-and-reduce sparsifier.

use std::io::BufRead;
use std::mem;

use sgs_core::{ErPassConfig, SparsifyEngine};
use sgs_graph::io::EdgeBatchReader;
use sgs_graph::{ops, Edge, Graph, GraphError, Result};

use crate::config::StreamConfig;
use crate::stats::{ErPassStats, StreamStats};
use crate::store::{EdgeStore, NodeHandle, EDGE_BYTES};

/// Result of a streaming run: the final sparsifier plus the accounting that backs the
/// memory and accuracy claims.
#[derive(Debug, Clone)]
pub struct StreamOutput {
    /// The end-to-end sparsifier of everything that was ingested.
    pub sparsifier: Graph,
    /// Peak-memory / ε-ledger / work accounting of the run.
    pub stats: StreamStats,
}

/// A bounded-memory semi-streaming spectral sparsifier.
///
/// Edges arrive in arbitrary batches ([`ingest_batch`](Self::ingest_batch), an
/// iterator/channel via [`ingest_iter`](Self::ingest_iter), or a file through
/// [`ingest_reader`](Self::ingest_reader)); the engine buffers them up to the leaf
/// capacity, sparsifies each full leaf, and folds the resulting sparsifiers through a
/// merge-and-reduce tree: `arity` same-depth sparsifiers are unioned (weights of
/// duplicate pairs accumulated, `sgs_graph::ops::merge_union_many`) and resparsified by
/// `PARALLELSPARSIFY` at the depth's scheduled ε. This is exactly the composition rule
/// the paper's `PARALLELSPARSIFY` uses across rounds — a sparsifier of a union of
/// sparsifiers is a sparsifier of the union — applied across *space* instead of
/// rounds, as in the distributed setting of Mendoza-Granada & Villagra
/// (arXiv:2003.10612) and the resparsification framing of Spielman–Teng.
///
/// ## Determinism
///
/// Leaf boundaries fire on **stream position** (the adaptive trigger of
/// `StreamConfig::leaf_capacity` reads only the buffer length and the pending-node
/// census, both pure functions of how many edges have arrived), forced reductions fire
/// on deterministic resident-edge counts, and every reduction's seed is derived from
/// `(depth, index)` — so for a fixed seed the output is bitwise identical regardless
/// of how the stream was chopped into batches *and* regardless of the rayon thread
/// count (the per-reduction engine is thread-count deterministic).
///
/// ## Memory
///
/// Resident edges = leaf buffer + pending sparsifiers + in-flight merge unions. A
/// leaf fires while `buffer + resident + leaf_output` still fits in the budget; after
/// every leaf the engine forces extra reductions until pending sparsifiers fit in
/// half the budget. The residual excursion above the budget is one in-flight
/// union + its reduction output during the largest forced merge (observed ≲ one
/// ingest batch on the benchmark workloads — see `exp_stream`), except when the
/// budget sits below the spectral-sparsity floor `~t · n log n`, where pending
/// sparsifiers simply cannot be compressed further and the census parks at the floor.
/// [`StreamStats::peak_resident_edges`] records the observed maximum.
#[derive(Debug)]
pub struct StreamSparsifier {
    cfg: StreamConfig,
    n: usize,
    /// Leaf buffer; its allocation is made once and recycled through every leaf graph.
    buffer: Vec<Edge>,
    /// `levels[j]` holds handles to pending sparsifiers of application depth `j`
    /// (oldest first). The graphs themselves live in `store`.
    levels: Vec<Vec<NodeHandle>>,
    /// Where pending sparsifiers live: all in RAM (`MemStore`, the default) or
    /// partially spilled to disk (`SpillStore`). Placement never affects the output.
    store: Box<dyn EdgeStore>,
    /// Total edges across all pending sparsifiers (`levels`), maintained
    /// incrementally — the *logical* census, regardless of where the edges live.
    resident_nodes: usize,
    /// Re-entrant sparsifier (reused spanner view/CSR/masks across every reduction).
    engine: SparsifyEngine,
    /// Reused scratch for `merge_union_many`.
    merge_scratch: Vec<Edge>,
    stats: StreamStats,
    /// Set when an ingest call failed *after* applying part of its input: the stream
    /// position is no longer what the caller believes, so further ingestion is
    /// refused with [`GraphError::Poisoned`] carrying this description.
    poisoned: Option<String>,
}

impl StreamSparsifier {
    /// Creates a streaming sparsifier over a fixed vertex set `0..n`.
    pub fn new(n: usize, cfg: StreamConfig) -> StreamSparsifier {
        let leaf_capacity = cfg.leaf_capacity();
        let store = cfg.storage.build();
        StreamSparsifier {
            cfg,
            n,
            buffer: Vec::with_capacity(leaf_capacity),
            levels: Vec::new(),
            store,
            resident_nodes: 0,
            engine: SparsifyEngine::new(),
            merge_scratch: Vec::new(),
            stats: StreamStats::default(),
            poisoned: None,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The running accounting.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Current resident-edge census: buffer plus pending sparsifiers.
    pub fn resident_edges(&self) -> usize {
        self.buffer.len() + self.resident_nodes
    }

    /// Number of pending sparsifiers across all tree levels.
    pub fn pending_sparsifiers(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    fn validate(&self, e: &Edge) -> Result<()> {
        Graph::validate_edge(self.n, e.u, e.v, e.w)
    }

    /// If the sparsifier is poisoned, describes the failure that poisoned it.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Errors out of any ingest entry point while the sparsifier is poisoned.
    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(why) => Err(GraphError::Poisoned(why.clone())),
            None => Ok(()),
        }
    }

    /// Marks the sparsifier poisoned by `err` (which is also returned), because part
    /// of a failed ingest call was already applied.
    fn poison(&mut self, err: GraphError) -> GraphError {
        self.poisoned = Some(err.to_string());
        err
    }

    /// Ingests one batch of edges. The batch is validated up front, so on a
    /// validation error nothing is ingested — the call is failure-atomic and the
    /// sparsifier stays usable. A *storage* failure (spill I/O under
    /// `StorageConfig::Spill`; impossible with in-memory storage) can strike after
    /// part of the batch was applied, in which case the sparsifier is poisoned with
    /// the same contract as [`Self::ingest_iter`]. Batch boundaries are *only* an
    /// ingestion granularity — they never influence the output (leaves fire on
    /// stream position).
    pub fn ingest_batch(&mut self, edges: &[Edge]) -> Result<()> {
        self.check_poisoned()?;
        for e in edges {
            self.validate(e)?;
        }
        self.stats.batches_ingested += 1;
        for &e in edges {
            if let Err(err) = self.push_edge(e) {
                return Err(self.poison(err));
            }
        }
        Ok(())
    }

    /// Ingests edges from any iterator — including an `std::sync::mpsc::Receiver`,
    /// which makes a channel a drop-in edge source. Counts as one batch; edges are
    /// validated one by one, so an `Err` can strike after part of the input was
    /// applied. In that case the sparsifier is **poisoned**: its stream position no
    /// longer matches the caller's, so every further ingest call fails with
    /// [`GraphError::Poisoned`] naming the original failure ([`Self::poisoned`]
    /// exposes it too; `finish` remains available for the validly-ingested prefix).
    /// An error before the first edge leaves the state unchanged and unpoisoned.
    /// Returns the number of edges ingested by this call.
    pub fn ingest_iter<I: IntoIterator<Item = Edge>>(&mut self, edges: I) -> Result<u64> {
        self.check_poisoned()?;
        self.stats.batches_ingested += 1;
        let mut count = 0u64;
        for e in edges {
            if let Err(err) = self.validate(&e) {
                return Err(if count == 0 {
                    // Nothing was applied: undo the batch count so the call is a
                    // no-op, exactly like a failed `ingest_batch`.
                    self.stats.batches_ingested -= 1;
                    err
                } else {
                    self.poison(err)
                });
            }
            // A storage failure always poisons: the edge is already buffered, so the
            // stream position has moved even when it was this call's first edge.
            if let Err(err) = self.push_edge(e) {
                return Err(self.poison(err));
            }
            count += 1;
        }
        Ok(count)
    }

    /// Drains an [`EdgeBatchReader`] in chunks of `batch_edges`, never holding more
    /// than one chunk of raw input beyond the engine's own budget. Returns the number
    /// of edges ingested.
    ///
    /// Each chunk is applied atomically, but a read/parse error after the first chunk
    /// leaves earlier chunks applied — the sparsifier is then poisoned, with the same
    /// contract as [`Self::ingest_iter`].
    pub fn ingest_reader<R: BufRead>(
        &mut self,
        reader: &mut EdgeBatchReader<R>,
        batch_edges: usize,
    ) -> Result<u64> {
        assert!(batch_edges > 0, "batch_edges must be positive");
        self.check_poisoned()?;
        let mut chunk: Vec<Edge> = Vec::with_capacity(batch_edges);
        let mut total = 0u64;
        loop {
            chunk.clear();
            let got = match reader.next_batch(batch_edges, &mut chunk) {
                Ok(got) => got,
                Err(err) => {
                    return Err(if total == 0 { err } else { self.poison(err) });
                }
            };
            if got == 0 {
                break;
            }
            if let Err(err) = self.ingest_batch(&chunk) {
                return Err(if total == 0 { err } else { self.poison(err) });
            }
            total += chunk.len() as u64;
        }
        Ok(total)
    }

    fn push_edge(&mut self, e: Edge) -> Result<()> {
        self.buffer.push(e);
        self.stats.edges_ingested += 1;
        // Adaptive positional trigger (see StreamConfig::leaf_capacity): flush once
        // the buffer could no longer be leaf-reduced within budget, but never below
        // the minimum leaf size and never above half the budget. Every quantity here
        // is a deterministic function of the stream position, so leaf boundaries are
        // independent of the caller's batch chop.
        let b = self.buffer.len();
        let full = b >= self.cfg.leaf_capacity()
            || (b >= self.cfg.min_leaf_edges()
                && 2 * b + self.resident_nodes >= self.cfg.budget_edges);
        if full {
            self.flush_leaf()?;
        }
        Ok(())
    }

    fn note_peak(&mut self, resident: usize) {
        if resident > self.stats.peak_resident_edges {
            self.stats.peak_resident_edges = resident;
        }
    }

    /// Records a RAM high-water mark: `in_ram_edges` edges actually resident (store
    /// residents + buffer + transients; spilled nodes excluded), in bytes.
    fn note_peak_bytes(&mut self, in_ram_edges: usize) {
        let bytes = in_ram_edges * EDGE_BYTES;
        if bytes > self.stats.peak_resident_bytes {
            self.stats.peak_resident_bytes = bytes;
        }
    }

    /// Copies the store's spill/readback ledger into the running stats.
    fn sync_store_ledger(&mut self) {
        self.stats.spill = self.store.ledger();
    }

    /// Sparsifies the current buffer into a depth-0 node, then restores the tree
    /// invariants (fan-in cascade + budget enforcement).
    fn flush_leaf(&mut self) -> Result<()> {
        debug_assert!(!self.buffer.is_empty());
        let census = self.buffer.len() + self.resident_nodes;
        self.note_peak(census);
        self.note_peak_bytes(self.buffer.len() + self.store.resident_edges());
        let leaf = Graph::from_edges_unchecked(self.n, mem::take(&mut self.buffer));
        let out = self.run_sparsify(&leaf, 0);
        let census = leaf.m() + self.resident_nodes + out.m();
        self.note_peak(census);
        self.note_peak_bytes(leaf.m() + self.store.resident_edges() + out.m());
        let (leaf_edges, reduced_edges) = (leaf.m(), out.m());
        // Recycle the buffer allocation out of the leaf graph.
        self.buffer = leaf.into_edges();
        self.buffer.clear();
        self.stats.leaves += 1;
        sgs_obs::point!(
            "stream.leaf",
            leaf = self.stats.leaves,
            m_in = leaf_edges,
            m_out = reduced_edges,
        );
        self.push_node(0, out)?;
        self.cascade()?;
        self.enforce_budget()
    }

    /// Runs one `PARALLELSPARSIFY` reduction at application depth `j`, updating the
    /// per-depth ledger.
    fn run_sparsify(&mut self, g: &Graph, j: usize) -> Graph {
        let eps = self.cfg.level_epsilon(j);
        let index = self.stats.level_mut(j, eps).reductions;
        let scfg = self.cfg.reduction_config(j, index);
        let out = self.engine.sparsify(g, &scfg);
        let level = self.stats.level_mut(j, eps);
        level.reductions += 1;
        level.edges_in += g.m() as u64;
        level.edges_out += out.sparsifier.m() as u64;
        level.spanner_work += out.stats.spanner_work;
        level.sampling_work += out.stats.sampling_work;
        sgs_obs::point!(
            "stream.reduce",
            depth = j,
            index = index,
            m_in = g.m(),
            m_out = out.sparsifier.m(),
        );
        out.sparsifier
    }

    fn push_node(&mut self, level: usize, g: Graph) -> Result<()> {
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        self.resident_nodes += g.m();
        let h = self.store.put(level, g)?;
        self.levels[level].push(h);
        self.sync_store_ledger();
        Ok(())
    }

    /// Merges a group of same-vertex-set sparsifiers and resparsifies the union at
    /// application depth `j`, pushing the result to `levels[j]`.
    ///
    /// The union is built **in place**: each child is taken from the store (read
    /// back from disk if it was spilled), drained into the reused merge scratch, and
    /// freed before the next, the scratch is coalesced in place
    /// ([`ops::coalesce_in_place`]), and the union graph takes ownership of the
    /// scratch allocation (reclaimed after the reduction). The transient high-water
    /// mark is therefore one copy of the group's edges, not two.
    fn reduce_group(&mut self, group: Vec<NodeHandle>, j: usize, forced: bool) -> Result<()> {
        debug_assert!(group.len() >= 2);
        self.merge_scratch.clear();
        self.merge_scratch.reserve(
            group
                .iter()
                .map(|&h| self.store.node_edges(h))
                .sum::<usize>(),
        );
        for h in group {
            let child = self.store.take(h)?;
            // Read-back spike: the child is briefly resident on top of the scratch.
            self.note_peak_bytes(
                self.buffer.len()
                    + self.store.resident_edges()
                    + self.merge_scratch.len()
                    + child.m(),
            );
            for e in child.edges() {
                let (u, v) = e.key();
                self.merge_scratch.push(Edge { u, v, w: e.w });
            }
            self.resident_nodes -= child.m();
            drop(child);
        }
        self.sync_store_ledger();
        // Transient high-water mark: the uncoalesced union plus everything pending.
        let census = self.buffer.len() + self.resident_nodes + self.merge_scratch.len();
        self.note_peak(census);
        ops::coalesce_in_place(&mut self.merge_scratch);
        let union = Graph::from_edges_unchecked(self.n, mem::take(&mut self.merge_scratch));
        let out = self.run_sparsify(&union, j);
        let census = self.buffer.len() + self.resident_nodes + union.m() + out.m();
        self.note_peak(census);
        self.note_peak_bytes(self.buffer.len() + self.store.resident_edges() + union.m() + out.m());
        // Reclaim the scratch allocation from the union graph.
        self.merge_scratch = union.into_edges();
        self.merge_scratch.clear();
        if forced {
            self.stats.forced_reductions += 1;
        }
        self.push_node(j, out)
    }

    /// Reduces every level that has reached the configured fan-in, bottom-up.
    fn cascade(&mut self) -> Result<()> {
        let mut i = 0;
        while i < self.levels.len() {
            if self.levels[i].len() >= self.cfg.arity {
                let group = mem::take(&mut self.levels[i]);
                self.reduce_group(group, i + 1, false)?;
            }
            i += 1;
        }
        Ok(())
    }

    /// Forces reductions until pending sparsifiers fit in the non-buffer half of the
    /// budget (or a single sparsifier remains, at which point reduction cannot help).
    fn enforce_budget(&mut self) -> Result<()> {
        let limit = self.cfg.budget_edges / 2;
        while self.resident_nodes > limit {
            if !self.force_reduce_once()? {
                break;
            }
        }
        Ok(())
    }

    /// One budget-pressure reduction: merge the shallowest mergeable group. If the
    /// shallowest non-empty level has a single node, it is merged into the next
    /// non-empty level (charged at that level's ε — the schedule is infinite, so
    /// depth growth never exhausts the ε budget). Returns false when fewer than two
    /// sparsifiers are pending.
    fn force_reduce_once(&mut self) -> Result<bool> {
        let Some(a) = self.levels.iter().position(|l| !l.is_empty()) else {
            return Ok(false);
        };
        if self.levels[a].len() >= 2 {
            let group = mem::take(&mut self.levels[a]);
            self.reduce_group(group, a + 1, true)?;
            // The forced push may have filled a higher level to its fan-in.
            self.cascade()?;
            return Ok(true);
        }
        let Some(b) = self
            .levels
            .iter()
            .enumerate()
            .position(|(i, l)| i > a && !l.is_empty())
        else {
            return Ok(false);
        };
        // Chronological order: the deeper nodes hold older data, the shallow node the
        // newest — merge oldest-first so float accumulation order tracks the stream.
        let mut group = mem::take(&mut self.levels[b]);
        group.extend(mem::take(&mut self.levels[a]));
        self.reduce_group(group, b + 1, true)?;
        self.cascade()?;
        Ok(true)
    }

    /// Flushes the trailing partial leaf and collapses the tree to a single
    /// sparsifier, consuming the engine.
    ///
    /// The result approximates the Laplacian of the *entire* ingested multigraph
    /// within the configured `ε_total` (see `StreamConfig` for the schedule math, and
    /// [`StreamStats::epsilon_spent`] for the realized ledger).
    ///
    /// With in-memory storage (the default) finishing cannot fail; with
    /// `StorageConfig::Spill` a disk failure panics here — out-of-core callers
    /// should prefer [`Self::try_finish`].
    pub fn finish(self) -> StreamOutput {
        self.try_finish()
            .expect("storage failure while finishing (use try_finish for spill stores)")
    }

    /// [`Self::finish`], surfacing storage failures as errors instead of panicking.
    pub fn try_finish(mut self) -> Result<StreamOutput> {
        if !self.buffer.is_empty() {
            self.flush_leaf()?;
        }
        loop {
            let total = self.pending_sparsifiers();
            if total <= 1 {
                break;
            }
            let i = self
                .levels
                .iter()
                .position(|l| !l.is_empty())
                .expect("non-empty tree");
            if self.levels[i].len() >= 2 {
                let group = mem::take(&mut self.levels[i]);
                self.reduce_group(group, i + 1, false)?;
            } else {
                // Promote the lone node without spending ε or work; it will be merged
                // with the next level's group (conservatively skipping ε_{i+1}). The
                // handle just moves — the store (and its spill placement) is
                // untouched, so no bytes move either.
                let h = self.levels[i].pop().expect("checked non-empty");
                while self.levels.len() <= i + 1 {
                    self.levels.push(Vec::new());
                }
                self.levels[i + 1].push(h);
            }
        }
        let mut sparsifier = match self.levels.iter_mut().find_map(|l| l.pop()) {
            Some(h) => {
                let g = self.store.take(h)?;
                self.resident_nodes -= g.m();
                self.sync_store_ledger();
                g
            }
            None => Graph::new(self.n),
        };
        self.stats.final_depth = self
            .stats
            .levels
            .iter()
            .rposition(|l| l.reductions > 0)
            .map_or(0, |j| j + 1);

        // Optional ER-weighted final pass: resample the finished sparsifier with
        // Spielman–Srivastava probabilities at the reserved fraction of ε_total. The
        // sparsifier at this point is small (≲ budget/2 edges), so the pass's handful
        // of CG solves runs on the cheapest graph the stream ever produces.
        if let Some(fp) = self.cfg.final_pass.clone() {
            let pass_eps = self.cfg.final_pass_epsilon().min(1.0);
            let mut pass_cfg = ErPassConfig::new(pass_eps)
                .with_oversample(fp.oversample)
                .with_jl_dims(fp.jl_dims)
                .with_cg_tol(fp.cg_tol)
                .with_parallel(self.cfg.parallel)
                .with_seed(self.cfg.seed ^ 0xF1A1_9A55_0000_00ED);
            if let Some(shrink) = fp.auto_shrink {
                pass_cfg = pass_cfg.with_auto_oversample(shrink);
            }
            let out = self.engine.resparsify_er(&sparsifier, &pass_cfg);
            self.stats.er_pass = Some(ErPassStats {
                epsilon: pass_eps,
                m_in: out.m_in as u64,
                m_out: out.m_out as u64,
                solves: out.solves as u64,
                resampled: out.resampled,
            });
            sgs_obs::point!(
                "stream.er_pass",
                m_in = out.m_in,
                m_out = out.m_out,
                solves = out.solves,
                resampled = out.resampled,
            );
            sparsifier = out.sparsifier;
        }

        Ok(StreamOutput {
            sparsifier,
            stats: self.stats,
        })
    }
}
