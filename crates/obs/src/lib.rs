//! `sgs-obs`: structured tracing + metrics for the sparsification pipeline.
//!
//! The workspace's determinism discipline is that *outputs* are a pure function of
//! the input stream while *timings* are measurements. This crate follows the same
//! split: every [`Event`] carries a name, a kind, and a list of deterministic
//! fields (counts, sizes, residuals), plus a timestamp and thread id that are
//! explicitly excluded from the structure fingerprint. Event counts and field
//! values must be identical across thread widths and batch chops; only `ts_us`
//! and `tid` may differ between runs.
//!
//! Recording is globally off by default. [`install`] sets a `'static` [`Sink`]
//! behind a single atomic pointer; the emission macros check [`enabled`] first,
//! so the disabled path is one relaxed-load branch with no allocation and no
//! field evaluation. Engines therefore instrument their orchestration loops
//! unconditionally and pay nothing in production runs.
//!
//! Two exporters are provided: a JSONL event log ([`export_jsonl`]) and a Chrome
//! `trace_event` JSON ([`export_chrome_trace`]) that loads in `chrome://tracing`
//! or Perfetto with spans on per-thread tracks. [`json::parse`] is a minimal
//! JSON parser back into the vendored `serde::Value` model so reports and traces
//! round-trip without any crates.io dependency.

#![warn(missing_docs)]

use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod export;
pub mod json;
pub mod report;

pub use export::{export_chrome_trace, export_jsonl};
pub use report::{RunReport, Section};

/// A single deterministic field value attached to an event.
///
/// Only bit-stable scalar payloads are representable on purpose: if a value is
/// deterministic enough to be an output it fits here, and if it is a measurement
/// it belongs in the timestamp, not in a field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter/size.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point value (fingerprinted by bit pattern).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string label.
    Str(&'static str),
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                FieldValue::$variant(v as $cast)
            }
        }
    )*};
}

impl_field_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// What an [`Event`] marks: span boundaries, an instant point, or a counter sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Start of a span (paired with [`EventKind::SpanEnd`] by name + nesting).
    SpanBegin,
    /// End of the most recent span with the same name on this thread.
    SpanEnd,
    /// An instant event.
    Point,
    /// A counter sample (rendered as a Chrome `C` event).
    Counter,
}

impl EventKind {
    /// Short stable label used by the JSONL exporter and the fingerprint.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "begin",
            EventKind::SpanEnd => "end",
            EventKind::Point => "point",
            EventKind::Counter => "counter",
        }
    }
}

/// A single trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `"spanner.round"`.
    pub name: &'static str,
    /// Event kind.
    pub kind: EventKind,
    /// Deterministic payload fields, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Microseconds since the process trace epoch. A measurement — excluded from
    /// the structure fingerprint.
    pub ts_us: u64,
    /// Small dense per-process thread id. Excluded from the fingerprint.
    pub tid: u64,
}

/// Receives events while installed. Implementations must be `Sync`: engines may
/// emit from whichever thread runs the sequential orchestration frame.
pub trait Sink: Sync {
    /// Records one event.
    fn record(&self, event: Event);
}

struct Holder(&'static dyn Sink);

static SINK: AtomicPtr<Holder> = AtomicPtr::new(ptr::null_mut());

/// Returns true if a sink is installed. This is the one branch the clean path
/// pays; keep it first in every emission helper so fields are never evaluated
/// while disabled.
#[inline]
pub fn enabled() -> bool {
    !SINK.load(Ordering::Acquire).is_null()
}

#[inline]
fn sink() -> Option<&'static dyn Sink> {
    let p = SINK.load(Ordering::Acquire);
    if p.is_null() {
        None
    } else {
        // Install leaks the holder, so the pointee lives for the process.
        Some(unsafe { (*p).0 })
    }
}

/// Installs a global sink. The holder is intentionally leaked (install happens a
/// handful of times per process — bench bins once, tests per-case under a lock).
pub fn install(s: &'static dyn Sink) {
    let holder = Box::into_raw(Box::new(Holder(s)));
    // A racing emitter may still be dereferencing the previous holder, so it is
    // never freed. Holders are two words and installs are O(1) per process.
    let _old = SINK.swap(holder, Ordering::AcqRel);
}

/// Uninstalls the global sink; emission becomes a no-op again.
pub fn clear() {
    SINK.store(ptr::null_mut(), Ordering::Release);
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the first trace use in this process.
#[inline]
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static SCOPE_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Small dense id of the calling thread (1-based, assigned on first use).
#[inline]
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

/// Emits a point event. Prefer the [`point!`] macro, which skips field
/// evaluation entirely while disabled.
pub fn point(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if let Some(s) = sink() {
        s.record(Event {
            name,
            kind: EventKind::Point,
            fields: fields.to_vec(),
            ts_us: now_us(),
            tid: thread_id(),
        });
    }
}

/// Emits a counter sample (a gauge is the same event with a non-monotonic value).
pub fn counter(name: &'static str, value: f64) {
    if let Some(s) = sink() {
        s.record(Event {
            name,
            kind: EventKind::Counter,
            fields: vec![("value", FieldValue::F64(value))],
            ts_us: now_us(),
            tid: thread_id(),
        });
    }
}

/// Records one histogram sample. The shim keeps no buckets process-side; samples
/// are exported raw and bucketed by whatever reads the JSONL.
pub fn histogram(name: &'static str, sample: f64) {
    counter(name, sample);
}

/// RAII span guard. Emits `SpanBegin` on creation (when enabled) and the paired
/// `SpanEnd` on drop. Inactive guards (disabled at creation) never emit the end
/// even if a sink appears mid-span, so begins and ends always pair.
#[must_use = "a span closes when the guard drops"]
pub struct Span {
    name: &'static str,
    active: bool,
}

impl Span {
    /// Starts a span. Prefer the [`span!`] macro.
    pub fn begin(name: &'static str, fields: &[(&'static str, FieldValue)]) -> Span {
        match sink() {
            Some(s) => {
                s.record(Event {
                    name,
                    kind: EventKind::SpanBegin,
                    fields: fields.to_vec(),
                    ts_us: now_us(),
                    tid: thread_id(),
                });
                Span { name, active: true }
            }
            None => Span {
                name,
                active: false,
            },
        }
    }

    /// A guard that never emits (used by the macro on the disabled path).
    pub fn inactive(name: &'static str) -> Span {
        Span {
            name,
            active: false,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            if let Some(s) = sink() {
                s.record(Event {
                    name: self.name,
                    kind: EventKind::SpanEnd,
                    fields: Vec::new(),
                    ts_us: now_us(),
                    tid: thread_id(),
                });
            }
        }
    }
}

/// Emits a point event with named fields, evaluating nothing while disabled.
///
/// ```
/// sgs_obs::point!("spanner.round", round = 3usize, work = 128u64);
/// ```
#[macro_export]
macro_rules! point {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::point($name, &[$((stringify!($k), $crate::FieldValue::from($v))),*]);
        }
    };
}

/// Opens a span guard with named fields, evaluating nothing while disabled.
///
/// ```
/// let _s = sgs_obs::span!("solver.solve", n = 100usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::Span::begin($name, &[$((stringify!($k), $crate::FieldValue::from($v))),*])
        } else {
            $crate::Span::inactive($name)
        }
    };
}

/// Thread-local trace scope guard.
///
/// Some instrumented inner loops (PCG iterations) also run inside *parallel*
/// callers — the JL effective-resistance estimator solves many systems under
/// `par_iter`. Emitting per-iteration events there would interleave events
/// nondeterministically. Sequential top-level callers (e.g. `SddSolver::solve`)
/// enter a [`TraceScope`]; the inner loop emits only when [`in_scope`] is true
/// on its thread, so parallel workers stay silent and event order stays a pure
/// function of the input.
#[must_use = "the scope closes when the guard drops"]
pub struct TraceScope(());

/// Enters a trace scope on the current thread (see [`TraceScope`]).
pub fn trace_scope() -> TraceScope {
    SCOPE_DEPTH.with(|d| d.set(d.get() + 1));
    TraceScope(())
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        SCOPE_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// True if the current thread is inside a [`TraceScope`].
#[inline]
pub fn in_scope() -> bool {
    enabled() && SCOPE_DEPTH.with(|d| d.get() > 0)
}

/// An in-memory sink collecting events behind a mutex; the workhorse for tests
/// and for the bench bins' exporters.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// Takes all recorded events, leaving the sink empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap())
    }

    /// Clones the current event list without draining it.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RecordingSink {
    fn record(&self, event: Event) {
        self.events.lock().unwrap().push(event);
    }
}

/// Leaks a fresh [`RecordingSink`], installs it globally, and returns it. The
/// returned reference stays readable after [`clear`].
pub fn install_recording() -> &'static RecordingSink {
    let s: &'static RecordingSink = Box::leak(Box::new(RecordingSink::new()));
    install(s);
    s
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a fingerprint of the event *structure*: names, kinds, field names and
/// field value bits, in order. Timestamps and thread ids are excluded — they are
/// measurements. Two runs of the same input must produce the same fingerprint
/// regardless of thread width or batch chop.
pub fn structure_fingerprint(events: &[Event]) -> u64 {
    let mut h = FNV_BASIS;
    for ev in events {
        h = fnv_bytes(h, ev.name.as_bytes());
        h = fnv_bytes(h, ev.kind.label().as_bytes());
        for (k, v) in &ev.fields {
            h = fnv_bytes(h, k.as_bytes());
            let (tag, bits): (u8, u64) = match *v {
                FieldValue::U64(x) => (0, x),
                FieldValue::I64(x) => (1, x as u64),
                FieldValue::F64(x) => (2, x.to_bits()),
                FieldValue::Bool(x) => (3, x as u64),
                FieldValue::Str(s) => (4, fnv_bytes(FNV_BASIS, s.as_bytes())),
            };
            h = fnv_bytes(h, &[tag]);
            h = fnv_bytes(h, &bits.to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Event {
        Event {
            name,
            kind: EventKind::Point,
            fields,
            ts_us: 0,
            tid: 0,
        }
    }

    #[test]
    fn fingerprint_ignores_ts_and_tid() {
        let mut a = ev("x", vec![("n", FieldValue::U64(3))]);
        let mut b = a.clone();
        a.ts_us = 10;
        a.tid = 1;
        b.ts_us = 99;
        b.tid = 7;
        assert_eq!(
            structure_fingerprint(&[a]),
            structure_fingerprint(&[b.clone()])
        );
        let c = ev("x", vec![("n", FieldValue::U64(4))]);
        assert_ne!(structure_fingerprint(&[b]), structure_fingerprint(&[c]));
    }

    #[test]
    fn disabled_macros_do_not_evaluate_fields() {
        clear();
        let mut hits = 0u32;
        let mut bump = || {
            hits += 1;
            1u64
        };
        point!("never", n = bump());
        assert_eq!(hits, 0);
        assert!(!enabled());
    }

    #[test]
    fn scope_depth_nests() {
        assert!(!in_scope());
        {
            let _a = trace_scope();
            let _b = trace_scope();
            // in_scope also requires a sink; depth alone is not enough.
            assert!(!in_scope() || enabled());
            SCOPE_DEPTH.with(|d| assert_eq!(d.get(), 2));
        }
        SCOPE_DEPTH.with(|d| assert_eq!(d.get(), 0));
    }
}
