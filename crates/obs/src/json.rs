//! Minimal JSON parser into the vendored `serde::Value` model.
//!
//! The vendored serde/serde_json shims are serialize-only; nothing in the
//! workspace could read JSON back until now. This parser accepts standard JSON
//! (it is a superset of what the shim renderer emits) and produces the same
//! `Value` tree the renderer consumes, so `render(parse(render(x))) ==
//! render(x)` holds for every serializable `x` — the round-trip the
//! observability tests pin. Numbers without `.`/exponent parse as
//! `UInt`/`Int`; everything else parses as `Float`, matching how the renderer
//! prints whole floats without a decimal point.

use serde::Value;

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document, rejecting trailing non-whitespace.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match d {
                b'0'..=b'9' => (d - b'0') as u32,
                b'a'..=b'f' => (d - b'a') as u32 + 10,
                b'A'..=b'F' => (d - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + digit;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if self.bump() == Some(b'\\') && self.bump() == Some(b'u') {
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(self.err("lone high surrogate"));
                            }
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("lone low surrogate"));
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp).ok_or_else(|| self.err("invalid \\u code point"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise: the input
                    // came from a &str so the bytes are valid UTF-8.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump().ok_or_else(|| self.err("truncated utf-8"))?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected digits"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 + 1 {
                        return Ok(Value::Int(
                            text.parse::<i64>()
                                .map_err(|_| self.err("integer out of range"))?,
                        ));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

/// Looks up a key in an object `Value`; `None` for non-objects or missing keys.
pub fn get<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v {
        Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Extracts an f64 from any numeric `Value` variant.
pub fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::Int(x) => Some(x as f64),
        Value::UInt(x) => Some(x as f64),
        Value::Float(x) => Some(x),
        _ => None,
    }
}

/// Extracts a string slice from a `Str` value.
pub fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Extracts the element list of an `Array` value.
pub fn as_array(v: &Value) -> Option<&[Value]> {
    match v {
        Value::Array(items) => Some(items.as_slice()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Value::UInt(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let v = parse("{\"a\": [1, {\"b\": false}], \"c\": \"x\"}").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                (
                    "a".into(),
                    Value::Array(vec![
                        Value::UInt(1),
                        Value::Object(vec![("b".into(), Value::Bool(false))]),
                    ])
                ),
                ("c".into(), Value::Str("x".into())),
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn round_trips_shim_rendering() {
        // Whole floats render without a decimal point and re-parse as UInt; the
        // *textual* round trip is what must be stable.
        let original = Value::Object(vec![
            ("n".into(), Value::UInt(300)),
            ("ratio".into(), Value::Float(0.25)),
            ("whole".into(), Value::Float(2.0)),
            ("tags".into(), Value::Array(vec![Value::Str("a\"b".into())])),
        ]);
        let text = serde_json::to_string(&original).unwrap();
        let reparsed = parse(&text).unwrap();
        let retext = serde_json::to_string(&reparsed).unwrap();
        assert_eq!(text, retext);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }
}
