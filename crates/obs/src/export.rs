//! Event exporters: JSONL log and Chrome `trace_event` JSON.

use serde::Value;

use crate::{Event, EventKind, FieldValue};

fn field_value(v: &FieldValue) -> Value {
    match *v {
        FieldValue::U64(x) => Value::UInt(x),
        FieldValue::I64(x) => Value::Int(x),
        FieldValue::F64(x) => Value::Float(x),
        FieldValue::Bool(x) => Value::Bool(x),
        FieldValue::Str(s) => Value::Str(s.to_string()),
    }
}

fn fields_object(ev: &Event) -> Value {
    Value::Object(
        ev.fields
            .iter()
            .map(|(k, v)| (k.to_string(), field_value(v)))
            .collect(),
    )
}

/// Renders events as one JSON object per line:
/// `{"name": ..., "kind": ..., "ts_us": ..., "tid": ..., "fields": {...}}`.
pub fn export_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        let obj = Value::Object(vec![
            ("name".to_string(), Value::Str(ev.name.to_string())),
            ("kind".to_string(), Value::Str(ev.kind.label().to_string())),
            ("ts_us".to_string(), Value::UInt(ev.ts_us)),
            ("tid".to_string(), Value::UInt(ev.tid)),
            ("fields".to_string(), fields_object(ev)),
        ]);
        out.push_str(&serde_json::to_string(&obj).unwrap_or_default());
        out.push('\n');
    }
    out
}

/// Renders events in the Chrome `trace_event` format (the object form with a
/// `traceEvents` array), loadable in `chrome://tracing` and Perfetto. Spans map
/// to `B`/`E` phase pairs on per-thread tracks, points to instant (`i`) events
/// with thread scope, and counters to `C` events.
pub fn export_chrome_trace(events: &[Event]) -> String {
    let mut items = Vec::with_capacity(events.len());
    for ev in events {
        let ph = match ev.kind {
            EventKind::SpanBegin => "B",
            EventKind::SpanEnd => "E",
            EventKind::Point => "i",
            EventKind::Counter => "C",
        };
        let mut obj = vec![
            ("name".to_string(), Value::Str(ev.name.to_string())),
            ("ph".to_string(), Value::Str(ph.to_string())),
            ("ts".to_string(), Value::UInt(ev.ts_us)),
            ("pid".to_string(), Value::UInt(1)),
            ("tid".to_string(), Value::UInt(ev.tid)),
        ];
        if ev.kind == EventKind::Point {
            obj.push(("s".to_string(), Value::Str("t".to_string())));
        }
        if !ev.fields.is_empty() {
            obj.push(("args".to_string(), fields_object(ev)));
        }
        items.push(Value::Object(obj));
    }
    let root = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(items)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&root).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                name: "spanner.decide",
                kind: EventKind::SpanBegin,
                fields: vec![("round", FieldValue::U64(1))],
                ts_us: 10,
                tid: 1,
            },
            Event {
                name: "spanner.decide",
                kind: EventKind::SpanEnd,
                fields: vec![],
                ts_us: 25,
                tid: 1,
            },
            Event {
                name: "sample.pass",
                kind: EventKind::Point,
                fields: vec![
                    ("kept", FieldValue::U64(42)),
                    ("weighted", FieldValue::Bool(true)),
                ],
                ts_us: 30,
                tid: 1,
            },
        ]
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let text = export_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"name\": \"spanner.decide\""));
        assert!(lines[0].contains("\"kind\": \"begin\""));
        assert!(lines[2].contains("\"kept\": 42"));
    }

    #[test]
    fn chrome_trace_has_paired_phases() {
        let text = export_chrome_trace(&sample());
        assert!(text.starts_with("{\"traceEvents\": ["));
        assert!(text.contains("\"ph\": \"B\""));
        assert!(text.contains("\"ph\": \"E\""));
        assert!(text.contains("\"ph\": \"i\""));
        assert!(text.contains("\"args\": {\"kept\": 42, \"weighted\": true}"));
    }
}
