//! `RunReport`: one serializable end-to-end record of a run.
//!
//! The engines already keep per-subsystem ledgers (`WorkStats`, `StreamStats`,
//! `NetworkMetrics`, `ErPassStats`, solver stats); the report is the neutral
//! schema they all flatten into — named scalar fields plus named numeric series
//! per section — so the bench bins can emit one JSONL line per run instead of
//! each inventing its own printing.

use serde::{Serialize, Value};

/// One named group of metrics (e.g. `"spanner"`, `"congest"`, `"solver"`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Section {
    /// Section name.
    pub name: String,
    /// Scalar metrics, in insertion order.
    pub fields: Vec<(String, f64)>,
    /// Per-round / per-level / per-iteration trajectories.
    pub series: Vec<(String, Vec<f64>)>,
}

impl Section {
    /// Creates an empty section.
    pub fn new(name: &str) -> Section {
        Section {
            name: name.to_string(),
            ..Section::default()
        }
    }

    /// Adds a scalar field (builder style).
    pub fn field(mut self, key: &str, value: f64) -> Section {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Adds a numeric series (builder style).
    pub fn series(mut self, key: &str, values: Vec<f64>) -> Section {
        self.series.push((key.to_string(), values));
        self
    }
}

/// A full-run report: identity plus a list of [`Section`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Bench / experiment name (e.g. `"exp_scaling"`).
    pub bench: String,
    /// Workload label (e.g. `"er(4000,150)"`).
    pub workload: String,
    /// Metric sections.
    pub sections: Vec<Section>,
}

impl RunReport {
    /// Creates an empty report for a bench + workload.
    pub fn new(bench: &str, workload: &str) -> RunReport {
        RunReport {
            bench: bench.to_string(),
            workload: workload.to_string(),
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn push(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// Renders the report as a single compact JSON line (JSONL-appendable).
    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(&self.to_value()).unwrap_or_default()
    }
}

impl Serialize for Section {
    fn to_value(&self) -> Value {
        let fields = Value::Object(
            self.fields
                .iter()
                .map(|(k, v)| (k.clone(), Value::Float(*v)))
                .collect(),
        );
        let series = Value::Object(
            self.series
                .iter()
                .map(|(k, vs)| {
                    (
                        k.clone(),
                        Value::Array(vs.iter().map(|v| Value::Float(*v)).collect()),
                    )
                })
                .collect(),
        );
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("fields".to_string(), fields),
            ("series".to_string(), series),
        ])
    }
}

impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".to_string(), Value::Str(self.bench.clone())),
            ("workload".to_string(), Value::Str(self.workload.clone())),
            (
                "sections".to_string(),
                Value::Array(self.sections.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn report_round_trips_through_the_parser() {
        let mut r = RunReport::new("exp_demo", "er(300,0.15)");
        r.push(
            Section::new("solver")
                .field("iterations", 12.0)
                .field("residual", 3.5e-9)
                .series("residuals", vec![1.0, 0.5, 0.25]),
        );
        let line = r.to_jsonl_line();
        let v = json::parse(&line).unwrap();
        assert_eq!(
            json::as_str(json::get(&v, "bench").unwrap()),
            Some("exp_demo")
        );
        let sections = json::as_array(json::get(&v, "sections").unwrap()).unwrap();
        assert_eq!(sections.len(), 1);
        let fields = json::get(&sections[0], "fields").unwrap();
        assert_eq!(
            json::as_f64(json::get(fields, "iterations").unwrap()),
            Some(12.0)
        );
        // Textual round trip through the parser is exact.
        assert_eq!(serde_json::to_string(&v).unwrap(), line);
    }
}
