//! Plain-text graph I/O.
//!
//! The format is a simple, self-describing edge list:
//!
//! ```text
//! # optional comments
//! n m
//! u v w
//! ...
//! ```
//!
//! Vertices are 0-based. The format exists so experiments can be re-run on saved inputs
//! and so the examples can exchange graphs with external tools.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// Serializes a graph into the edge-list text format.
pub fn to_string(g: &Graph) -> String {
    let mut s = String::with_capacity(32 + 24 * g.m());
    let _ = writeln!(s, "{} {}", g.n(), g.m());
    for e in g.edges() {
        let _ = writeln!(s, "{} {} {}", e.u, e.v, e.w);
    }
    s
}

/// Parses a graph from the edge-list text format.
pub fn from_str(text: &str) -> Result<Graph> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines
        .next()
        .ok_or_else(|| GraphError::Parse("missing header line".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .ok_or_else(|| GraphError::Parse("missing n".into()))?
        .parse()
        .map_err(|e| GraphError::Parse(format!("bad n: {e}")))?;
    let m: usize = parts
        .next()
        .ok_or_else(|| GraphError::Parse("missing m".into()))?
        .parse()
        .map_err(|e| GraphError::Parse(format!("bad m: {e}")))?;
    let mut g = Graph::with_capacity(n, m);
    for (i, line) in lines.enumerate() {
        let mut parts = line.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| GraphError::Parse(format!("edge {i}: missing u")))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("edge {i}: bad u: {e}")))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| GraphError::Parse(format!("edge {i}: missing v")))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("edge {i}: bad v: {e}")))?;
        let w: f64 = match parts.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| GraphError::Parse(format!("edge {i}: bad w: {e}")))?,
            None => 1.0,
        };
        g.add_edge(u, v, w)?;
    }
    if g.m() != m {
        return Err(GraphError::Parse(format!(
            "header declared {m} edges but {} were read",
            g.m()
        )));
    }
    Ok(g)
}

/// Writes a graph to a file in the edge-list text format.
pub fn write_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    fs::write(path, to_string(g))?;
    Ok(())
}

/// Reads a graph from a file in the edge-list text format.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let text = fs::read_to_string(path)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_preserves_graph() {
        let g = generators::erdos_renyi_weighted(40, 0.2, 0.5, 3.0, 5);
        let text = to_string(&g);
        let h = from_str(&text).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.m(), h.m());
        for (a, b) in g.edges().iter().zip(h.edges().iter()) {
            assert_eq!(a.u, b.u);
            assert_eq!(a.v, b.v);
            assert!((a.w - b.w).abs() < 1e-12 * a.w.abs().max(1.0));
        }
    }

    #[test]
    fn parses_comments_and_default_weight() {
        let text = "# a comment\n3 2\n0 1\n# another\n1 2 2.5\n";
        let g = from_str(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.edges()[0].w, 1.0);
        assert_eq!(g.edges()[1].w, 2.5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("3").is_err());
        assert!(from_str("3 1\n0 zebra 1.0").is_err());
        assert!(from_str("3 2\n0 1 1.0").is_err()); // wrong edge count
        assert!(from_str("2 1\n0 5 1.0").is_err()); // bad vertex
        assert!(from_str("2 1\n0 1 -3.0").is_err()); // bad weight
    }

    #[test]
    fn file_round_trip() {
        let g = generators::grid2d(4, 4, 1.0);
        let dir = std::env::temp_dir().join("sgs_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.txt");
        write_file(&g, &path).unwrap();
        let h = read_file(&path).unwrap();
        assert_eq!(g.edges(), h.edges());
        assert!(read_file(dir.join("missing.txt")).is_err());
    }
}
