//! Graph I/O: a plain-text edge list and a compact binary block format.
//!
//! ## Text format
//!
//! A simple, self-describing edge list:
//!
//! ```text
//! # optional comments
//! n m
//! u v w
//! ...
//! ```
//!
//! Vertices are 0-based. The format exists so experiments can be re-run on saved inputs
//! and so the examples can exchange graphs with external tools.
//!
//! Two read paths are provided:
//!
//! * [`from_str`] / [`read_file`] — parse a whole graph. `read_file` streams the file
//!   through a [`EdgeBatchReader`] line by line, so it never materialises the file as a
//!   `String` (the edge list is the only `O(m)` allocation).
//! * [`EdgeBatchReader`] — a chunked reader that yields validated edges in
//!   caller-sized batches with `O(batch)` resident memory. This is the ingestion path of
//!   the semi-streaming sparsifier (`sgs-stream`), which never holds the whole input.
//!
//! ## Binary format (`.sgsb`)
//!
//! The storage currency of the out-of-core streaming path (`sgs-stream`'s
//! `SpillStore`): ~16 bytes per edge instead of ~20 text characters, and — crucially —
//! weights round-trip as **exact** IEEE-754 bits, so a sparsifier spilled to disk and
//! read back is bitwise identical to one that stayed resident. Layout (all integers
//! little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "SGSB"
//! 4       2     format version (currently 1)
//! 6       2     reserved, must be 0
//! 8       8     n  (vertex count, must fit in u32 because ids are stored as u32)
//! 16      8     m  (declared edge count)
//! 24      ...   blocks
//! ```
//!
//! Each block is a `u32` edge count followed by that many 16-byte records
//! `(u: u32, v: u32, w: f64-bits as u64)`; a zero-count block terminates the stream.
//! [`BinEdgeReader`] / [`BinEdgeWriter`] mirror the [`EdgeBatchReader`] API and
//! discipline: `O(batch)` resident memory, every edge validated, preallocation from
//! the untrusted header clamped, and every error positioned with its byte offset —
//! hostile or truncated bytes come back as `Err`, never as a panic or an OOM abort.

use std::fmt::Write as _;
use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{GraphError, Result};
use crate::graph::{Edge, Graph};

/// Serializes a graph into the edge-list text format.
pub fn to_string(g: &Graph) -> String {
    let mut s = String::with_capacity(32 + 24 * g.m());
    let _ = writeln!(s, "{} {}", g.n(), g.m());
    for e in g.edges() {
        let _ = writeln!(s, "{} {} {}", e.u, e.v, e.w);
    }
    s
}

/// True for lines the format ignores: blank lines and `#` comments.
fn is_skippable(line: &str) -> bool {
    line.is_empty() || line.starts_with('#')
}

/// Upper bound on how many edges are preallocated from a header's declared `m` alone.
///
/// The header is untrusted input: a hostile `n m` line can declare `m` close to
/// `usize::MAX`, and preallocating that many `Edge`s would abort the process (capacity
/// overflow or OOM kill) before a single edge line is validated. Growth beyond this
/// bound is paid by ordinary amortised `Vec` doubling, so honest large files lose
/// nothing — and a lying header is caught by the edge-count cross-check, returning a
/// positioned `Err` instead of panicking.
const MAX_TRUSTED_PREALLOC_EDGES: usize = 1 << 20;

/// Parses the `n m` header line. `line_no` is 1-based and used in error positions.
fn parse_header(line: &str, line_no: usize) -> Result<(usize, usize)> {
    let mut parts = line.split_whitespace();
    let n: usize = parts
        .next()
        .ok_or_else(|| GraphError::Parse(format!("line {line_no}: missing n")))?
        .parse()
        .map_err(|e| GraphError::Parse(format!("line {line_no}: bad n: {e}")))?;
    let m: usize = parts
        .next()
        .ok_or_else(|| GraphError::Parse(format!("line {line_no}: missing m")))?
        .parse()
        .map_err(|e| GraphError::Parse(format!("line {line_no}: bad m: {e}")))?;
    Ok((n, m))
}

/// Parses and validates one `u v [w]` edge line against a graph on `n` vertices.
/// `line_no` is 1-based; every error message carries it so malformed lines in large
/// files can be located without re-parsing.
fn parse_edge(line: &str, line_no: usize, n: usize) -> Result<Edge> {
    let mut parts = line.split_whitespace();
    let u: usize = parts
        .next()
        .ok_or_else(|| GraphError::Parse(format!("line {line_no}: missing u")))?
        .parse()
        .map_err(|e| GraphError::Parse(format!("line {line_no}: bad u: {e}")))?;
    let v: usize = parts
        .next()
        .ok_or_else(|| GraphError::Parse(format!("line {line_no}: missing v")))?
        .parse()
        .map_err(|e| GraphError::Parse(format!("line {line_no}: bad v: {e}")))?;
    let w: f64 = match parts.next() {
        Some(tok) => tok
            .parse()
            .map_err(|e| GraphError::Parse(format!("line {line_no}: bad w: {e}")))?,
        None => 1.0,
    };
    if let Err(e) = Graph::validate_edge(n, u, v, w) {
        return Err(GraphError::Parse(format!("line {line_no}: {e}")));
    }
    Ok(Edge { u, v, w })
}

/// Parses a graph from the edge-list text format.
pub fn from_str(text: &str) -> Result<Graph> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .enumerate()
        .filter(|(_, l)| !is_skippable(l));
    let (header_no, header) = lines
        .next()
        .ok_or_else(|| GraphError::Parse("missing header line".into()))?;
    let (n, m) = parse_header(header, header_no + 1)?;
    let mut g = Graph::with_capacity(n, m.min(MAX_TRUSTED_PREALLOC_EDGES));
    for (i, line) in lines {
        let e = parse_edge(line, i + 1, n)?;
        g.push_edge_unchecked(e.u, e.v, e.w);
    }
    if g.m() != m {
        return Err(GraphError::Parse(format!(
            "header declared {m} edges but {} were read",
            g.m()
        )));
    }
    Ok(g)
}

/// A buffered, chunked reader over the edge-list text format.
///
/// The header is parsed eagerly by [`EdgeBatchReader::new`]; edges are then pulled in
/// caller-sized batches via [`EdgeBatchReader::next_batch`], validated (endpoint range,
/// self-loops, weight positivity) with 1-based line positions in every error. Resident
/// memory is one line buffer plus whatever batch vector the caller supplies — the file
/// is never materialised, which is what lets `sgs-stream` sparsify graphs larger than
/// RAM from disk.
#[derive(Debug)]
pub struct EdgeBatchReader<R> {
    src: R,
    /// Reused line buffer; cleared before every read, never reallocated in steady state.
    line: String,
    /// 1-based number of the last line read.
    line_no: usize,
    n: usize,
    declared_edges: usize,
    edges_read: usize,
    done: bool,
}

impl EdgeBatchReader<BufReader<fs::File>> {
    /// Opens a file and parses its header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        EdgeBatchReader::new(BufReader::new(fs::File::open(path)?))
    }
}

impl<R: BufRead> EdgeBatchReader<R> {
    /// Wraps any buffered reader and parses the header (comments and blank lines are
    /// skipped, as in [`from_str`]).
    pub fn new(src: R) -> Result<Self> {
        let mut reader = EdgeBatchReader {
            src,
            line: String::new(),
            line_no: 0,
            n: 0,
            declared_edges: 0,
            edges_read: 0,
            done: false,
        };
        let header_no = match reader.next_content_line()? {
            Some(no) => no,
            None => return Err(GraphError::Parse("missing header line".into())),
        };
        let (n, m) = parse_header(reader.line.trim(), header_no)?;
        reader.n = n;
        reader.declared_edges = m;
        Ok(reader)
    }

    /// Number of vertices, from the header.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges the header declared.
    pub fn declared_edges(&self) -> usize {
        self.declared_edges
    }

    /// Number of edges yielded so far.
    pub fn edges_read(&self) -> usize {
        self.edges_read
    }

    /// Reads the next non-skippable line into `self.line`; returns its 1-based number,
    /// or `None` at end of input.
    fn next_content_line(&mut self) -> Result<Option<usize>> {
        loop {
            self.line.clear();
            let bytes = self.src.read_line(&mut self.line)?;
            if bytes == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            if !is_skippable(self.line.trim()) {
                return Ok(Some(self.line_no));
            }
        }
    }

    /// Appends up to `max_edges` validated edges to `out`, returning how many were
    /// appended. Returns `Ok(0)` exactly once the stream is exhausted; at that point
    /// the total count is checked against the header's declared edge count.
    /// `max_edges` must be positive — `Ok(0)` is reserved for end-of-stream, so a
    /// zero-sized batch request would be indistinguishable from exhaustion.
    pub fn next_batch(&mut self, max_edges: usize, out: &mut Vec<Edge>) -> Result<usize> {
        assert!(max_edges > 0, "max_edges must be positive");
        if self.done {
            return Ok(0);
        }
        let mut appended = 0usize;
        while appended < max_edges {
            let line_no = match self.next_content_line()? {
                Some(no) => no,
                None => {
                    self.done = true;
                    if self.edges_read != self.declared_edges {
                        return Err(GraphError::Parse(format!(
                            "header declared {} edges but {} were read",
                            self.declared_edges, self.edges_read
                        )));
                    }
                    break;
                }
            };
            let e = parse_edge(self.line.trim(), line_no, self.n)?;
            out.push(e);
            self.edges_read += 1;
            appended += 1;
        }
        Ok(appended)
    }
}

/// Writes a graph to a file in the edge-list text format.
pub fn write_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    fs::write(path, to_string(g))?;
    Ok(())
}

/// Reads a graph from a file in the edge-list text format.
///
/// Streams the file through an [`EdgeBatchReader`]: peak memory is the output edge list
/// plus one line buffer, not file-size + edge-list as with `fs::read_to_string`.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let mut reader = EdgeBatchReader::open(path)?;
    let mut g = Graph::with_capacity(
        reader.n(),
        reader.declared_edges().min(MAX_TRUSTED_PREALLOC_EDGES),
    );
    // The reader validates every edge, so they can be moved in unchecked; batches keep
    // the transient buffer small without a per-edge function-call round trip.
    let mut batch: Vec<Edge> = Vec::with_capacity(reader.declared_edges().min(16 * 1024));
    loop {
        batch.clear();
        if reader.next_batch(16 * 1024, &mut batch)? == 0 {
            break;
        }
        for e in &batch {
            g.push_edge_unchecked(e.u, e.v, e.w);
        }
    }
    Ok(g)
}

// ---------------------------------------------------------------------------
// Binary block format
// ---------------------------------------------------------------------------

/// Magic bytes opening every binary edge file.
pub const BIN_MAGIC: [u8; 4] = *b"SGSB";
/// Current binary format version.
pub const BIN_VERSION: u16 = 1;
/// Size of the fixed header in bytes.
const BIN_HEADER_BYTES: u64 = 24;
/// Size of one edge record in bytes: `u32 u`, `u32 v`, `u64 w`-bits.
const BIN_RECORD_BYTES: usize = 16;
/// Edges per block emitted by [`BinEdgeWriter`] (readers accept any block size).
const BIN_WRITE_BLOCK_EDGES: usize = 16 * 1024;

/// A streaming writer of the binary edge format.
///
/// The header is written eagerly; edges are appended in validated batches and chunked
/// into blocks of at most [`BIN_WRITE_BLOCK_EDGES`]. [`BinEdgeWriter::finish`] writes
/// the zero-count terminator block and cross-checks the written count against the
/// declared `m`, so a file that round-trips through [`BinEdgeReader`] is guaranteed
/// internally consistent.
#[derive(Debug)]
pub struct BinEdgeWriter<W: Write> {
    dst: W,
    n: usize,
    declared_edges: usize,
    edges_written: usize,
}

impl BinEdgeWriter<BufWriter<fs::File>> {
    /// Creates (truncating) a file and writes the header.
    pub fn create<P: AsRef<Path>>(path: P, n: usize, m: usize) -> Result<Self> {
        BinEdgeWriter::new(BufWriter::new(fs::File::create(path)?), n, m)
    }
}

impl<W: Write> BinEdgeWriter<W> {
    /// Wraps any writer and writes the header. `n` must fit in `u32` (vertex ids are
    /// stored as `u32`).
    pub fn new(mut dst: W, n: usize, m: usize) -> Result<Self> {
        if n > u32::MAX as usize {
            return Err(GraphError::Parse(format!(
                "binary format stores vertex ids as u32; n = {n} does not fit"
            )));
        }
        dst.write_all(&BIN_MAGIC)?;
        dst.write_all(&BIN_VERSION.to_le_bytes())?;
        dst.write_all(&0u16.to_le_bytes())?;
        dst.write_all(&(n as u64).to_le_bytes())?;
        dst.write_all(&(m as u64).to_le_bytes())?;
        Ok(BinEdgeWriter {
            dst,
            n,
            declared_edges: m,
            edges_written: 0,
        })
    }

    /// Number of edges written so far.
    pub fn edges_written(&self) -> usize {
        self.edges_written
    }

    /// Appends a batch of edges (validated against `n`; writing more than the declared
    /// `m` is an error).
    pub fn write_batch(&mut self, edges: &[Edge]) -> Result<()> {
        for e in edges {
            Graph::validate_edge(self.n, e.u, e.v, e.w)?;
        }
        if self.edges_written + edges.len() > self.declared_edges {
            return Err(GraphError::Parse(format!(
                "writing {} edges would exceed the declared count {}",
                self.edges_written + edges.len(),
                self.declared_edges
            )));
        }
        for block in edges.chunks(BIN_WRITE_BLOCK_EDGES) {
            self.dst.write_all(&(block.len() as u32).to_le_bytes())?;
            let mut rec = [0u8; BIN_RECORD_BYTES];
            for e in block {
                rec[0..4].copy_from_slice(&(e.u as u32).to_le_bytes());
                rec[4..8].copy_from_slice(&(e.v as u32).to_le_bytes());
                rec[8..16].copy_from_slice(&e.w.to_bits().to_le_bytes());
                self.dst.write_all(&rec)?;
            }
        }
        self.edges_written += edges.len();
        Ok(())
    }

    /// Writes the terminator block, checks the edge count against the header, and
    /// flushes.
    pub fn finish(mut self) -> Result<()> {
        if self.edges_written != self.declared_edges {
            return Err(GraphError::Parse(format!(
                "header declared {} edges but {} were written",
                self.declared_edges, self.edges_written
            )));
        }
        self.dst.write_all(&0u32.to_le_bytes())?;
        self.dst.flush()?;
        Ok(())
    }
}

/// A streaming reader of the binary edge format, mirroring [`EdgeBatchReader`].
///
/// The header is parsed eagerly by [`BinEdgeReader::new`]; edges are then pulled in
/// caller-sized batches via [`BinEdgeReader::next_batch`], each validated (endpoint
/// range, self-loops, weight positivity) with its byte offset in every error. Block
/// counts from the file are never trusted with an allocation: edges are read one
/// record at a time into the caller's vector, so a block header lying about its
/// length hits a positioned end-of-input error, not an OOM.
#[derive(Debug)]
pub struct BinEdgeReader<R> {
    src: R,
    /// Byte offset of the next unread byte, carried in every error position.
    offset: u64,
    n: usize,
    declared_edges: usize,
    edges_read: usize,
    /// Records remaining in the block currently being drained.
    remaining_in_block: u32,
    done: bool,
}

impl BinEdgeReader<BufReader<fs::File>> {
    /// Opens a file and parses its header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        BinEdgeReader::new(BufReader::new(fs::File::open(path)?))
    }
}

impl<R: Read> BinEdgeReader<R> {
    /// Wraps any reader and parses the header.
    pub fn new(src: R) -> Result<Self> {
        let mut reader = BinEdgeReader {
            src,
            offset: 0,
            n: 0,
            declared_edges: 0,
            edges_read: 0,
            remaining_in_block: 0,
            done: false,
        };
        let mut header = [0u8; BIN_HEADER_BYTES as usize];
        reader.read_exact_positioned(&mut header)?;
        if header[0..4] != BIN_MAGIC {
            return Err(GraphError::Parse(format!(
                "byte 0: bad magic {:?} (expected {:?})",
                &header[0..4],
                BIN_MAGIC
            )));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != BIN_VERSION {
            return Err(GraphError::Parse(format!(
                "byte 4: unsupported format version {version} (expected {BIN_VERSION})"
            )));
        }
        let reserved = u16::from_le_bytes([header[6], header[7]]);
        if reserved != 0 {
            return Err(GraphError::Parse(format!(
                "byte 6: reserved field is {reserved}, expected 0"
            )));
        }
        let n = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        if n > u32::MAX as u64 {
            return Err(GraphError::Parse(format!(
                "byte 8: n = {n} does not fit in u32 vertex ids"
            )));
        }
        let m = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        // A hostile header can declare m near u64::MAX; the declared count is only
        // ever used for cross-checks and clamped preallocation, never trusted with
        // memory. It must still fit in usize so the cross-check arithmetic is exact.
        if m > usize::MAX as u64 {
            return Err(GraphError::Parse(format!(
                "byte 16: declared edge count {m} does not fit in usize"
            )));
        }
        reader.n = n as usize;
        reader.declared_edges = m as usize;
        Ok(reader)
    }

    /// Number of vertices, from the header.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges the header declared.
    pub fn declared_edges(&self) -> usize {
        self.declared_edges
    }

    /// Number of edges yielded so far.
    pub fn edges_read(&self) -> usize {
        self.edges_read
    }

    /// `read_exact` with byte-offset error positions: truncation becomes a positioned
    /// parse error instead of a bare `UnexpectedEof`.
    fn read_exact_positioned(&mut self, buf: &mut [u8]) -> Result<()> {
        match self.src.read_exact(buf) {
            Ok(()) => {
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(GraphError::Parse(
                format!("byte {}: unexpected end of input", self.offset),
            )),
            Err(e) => Err(GraphError::Io(format!("byte {}: {e}", self.offset))),
        }
    }

    /// Appends up to `max_edges` validated edges to `out`, returning how many were
    /// appended. `Ok(0)` is reserved for end-of-stream (the terminator block), at
    /// which point the total count has been checked against the header. `max_edges`
    /// must be positive, as with [`EdgeBatchReader::next_batch`].
    pub fn next_batch(&mut self, max_edges: usize, out: &mut Vec<Edge>) -> Result<usize> {
        assert!(max_edges > 0, "max_edges must be positive");
        if self.done {
            return Ok(0);
        }
        let mut appended = 0usize;
        while appended < max_edges {
            if self.remaining_in_block == 0 {
                let block_offset = self.offset;
                let mut count = [0u8; 4];
                self.read_exact_positioned(&mut count)?;
                let count = u32::from_le_bytes(count);
                if count == 0 {
                    self.done = true;
                    if self.edges_read != self.declared_edges {
                        return Err(GraphError::Parse(format!(
                            "byte {block_offset}: header declared {} edges but {} were read",
                            self.declared_edges, self.edges_read
                        )));
                    }
                    break;
                }
                // Catch a lying block count before reading it: the declared total is
                // the trusted ceiling (its own lie is caught at the terminator).
                if self.edges_read + count as usize > self.declared_edges {
                    return Err(GraphError::Parse(format!(
                        "byte {block_offset}: block of {count} edges overruns the declared \
                         count {} (already read {})",
                        self.declared_edges, self.edges_read
                    )));
                }
                self.remaining_in_block = count;
            }
            let record_offset = self.offset;
            let mut rec = [0u8; BIN_RECORD_BYTES];
            self.read_exact_positioned(&mut rec)?;
            let u = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")) as usize;
            let v = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")) as usize;
            let w = f64::from_bits(u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes")));
            if let Err(e) = Graph::validate_edge(self.n, u, v, w) {
                return Err(GraphError::Parse(format!("byte {record_offset}: {e}")));
            }
            out.push(Edge { u, v, w });
            self.remaining_in_block -= 1;
            self.edges_read += 1;
            appended += 1;
        }
        Ok(appended)
    }
}

/// Writes a graph to a file in the binary format.
pub fn write_bin_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    let mut w = BinEdgeWriter::create(path, g.n(), g.m())?;
    w.write_batch(g.edges())?;
    w.finish()?;
    sgs_obs::point!("io.write_bin", n = g.n(), m = g.m());
    Ok(())
}

/// Reads a graph from a file in the binary format, with the same clamped-prealloc
/// streaming discipline as [`read_file`].
pub fn read_bin_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let mut reader = BinEdgeReader::open(path)?;
    let mut g = Graph::with_capacity(
        reader.n(),
        reader.declared_edges().min(MAX_TRUSTED_PREALLOC_EDGES),
    );
    let mut batch: Vec<Edge> = Vec::with_capacity(reader.declared_edges().min(16 * 1024));
    loop {
        batch.clear();
        if reader.next_batch(16 * 1024, &mut batch)? == 0 {
            break;
        }
        for e in &batch {
            g.push_edge_unchecked(e.u, e.v, e.w);
        }
    }
    sgs_obs::point!("io.read_bin", n = g.n(), m = g.m());
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_preserves_graph() {
        let g = generators::erdos_renyi_weighted(40, 0.2, 0.5, 3.0, 5);
        let text = to_string(&g);
        let h = from_str(&text).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.m(), h.m());
        for (a, b) in g.edges().iter().zip(h.edges().iter()) {
            assert_eq!(a.u, b.u);
            assert_eq!(a.v, b.v);
            assert!((a.w - b.w).abs() < 1e-12 * a.w.abs().max(1.0));
        }
    }

    #[test]
    fn parses_comments_and_default_weight() {
        let text = "# a comment\n3 2\n0 1\n# another\n1 2 2.5\n";
        let g = from_str(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.edges()[0].w, 1.0);
        assert_eq!(g.edges()[1].w, 2.5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("3").is_err());
        assert!(from_str("3 1\n0 zebra 1.0").is_err());
        assert!(from_str("3 2\n0 1 1.0").is_err()); // wrong edge count
        assert!(from_str("2 1\n0 5 1.0").is_err()); // bad vertex
        assert!(from_str("2 1\n0 1 -3.0").is_err()); // bad weight
    }

    /// Hostile inputs must come back as positioned `Err`s, never as panics or
    /// pathological allocations. Every case here used to be (or could have been) a
    /// process-killer: headers declaring ~usize::MAX edges, overflowing integers,
    /// non-finite weights, and negative ids.
    #[test]
    fn hostile_input_errors_instead_of_panicking() {
        // A header declaring an absurd edge count must not preallocate it; the lie
        // is caught by the count cross-check with a clean error.
        let huge_m = format!("3 {}\n0 1 1.0\n", usize::MAX);
        let err = from_str(&huge_m).unwrap_err();
        assert!(err.to_string().contains("declared"), "{err}");
        let mut r = EdgeBatchReader::new(huge_m.as_bytes()).unwrap();
        assert!(r.next_batch(10, &mut Vec::new()).is_err());

        // Integer overflow in any numeric field is a positioned parse error.
        assert!(from_str("99999999999999999999999999 1\n0 1 1.0\n").is_err());
        let err = from_str("3 1\n0 99999999999999999999999999 1.0\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        // Non-finite and non-positive weights are rejected wherever f64 parsing
        // would otherwise accept them.
        for w in ["inf", "-inf", "nan", "NaN", "0", "-0.0", "-1e308"] {
            let text = format!("3 1\n0 1 {w}\n");
            let err = from_str(&text).unwrap_err();
            assert!(err.to_string().contains("line 2"), "{w}: {err}");
        }

        // Negative vertex ids fail the unsigned parse, with position.
        let err = from_str("3 1\n-1 2 1.0\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        // n = 0 with edges is an out-of-range error, not an index panic.
        assert!(from_str("0 1\n0 1 1.0\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = generators::grid2d(4, 4, 1.0);
        let dir = std::env::temp_dir().join("sgs_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.txt");
        write_file(&g, &path).unwrap();
        let h = read_file(&path).unwrap();
        assert_eq!(g.edges(), h.edges());
        assert!(read_file(dir.join("missing.txt")).is_err());
    }

    #[test]
    fn batch_reader_streams_the_whole_graph_in_chunks() {
        let g = generators::erdos_renyi_weighted(60, 0.2, 0.5, 3.0, 9);
        let text = to_string(&g);
        let mut reader = EdgeBatchReader::new(text.as_bytes()).unwrap();
        assert_eq!(reader.n(), g.n());
        assert_eq!(reader.declared_edges(), g.m());
        let mut edges = Vec::new();
        let mut batches = 0usize;
        loop {
            let got = reader.next_batch(7, &mut edges).unwrap();
            if got == 0 {
                break;
            }
            assert!(got <= 7);
            batches += 1;
        }
        assert_eq!(edges.len(), g.m());
        assert_eq!(reader.edges_read(), g.m());
        assert_eq!(batches, g.m().div_ceil(7));
        for (a, b) in g.edges().iter().zip(edges.iter()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.w - b.w).abs() < 1e-12 * a.w.abs().max(1.0));
        }
        // Exhausted readers keep returning 0 without erroring.
        assert_eq!(reader.next_batch(7, &mut edges).unwrap(), 0);
    }

    #[test]
    fn batch_reader_reports_error_line_positions() {
        // Line 1 comment, line 2 header, line 3 good edge, line 4 blank, line 5 bad.
        let text = "# header comment\n4 3\n0 1 1.0\n\n2 zebra 1.0\n3 0 1.0\n";
        let mut reader = EdgeBatchReader::new(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        let err = reader.next_batch(10, &mut out).unwrap_err();
        assert!(
            err.to_string().contains("line 5"),
            "error should carry the 1-based line position: {err}"
        );
        assert_eq!(out.len(), 1, "edges before the bad line are still yielded");

        // Out-of-range vertex and self-loop positions are reported too.
        let bad_vertex = "2 1\n0 5 1.0\n";
        let mut r = EdgeBatchReader::new(bad_vertex.as_bytes()).unwrap();
        let err = r.next_batch(10, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");

        let self_loop = "# c\n# c\n3 1\n1 1 1.0\n";
        let mut r = EdgeBatchReader::new(self_loop.as_bytes()).unwrap();
        let err = r.next_batch(10, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        assert!(err.to_string().contains("self-loop"), "{err}");

        // The edge-count mismatch is detected at end of stream.
        let short = "3 2\n0 1 1.0\n";
        let mut r = EdgeBatchReader::new(short.as_bytes()).unwrap();
        let err = r.next_batch(10, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("declared 2"), "{err}");

        // Bad headers fail at construction, with position.
        assert!(EdgeBatchReader::new("".as_bytes()).is_err());
        let err = EdgeBatchReader::new("# x\nnope 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    /// Serializes a graph through an in-memory `BinEdgeWriter`.
    fn to_bin_bytes(g: &Graph) -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut w = BinEdgeWriter::new(&mut bytes, g.n(), g.m()).unwrap();
        w.write_batch(g.edges()).unwrap();
        w.finish().unwrap();
        bytes
    }

    #[test]
    fn bin_round_trip_is_bit_exact() {
        let g = generators::erdos_renyi_weighted(50, 0.15, 0.5, 3.0, 11);
        let bytes = to_bin_bytes(&g);
        let mut reader = BinEdgeReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.n(), g.n());
        assert_eq!(reader.declared_edges(), g.m());
        let mut edges = Vec::new();
        loop {
            if reader.next_batch(7, &mut edges).unwrap() == 0 {
                break;
            }
        }
        assert_eq!(edges.len(), g.m());
        assert_eq!(reader.edges_read(), g.m());
        for (a, b) in g.edges().iter().zip(edges.iter()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            // The whole point of the binary format: exact bits, not round-tripped text.
            assert_eq!(a.w.to_bits(), b.w.to_bits());
        }
        // Exhausted readers keep returning 0 without erroring.
        assert_eq!(reader.next_batch(7, &mut edges).unwrap(), 0);
    }

    #[test]
    fn bin_file_round_trip() {
        let g = generators::grid2d(5, 4, 1.25);
        let dir = std::env::temp_dir().join("sgs_graph_bin_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.sgsb");
        write_bin_file(&g, &path).unwrap();
        let h = read_bin_file(&path).unwrap();
        assert_eq!(g.edges(), h.edges());
        assert!(read_bin_file(dir.join("missing.sgsb")).is_err());
    }

    #[test]
    fn bin_reader_rejects_hostile_headers_with_positions() {
        let g = generators::grid2d(3, 3, 1.0);
        let good = to_bin_bytes(&g);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        let err = BinEdgeReader::new(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("byte 0"), "{err}");

        // Unsupported version.
        let mut bad = good.clone();
        bad[4] = 0xFF;
        let err = BinEdgeReader::new(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");

        // Non-zero reserved field.
        let mut bad = good.clone();
        bad[6] = 1;
        let err = BinEdgeReader::new(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("byte 6"), "{err}");

        // n too large for u32 ids.
        let mut bad = good.clone();
        bad[8..16].copy_from_slice(&(u64::MAX).to_le_bytes());
        let err = BinEdgeReader::new(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("byte 8"), "{err}");

        // A header declaring an absurd edge count must not preallocate it: the reader
        // constructs fine (m is just a cross-check ceiling) and the drain errors out
        // at the terminator with a positioned count mismatch.
        let mut lying = good.clone();
        lying[16..24].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let mut r = BinEdgeReader::new(lying.as_slice()).unwrap();
        let mut out = Vec::new();
        let err = loop {
            match r.next_batch(64, &mut out) {
                Ok(0) => panic!("lying header must not drain cleanly"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("declared"), "{err}");

        // Truncated header.
        let err = BinEdgeReader::new(&good[..10]).unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");
    }

    #[test]
    fn bin_reader_positions_errors_in_blocks_and_records() {
        let g = generators::grid2d(3, 3, 1.0);
        let good = to_bin_bytes(&g);

        // Truncation anywhere inside the body is a positioned error, never a panic.
        for cut in (BIN_HEADER_BYTES as usize)..good.len() - 1 {
            let mut r = BinEdgeReader::new(&good[..cut]).unwrap();
            let mut out = Vec::new();
            let err = loop {
                match r.next_batch(8, &mut out) {
                    Ok(0) => panic!("truncated input at {cut} drained cleanly"),
                    Ok(_) => continue,
                    Err(e) => break e,
                }
            };
            assert!(err.to_string().contains("byte"), "cut {cut}: {err}");
        }

        // A block count overrunning the declared total is caught before any record of
        // the block is read.
        let mut bad = good.clone();
        let block_at = BIN_HEADER_BYTES as usize;
        bad[block_at..block_at + 4].copy_from_slice(&(g.m() as u32 + 7).to_le_bytes());
        let mut r = BinEdgeReader::new(bad.as_slice()).unwrap();
        let err = r.next_batch(64, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("overruns"), "{err}");

        // A corrupted record (self-loop) errors with the record's byte offset.
        let mut bad = good.clone();
        let first_record = block_at + 4;
        let u = u32::from_le_bytes(bad[first_record..first_record + 4].try_into().unwrap());
        bad[first_record + 4..first_record + 8].copy_from_slice(&u.to_le_bytes());
        let mut r = BinEdgeReader::new(bad.as_slice()).unwrap();
        let err = r.next_batch(64, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
        assert!(
            err.to_string().contains(&format!("byte {first_record}")),
            "{err}"
        );

        // A corrupted weight (negative) is rejected by the same validation gate as
        // the text parser.
        let mut bad = good;
        bad[first_record + 8..first_record + 16]
            .copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        let mut r = BinEdgeReader::new(bad.as_slice()).unwrap();
        let err = r.next_batch(64, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("not strictly positive"), "{err}");
    }

    #[test]
    fn bin_writer_enforces_declared_count_and_id_width() {
        // Writing fewer edges than declared fails at finish.
        let mut bytes = Vec::new();
        let w = BinEdgeWriter::new(&mut bytes, 4, 3).unwrap();
        let err = w.finish().unwrap_err();
        assert!(err.to_string().contains("declared 3"), "{err}");

        // Writing more than declared fails at write time.
        let mut bytes = Vec::new();
        let mut w = BinEdgeWriter::new(&mut bytes, 4, 1).unwrap();
        let edges = [Edge { u: 0, v: 1, w: 1.0 }, Edge { u: 1, v: 2, w: 1.0 }];
        assert!(w.write_batch(&edges).is_err());

        // Invalid edges are rejected before any bytes of the batch are written.
        let mut bytes = Vec::new();
        let mut w = BinEdgeWriter::new(&mut bytes, 4, 1).unwrap();
        assert!(w.write_batch(&[Edge { u: 0, v: 9, w: 1.0 }]).is_err());

        // n beyond u32 ids is refused up front.
        assert!(BinEdgeWriter::new(Vec::new(), u32::MAX as usize + 1, 0).is_err());
    }
}
