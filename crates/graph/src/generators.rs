//! Reproducible graph generators used by the examples, tests and benchmark harness.
//!
//! Every randomized generator takes an explicit `seed` and uses a counter-based ChaCha
//! RNG so results are identical across platforms and thread counts. The families here
//! cover the workloads the paper's introduction motivates: dense graphs that need
//! sparsification (Erdős–Rényi, complete, preferential attachment), structured SDD
//! systems (2-D grids, image affinity grids — Remark 1), and expander-like graphs
//! (random regular) on which uniform sampling alone is already competitive.

use rand::prelude::*;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

use crate::builder::GraphBuilder;
use crate::graph::{Edge, Graph};

/// Path graph `0 − 1 − … − (n−1)` with uniform weight `w`.
pub fn path(n: usize, w: f64) -> Graph {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        g.push_edge_unchecked(i - 1, i, w);
    }
    g
}

/// Cycle graph on `n ≥ 3` vertices with uniform weight `w`.
pub fn cycle(n: usize, w: f64) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut g = path(n, w);
    g.push_edge_unchecked(n - 1, 0, w);
    g
}

/// Star graph with center 0 and `n − 1` leaves, uniform weight `w`.
pub fn star(n: usize, w: f64) -> Graph {
    assert!(n >= 2, "star needs at least 2 vertices");
    let mut g = Graph::with_capacity(n, n - 1);
    for i in 1..n {
        g.push_edge_unchecked(0, i, w);
    }
    g
}

/// Complete graph `K_n` with uniform weight `w`.
pub fn complete(n: usize, w: f64) -> Graph {
    let mut g = Graph::with_capacity(n, n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            g.push_edge_unchecked(u, v, w);
        }
    }
    g
}

/// Complete bipartite graph `K_{a,b}` with uniform weight `w`. Vertices `0..a` form one
/// side and `a..a+b` the other.
pub fn complete_bipartite(a: usize, b: usize, w: f64) -> Graph {
    let mut g = Graph::with_capacity(a + b, a * b);
    for u in 0..a {
        for v in 0..b {
            g.push_edge_unchecked(u, a + v, w);
        }
    }
    g
}

/// `rows × cols` 2-D grid graph with uniform weight `w`. Vertex `(r, c)` has index
/// `r * cols + c`.
pub fn grid2d(rows: usize, cols: usize, w: f64) -> Graph {
    let n = rows * cols;
    let mut g = Graph::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.push_edge_unchecked(v, v + 1, w);
            }
            if r + 1 < rows {
                g.push_edge_unchecked(v, v + cols, w);
            }
        }
    }
    g
}

/// Spanning tree of the `rows × cols` grid (the "comb" tree: the full first column plus
/// every row), useful as a deterministic low-diameter subgraph in tests.
pub fn grid_spanning_tree(rows: usize, cols: usize, w: f64) -> Graph {
    let n = rows * cols;
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.push_edge_unchecked(v, v + 1, w);
            }
        }
        if r + 1 < rows {
            g.push_edge_unchecked(r * cols, (r + 1) * cols, w);
        }
    }
    g
}

/// 2-D torus (grid with wraparound) with uniform weight `w`.
pub fn torus2d(rows: usize, cols: usize, w: f64) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus needs at least 3 rows and 3 columns"
    );
    let n = rows * cols;
    let mut g = Graph::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            g.push_edge_unchecked(v, right, w);
            g.push_edge_unchecked(v, down, w);
        }
    }
    g
}

/// `d`-dimensional hypercube graph on `2^d` vertices with uniform weight `w`.
pub fn hypercube(d: u32, w: f64) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::with_capacity(n, n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                g.push_edge_unchecked(v, u, w);
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` graph with uniform weight `w`; only the edges present are
/// stored. The expected edge count is `p · n(n−1)/2`.
pub fn erdos_renyi(n: usize, p: f64, w: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::with_capacity(n, ((n * (n - 1)) as f64 * p / 2.0) as usize + 16);
    if p >= 1.0 {
        return complete(n, w);
    }
    if p <= 0.0 || n < 2 {
        return Graph::new(n);
    }
    // Geometric skipping: iterate over the implicit lexicographic edge ordering and jump
    // ahead by Geometric(p) each time, giving O(m) work instead of O(n²).
    let total = n * (n - 1) / 2;
    let log1mp = (1.0 - p).ln();
    let mut idx: i64 = -1;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log1mp).floor() as i64 + 1;
        idx += skip;
        if idx as usize >= total {
            break;
        }
        let (u, v) = unrank_edge(idx as usize, n);
        g.push_edge_unchecked(u, v, w);
    }
    g
}

/// Erdős–Rényi graph with weights drawn uniformly from `[w_lo, w_hi]`.
pub fn erdos_renyi_weighted(n: usize, p: f64, w_lo: f64, w_hi: f64, seed: u64) -> Graph {
    assert!(w_lo > 0.0 && w_hi >= w_lo, "need 0 < w_lo <= w_hi");
    let base = erdos_renyi(n, p, 1.0, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(0x9E3779B97F4A7C15));
    let mut g = Graph::with_capacity(n, base.m());
    for e in base.edges() {
        g.push_edge_unchecked(e.u, e.v, rng.gen_range(w_lo..=w_hi));
    }
    g
}

/// Maps an index in `0 .. n(n−1)/2` to the corresponding unordered pair `(u, v)` with
/// `u < v`, in lexicographic order.
fn unrank_edge(mut idx: usize, n: usize) -> (usize, usize) {
    let mut u = 0usize;
    let mut row = n - 1;
    while idx >= row {
        idx -= row;
        u += 1;
        row -= 1;
    }
    (u, u + 1 + idx)
}

/// Random `d`-regular-ish multigraph via the configuration model (self-loops discarded,
/// parallel stubs merged). `n · d` must be even. The result is a good expander with high
/// probability, which makes it the stress-test workload for sparsifier quality.
pub fn random_regular(n: usize, d: usize, w: f64, seed: u64) -> Graph {
    assert!(n * d % 2 == 0, "n * d must be even");
    assert!(d < n, "degree must be below n");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat(v).take(d)).collect();
    stubs.shuffle(&mut rng);
    let mut b = GraphBuilder::new(n);
    let mut i = 0;
    while i + 1 < stubs.len() {
        let (u, v) = (stubs[i], stubs[i + 1]);
        if u != v {
            // Ignore result: validated endpoints, positive weight.
            let _ = b.add(u, v, w);
        }
        i += 2;
    }
    b.build()
}

/// Barabási–Albert preferential-attachment graph: starts from a small clique and
/// attaches each new vertex to `k` existing vertices chosen proportionally to degree.
/// Produces the heavy-tailed "social network" degree profile used in example workloads.
pub fn preferential_attachment(n: usize, k: usize, w: f64, seed: u64) -> Graph {
    assert!(k >= 1 && n > k, "need 1 <= k < n");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list implements preferential attachment in O(1) per draw.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n * k);
    // Seed clique on the first k + 1 vertices.
    for u in 0..=k {
        for v in (u + 1)..=k {
            let _ = b.add(u, v, w);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (k + 1)..n {
        // Deduplicate in draw order: a HashSet here would make the *edge order*
        // of the graph depend on the process-random hasher state, breaking
        // cross-process reproducibility of everything keyed on edge ids.
        let mut targets: Vec<usize> = Vec::with_capacity(k);
        let mut guard = 0;
        while targets.len() < k && guard < 50 * k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        for &t in &targets {
            let _ = b.add(v, t, w);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Barbell graph: two cliques of size `k` joined by a path of `bridge` edges of weight
/// `bridge_w`. The bridge edges have very high effective resistance, so any correct
/// sparsifier must keep them — a classical adversarial case for uniform sampling.
pub fn barbell(k: usize, bridge: usize, clique_w: f64, bridge_w: f64) -> Graph {
    assert!(k >= 2, "cliques need at least 2 vertices");
    let n = 2 * k + bridge.saturating_sub(1);
    let mut g = Graph::with_capacity(n, k * (k - 1) + bridge + 1);
    // Left clique on 0..k, right clique on the last k vertices.
    for u in 0..k {
        for v in (u + 1)..k {
            g.push_edge_unchecked(u, v, clique_w);
        }
    }
    let right_start = n - k;
    for u in 0..k {
        for v in (u + 1)..k {
            g.push_edge_unchecked(right_start + u, right_start + v, clique_w);
        }
    }
    // Bridge path from vertex k-1 through intermediate vertices to right_start.
    let mut prev = k - 1;
    for i in 0..bridge {
        let next = if i + 1 == bridge { right_start } else { k + i };
        g.push_edge_unchecked(prev, next, bridge_w);
        prev = next;
    }
    g
}

/// Synthetic image-affinity grid (Remark 1 workload): an `rows × cols` grid whose edge
/// weights are `exp(−β · (I_u − I_v)²)` for a synthetic piecewise-smooth "image" `I`
/// with a few random blobs. These are exactly the SDD systems that arise in computer
/// vision / graphics preconditioning.
pub fn image_affinity_grid(rows: usize, cols: usize, beta: f64, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Synthetic image: sum of a handful of Gaussian blobs plus mild noise.
    let blobs: Vec<(f64, f64, f64, f64)> = (0..5)
        .map(|_| {
            (
                rng.gen_range(0.0..rows as f64),
                rng.gen_range(0.0..cols as f64),
                rng.gen_range(2.0..(rows.max(4) as f64 / 2.0)),
                rng.gen_range(0.3..1.0),
            )
        })
        .collect();
    let intensity = |r: usize, c: usize, noise: f64| -> f64 {
        let mut val = 0.0;
        for &(br, bc, sigma, amp) in &blobs {
            let dr = r as f64 - br;
            let dc = c as f64 - bc;
            val += amp * (-(dr * dr + dc * dc) / (2.0 * sigma * sigma)).exp();
        }
        val + noise
    };
    let img: Vec<f64> = (0..rows * cols)
        .map(|i| intensity(i / cols, i % cols, rng.gen_range(-0.02..0.02)))
        .collect();
    let n = rows * cols;
    let mut g = Graph::with_capacity(n, 2 * n);
    let weight = |a: f64, b: f64| -> f64 {
        let d = a - b;
        (-beta * d * d).exp().max(1e-6)
    };
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.push_edge_unchecked(v, v + 1, weight(img[v], img[v + 1]));
            }
            if r + 1 < rows {
                g.push_edge_unchecked(v, v + cols, weight(img[v], img[v + cols]));
            }
        }
    }
    g
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex connects to its
/// `k` nearest neighbors on each side, with every edge rewired to a random endpoint with
/// probability `p_rewire`.
pub fn watts_strogatz(n: usize, k: usize, p_rewire: f64, w: f64, seed: u64) -> Graph {
    assert!(n > 2 * k, "n must exceed 2k");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for j in 1..=k {
            let mut u = (v + j) % n;
            if rng.gen::<f64>() < p_rewire {
                // Rewire to a uniformly random non-self endpoint.
                let mut cand = rng.gen_range(0..n);
                let mut guard = 0;
                while cand == v && guard < 32 {
                    cand = rng.gen_range(0..n);
                    guard += 1;
                }
                if cand != v {
                    u = cand;
                }
            }
            if u != v {
                let _ = b.add(v, u, w);
            }
        }
    }
    b.build()
}

/// A "dumbbell of expanders": two random-regular expanders joined by a single weak edge.
/// Used to check that sparsifiers preserve sparse cuts.
pub fn expander_dumbbell(half: usize, d: usize, w: f64, bridge_w: f64, seed: u64) -> Graph {
    let left = random_regular(half, d, w, seed);
    let right = random_regular(half, d, w, seed.wrapping_add(1));
    let n = 2 * half;
    let mut g = Graph::with_capacity(n, left.m() + right.m() + 1);
    for e in left.edges() {
        g.push_edge_unchecked(e.u, e.v, e.w);
    }
    for e in right.edges() {
        g.push_edge_unchecked(half + e.u, half + e.v, e.w);
    }
    g.push_edge_unchecked(0, half, bridge_w);
    g
}

/// A deterministic **streaming** edge source: a path skeleton (edges `i − (i+1)`,
/// guaranteeing connectivity) followed by counter-based pseudo-random extra edges,
/// produced one at a time so a stream of edges far larger than RAM never has to be
/// materialised. The out-of-core experiments drive [`crate::Graph`]-free ingestion
/// ([`sgs-stream`'s `ingest_batch`]) straight off this iterator.
///
/// The extra edges are derived from splitmix64 of `(seed, index)` alone — no RNG
/// state evolves across calls — so any sub-range of the stream can be regenerated
/// independently and the sequence is identical across platforms, batch chops, and
/// thread counts.
#[derive(Debug, Clone)]
pub struct StreamingEdgeGen {
    n: usize,
    total: usize,
    next: usize,
    seed: u64,
}

/// Creates a [`StreamingEdgeGen`] over `n` vertices yielding exactly
/// `total_edges` edges (`total_edges ≥ n − 1` so the path skeleton fits).
pub fn streaming_edges(n: usize, total_edges: usize, seed: u64) -> StreamingEdgeGen {
    assert!(n >= 2, "need at least two vertices");
    assert!(
        total_edges >= n - 1,
        "total_edges must cover the path skeleton"
    );
    StreamingEdgeGen {
        n,
        total: total_edges,
        next: 0,
        seed,
    }
}

/// splitmix64: a statistically strong 64-bit mixer with no carried state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Iterator for StreamingEdgeGen {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if self.next >= self.total {
            return None;
        }
        let i = self.next;
        self.next += 1;
        if i < self.n - 1 {
            // Path skeleton: keeps every prefix past n−1 edges connected.
            return Some(Edge {
                u: i,
                v: i + 1,
                w: 1.0,
            });
        }
        // Pseudo-random extra edge: endpoints and weight are pure functions of
        // (seed, i).
        let mut k = splitmix64(self.seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let u = (k % self.n as u64) as usize;
        k = splitmix64(k);
        let mut v = (k % (self.n as u64 - 1)) as usize;
        if v >= u {
            v += 1; // skip the diagonal: never a self-loop
        }
        k = splitmix64(k);
        // Weight in [0.5, 1.5): strictly positive, mildly heterogeneous.
        let w = 0.5 + (k >> 11) as f64 / (1u64 << 53) as f64;
        Some(Edge { u, v, w })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for StreamingEdgeGen {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn basic_families_have_expected_sizes() {
        assert_eq!(path(5, 1.0).m(), 4);
        assert_eq!(cycle(5, 1.0).m(), 5);
        assert_eq!(star(5, 1.0).m(), 4);
        assert_eq!(complete(6, 1.0).m(), 15);
        assert_eq!(complete_bipartite(3, 4, 1.0).m(), 12);
        assert_eq!(grid2d(4, 5, 1.0).m(), 4 * 4 + 3 * 5);
        assert_eq!(grid_spanning_tree(4, 5, 1.0).m(), 19);
        assert_eq!(torus2d(4, 5, 1.0).m(), 2 * 20);
        assert_eq!(hypercube(4, 1.0).m(), 32);
    }

    #[test]
    fn basic_families_are_connected() {
        assert!(is_connected(&path(10, 1.0)));
        assert!(is_connected(&cycle(10, 1.0)));
        assert!(is_connected(&star(10, 1.0)));
        assert!(is_connected(&complete(10, 1.0)));
        assert!(is_connected(&grid2d(7, 9, 1.0)));
        assert!(is_connected(&grid_spanning_tree(7, 9, 1.0)));
        assert!(is_connected(&torus2d(5, 5, 1.0)));
        assert!(is_connected(&hypercube(5, 1.0)));
    }

    #[test]
    fn grid_spanning_tree_is_a_tree_inside_grid() {
        let t = grid_spanning_tree(6, 7, 1.0);
        assert_eq!(t.m(), 6 * 7 - 1);
        assert!(is_connected(&t));
    }

    #[test]
    fn erdos_renyi_edge_count_is_near_expectation() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, 1.0, 7);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.m() as f64;
        assert!(
            m > expected * 0.8 && m < expected * 1.2,
            "m = {m}, expected ≈ {expected}"
        );
        // Edge endpoints must be valid and distinct.
        for e in g.edges() {
            assert!(e.u < n && e.v < n && e.u != e.v);
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(50, 0.0, 1.0, 1).m(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1.0, 1).m(), 45);
        assert_eq!(erdos_renyi(1, 0.5, 1.0, 1).m(), 0);
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(200, 0.1, 1.0, 42);
        let b = erdos_renyi(200, 0.1, 1.0, 42);
        let c = erdos_renyi(200, 0.1, 1.0, 43);
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn weighted_erdos_renyi_weights_in_range() {
        let g = erdos_renyi_weighted(100, 0.2, 0.5, 2.0, 5);
        for e in g.edges() {
            assert!(e.w >= 0.5 && e.w <= 2.0);
        }
    }

    #[test]
    fn unrank_edge_covers_all_pairs() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = unrank_edge(idx, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn random_regular_has_bounded_degrees() {
        let g = random_regular(100, 6, 1.0, 3);
        let deg = g.degrees();
        for &d in &deg {
            assert!(d <= 6);
        }
        // Configuration model discards few stubs: average degree should stay close to d.
        let avg = g.average_degree();
        assert!(avg > 5.0, "average degree {avg} too low");
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(300, 3, 1.0, 11);
        assert_eq!(g.n(), 300);
        assert!(is_connected(&g));
        // Hubs exist: max degree should be several times the attachment parameter.
        let max_deg = *g.degrees().iter().max().unwrap();
        assert!(max_deg >= 9, "max degree {max_deg} unexpectedly small");
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(5, 3, 1.0, 0.1);
        // 2 cliques of 10 edges each + 3 bridge edges; n = 2*5 + 2 = 12.
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 23);
        assert!(is_connected(&g));
        let single = barbell(4, 1, 1.0, 0.5);
        assert_eq!(single.n(), 8);
        assert_eq!(single.m(), 13);
        assert!(is_connected(&single));
    }

    #[test]
    fn image_affinity_grid_is_a_valid_grid() {
        let g = image_affinity_grid(8, 10, 50.0, 9);
        assert_eq!(g.n(), 80);
        assert_eq!(g.m(), 8 * 9 + 7 * 10);
        assert!(is_connected(&g));
        for e in g.edges() {
            assert!(e.w > 0.0 && e.w <= 1.0);
        }
    }

    #[test]
    fn watts_strogatz_is_connected_for_modest_rewiring() {
        let g = watts_strogatz(200, 3, 0.1, 1.0, 17);
        assert_eq!(g.n(), 200);
        assert!(g.m() >= 500);
        assert!(is_connected(&g));
    }

    #[test]
    fn streaming_edges_is_deterministic_valid_and_connected() {
        let n = 120;
        let total = 1000;
        let edges: Vec<Edge> = streaming_edges(n, total, 42).collect();
        assert_eq!(edges.len(), total);
        let mut g = Graph::with_capacity(n, total);
        for e in &edges {
            assert_ne!(e.u, e.v, "no self-loops");
            assert!(e.u < n && e.v < n);
            assert!(e.w >= 0.5 && e.w < 1.5);
            g.push_edge_unchecked(e.u, e.v, e.w);
        }
        assert!(is_connected(&g), "path skeleton keeps the stream connected");
        // Stateless: a second pass and a mid-stream restart reproduce the sequence.
        let again: Vec<Edge> = streaming_edges(n, total, 42).collect();
        assert_eq!(edges, again);
        let mut tail = streaming_edges(n, total, 42);
        for _ in 0..500 {
            tail.next();
        }
        let tail: Vec<Edge> = tail.collect();
        assert_eq!(&edges[500..], &tail[..]);
        // A different seed moves the non-skeleton edges.
        let other: Vec<Edge> = streaming_edges(n, total, 43).collect();
        assert_eq!(&edges[..n - 1], &other[..n - 1]);
        assert_ne!(&edges[n - 1..], &other[n - 1..]);
    }

    #[test]
    fn expander_dumbbell_has_single_bridge() {
        let g = expander_dumbbell(50, 4, 1.0, 0.01, 23);
        assert_eq!(g.n(), 100);
        assert!(is_connected(&g));
        let bridges: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| (e.u < 50) != (e.v < 50))
            .collect();
        assert_eq!(bridges.len(), 1);
        assert!((bridges[0].w - 0.01).abs() < 1e-12);
    }
}
