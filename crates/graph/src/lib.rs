//! # sgs-graph
//!
//! Weighted undirected graph substrate for the spectral-sparsification suite that
//! reproduces Koutis, *Simple Parallel and Distributed Algorithms for Spectral Graph
//! Sparsification* (SPAA 2014).
//!
//! The crate provides:
//!
//! * [`Graph`] — an edge-list representation of a weighted undirected multigraph with
//!   positive weights, the common currency of every algorithm in the workspace.
//! * [`Adjacency`] — a CSR-style adjacency view built from a [`Graph`], used by
//!   traversals, spanner constructions and the distributed simulator.
//! * [`generators`] — reproducible graph families (grids, Erdős–Rényi, random regular,
//!   preferential attachment, image affinity grids, …) used by examples, tests and the
//!   benchmark harness.
//! * [`ops`] — graph algebra (`G₁ + G₂`, `a·G`, edge-set difference) matching the paper's
//!   notation in Section 2.
//! * [`stretch`] — stretch computations `st_H(e)` (Section 2, "Stretch") needed to verify
//!   the spanner guarantees of Theorems 1 and 2.
//! * [`connectivity`], [`traversal`], [`io`] — supporting utilities. [`io`] includes
//!   [`io::EdgeBatchReader`], a chunked edge-list reader with `O(batch)` resident
//!   memory that feeds the semi-streaming sparsifier (`sgs-stream`), and
//!   [`io::BinEdgeReader`] / [`io::BinEdgeWriter`], the bit-exact binary block format
//!   that backs its out-of-core spill store.
//!
//! All randomized constructions take an explicit seed so that parallel runs are
//! reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod connectivity;
pub mod csr;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod ops;
pub mod stretch;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::Adjacency;
pub use error::{GraphError, Result};
pub use graph::{Edge, EdgeId, Graph, NodeId};

/// Commonly used items, for glob-import convenience in downstream crates.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::connectivity::{connected_components, is_connected, UnionFind};
    pub use crate::csr::Adjacency;
    pub use crate::error::{GraphError, Result};
    pub use crate::generators;
    pub use crate::graph::{Edge, EdgeId, Graph, NodeId};
    pub use crate::io::{BinEdgeReader, BinEdgeWriter, EdgeBatchReader};
    pub use crate::metrics::{conductance, cut_weight, degree_stats};
    pub use crate::ops;
    pub use crate::ops::{merge_union, merge_union_many};
    pub use crate::stretch::{edge_stretch, max_stretch, stretch_of_all_edges};
    pub use crate::traversal::{bfs_distances, dijkstra, dijkstra_resistance};
}
