//! Graph traversals: BFS and Dijkstra shortest paths.
//!
//! Two length conventions are used in the paper and therefore supported here:
//!
//! * *hop* lengths (BFS) — used by the distributed simulator and cluster growing;
//! * *resistance* lengths `1 / w_e` (Dijkstra) — the stretch of an edge `e = (u, v)` over
//!   a subgraph `H` is `w_e · dist_H(u, v)` where distances use resistance lengths
//!   (Section 2, "Stretch").

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::csr::Adjacency;
use crate::graph::NodeId;

/// Entry in the Dijkstra priority queue; ordered so that the smallest distance pops
/// first from Rust's max-heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order on distance; ties broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Unweighted BFS distances (hop counts) from `source`; unreachable vertices get
/// `usize::MAX`.
pub fn bfs_distances(adj: &Adjacency, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; adj.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for nb in adj.neighbors(v) {
            if dist[nb.node] == usize::MAX {
                dist[nb.node] = dist[v] + 1;
                queue.push_back(nb.node);
            }
        }
    }
    dist
}

/// Dijkstra distances from `source` where edge `e` has length `length(e.weight)`.
/// Unreachable vertices get `f64::INFINITY`.
///
/// An optional `cutoff` prunes the search: vertices farther than `cutoff` are left at
/// infinity, which keeps stretch verification cheap on large graphs.
pub fn dijkstra_with_lengths<F>(
    adj: &Adjacency,
    source: NodeId,
    length: F,
    cutoff: Option<f64>,
) -> Vec<f64>
where
    F: Fn(f64) -> f64,
{
    let mut dist = vec![f64::INFINITY; adj.n()];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    let limit = cutoff.unwrap_or(f64::INFINITY);
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        if d > limit {
            break;
        }
        for nb in adj.neighbors(v) {
            let nd = d + length(nb.weight);
            if nd < dist[nb.node] {
                dist[nb.node] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    node: nb.node,
                });
            }
        }
    }
    dist
}

/// Dijkstra with edge lengths equal to edge weights.
pub fn dijkstra(adj: &Adjacency, source: NodeId) -> Vec<f64> {
    dijkstra_with_lengths(adj, source, |w| w, None)
}

/// Dijkstra with *resistance* lengths `1 / w`, the metric used to define stretch and
/// effective-resistance upper bounds in the paper.
pub fn dijkstra_resistance(adj: &Adjacency, source: NodeId) -> Vec<f64> {
    dijkstra_with_lengths(adj, source, |w| 1.0 / w, None)
}

/// Single-pair resistance-length distance with an early-exit cutoff.
pub fn resistance_distance_capped(
    adj: &Adjacency,
    source: NodeId,
    target: NodeId,
    cutoff: f64,
) -> f64 {
    let dist = dijkstra_with_lengths(adj, source, |w| 1.0 / w, Some(cutoff));
    dist[target]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn weighted_path() -> Graph {
        // 0 -1.0- 1 -0.5- 2 -0.25- 3  (resistances 1, 2, 4)
        Graph::from_tuples(4, vec![(0, 1, 1.0), (1, 2, 0.5), (2, 3, 0.25)]).unwrap()
    }

    #[test]
    fn bfs_hop_counts() {
        let g = weighted_path();
        let adj = g.adjacency();
        let d = bfs_distances(&adj, 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
        let d = bfs_distances(&adj, 2);
        assert_eq!(d, vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = Graph::from_tuples(4, vec![(0, 1, 1.0)]).unwrap();
        let adj = g.adjacency();
        let d = bfs_distances(&adj, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn dijkstra_weight_lengths() {
        let g = weighted_path();
        let adj = g.adjacency();
        let d = dijkstra(&adj, 0);
        assert!((d[3] - 1.75).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_resistance_lengths() {
        let g = weighted_path();
        let adj = g.adjacency();
        let d = dijkstra_resistance(&adj, 0);
        // resistances: 1 + 2 + 4 = 7
        assert!((d[3] - 7.0).abs() < 1e-12);
        assert!((d[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_prefers_lighter_resistance_path() {
        // Two paths from 0 to 2: direct heavy-resistance edge vs. light two-hop path.
        let g = Graph::from_tuples(3, vec![(0, 2, 0.1), (0, 1, 10.0), (1, 2, 10.0)]).unwrap();
        let adj = g.adjacency();
        let d = dijkstra_resistance(&adj, 0);
        // direct: 1/0.1 = 10; via 1: 0.1 + 0.1 = 0.2
        assert!((d[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cutoff_prunes_far_vertices() {
        let g = weighted_path();
        let adj = g.adjacency();
        let d = dijkstra_with_lengths(&adj, 0, |w| 1.0 / w, Some(2.5));
        assert!(d[1].is_finite());
        assert!(d[3].is_infinite());
        let capped = resistance_distance_capped(&adj, 0, 3, 2.5);
        assert!(capped.is_infinite());
        let full = resistance_distance_capped(&adj, 0, 3, 100.0);
        assert!((full - 7.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = Graph::from_tuples(3, vec![(0, 1, 1.0)]).unwrap();
        let adj = g.adjacency();
        let d = dijkstra_resistance(&adj, 0);
        assert!(d[2].is_infinite());
    }
}
