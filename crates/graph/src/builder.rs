//! Incremental graph builder that merges duplicate edges.
//!
//! Generators and samplers often produce the same vertex pair more than once; the
//! builder accumulates weights per pair (exact electrically) and produces a simple
//! [`Graph`] at the end.

use std::collections::HashMap;

use crate::error::{GraphError, Result};
use crate::graph::{Edge, Graph, NodeId};

/// Accumulates edges keyed by their canonical `(min, max)` endpoint pair, summing the
/// weights of duplicates.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    weights: HashMap<(NodeId, NodeId), f64>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            weights: HashMap::new(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct vertex pairs added so far.
    pub fn distinct_edges(&self) -> usize {
        self.weights.len()
    }

    /// Adds an edge, accumulating weight onto an existing edge with the same endpoints.
    pub fn add(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<&mut Self> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(GraphError::NonPositiveWeight { weight: w });
        }
        let key = if u <= v { (u, v) } else { (v, u) };
        *self.weights.entry(key).or_insert(0.0) += w;
        Ok(self)
    }

    /// Adds every edge of `g`, accumulating duplicate pairs.
    pub fn add_graph(&mut self, g: &Graph) -> Result<&mut Self> {
        if g.n() != self.n {
            return Err(GraphError::SizeMismatch {
                left: self.n,
                right: g.n(),
            });
        }
        for e in g.edges() {
            self.add(e.u, e.v, e.w)?;
        }
        Ok(self)
    }

    /// Returns `true` if the pair `(u, v)` has been added.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u <= v { (u, v) } else { (v, u) };
        self.weights.contains_key(&key)
    }

    /// Finalizes the builder into a simple graph with deterministically ordered edges.
    pub fn build(self) -> Graph {
        let mut edges: Vec<Edge> = self
            .weights
            .into_iter()
            .map(|((u, v), w)| Edge { u, v, w })
            .collect();
        edges.sort_by_key(|e| (e.u, e.v));
        // Edges were validated on insertion; reconstruct without re-validating.
        let mut g = Graph::with_capacity(self.n, edges.len());
        for e in edges {
            g.push_edge_unchecked(e.u, e.v, e.w);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.add(0, 1, 1.0).unwrap();
        b.add(1, 0, 2.0).unwrap();
        b.add(1, 2, 3.0).unwrap();
        assert_eq!(b.distinct_edges(), 2);
        assert!(b.contains(0, 1));
        assert!(b.contains(1, 0));
        assert!(!b.contains(0, 2));
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert!((g.edges()[0].w - 3.0).abs() < 1e-12);
    }

    #[test]
    fn validates_input() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add(0, 0, 1.0).is_err());
        assert!(b.add(0, 5, 1.0).is_err());
        assert!(b.add(0, 1, -1.0).is_err());
        assert!(b.add(0, 1, f64::NAN).is_err());
        assert_eq!(b.distinct_edges(), 0);
    }

    #[test]
    fn add_graph_checks_size() {
        let g = Graph::from_tuples(3, vec![(0, 1, 1.0)]).unwrap();
        let mut b = GraphBuilder::new(4);
        assert!(matches!(
            b.add_graph(&g),
            Err(GraphError::SizeMismatch { .. })
        ));
        let mut b = GraphBuilder::new(3);
        b.add_graph(&g).unwrap();
        b.add_graph(&g).unwrap();
        let out = b.build();
        assert_eq!(out.m(), 1);
        assert!((out.edges()[0].w - 2.0).abs() < 1e-12);
    }

    #[test]
    fn build_is_deterministic() {
        let mut b1 = GraphBuilder::new(4);
        let mut b2 = GraphBuilder::new(4);
        for &(u, v, w) in &[(2, 3, 1.0), (0, 1, 1.0), (1, 3, 2.0)] {
            b1.add(u, v, w).unwrap();
        }
        for &(u, v, w) in &[(1, 3, 2.0), (0, 1, 1.0), (2, 3, 1.0)] {
            b2.add(u, v, w).unwrap();
        }
        assert_eq!(b1.build().edges(), b2.build().edges());
    }
}
