//! Compressed-sparse-row adjacency view of a [`Graph`].
//!
//! The adjacency view stores, for every vertex, its incident half-edges (neighbor,
//! weight, originating edge id) in one contiguous allocation. It is the workhorse of
//! Dijkstra/BFS traversals, the Baswana–Sen spanner construction and the distributed
//! simulator, all of which iterate over neighborhoods heavily.

use crate::graph::{EdgeId, Graph, NodeId};

/// One half-edge stored in the CSR adjacency structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The adjacent vertex.
    pub node: NodeId,
    /// Weight of the connecting edge.
    pub weight: f64,
    /// Id of the edge in the originating [`Graph`].
    pub edge: EdgeId,
}

/// CSR adjacency structure: for each vertex `v`, the half-edges incident to `v` occupy
/// `entries[offsets[v]..offsets[v + 1]]`.
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    offsets: Vec<usize>,
    entries: Vec<Neighbor>,
    n: usize,
    m: usize,
}

impl Adjacency {
    /// Builds the adjacency structure from a graph in `O(n + m)` time using the
    /// classical two-pass counting-sort layout.
    pub fn build(g: &Graph) -> Self {
        let n = g.n();
        let m = g.m();
        let mut counts = vec![0usize; n + 1];
        for e in g.edges() {
            counts[e.u + 1] += 1;
            counts[e.v + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![
            Neighbor {
                node: 0,
                weight: 0.0,
                edge: 0
            };
            2 * m
        ];
        for (id, e) in g.edges().iter().enumerate() {
            entries[cursor[e.u]] = Neighbor {
                node: e.v,
                weight: e.w,
                edge: id,
            };
            cursor[e.u] += 1;
            entries[cursor[e.v]] = Neighbor {
                node: e.u,
                weight: e.w,
                edge: id,
            };
            cursor[e.v] += 1;
        }
        Adjacency {
            offsets,
            entries,
            n,
            m,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges in the originating graph.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The half-edges incident to vertex `v`.
    pub fn neighbors(&self, v: NodeId) -> &[Neighbor] {
        &self.entries[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Unweighted degree of vertex `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Weighted degree of vertex `v`.
    pub fn weighted_degree(&self, v: NodeId) -> f64 {
        self.neighbors(v).iter().map(|nb| nb.weight).sum()
    }

    /// Iterates over `(vertex, &[Neighbor])` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[Neighbor])> + '_ {
        (0..self.n).map(move |v| (v, self.neighbors(v)))
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;

    fn path4() -> Graph {
        Graph::from_tuples(4, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap()
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path4();
        let adj = g.adjacency();
        assert_eq!(adj.n(), 4);
        assert_eq!(adj.m(), 3);
        assert_eq!(adj.degree(0), 1);
        assert_eq!(adj.degree(1), 2);
        assert_eq!(adj.degree(3), 1);
        assert_eq!(adj.max_degree(), 2);
        let nb0 = adj.neighbors(0);
        assert_eq!(nb0.len(), 1);
        assert_eq!(nb0[0].node, 1);
        assert_eq!(nb0[0].weight, 1.0);
        assert_eq!(nb0[0].edge, 0);
        let nb2: Vec<_> = adj.neighbors(2).iter().map(|nb| nb.node).collect();
        assert!(nb2.contains(&1) && nb2.contains(&3));
    }

    #[test]
    fn weighted_degrees_agree_with_graph() {
        let g = path4();
        let adj = g.adjacency();
        let d = g.weighted_degrees();
        for (v, dv) in d.iter().enumerate() {
            assert!((adj.weighted_degree(v) - dv).abs() < 1e-12);
        }
    }

    #[test]
    fn half_edge_count_is_2m() {
        let g = path4();
        let adj = g.adjacency();
        let total: usize = (0..4).map(|v| adj.degree(v)).sum();
        assert_eq!(total, 2 * g.m());
    }

    #[test]
    fn parallel_edges_appear_twice() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(0, 1, 5.0).unwrap();
        let adj = g.adjacency();
        assert_eq!(adj.degree(0), 2);
        assert_eq!(adj.degree(1), 2);
        let edges: Vec<_> = adj.neighbors(0).iter().map(|nb| nb.edge).collect();
        assert!(edges.contains(&0) && edges.contains(&1));
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = Graph::new(3);
        let adj = g.adjacency();
        for v in 0..3 {
            assert_eq!(adj.degree(v), 0);
            assert!(adj.neighbors(v).is_empty());
        }
        assert_eq!(adj.max_degree(), 0);
    }

    #[test]
    fn iter_visits_all_vertices() {
        let g = path4();
        let adj = g.adjacency();
        let visited: Vec<_> = adj.iter().map(|(v, _)| v).collect();
        assert_eq!(visited, vec![0, 1, 2, 3]);
    }
}
