//! Graph algebra in the sense of Section 2 of the paper.
//!
//! Given `G₁ = (V, E, w₁)` and `G₂ = (V, E, w₂)` the paper writes `G₁ + G₂` for the
//! graph whose weights are added, and `a·G₁` for the graph with scaled weights. Because
//! we represent graphs as multigraphs, the sum simply concatenates edge lists — which
//! has exactly the same Laplacian as the weight-added simple graph — and callers may
//! [`crate::graph::Graph::coalesce`] when a simple graph is preferred.

use crate::error::{GraphError, Result};
use crate::graph::{EdgeId, Graph};

/// Returns `G₁ + G₂`: the vertex sets must match; edge lists are concatenated, so the
/// Laplacian of the result is `L_{G₁} + L_{G₂}`.
pub fn add(g1: &Graph, g2: &Graph) -> Result<Graph> {
    if g1.n() != g2.n() {
        return Err(GraphError::SizeMismatch {
            left: g1.n(),
            right: g2.n(),
        });
    }
    let mut out = Graph::with_capacity(g1.n(), g1.m() + g2.m());
    for e in g1.edges() {
        out.push_edge_unchecked(e.u, e.v, e.w);
    }
    for e in g2.edges() {
        out.push_edge_unchecked(e.u, e.v, e.w);
    }
    Ok(out)
}

/// Returns the sum of many graphs over a shared vertex set.
pub fn sum<'a, I>(graphs: I) -> Result<Graph>
where
    I: IntoIterator<Item = &'a Graph>,
{
    let mut iter = graphs.into_iter();
    let first = match iter.next() {
        Some(g) => g.clone(),
        None => return Err(GraphError::EmptyGraph),
    };
    iter.try_fold(first, |acc, g| add(&acc, g))
}

/// Returns `a · G`: every edge weight multiplied by `a > 0`.
pub fn scale(g: &Graph, a: f64) -> Result<Graph> {
    if !(a.is_finite() && a > 0.0) {
        return Err(GraphError::NonPositiveWeight { weight: a });
    }
    let mut out = Graph::with_capacity(g.n(), g.m());
    for e in g.edges() {
        out.push_edge_unchecked(e.u, e.v, e.w * a);
    }
    Ok(out)
}

/// Removes the edges with the given ids from `G`, returning `G − S` (the graph on the
/// same vertex set with those edges deleted). This is the operation used to peel
/// successive spanners off a graph when building a t-bundle (Section 3.1).
pub fn remove_edges(g: &Graph, remove: &[EdgeId]) -> Graph {
    let mut keep = vec![true; g.m()];
    for &id in remove {
        if id < keep.len() {
            keep[id] = false;
        }
    }
    g.edge_subgraph(&keep)
}

/// Splits `G` into `(kept, removed)` according to a predicate on edge ids.
pub fn partition_edges<F>(g: &Graph, mut in_first: F) -> (Graph, Graph)
where
    F: FnMut(EdgeId) -> bool,
{
    let mut first = Graph::with_capacity(g.n(), g.m());
    let mut second = Graph::with_capacity(g.n(), g.m());
    for (id, e) in g.edges().iter().enumerate() {
        if in_first(id) {
            first.push_edge_unchecked(e.u, e.v, e.w);
        } else {
            second.push_edge_unchecked(e.u, e.v, e.w);
        }
    }
    (first, second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn add_concatenates_and_preserves_quadratic_form() {
        let g1 = generators::path(4, 1.0);
        let g2 = generators::cycle(4, 2.0);
        let s = add(&g1, &g2).unwrap();
        assert_eq!(s.m(), g1.m() + g2.m());
        let x = vec![0.5, -1.0, 2.0, 0.0];
        let q = g1.quadratic_form(&x) + g2.quadratic_form(&x);
        assert!((s.quadratic_form(&x) - q).abs() < 1e-12);
    }

    #[test]
    fn add_rejects_mismatched_sizes() {
        let g1 = generators::path(3, 1.0);
        let g2 = generators::path(4, 1.0);
        assert!(matches!(
            add(&g1, &g2),
            Err(GraphError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn sum_of_many() {
        let gs: Vec<_> = (1..=3).map(|i| generators::path(5, i as f64)).collect();
        let s = sum(gs.iter()).unwrap();
        assert_eq!(s.m(), 3 * 4);
        let x = vec![1.0, 0.0, 0.0, 0.0, -1.0];
        let q: f64 = gs.iter().map(|g| g.quadratic_form(&x)).sum();
        assert!((s.quadratic_form(&x) - q).abs() < 1e-12);
        let empty: Vec<&Graph> = Vec::new();
        assert!(matches!(sum(empty), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn scale_multiplies_quadratic_form() {
        let g = generators::cycle(6, 1.5);
        let s = scale(&g, 4.0).unwrap();
        let x: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        assert!((s.quadratic_form(&x) - 4.0 * g.quadratic_form(&x)).abs() < 1e-9);
        assert!(scale(&g, 0.0).is_err());
        assert!(scale(&g, -1.0).is_err());
        assert!(scale(&g, f64::NAN).is_err());
    }

    #[test]
    fn remove_edges_peels_subgraph() {
        let g = generators::complete(4, 1.0); // 6 edges
        let r = remove_edges(&g, &[0, 2, 4]);
        assert_eq!(r.m(), 3);
        // removing an out-of-range id is a no-op
        let r2 = remove_edges(&g, &[100]);
        assert_eq!(r2.m(), 6);
    }

    #[test]
    fn partition_splits_exactly() {
        let g = generators::complete(5, 1.0); // 10 edges
        let (a, b) = partition_edges(&g, |id| id % 2 == 0);
        assert_eq!(a.m() + b.m(), g.m());
        assert_eq!(a.m(), 5);
        // Quadratic forms add back up.
        let x: Vec<f64> = (0..5).map(|i| i as f64).collect();
        assert!((a.quadratic_form(&x) + b.quadratic_form(&x) - g.quadratic_form(&x)).abs() < 1e-9);
    }
}
