//! Graph algebra in the sense of Section 2 of the paper.
//!
//! Given `G₁ = (V, E, w₁)` and `G₂ = (V, E, w₂)` the paper writes `G₁ + G₂` for the
//! graph whose weights are added, and `a·G₁` for the graph with scaled weights. Because
//! we represent graphs as multigraphs, the sum simply concatenates edge lists — which
//! has exactly the same Laplacian as the weight-added simple graph — and callers may
//! [`crate::graph::Graph::coalesce`] when a simple graph is preferred.

use crate::error::{GraphError, Result};
use crate::graph::{Edge, EdgeId, Graph};

/// Returns `G₁ + G₂`: the vertex sets must match; edge lists are concatenated, so the
/// Laplacian of the result is `L_{G₁} + L_{G₂}`.
pub fn add(g1: &Graph, g2: &Graph) -> Result<Graph> {
    if g1.n() != g2.n() {
        return Err(GraphError::SizeMismatch {
            left: g1.n(),
            right: g2.n(),
        });
    }
    let mut out = Graph::with_capacity(g1.n(), g1.m() + g2.m());
    for e in g1.edges() {
        out.push_edge_unchecked(e.u, e.v, e.w);
    }
    for e in g2.edges() {
        out.push_edge_unchecked(e.u, e.v, e.w);
    }
    Ok(out)
}

/// Returns the sum of many graphs over a shared vertex set.
pub fn sum<'a, I>(graphs: I) -> Result<Graph>
where
    I: IntoIterator<Item = &'a Graph>,
{
    let mut iter = graphs.into_iter();
    let first = match iter.next() {
        Some(g) => g.clone(),
        None => return Err(GraphError::EmptyGraph),
    };
    iter.try_fold(first, |acc, g| add(&acc, g))
}

/// Returns `a · G`: every edge weight multiplied by `a > 0`.
pub fn scale(g: &Graph, a: f64) -> Result<Graph> {
    if !(a.is_finite() && a > 0.0) {
        return Err(GraphError::NonPositiveWeight { weight: a });
    }
    let mut out = Graph::with_capacity(g.n(), g.m());
    for e in g.edges() {
        out.push_edge_unchecked(e.u, e.v, e.w * a);
    }
    Ok(out)
}

/// Returns the coalesced union `G₁ ∪ G₂`: a *simple* graph over the shared vertex set
/// in which every `(u, v)` pair present in either input appears exactly once, with the
/// weights of all duplicates (across and within the inputs) summed.
///
/// Electrically this is exact — parallel conductances add — so the Laplacian of the
/// result is `L_{G₁} + L_{G₂}`, the same as [`add`]; unlike [`add`] the edge count is
/// bounded by the number of *distinct* vertex pairs rather than `m₁ + m₂`. This is the
/// merge step of the semi-streaming merge-and-reduce tree (`sgs-stream`), where keeping
/// unions collapsed is what keeps resident memory proportional to sparsifier size
/// instead of growing with every level.
///
/// The output edge list is sorted by `(min(u,v), max(u,v))` and allocated at exactly
/// its final size (the distinct-pair count is measured on the sorted scratch before the
/// output graph is built).
pub fn merge_union(g1: &Graph, g2: &Graph) -> Result<Graph> {
    if g1.n() != g2.n() {
        return Err(GraphError::SizeMismatch {
            left: g1.n(),
            right: g2.n(),
        });
    }
    let mut scratch: Vec<Edge> = Vec::with_capacity(g1.m() + g2.m());
    for e in g1.edges().iter().chain(g2.edges()) {
        let (u, v) = e.key();
        scratch.push(Edge { u, v, w: e.w });
    }
    merge_sorted_into_graph(g1.n(), &mut scratch)
}

/// k-way [`merge_union`]: coalesces any number of graphs over a shared vertex set in
/// one sort instead of folding pairwise. The caller may pass a reusable `scratch`
/// buffer to keep steady-state merges allocation-free (it is cleared first; its
/// capacity is retained across calls).
pub fn merge_union_many(graphs: &[&Graph], scratch: &mut Vec<Edge>) -> Result<Graph> {
    let first = graphs.first().ok_or(GraphError::EmptyGraph)?;
    let n = first.n();
    let total: usize = graphs.iter().map(|g| g.m()).sum();
    scratch.clear();
    scratch.reserve(total);
    for g in graphs {
        if g.n() != n {
            return Err(GraphError::SizeMismatch {
                left: n,
                right: g.n(),
            });
        }
        for e in g.edges() {
            let (u, v) = e.key();
            scratch.push(Edge { u, v, w: e.w });
        }
    }
    merge_sorted_into_graph(n, scratch)
}

/// Canonicalizes (`u ≤ v`), sorts by vertex pair, and collapses duplicate pairs
/// **in place** by summing their weights, truncating the buffer to the distinct-pair
/// count. No allocation is performed; the buffer's capacity is retained.
///
/// Duplicate weights are accumulated in sorted order, which is a deterministic
/// function of the input sequence alone (the unstable sort is a pure function of its
/// input) — so fixed-seed merge results are bitwise reproducible regardless of thread
/// count or how the inputs were batched. This is the zero-copy merge primitive of the
/// streaming engine, where the buffer doubles as the union graph's edge storage.
pub fn coalesce_in_place(edges: &mut Vec<Edge>) {
    if edges.is_empty() {
        return;
    }
    for e in edges.iter_mut() {
        if e.u > e.v {
            std::mem::swap(&mut e.u, &mut e.v);
        }
    }
    edges.sort_unstable_by_key(|e| (e.u, e.v));
    let mut write = 0usize;
    for read in 1..edges.len() {
        let e = edges[read];
        let last = &mut edges[write];
        if (e.u, e.v) == (last.u, last.v) {
            last.w += e.w;
        } else {
            write += 1;
            edges[write] = e;
        }
    }
    edges.truncate(write + 1);
}

/// Sorts a canonically-oriented edge scratch by vertex pair and collapses duplicate
/// pairs by summing weights into an exactly-sized [`Graph`].
pub(crate) fn merge_sorted_into_graph(n: usize, scratch: &mut Vec<Edge>) -> Result<Graph> {
    coalesce_in_place(scratch);
    let mut out = Graph::with_capacity(n, scratch.len());
    for e in scratch.iter() {
        out.push_edge_unchecked(e.u, e.v, e.w);
    }
    Ok(out)
}

/// Removes the edges with the given ids from `G`, returning `G − S` (the graph on the
/// same vertex set with those edges deleted). This is the operation used to peel
/// successive spanners off a graph when building a t-bundle (Section 3.1).
pub fn remove_edges(g: &Graph, remove: &[EdgeId]) -> Graph {
    let mut keep = vec![true; g.m()];
    for &id in remove {
        if id < keep.len() {
            keep[id] = false;
        }
    }
    g.edge_subgraph(&keep)
}

/// Splits `G` into `(kept, removed)` according to a predicate on edge ids.
pub fn partition_edges<F>(g: &Graph, mut in_first: F) -> (Graph, Graph)
where
    F: FnMut(EdgeId) -> bool,
{
    let mut first = Graph::with_capacity(g.n(), g.m());
    let mut second = Graph::with_capacity(g.n(), g.m());
    for (id, e) in g.edges().iter().enumerate() {
        if in_first(id) {
            first.push_edge_unchecked(e.u, e.v, e.w);
        } else {
            second.push_edge_unchecked(e.u, e.v, e.w);
        }
    }
    (first, second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn add_concatenates_and_preserves_quadratic_form() {
        let g1 = generators::path(4, 1.0);
        let g2 = generators::cycle(4, 2.0);
        let s = add(&g1, &g2).unwrap();
        assert_eq!(s.m(), g1.m() + g2.m());
        let x = vec![0.5, -1.0, 2.0, 0.0];
        let q = g1.quadratic_form(&x) + g2.quadratic_form(&x);
        assert!((s.quadratic_form(&x) - q).abs() < 1e-12);
    }

    #[test]
    fn add_rejects_mismatched_sizes() {
        let g1 = generators::path(3, 1.0);
        let g2 = generators::path(4, 1.0);
        assert!(matches!(
            add(&g1, &g2),
            Err(GraphError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn sum_of_many() {
        let gs: Vec<_> = (1..=3).map(|i| generators::path(5, i as f64)).collect();
        let s = sum(gs.iter()).unwrap();
        assert_eq!(s.m(), 3 * 4);
        let x = vec![1.0, 0.0, 0.0, 0.0, -1.0];
        let q: f64 = gs.iter().map(|g| g.quadratic_form(&x)).sum();
        assert!((s.quadratic_form(&x) - q).abs() < 1e-12);
        let empty: Vec<&Graph> = Vec::new();
        assert!(matches!(sum(empty), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn scale_multiplies_quadratic_form() {
        let g = generators::cycle(6, 1.5);
        let s = scale(&g, 4.0).unwrap();
        let x: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        assert!((s.quadratic_form(&x) - 4.0 * g.quadratic_form(&x)).abs() < 1e-9);
        assert!(scale(&g, 0.0).is_err());
        assert!(scale(&g, -1.0).is_err());
        assert!(scale(&g, f64::NAN).is_err());
    }

    #[test]
    fn merge_union_accumulates_duplicate_weights() {
        // g1 has a parallel pair internally; g2 repeats one of g1's edges reversed.
        let g1 = Graph::from_tuples(4, vec![(0, 1, 1.0), (1, 0, 2.0), (2, 3, 1.5)]).unwrap();
        let g2 = Graph::from_tuples(4, vec![(1, 0, 4.0), (1, 2, 0.5)]).unwrap();
        let u = merge_union(&g1, &g2).unwrap();
        assert_eq!(u.n(), 4);
        assert_eq!(u.m(), 3); // (0,1), (1,2), (2,3)
        let edges = u.edges();
        assert_eq!((edges[0].u, edges[0].v), (0, 1));
        assert!((edges[0].w - 7.0).abs() < 1e-12);
        assert!((edges[1].w - 0.5).abs() < 1e-12);
        assert!((edges[2].w - 1.5).abs() < 1e-12);
        // Laplacians add exactly: union quadratic form = sum of parts.
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let q = g1.quadratic_form(&x) + g2.quadratic_form(&x);
        assert!((u.quadratic_form(&x) - q).abs() < 1e-12);
    }

    #[test]
    fn merge_union_self_merge_doubles_weights() {
        let g = generators::erdos_renyi_weighted(30, 0.3, 0.5, 2.0, 11);
        let u = merge_union(&g, &g).unwrap();
        assert_eq!(u.m(), g.coalesce().m());
        let c = g.coalesce();
        for (a, b) in u.edges().iter().zip(c.edges().iter()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.w - 2.0 * b.w).abs() < 1e-12 * b.w);
        }
    }

    #[test]
    fn merge_union_of_disjoint_vertex_ranges_concatenates() {
        // Edges of g1 live in 0..5, edges of g2 in 5..10; no pair collides.
        let mut g1 = Graph::new(10);
        let mut g2 = Graph::new(10);
        for i in 0..4 {
            g1.add_edge(i, i + 1, 1.0 + i as f64).unwrap();
            g2.add_edge(5 + i, 6 + i, 2.0 + i as f64).unwrap();
        }
        let u = merge_union(&g1, &g2).unwrap();
        assert_eq!(u.m(), g1.m() + g2.m());
        let x: Vec<f64> = (0..10).map(|i| (i as f64).cos()).collect();
        let q = g1.quadratic_form(&x) + g2.quadratic_form(&x);
        assert!((u.quadratic_form(&x) - q).abs() < 1e-12);
        // Output is sorted by canonical pair and exactly sized.
        for w in u.edges().windows(2) {
            assert!((w[0].u, w[0].v) < (w[1].u, w[1].v));
        }
    }

    #[test]
    fn merge_union_rejects_mismatched_sizes_and_handles_empty() {
        let g1 = generators::path(3, 1.0);
        let g2 = generators::path(4, 1.0);
        assert!(matches!(
            merge_union(&g1, &g2),
            Err(GraphError::SizeMismatch { .. })
        ));
        let e1 = Graph::new(5);
        let e2 = Graph::new(5);
        let u = merge_union(&e1, &e2).unwrap();
        assert_eq!(u.n(), 5);
        assert_eq!(u.m(), 0);
    }

    #[test]
    fn coalesce_in_place_merges_without_reallocating() {
        let mut v = vec![
            Edge::new(1, 2, 1.0),
            Edge::new(0, 1, 2.0),
            Edge::new(2, 1, 0.5), // reversed orientation still merges
            Edge::new(0, 3, 1.0),
            Edge::new(1, 2, 0.25),
        ];
        let cap = v.capacity();
        coalesce_in_place(&mut v);
        assert_eq!(v.capacity(), cap);
        assert_eq!(v.len(), 3);
        assert_eq!((v[0].u, v[0].v, v[0].w), (0, 1, 2.0));
        assert_eq!((v[1].u, v[1].v, v[1].w), (0, 3, 1.0));
        assert!((v[2].w - 1.75).abs() < 1e-15);
        let mut empty: Vec<Edge> = Vec::new();
        coalesce_in_place(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn merge_union_many_matches_pairwise_fold() {
        let gs: Vec<Graph> = (0..4)
            .map(|i| generators::erdos_renyi_weighted(20, 0.4, 0.5, 2.0, 50 + i))
            .collect();
        let refs: Vec<&Graph> = gs.iter().collect();
        let mut scratch = Vec::new();
        let many = merge_union_many(&refs, &mut scratch).unwrap();
        let mut folded = gs[0].clone();
        for g in &gs[1..] {
            folded = merge_union(&folded, g).unwrap();
        }
        assert_eq!(many.m(), folded.m());
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        assert!((many.quadratic_form(&x) - folded.quadratic_form(&x)).abs() < 1e-9);
        // Scratch capacity is retained, so a second call does not reallocate.
        let cap = scratch.capacity();
        let _ = merge_union_many(&refs, &mut scratch).unwrap();
        assert_eq!(scratch.capacity(), cap);
        assert!(matches!(
            merge_union_many(&[], &mut scratch),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn remove_edges_peels_subgraph() {
        let g = generators::complete(4, 1.0); // 6 edges
        let r = remove_edges(&g, &[0, 2, 4]);
        assert_eq!(r.m(), 3);
        // removing an out-of-range id is a no-op
        let r2 = remove_edges(&g, &[100]);
        assert_eq!(r2.m(), 6);
    }

    #[test]
    fn partition_splits_exactly() {
        let g = generators::complete(5, 1.0); // 10 edges
        let (a, b) = partition_edges(&g, |id| id % 2 == 0);
        assert_eq!(a.m() + b.m(), g.m());
        assert_eq!(a.m(), 5);
        // Quadratic forms add back up.
        let x: Vec<f64> = (0..5).map(|i| i as f64).collect();
        assert!((a.quadratic_form(&x) + b.quadratic_form(&x) - g.quadratic_form(&x)).abs() < 1e-9);
    }
}
