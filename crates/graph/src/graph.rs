//! The core weighted undirected graph type.
//!
//! A [`Graph`] is a list of weighted undirected edges over vertices `0..n`. Parallel
//! edges are allowed (they arise naturally when graphs are summed, cf. Section 2 of the
//! paper) and are treated as distinct resistors connected in parallel. All weights must
//! be strictly positive and finite.

use crate::csr::Adjacency;
use crate::error::{GraphError, Result};

/// Identifier of a vertex: an index in `0..n`.
pub type NodeId = usize;

/// Identifier of an edge: an index into [`Graph::edges`].
pub type EdgeId = usize;

/// A weighted undirected edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Strictly positive weight. Interpreted electrically as a conductance; the
    /// resistance of the edge is `1 / w`.
    pub w: f64,
}

impl Edge {
    /// Creates a new edge.
    pub fn new(u: NodeId, v: NodeId, w: f64) -> Self {
        Edge { u, v, w }
    }

    /// Resistance `1 / w` of the edge viewed as a resistor.
    pub fn resistance(&self) -> f64 {
        1.0 / self.w
    }

    /// Returns the endpoint different from `x`, assuming `x` is one of the endpoints.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else {
            self.u
        }
    }

    /// Canonical `(min, max)` endpoint pair, useful as a hash key for simple graphs.
    pub fn key(&self) -> (NodeId, NodeId) {
        if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }
}

/// A weighted undirected multigraph on vertices `0..n`.
///
/// This is the common currency of the whole workspace: spanners, bundles, sparsifiers
/// and Laplacian matrices are all built from or converted to this type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates an empty graph with `n` vertices, reserving capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Graph {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Builds a graph from an explicit edge list, validating every edge.
    pub fn from_edges(n: usize, edges: Vec<Edge>) -> Result<Self> {
        let mut g = Graph::with_capacity(n, edges.len());
        for e in edges {
            g.add_edge(e.u, e.v, e.w)?;
        }
        Ok(g)
    }

    /// Builds a graph from `(u, v, w)` tuples, validating every edge.
    pub fn from_tuples<I>(n: usize, tuples: I) -> Result<Self>
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        let it = tuples.into_iter();
        let mut g = Graph::with_capacity(n, it.size_hint().0);
        for (u, v, w) in it {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (counting parallel edges separately).
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Checks whether `(u, v, w)` is a valid edge for a graph on `n` vertices —
    /// endpoints in range, no self-loop, weight strictly positive and finite. The
    /// single source of truth for the edge invariant; [`Graph::add_edge`] and the
    /// batch-validation paths (`io`, `sgs-stream`) all defer to it.
    pub fn validate_edge(n: usize, u: NodeId, v: NodeId, w: f64) -> Result<()> {
        if u >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(GraphError::NonPositiveWeight { weight: w });
        }
        Ok(())
    }

    /// Validates and appends an edge, returning its [`EdgeId`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<EdgeId> {
        Graph::validate_edge(self.n, u, v, w)?;
        let id = self.edges.len();
        self.edges.push(Edge { u, v, w });
        Ok(id)
    }

    /// Appends an edge without validation. Intended for hot paths where the caller has
    /// already validated endpoints and weight (e.g. graph generators and samplers).
    pub fn push_edge_unchecked(&mut self, u: NodeId, v: NodeId, w: f64) -> EdgeId {
        debug_assert!(u < self.n && v < self.n && u != v && w > 0.0 && w.is_finite());
        let id = self.edges.len();
        self.edges.push(Edge { u, v, w });
        id
    }

    /// Builds a graph directly from an already-validated edge list, without per-edge
    /// checks or copying. Intended for hot paths (samplers, sparsifier output assembly)
    /// where every edge was derived from an existing valid graph.
    pub fn from_edges_unchecked(n: usize, edges: Vec<Edge>) -> Graph {
        debug_assert!(edges.iter().all(|e| e.u < n
            && e.v < n
            && e.u != e.v
            && e.w > 0.0
            && e.w.is_finite()));
        Graph { n, edges }
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Mutable access to the edge list (weights may be rescaled in place).
    pub fn edges_mut(&mut self) -> &mut [Edge] {
        &mut self.edges
    }

    /// Consumes the graph, returning its edge list.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// The edge with the given id.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id]
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// Weighted degree (sum of incident edge weights) of every vertex. This is the
    /// diagonal of the Laplacian `L_G`.
    pub fn weighted_degrees(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for e in &self.edges {
            d[e.u] += e.w;
            d[e.v] += e.w;
        }
        d
    }

    /// Unweighted degree (number of incident edges) of every vertex.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for e in &self.edges {
            d[e.u] += 1;
            d[e.v] += 1;
        }
        d
    }

    /// Minimum and maximum edge weight, or `None` for an edgeless graph.
    pub fn weight_range(&self) -> Option<(f64, f64)> {
        if self.edges.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for e in &self.edges {
            lo = lo.min(e.w);
            hi = hi.max(e.w);
        }
        Some((lo, hi))
    }

    /// Average (unweighted) degree `2m / n`.
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n as f64
        }
    }

    /// Builds the CSR adjacency view of the graph.
    pub fn adjacency(&self) -> Adjacency {
        Adjacency::build(self)
    }

    /// Evaluates the Laplacian quadratic form `xᵀ L_G x = Σ_e w_e (x_u − x_v)²` directly
    /// from the edge list, without materialising a matrix.
    ///
    /// This is the quantity preserved by spectral sparsifiers (Section 1 of the paper);
    /// it is used extensively in tests and verification code.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n);
        self.edges
            .iter()
            .map(|e| {
                let d = x[e.u] - x[e.v];
                e.w * d * d
            })
            .sum()
    }

    /// Applies the Laplacian to a vector: `y = L_G x`, computed edge-by-edge.
    pub fn laplacian_apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.laplacian_apply_into(x, &mut y);
        y
    }

    /// Allocation-free [`Graph::laplacian_apply`] writing into a caller-provided
    /// buffer; the hot SPMV of every matrix-free Laplacian solve.
    pub fn laplacian_apply_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        y.fill(0.0);
        for e in &self.edges {
            let d = e.w * (x[e.u] - x[e.v]);
            y[e.u] += d;
            y[e.v] -= d;
        }
    }

    /// Returns the subgraph induced by keeping exactly the edges whose ids are in
    /// `keep` (a boolean mask of length `m`). Vertex set is unchanged.
    pub fn edge_subgraph(&self, keep: &[bool]) -> Graph {
        debug_assert_eq!(keep.len(), self.m());
        let edges = self
            .edges
            .iter()
            .zip(keep.iter())
            .filter_map(|(e, &k)| if k { Some(*e) } else { None })
            .collect();
        Graph { n: self.n, edges }
    }

    /// Returns a graph with the same vertex set containing the listed edges.
    pub fn with_edge_ids(&self, ids: &[EdgeId]) -> Graph {
        let edges = ids.iter().map(|&id| self.edges[id]).collect();
        Graph { n: self.n, edges }
    }

    /// Merges parallel edges by summing their weights, returning a simple graph.
    ///
    /// Electrically this is exact: parallel resistors of conductances `w₁, w₂` behave as
    /// a single resistor of conductance `w₁ + w₂`, and the Laplacians are identical.
    pub fn coalesce(&self) -> Graph {
        use std::collections::HashMap;
        let mut map: HashMap<(NodeId, NodeId), f64> = HashMap::with_capacity(self.m());
        for e in &self.edges {
            *map.entry(e.key()).or_insert(0.0) += e.w;
        }
        let mut edges: Vec<Edge> = map
            .into_iter()
            .map(|((u, v), w)| Edge { u, v, w })
            .collect();
        edges.sort_by_key(|e| (e.u, e.v));
        Graph { n: self.n, edges }
    }

    /// True if the two graphs have the same vertex count, edge count and identical
    /// coalesced edge weights up to `tol` (relative).
    pub fn approx_eq(&self, other: &Graph, tol: f64) -> bool {
        if self.n != other.n {
            return false;
        }
        let a = self.coalesce();
        let b = other.coalesce();
        if a.m() != b.m() {
            return false;
        }
        a.edges.iter().zip(b.edges.iter()).all(|(x, y)| {
            x.key() == y.key() && (x.w - y.w).abs() <= tol * x.w.abs().max(y.w.abs()).max(1e-300)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.total_weight(), 6.0);
        assert_eq!(g.average_degree(), 2.0);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.add_edge(0, 3, 1.0),
            Err(GraphError::VertexOutOfRange { vertex: 3, n: 3 })
        ));
        assert!(matches!(
            g.add_edge(1, 1, 1.0),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            g.add_edge(0, 1, 0.0),
            Err(GraphError::NonPositiveWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, -2.0),
            Err(GraphError::NonPositiveWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN),
            Err(GraphError::NonPositiveWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::INFINITY),
            Err(GraphError::NonPositiveWeight { .. })
        ));
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn weighted_degrees_match_laplacian_diagonal() {
        let g = triangle();
        let d = g.weighted_degrees();
        assert_eq!(d, vec![4.0, 3.0, 5.0]);
        assert_eq!(g.degrees(), vec![2, 2, 2]);
    }

    #[test]
    fn quadratic_form_matches_manual_computation() {
        let g = triangle();
        let x = vec![1.0, 0.0, -1.0];
        // w01*(1-0)^2 + w12*(0+1)^2 + w02*(1+1)^2 = 1 + 2 + 12 = 15
        assert!((g.quadratic_form(&x) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_form_of_constant_vector_is_zero() {
        let g = triangle();
        let x = vec![5.0; 3];
        assert_eq!(g.quadratic_form(&x), 0.0);
    }

    #[test]
    fn laplacian_apply_agrees_with_quadratic_form() {
        let g = triangle();
        let x = vec![0.3, -1.2, 2.5];
        let lx = g.laplacian_apply(&x);
        let xtlx: f64 = x.iter().zip(lx.iter()).map(|(a, b)| a * b).sum();
        assert!((xtlx - g.quadratic_form(&x)).abs() < 1e-12);
    }

    #[test]
    fn laplacian_apply_annihilates_constants() {
        let g = triangle();
        let lx = g.laplacian_apply(&[7.0, 7.0, 7.0]);
        for v in lx {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn coalesce_sums_parallel_edges() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 0, 2.5).unwrap();
        let c = g.coalesce();
        assert_eq!(c.m(), 1);
        assert!((c.edges()[0].w - 3.5).abs() < 1e-12);
        // Quadratic forms agree before and after coalescing.
        let x = vec![1.0, -1.0];
        assert!((g.quadratic_form(&x) - c.quadratic_form(&x)).abs() < 1e-12);
    }

    #[test]
    fn edge_subgraph_and_with_edge_ids() {
        let g = triangle();
        let h = g.edge_subgraph(&[true, false, true]);
        assert_eq!(h.m(), 2);
        assert_eq!(h.n(), 3);
        let k = g.with_edge_ids(&[1]);
        assert_eq!(k.m(), 1);
        assert_eq!(k.edges()[0].w, 2.0);
    }

    #[test]
    fn weight_range_and_empty() {
        let g = triangle();
        assert_eq!(g.weight_range(), Some((1.0, 3.0)));
        let e = Graph::new(4);
        assert_eq!(e.weight_range(), None);
        assert!(e.is_empty());
        assert_eq!(e.total_weight(), 0.0);
    }

    #[test]
    fn edge_helpers() {
        let e = Edge::new(3, 1, 0.5);
        assert_eq!(e.other(3), 1);
        assert_eq!(e.other(1), 3);
        assert_eq!(e.key(), (1, 3));
        assert!((e.resistance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_detects_differences() {
        let g = triangle();
        let mut h = triangle();
        assert!(g.approx_eq(&h, 1e-12));
        h.edges_mut()[0].w *= 1.0 + 1e-3;
        assert!(!g.approx_eq(&h, 1e-6));
        assert!(g.approx_eq(&h, 1e-2));
    }
}
