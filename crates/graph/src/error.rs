//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing or manipulating graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a vertex id outside `0..n`.
    VertexOutOfRange {
        /// Offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// An edge had a non-positive (or non-finite) weight; the Laplacian machinery of the
    /// paper requires `w > 0`.
    NonPositiveWeight {
        /// Offending weight.
        weight: f64,
    },
    /// A self-loop `(u, u)` was supplied; Laplacians of self-loops are identically zero
    /// and the sparsification analysis excludes them.
    SelfLoop {
        /// The vertex with the loop.
        vertex: usize,
    },
    /// The operation requires a connected graph.
    Disconnected,
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// Two graphs passed to a binary operation had different vertex counts.
    SizeMismatch {
        /// Vertex count of the left operand.
        left: usize,
        /// Vertex count of the right operand.
        right: usize,
    },
    /// Failure while parsing a graph from text.
    Parse(String),
    /// A stateful consumer (e.g. a streaming sparsifier) was used again after an
    /// earlier error left it with partially-applied input. The payload describes the
    /// original failure.
    Poisoned(String),
    /// An I/O failure while reading or writing a graph file.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::NonPositiveWeight { weight } => {
                write!(
                    f,
                    "edge weight {weight} is not strictly positive and finite"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::EmptyGraph => write!(f, "graph has no vertices"),
            GraphError::SizeMismatch { left, right } => {
                write!(f, "graphs have different vertex counts: {left} vs {right}")
            }
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::Poisoned(msg) => {
                write!(f, "poisoned by an earlier partial-ingest failure: {msg}")
            }
            GraphError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 5 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('5'));
        let e = GraphError::NonPositiveWeight { weight: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = GraphError::SizeMismatch { left: 3, right: 4 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let g: GraphError = io.into();
        assert!(matches!(g, GraphError::Io(_)));
    }
}
