//! Stretch of edges over subgraphs (Section 2 of the paper).
//!
//! The stretch of an edge `e = (u, v)` with weight `w_e` over a graph `H` is
//! `st_H(e) = w_e · min_{p ⊆ H} Σ_{e' ∈ p} 1 / w_{e'}`, i.e. the edge weight times the
//! resistance-length shortest-path distance between the endpoints inside `H`.
//!
//! A `(2 log n)`-spanner is exactly a subgraph `H` with `st_H(e) ≤ 2 log n` for every
//! edge of `G`, which is what Theorems 1 and 2 guarantee and what these functions verify
//! empirically (experiment E1).

use rayon::prelude::*;

use crate::csr::Adjacency;
use crate::graph::{Edge, Graph};
use crate::traversal::dijkstra_with_lengths;

/// Computes the stretch of a single edge over `H` (given as an adjacency view).
/// Returns `f64::INFINITY` if the endpoints are disconnected in `H`.
pub fn edge_stretch(h: &Adjacency, e: &Edge) -> f64 {
    let dist = dijkstra_with_lengths(h, e.u, |w| 1.0 / w, None);
    e.w * dist[e.v]
}

/// Computes the stretch over `H` of every edge of `G`, in parallel.
///
/// The implementation runs one Dijkstra per *distinct source vertex* that appears as an
/// endpoint, rather than one per edge, and shares the distance vector across all edges
/// with that source. On graphs where many edges share endpoints (grids, dense graphs)
/// this is substantially cheaper.
pub fn stretch_of_all_edges(g: &Graph, h: &Graph) -> Vec<f64> {
    assert_eq!(g.n(), h.n(), "G and H must share a vertex set");
    let adj_h = h.adjacency();
    // Group edge ids by their `u` endpoint.
    let mut by_source: Vec<Vec<usize>> = vec![Vec::new(); g.n()];
    for (id, e) in g.edges().iter().enumerate() {
        by_source[e.u].push(id);
    }
    let mut stretches = vec![0.0f64; g.m()];
    let results: Vec<(usize, f64)> = by_source
        .par_iter()
        .enumerate()
        .filter(|(_, ids)| !ids.is_empty())
        .flat_map_iter(|(src, ids)| {
            let dist = dijkstra_with_lengths(&adj_h, src, |w| 1.0 / w, None);
            ids.iter()
                .map(|&id| {
                    let e = g.edge(id);
                    (id, e.w * dist[e.v])
                })
                .collect::<Vec<_>>()
        })
        .collect();
    for (id, s) in results {
        stretches[id] = s;
    }
    stretches
}

/// Maximum stretch over `H` of any edge of `G`.
pub fn max_stretch(g: &Graph, h: &Graph) -> f64 {
    stretch_of_all_edges(g, h)
        .into_iter()
        .fold(0.0f64, f64::max)
}

/// Average stretch over `H` of the edges of `G` (infinite stretches propagate).
pub fn average_stretch(g: &Graph, h: &Graph) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    let s = stretch_of_all_edges(g, h);
    s.iter().sum::<f64>() / s.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn stretch_of_edge_inside_subgraph_is_one() {
        let g = generators::cycle(5, 1.0);
        // H = G: every edge has stretch exactly w_e * (1 / w_e) = 1 via itself.
        let s = stretch_of_all_edges(&g, &g);
        for v in s {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn stretch_over_spanning_path() {
        // G = triangle with unit weights; H = path 0-1-2.
        let g = generators::complete(3, 1.0);
        let h = Graph::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let s = stretch_of_all_edges(&g, &h);
        // Edge (0,2) must go around: resistance 2, weight 1 => stretch 2.
        let max = s.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 2.0).abs() < 1e-12);
        assert!((max_stretch(&g, &h) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stretch_respects_weights() {
        // Heavy edge (large conductance) over a light detour has large stretch.
        let g = Graph::from_tuples(3, vec![(0, 2, 10.0), (0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let h = Graph::from_tuples(3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let e = g.edges()[0];
        let s = edge_stretch(&h.adjacency(), &e);
        // detour resistance = 2, weight = 10 => stretch 20.
        assert!((s - 20.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_subgraph_gives_infinite_stretch() {
        let g = generators::complete(4, 1.0);
        let h = Graph::from_tuples(4, vec![(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let s = stretch_of_all_edges(&g, &h);
        assert!(s.iter().any(|v| v.is_infinite()));
        assert!(max_stretch(&g, &h).is_infinite());
    }

    #[test]
    fn average_stretch_of_empty_graph_is_zero() {
        let g = Graph::new(3);
        let h = Graph::new(3);
        assert_eq!(average_stretch(&g, &h), 0.0);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let g = generators::grid2d(6, 6, 1.0);
        let h = generators::grid_spanning_tree(6, 6, 1.0);
        let all = stretch_of_all_edges(&g, &h);
        let adj = h.adjacency();
        for (id, e) in g.edges().iter().enumerate() {
            let single = edge_stretch(&adj, e);
            assert!(
                (all[id] - single).abs() < 1e-9,
                "edge {id}: {} vs {}",
                all[id],
                single
            );
        }
    }
}
