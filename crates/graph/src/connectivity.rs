//! Connectivity utilities: union-find and connected components.

use crate::graph::{Graph, NodeId};

/// Union-find (disjoint-set) structure with path halving and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x` with path halving.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the sets containing `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets currently tracked.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

/// Returns, for every vertex, the id of its connected component (component ids are
/// contiguous and assigned in order of first appearance), plus the component count.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut uf = UnionFind::new(g.n());
    for e in g.edges() {
        uf.union(e.u, e.v);
    }
    let mut label = vec![usize::MAX; g.n()];
    let mut next = 0usize;
    for v in 0..g.n() {
        let r = uf.find(v);
        if label[r] == usize::MAX {
            label[r] = next;
            next += 1;
        }
        label[v] = label[r];
    }
    (label, next)
}

/// True if the graph is connected (the empty graph is considered connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    let (_, count) = connected_components(g);
    count == 1
}

/// Returns the vertices of the largest connected component.
pub fn largest_component(g: &Graph) -> Vec<NodeId> {
    if g.n() == 0 {
        return Vec::new();
    }
    let (labels, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l] += 1;
    }
    let best = (0..count).max_by_key(|&c| sizes[c]).unwrap_or(0);
    (0..g.n()).filter(|&v| labels[v] == best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn components_of_disjoint_paths() {
        let g = Graph::from_tuples(6, vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[5]);
        assert!(!is_connected(&g));
        let big = largest_component(&g);
        assert_eq!(big, vec![0, 1, 2]);
    }

    #[test]
    fn connected_graphs_are_detected() {
        let g = generators::path(10, 1.0);
        assert!(is_connected(&g));
        let g = generators::cycle(10, 1.0);
        assert!(is_connected(&g));
        let g = Graph::new(1);
        assert!(is_connected(&g));
        let g = Graph::new(0);
        assert!(is_connected(&g));
        let g = Graph::new(2);
        assert!(!is_connected(&g));
    }
}
