//! Graph metrics used by the experiments: cut weights, conductance, and degree
//! statistics.
//!
//! Spectral sparsifiers preserve every cut of the graph to within the same `1 ± ε`
//! factor as the quadratic form (take `x` to be the indicator vector of one side), so
//! cut and conductance preservation are cheap necessary conditions that the tests and
//! the examples check alongside the full spectral certification.

use std::collections::HashSet;

use crate::graph::{Graph, NodeId};

/// Total weight of edges crossing the cut `(S, V ∖ S)`.
pub fn cut_weight(g: &Graph, side: &[bool]) -> f64 {
    debug_assert_eq!(side.len(), g.n());
    g.edges()
        .iter()
        .filter(|e| side[e.u] != side[e.v])
        .map(|e| e.w)
        .sum()
}

/// Total weight of edges crossing the cut defined by a vertex subset.
pub fn cut_weight_of_set(g: &Graph, set: &HashSet<NodeId>) -> f64 {
    let side: Vec<bool> = (0..g.n()).map(|v| set.contains(&v)).collect();
    cut_weight(g, &side)
}

/// Volume (sum of weighted degrees) of the vertex set marked `true`.
pub fn volume(g: &Graph, side: &[bool]) -> f64 {
    debug_assert_eq!(side.len(), g.n());
    let degrees = g.weighted_degrees();
    degrees
        .iter()
        .zip(side)
        .filter(|(_, &s)| s)
        .map(|(d, _)| d)
        .sum()
}

/// Conductance of the cut: `cut(S) / min(vol(S), vol(V∖S))`. Returns `f64::INFINITY`
/// when one side has zero volume.
pub fn conductance(g: &Graph, side: &[bool]) -> f64 {
    let cut = cut_weight(g, side);
    let vol_s = volume(g, side);
    let vol_rest = g.weighted_degrees().iter().sum::<f64>() - vol_s;
    let denom = vol_s.min(vol_rest);
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        cut / denom
    }
}

/// The cut indicator quadratic form identity: `xᵀ L x = cut(S)` for the 0/1 indicator
/// vector of `S`. Exposed as a helper because several tests use it.
pub fn indicator_vector(n: usize, set: &HashSet<NodeId>) -> Vec<f64> {
    (0..n)
        .map(|v| if set.contains(&v) { 1.0 } else { 0.0 })
        .collect()
}

/// Summary statistics of the (unweighted) degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Fraction of vertices with degree at least ten times the mean (a heavy-tail
    /// indicator used when characterising workloads).
    pub hub_fraction: f64,
}

/// Computes degree statistics; returns `None` on an empty graph.
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    if g.n() == 0 {
        return None;
    }
    let degrees = g.degrees();
    let min = *degrees.iter().min().unwrap();
    let max = *degrees.iter().max().unwrap();
    let mean = degrees.iter().sum::<usize>() as f64 / g.n() as f64;
    let hub_threshold = 10.0 * mean;
    let hubs = degrees
        .iter()
        .filter(|&&d| d as f64 >= hub_threshold && d > 0)
        .count();
    Some(DegreeStats {
        min,
        max,
        mean,
        hub_fraction: hubs as f64 / g.n() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cut_weight_matches_quadratic_form_on_indicators() {
        let g = generators::erdos_renyi_weighted(60, 0.2, 0.5, 2.0, 3);
        let set: HashSet<NodeId> = (0..30).collect();
        let x = indicator_vector(g.n(), &set);
        let via_form = g.quadratic_form(&x);
        let via_cut = cut_weight_of_set(&g, &set);
        assert!((via_form - via_cut).abs() < 1e-9);
    }

    #[test]
    fn barbell_bridge_is_the_minimum_conductance_cut() {
        let g = generators::barbell(20, 1, 1.0, 0.5);
        // Cut between the two cliques: crosses only the bridge.
        let side: Vec<bool> = (0..g.n()).map(|v| v < 20).collect();
        assert!((cut_weight(&g, &side) - 0.5).abs() < 1e-12);
        let phi_bridge = conductance(&g, &side);
        // A cut through the middle of one clique has much higher conductance.
        let side2: Vec<bool> = (0..g.n()).map(|v| v < 10).collect();
        let phi_clique = conductance(&g, &side2);
        assert!(phi_bridge < phi_clique);
    }

    #[test]
    fn volume_sums_to_total_degree() {
        let g = generators::grid2d(6, 7, 2.0);
        let all = vec![true; g.n()];
        let none = vec![false; g.n()];
        let total: f64 = g.weighted_degrees().iter().sum();
        assert!((volume(&g, &all) - total).abs() < 1e-9);
        assert_eq!(volume(&g, &none), 0.0);
        assert!(conductance(&g, &none).is_infinite());
    }

    #[test]
    fn conductance_of_expander_is_large() {
        let g = generators::random_regular(200, 8, 1.0, 5);
        let side: Vec<bool> = (0..200).map(|v| v < 100).collect();
        let phi = conductance(&g, &side);
        assert!(
            phi > 0.1,
            "random regular graphs have no sparse balanced cuts, phi = {phi}"
        );
        let dumbbell = generators::expander_dumbbell(100, 8, 1.0, 0.01, 7);
        let side: Vec<bool> = (0..200).map(|v| v < 100).collect();
        let phi_weak = conductance(&dumbbell, &side);
        assert!(
            phi_weak < 1e-3,
            "the dumbbell cut is sparse, phi = {phi_weak}"
        );
    }

    #[test]
    fn degree_stats_detect_hubs() {
        let star = generators::star(101, 1.0);
        let stats = degree_stats(&star).unwrap();
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 100);
        assert!(stats.hub_fraction > 0.0);
        let ring = generators::cycle(100, 1.0);
        let stats = degree_stats(&ring).unwrap();
        assert_eq!(stats.min, 2);
        assert_eq!(stats.max, 2);
        assert_eq!(stats.hub_fraction, 0.0);
        assert!(degree_stats(&Graph::new(0)).is_none());
    }
    use crate::graph::Graph;
}
