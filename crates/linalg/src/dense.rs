//! Small dense matrices with Cholesky factorization.
//!
//! Used as ground truth on tiny instances (exact effective resistances, exact extreme
//! eigenvalue checks via bisection is out of scope — we use the pseudo-inverse route)
//! and as the base-case solver at the bottom of the Peng–Spielman chain.

use crate::csr::CsrMatrix;

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates an identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Converts a sparse matrix to dense form.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let n = a.n();
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            for i in a.row_ptr()[r]..a.row_ptr()[r + 1] {
                m.data[r * n + a.col_idx()[i]] += a.values()[i];
            }
        }
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Sets entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] = v;
    }

    /// Adds `v` to entry `(r, c)`.
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] += v;
    }

    /// Matrix–vector product.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|r| {
                let row = &self.data[r * self.n..(r + 1) * self.n];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Cholesky factorization `A = L Lᵀ` for a symmetric positive-definite matrix.
    /// Returns `None` if a non-positive pivot is encountered.
    pub fn cholesky(&self) -> Option<CholeskyFactor> {
        let n = self.n;
        let mut l = vec![0.0f64; n * n];
        for j in 0..n {
            let mut diag = self.get(j, j);
            for k in 0..j {
                diag -= l[j * n + k] * l[j * n + k];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return None;
            }
            let dj = diag.sqrt();
            l[j * n + j] = dj;
            for i in (j + 1)..n {
                let mut v = self.get(i, j);
                for k in 0..j {
                    v -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = v / dj;
            }
        }
        Some(CholeskyFactor { n, l })
    }

    /// Solves `A x = b` for a symmetric positive-*semi*-definite Laplacian-like matrix
    /// by regularizing with `(1/n)·J` (the all-ones rank-one term), which is the
    /// standard trick for computing the action of the pseudo-inverse on vectors
    /// orthogonal to the all-ones vector.
    pub fn solve_laplacian(&self, b: &[f64]) -> Option<Vec<f64>> {
        let n = self.n;
        let mut reg = self.clone();
        let shift = 1.0 / n as f64;
        for r in 0..n {
            for c in 0..n {
                reg.add_to(r, c, shift);
            }
        }
        let chol = reg.cholesky()?;
        let mut b_proj = b.to_vec();
        crate::vector::project_out_ones(&mut b_proj);
        let mut x = chol.solve(&b_proj);
        crate::vector::project_out_ones(&mut x);
        Some(x)
    }
}

/// Lower-triangular Cholesky factor.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    n: usize,
    l: Vec<f64>,
}

impl CholeskyFactor {
    /// Solves `L Lᵀ x = b` by forward and backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(b.len(), n);
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[i];
            for (lik, yk) in self.l[i * n..i * n + i].iter().zip(&y[..i]) {
                v -= lik * yk;
            }
            y[i] = v / self.l[i * n + i];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                v -= self.l[k * n + i] * xk;
            }
            x[i] = v / self.l[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    #[test]
    fn identity_and_apply() {
        let id = DenseMatrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(id.apply(&x), x);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4, 2], [2, 3]]
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 0, 4.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 3.0);
        let chol = a.cholesky().unwrap();
        let x = chol.solve(&[10.0, 8.0]);
        let ax = a.apply(&x);
        assert!((ax[0] - 10.0).abs() < 1e-10);
        assert!((ax[1] - 8.0).abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = DenseMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 1.0);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn laplacian_pseudo_solve() {
        let g = generators::cycle(6, 1.0);
        let l = CsrMatrix::laplacian(&g);
        let dense = DenseMatrix::from_csr(&l);
        // b = e_0 - e_3 (orthogonal to ones)
        let mut b = vec![0.0; 6];
        b[0] = 1.0;
        b[3] = -1.0;
        let x = dense.solve_laplacian(&b).unwrap();
        // Check L x = b on the orthogonal complement.
        let lx = l.apply(&x);
        for (a, bb) in lx.iter().zip(&b) {
            assert!((a - bb).abs() < 1e-8);
        }
        // Effective resistance across the cycle between antipodal vertices is
        // (3 in series) || (3 in series) = 1.5.
        let er = x[0] - x[3];
        assert!((er - 1.5).abs() < 1e-8);
    }

    #[test]
    fn from_csr_matches_entries() {
        let g = generators::path(4, 2.0);
        let l = CsrMatrix::laplacian(&g);
        let d = DenseMatrix::from_csr(&l);
        for r in 0..4 {
            for c in 0..4 {
                assert!((d.get(r, c) - l.get(r, c)).abs() < 1e-12);
            }
        }
    }
}
