//! Laplacian assembly and SDD checks.
//!
//! A symmetric matrix `A` is SDD (symmetric diagonally dominant) if
//! `A_ii ≥ Σ_{j≠i} |A_ij|` for every row `i` (footnote 1 of the paper). Graph Laplacians
//! are exactly the SDD matrices with zero row sums and non-positive off-diagonals; the
//! solver crate reduces general SDD systems to Laplacian systems.

use sgs_graph::{Graph, GraphError, Result};

use crate::csr::CsrMatrix;

/// Builds the Laplacian CSR matrix of a graph. Convenience re-export of
/// [`CsrMatrix::laplacian`].
pub fn laplacian_of(g: &Graph) -> CsrMatrix {
    CsrMatrix::laplacian(g)
}

/// Checks whether a symmetric CSR matrix is SDD within tolerance `tol`.
pub fn is_sdd(a: &CsrMatrix, tol: f64) -> bool {
    if !a.is_symmetric(tol) {
        return false;
    }
    let diag = a.diagonal();
    let off = a.offdiagonal_abs_row_sums();
    diag.iter().zip(off.iter()).all(|(d, o)| *d + tol >= *o)
}

/// Extracts the graph underlying a Laplacian-like SDD matrix.
///
/// Off-diagonal negative entries `A_ij = -w` become edges of weight `w`. Positive
/// off-diagonals are rejected (they are handled by the solver crate's gadget reduction,
/// not here). Any diagonal *excess* `A_ii − Σ_{j≠i} |A_ij| > 0` is returned separately
/// so callers can reattach it (it corresponds to a connection to "ground").
pub fn graph_from_sdd(a: &CsrMatrix, tol: f64) -> Result<(Graph, Vec<f64>)> {
    let n = a.n();
    if !is_sdd(a, tol) {
        return Err(GraphError::Parse("matrix is not SDD".into()));
    }
    let mut g = Graph::with_capacity(n, a.nnz() / 2);
    for r in 0..n {
        for i in a.row_ptr()[r]..a.row_ptr()[r + 1] {
            let c = a.col_idx()[i];
            let v = a.values()[i];
            if c > r {
                if v > tol {
                    return Err(GraphError::Parse(
                        "positive off-diagonal entries require the gadget reduction".into(),
                    ));
                }
                if v < -tol {
                    g.add_edge(r, c, -v)?;
                }
            }
        }
    }
    let diag = a.diagonal();
    let off = a.offdiagonal_abs_row_sums();
    let excess = diag
        .iter()
        .zip(off.iter())
        .map(|(d, o)| (d - o).max(0.0))
        .collect();
    Ok((g, excess))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    #[test]
    fn laplacians_are_sdd() {
        let g = generators::erdos_renyi_weighted(40, 0.3, 0.1, 5.0, 1);
        let l = laplacian_of(&g);
        assert!(is_sdd(&l, 1e-9));
    }

    #[test]
    fn non_sdd_matrix_is_rejected() {
        // Diagonal smaller than off-diagonal sum.
        let a =
            CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (1, 1, 1.0), (0, 1, -2.0), (1, 0, -2.0)]);
        assert!(!is_sdd(&a, 1e-12));
        assert!(graph_from_sdd(&a, 1e-12).is_err());
    }

    #[test]
    fn asymmetric_matrix_is_not_sdd() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 2.0), (1, 1, 2.0), (0, 1, -1.0)]);
        assert!(!is_sdd(&a, 1e-12));
    }

    #[test]
    fn graph_round_trips_through_laplacian() {
        let g = generators::grid2d(4, 5, 1.5);
        let l = laplacian_of(&g);
        let (h, excess) = graph_from_sdd(&l, 1e-12).unwrap();
        assert_eq!(h.coalesce().edges(), g.coalesce().edges());
        assert!(excess.iter().all(|&e| e.abs() < 1e-9));
    }

    #[test]
    fn diagonal_excess_is_detected() {
        // Laplacian of a single edge plus +3 on vertex 0's diagonal.
        let a =
            CsrMatrix::from_triplets(2, &[(0, 0, 4.0), (1, 1, 1.0), (0, 1, -1.0), (1, 0, -1.0)]);
        let (h, excess) = graph_from_sdd(&a, 1e-12).unwrap();
        assert_eq!(h.m(), 1);
        assert!((excess[0] - 3.0).abs() < 1e-12);
        assert!(excess[1].abs() < 1e-12);
    }

    #[test]
    fn positive_offdiagonal_requires_gadget() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 2.0), (1, 1, 2.0), (0, 1, 1.0), (1, 0, 1.0)]);
        assert!(is_sdd(&a, 1e-12));
        assert!(graph_from_sdd(&a, 1e-12).is_err());
    }
}
