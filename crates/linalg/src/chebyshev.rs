//! Chebyshev semi-iteration.
//!
//! Given two-sided eigenvalue bounds `[λ_lo, λ_hi]` for a symmetric positive-definite
//! operator, Chebyshev iteration reaches a fixed accuracy in `O(√(λ_hi/λ_lo))`
//! applications of the operator *without inner products* — which is why the
//! Peng–Spielman framework (and parallel solvers generally) prefer it over CG at the
//! inner levels: it is a fixed linear operator in the right-hand side and needs no
//! global reductions. The chain in `sgs-solver` uses fixed Jacobi sweeps for the same
//! reason; Chebyshev is provided here both as an alternative base-case smoother and as a
//! reference iterative method for the solver experiments.

use crate::cg::LinearOperator;
use crate::vector;

/// Result of a Chebyshev run.
#[derive(Debug, Clone)]
pub struct ChebyshevOutcome {
    /// The computed approximate solution.
    pub solution: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
}

/// Runs `iterations` steps of Chebyshev semi-iteration for `A x = b`, assuming the
/// spectrum of `A` (restricted to the relevant subspace) lies in `[lambda_lo,
/// lambda_hi]`.
///
/// The iterate is a fixed polynomial in `A` applied to `b`, so the map `b ↦ x` is linear
/// — safe to use as a preconditioner inside non-flexible PCG.
pub fn chebyshev_solve<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    lambda_lo: f64,
    lambda_hi: f64,
    iterations: usize,
) -> ChebyshevOutcome {
    assert!(
        lambda_lo > 0.0 && lambda_hi >= lambda_lo,
        "need 0 < lambda_lo <= lambda_hi"
    );
    let n = a.dim();
    assert_eq!(b.len(), n);
    // Standard three-term Chebyshev recurrence (see e.g. "Templates for the Solution of
    // Linear Systems", §2.3.6): theta/delta are the midpoint and half-width of the
    // spectral interval, sigma its inverse aspect ratio.
    let theta = 0.5 * (lambda_hi + lambda_lo);
    let delta = 0.5 * (lambda_hi - lambda_lo).max(1e-300 * theta);
    let sigma = theta / delta;

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut d: Vec<f64> = r.iter().map(|ri| ri / theta).collect();
    let mut rho_prev = 1.0 / sigma;
    let mut ax = vec![0.0; n];

    for k in 0..iterations {
        vector::axpy(1.0, &d, &mut x);
        a.apply_into(&x, &mut ax);
        for (ri, (bi, axi)) in r.iter_mut().zip(b.iter().zip(&ax)) {
            *ri = bi - axi;
        }
        if k + 1 == iterations {
            break;
        }
        let rho = 1.0 / (2.0 * sigma - rho_prev);
        for (di, ri) in d.iter_mut().zip(&r) {
            *di = rho * rho_prev * *di + (2.0 * rho / delta) * ri;
        }
        rho_prev = rho;
    }
    let b_norm = vector::norm2(b).max(1e-300);
    let relative_residual = vector::norm2(&r) / b_norm;
    ChebyshevOutcome {
        solution: x,
        iterations,
        relative_residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{cg_solve, CgConfig};
    use crate::csr::CsrMatrix;
    use crate::eigen::{power_method, smallest_nonzero_eigenvalue};
    use sgs_graph::generators;

    /// Build a strictly positive-definite test operator: Laplacian plus identity.
    fn spd_operator(n: usize) -> CsrMatrix {
        let g = generators::cycle(n, 1.0);
        let mut triplets = Vec::new();
        let deg = g.weighted_degrees();
        for (i, d) in deg.iter().enumerate() {
            triplets.push((i, i, d + 1.0));
        }
        for e in g.edges() {
            triplets.push((e.u, e.v, -e.w));
            triplets.push((e.v, e.u, -e.w));
        }
        CsrMatrix::from_triplets(n, &triplets)
    }

    #[test]
    fn chebyshev_converges_with_correct_bounds() {
        let a = spd_operator(50);
        // Spectrum of L(C_n) + I lies in [1, 5].
        let b: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.41).sin()).collect();
        let out = chebyshev_solve(&a, &b, 1.0, 5.0, 60);
        assert!(
            out.relative_residual < 1e-6,
            "residual {}",
            out.relative_residual
        );
        // Agrees with CG.
        let cg = cg_solve(
            &a,
            &b,
            &CgConfig {
                project_ones: false,
                ..CgConfig::default()
            },
        );
        for (x, y) in out.solution.iter().zip(&cg.solution) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn residual_decreases_with_more_iterations() {
        let a = spd_operator(80);
        let b: Vec<f64> = (0..80)
            .map(|i| if i % 3 == 0 { 1.0 } else { -0.5 })
            .collect();
        let r10 = chebyshev_solve(&a, &b, 1.0, 5.0, 10).relative_residual;
        let r40 = chebyshev_solve(&a, &b, 1.0, 5.0, 40).relative_residual;
        assert!(r40 < r10);
    }

    #[test]
    fn map_is_linear_in_the_right_hand_side() {
        let a = spd_operator(40);
        let b1: Vec<f64> = (0..40).map(|i| (i as f64).cos()).collect();
        let b2: Vec<f64> = (0..40).map(|i| ((i * i) as f64 % 7.0) - 3.0).collect();
        let combo: Vec<f64> = b1
            .iter()
            .zip(&b2)
            .map(|(x, y)| 1.5 * x - 0.25 * y)
            .collect();
        let x1 = chebyshev_solve(&a, &b1, 1.0, 5.0, 15).solution;
        let x2 = chebyshev_solve(&a, &b2, 1.0, 5.0, 15).solution;
        let xc = chebyshev_solve(&a, &combo, 1.0, 5.0, 15).solution;
        for i in 0..40 {
            let lin = 1.5 * x1[i] - 0.25 * x2[i];
            assert!((xc[i] - lin).abs() < 1e-9 * (1.0 + lin.abs()));
        }
    }

    #[test]
    fn works_with_estimated_eigenvalue_bounds() {
        let a = spd_operator(60);
        let hi = power_method(&a, 300, 1e-8, 3).value * 1.05;
        // The operator is PD; reuse the smallest-eigenvalue estimator (the all-ones
        // deflation inside it is harmless for a non-singular operator whose smallest
        // eigenvector is not the constant vector; for safety take a conservative floor).
        let lo = smallest_nonzero_eigenvalue(&a, 100, 1e-8, 5).value.max(0.5) * 0.9;
        let b: Vec<f64> = (0..60).map(|i| ((i % 5) as f64) - 2.0).collect();
        let out = chebyshev_solve(&a, &b, lo, hi, 80);
        assert!(
            out.relative_residual < 1e-4,
            "residual {}",
            out.relative_residual
        );
    }

    #[test]
    #[should_panic(expected = "lambda_lo")]
    fn rejects_bad_bounds() {
        let a = spd_operator(10);
        let _ = chebyshev_solve(&a, &[1.0; 10], 0.0, 1.0, 5);
    }
}
