//! Conjugate gradient and preconditioned conjugate gradient solvers.
//!
//! Laplacian systems are symmetric positive *semi*-definite with null space `span{1}`
//! (for connected graphs). The solvers therefore optionally project right-hand side and
//! iterates against the all-ones vector; with that projection CG behaves exactly as on a
//! positive-definite system restricted to the orthogonal complement.

use crate::csr::CsrMatrix;
use crate::vector;
use sgs_graph::Graph;

/// An abstract symmetric linear operator `y = A x`.
///
/// The trait lets the same CG implementation run on explicit CSR matrices, implicit
/// graph Laplacians, and the composite operators (`D − A D⁻¹ A`) used by the
/// Peng–Spielman chain without ever materialising them.
pub trait LinearOperator: Sync {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Computes `y = A x`.
    fn apply_into(&self, x: &[f64], y: &mut [f64]);
    /// Convenience allocation wrapper around [`LinearOperator::apply_into`].
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply_into(x, &mut y);
        y
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n()
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::apply_into(self, x, y)
    }
}

/// Wraps a graph as the linear operator of its Laplacian, applied edge-by-edge without
/// building a matrix.
pub struct GraphLaplacianOp<'a> {
    graph: &'a Graph,
}

impl<'a> GraphLaplacianOp<'a> {
    /// Creates the operator view.
    pub fn new(graph: &'a Graph) -> Self {
        GraphLaplacianOp { graph }
    }
}

impl LinearOperator for GraphLaplacianOp<'_> {
    fn dim(&self) -> usize {
        self.graph.n()
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        // Allocation-free: one CG iteration per edge solve used to allocate a fresh
        // n-vector here, which dominated the resistance estimator's profile.
        self.graph.laplacian_apply_into(x, y);
    }
}

/// A preconditioner: an approximation of `A⁻¹` applied as `z = M⁻¹ r`.
pub trait Preconditioner: Sync {
    /// Applies the preconditioner to `r`, writing the result into `z`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// The identity preconditioner (plain CG).
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner `M = diag(A)`.
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from a matrix diagonal; zero diagonal entries map to 1.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let inv_diag = diag
            .iter()
            .map(|&d| if d.abs() > 1e-300 { 1.0 / d } else { 1.0 })
            .collect();
        JacobiPreconditioner { inv_diag }
    }

    /// Builds the preconditioner for a graph Laplacian (weighted degrees).
    pub fn for_graph(g: &Graph) -> Self {
        Self::from_diagonal(&g.weighted_degrees())
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Configuration for the CG / PCG solvers.
#[derive(Debug, Clone)]
pub struct CgConfig {
    /// Relative residual tolerance `‖r‖ / ‖b‖`.
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// If true, the right-hand side and every iterate are projected orthogonal to the
    /// all-ones vector (required for singular Laplacian systems).
    pub project_ones: bool,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            tolerance: 1e-8,
            max_iterations: 10_000,
            project_ones: true,
        }
    }
}

impl CgConfig {
    /// Config with a custom tolerance, keeping the other defaults.
    pub fn with_tolerance(tolerance: f64) -> Self {
        CgConfig {
            tolerance,
            ..Default::default()
        }
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Enables or disables the all-ones projection.
    pub fn project_ones(mut self, project: bool) -> Self {
        self.project_ones = project;
        self
    }
}

/// Result of a CG / PCG solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The computed solution.
    pub solution: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached within the iteration cap.
    pub converged: bool,
}

/// Statistics of a scratch-based solve ([`pcg_solve_in`]); the solution stays
/// in the scratch's buffers.
#[derive(Debug, Clone)]
pub struct CgStats {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A x‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached within the iteration cap.
    pub converged: bool,
}

/// Reusable workspace for [`pcg_solve_in`] / [`cg_solve_in`].
///
/// A CG solve needs six `n`-vectors of scratch; callers that solve many
/// systems of the same size (one per edge in the effective-resistance
/// computation, one per projection row in the Johnson–Lindenstrauss
/// estimator) allocate one `CgScratch` per worker — e.g. through rayon's
/// `map_init` — instead of six fresh vectors per solve.
#[derive(Debug, Clone)]
pub struct CgScratch {
    x: Vec<f64>,
    b: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgScratch {
    /// Allocates a workspace for systems of dimension `n`.
    pub fn new(n: usize) -> Self {
        CgScratch {
            x: vec![0.0; n],
            b: vec![0.0; n],
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
        }
    }

    /// The solution vector of the most recent solve through this scratch.
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    fn resize(&mut self, n: usize) {
        self.x.resize(n, 0.0);
        self.b.resize(n, 0.0);
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
    }
}

/// Solves `A x = b` with plain conjugate gradient.
pub fn cg_solve<A: LinearOperator + ?Sized>(a: &A, b: &[f64], cfg: &CgConfig) -> CgOutcome {
    pcg_solve(a, &IdentityPreconditioner, b, cfg)
}

/// Solves `A x = b` with plain CG, keeping every intermediate in `scratch`.
/// The solution is left in [`CgScratch::solution`].
pub fn cg_solve_in<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    cfg: &CgConfig,
    scratch: &mut CgScratch,
) -> CgStats {
    pcg_solve_in(a, &IdentityPreconditioner, b, cfg, scratch)
}

/// Solves `A x = b` with preconditioned conjugate gradient.
pub fn pcg_solve<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    cfg: &CgConfig,
) -> CgOutcome {
    let mut scratch = CgScratch::new(a.dim());
    let stats = pcg_solve_in(a, m, b, cfg, &mut scratch);
    CgOutcome {
        solution: scratch.x,
        iterations: stats.iterations,
        relative_residual: stats.relative_residual,
        converged: stats.converged,
    }
}

/// Solves `A x = b` with PCG using caller-provided scratch buffers — the
/// allocation-free core of [`pcg_solve`]. The solution is left in
/// [`CgScratch::solution`]; `b` itself is not modified.
pub fn pcg_solve_in<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    cfg: &CgConfig,
    scratch: &mut CgScratch,
) -> CgStats {
    let n = a.dim();
    assert_eq!(b.len(), n, "dimension mismatch");
    scratch.resize(n);
    let CgScratch {
        x,
        b: rhs,
        r,
        z,
        p,
        ap,
    } = scratch;
    rhs.copy_from_slice(b);
    if cfg.project_ones {
        vector::project_out_ones(rhs);
    }
    let b_norm = vector::norm2(rhs);
    if b_norm == 0.0 {
        x.fill(0.0);
        return CgStats {
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        };
    }

    x.fill(0.0);
    r.copy_from_slice(rhs);
    m.apply(r, z);
    if cfg.project_ones {
        vector::project_out_ones(z);
    }
    p.copy_from_slice(z);
    let mut rz = vector::dot(r, z);
    let mut iterations = 0;

    for _ in 0..cfg.max_iterations {
        iterations += 1;
        a.apply_into(p, ap);
        let pap = vector::dot(p, ap);
        if pap <= 0.0 || !pap.is_finite() {
            break;
        }
        let alpha = rz / pap;
        vector::axpy2(alpha, p, x, -alpha, ap, r);
        if cfg.project_ones {
            vector::project_out_ones(r);
        }
        let r_norm = vector::norm2(r);
        // Per-iteration residual trajectory, emitted only inside a trace scope:
        // the JL resistance estimator runs many of these solves under `par_iter`,
        // and only sequential top-level callers (the SDD solver) opt in, which
        // keeps the event stream a pure function of the input.
        if sgs_obs::in_scope() {
            sgs_obs::point!(
                "pcg.iter",
                iter = iterations,
                rel_residual = r_norm / b_norm,
            );
        }
        if r_norm / b_norm <= cfg.tolerance {
            break;
        }
        m.apply(r, z);
        if cfg.project_ones {
            vector::project_out_ones(z);
        }
        let rz_new = vector::dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
    }

    // Recompute the true residual for honest reporting, reusing `ap` for
    // `A x` and accumulating `‖b − A x‖` without a residual vector.
    a.apply_into(x, ap);
    let res_sq: f64 = rhs
        .iter()
        .zip(ap.iter())
        .map(|(bi, axi)| (bi - axi) * (bi - axi))
        .sum();
    let relative_residual = res_sq.sqrt() / b_norm;
    CgStats {
        converged: relative_residual <= cfg.tolerance * 10.0,
        iterations,
        relative_residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    #[test]
    fn cg_solves_laplacian_system_on_path() {
        let g = generators::path(10, 1.0);
        let l = CsrMatrix::laplacian(&g);
        let mut b = vec![0.0; 10];
        b[0] = 1.0;
        b[9] = -1.0;
        let out = cg_solve(&l, &b, &CgConfig::default());
        assert!(out.converged, "residual {}", out.relative_residual);
        // Potential difference across a unit path of 9 edges = 9 (effective resistance).
        let er = out.solution[0] - out.solution[9];
        assert!((er - 9.0).abs() < 1e-5, "er = {er}");
    }

    #[test]
    fn graph_operator_matches_matrix_operator() {
        let g = generators::grid2d(6, 6, 1.0);
        let l = CsrMatrix::laplacian(&g);
        let op = GraphLaplacianOp::new(&g);
        let mut b = vec![0.0; g.n()];
        b[0] = 2.0;
        b[g.n() - 1] = -2.0;
        let cfg = CgConfig::default();
        let x1 = cg_solve(&l, &b, &cfg).solution;
        let x2 = cg_solve(&op, &b, &cfg).solution;
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn jacobi_preconditioner_reduces_iterations_on_badly_scaled_graph() {
        // A star with wildly varying weights is poorly conditioned for plain CG.
        let mut g = sgs_graph::Graph::new(50);
        for i in 1..50 {
            g.add_edge(0, i, if i % 2 == 0 { 1e4 } else { 1e-2 })
                .unwrap();
        }
        let l = CsrMatrix::laplacian(&g);
        let mut b = vec![0.0; 50];
        b[1] = 1.0;
        b[2] = -1.0;
        let cfg = CgConfig::with_tolerance(1e-10);
        let plain = cg_solve(&l, &b, &cfg);
        let jacobi = pcg_solve(&l, &JacobiPreconditioner::for_graph(&g), &b, &cfg);
        assert!(jacobi.converged);
        assert!(
            jacobi.iterations <= plain.iterations,
            "jacobi {} vs plain {}",
            jacobi.iterations,
            plain.iterations
        );
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let g = generators::cycle(8, 1.0);
        let l = CsrMatrix::laplacian(&g);
        let out = cg_solve(&l, &[0.0; 8], &CgConfig::default());
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
        assert!(out.solution.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn constant_rhs_is_projected_to_zero() {
        // b = ones is entirely in the null space; the projected system is 0 = 0.
        let g = generators::cycle(8, 1.0);
        let l = CsrMatrix::laplacian(&g);
        let out = cg_solve(&l, &[3.0; 8], &CgConfig::default());
        assert!(out.converged);
        assert!(vector::norm2(&out.solution) < 1e-10);
    }

    #[test]
    fn respects_iteration_cap() {
        let g = generators::grid2d(20, 20, 1.0);
        let l = CsrMatrix::laplacian(&g);
        let mut b = vec![0.0; g.n()];
        b[0] = 1.0;
        b[g.n() - 1] = -1.0;
        let cfg = CgConfig {
            tolerance: 1e-14,
            max_iterations: 3,
            project_ones: true,
        };
        let out = cg_solve(&l, &b, &cfg);
        assert_eq!(out.iterations, 3);
        assert!(!out.converged);
    }

    #[test]
    fn cg_iteration_count_grows_with_condition_number() {
        // Plain CG on a path (condition number ~ n^2) needs more iterations than on an
        // expander-ish random regular graph of the same size.
        let path = generators::path(200, 1.0);
        let exp = generators::random_regular(200, 6, 1.0, 5);
        let cfg = CgConfig::with_tolerance(1e-8);
        let mut b = vec![0.0; 200];
        b[0] = 1.0;
        b[199] = -1.0;
        let it_path = cg_solve(&CsrMatrix::laplacian(&path), &b, &cfg).iterations;
        let it_exp = cg_solve(&CsrMatrix::laplacian(&exp), &b, &cfg).iterations;
        assert!(it_path > it_exp, "path {it_path} vs expander {it_exp}");
    }
}
