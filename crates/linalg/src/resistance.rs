//! Effective resistances: exact and approximate.
//!
//! The effective resistance `R_e[G]` of an edge `e = (u, v)` is the potential difference
//! needed to drive one unit of current from `u` to `v` (Section 2 of the paper). The
//! leverage score `w_e · R_e[G]` drives every resistance-based sparsification scheme:
//!
//! * the Spielman–Srivastava baseline samples edges proportionally to approximate
//!   leverage scores obtained from `O(log n)` Laplacian solves (implemented here as
//!   [`approx_effective_resistances`]);
//! * the paper's bundle certificate (Lemma 1) upper-bounds `w_e R_e[G]` by `log n / t`
//!   for every off-bundle edge — the experiments validate that bound against the exact
//!   values computed by [`exact_effective_resistances`].

use rayon::prelude::*;

use sgs_graph::Graph;

use crate::cg::{cg_solve_in, CgConfig, CgScratch, GraphLaplacianOp};
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::vector;

/// Below this vertex count the exact computation uses one dense Cholesky factorization;
/// above it, one CG solve per edge (parallelised over edges).
const DENSE_LIMIT: usize = 600;

/// Computes the exact effective resistance of every edge of `g`.
///
/// The graph must be connected. Complexity is `O(n³ + m n)` in the dense regime and
/// `O(m · cg)` above [`DENSE_LIMIT`] vertices.
pub fn exact_effective_resistances(g: &Graph) -> Vec<f64> {
    assert!(
        sgs_graph::connectivity::is_connected(g),
        "effective resistances require a connected graph"
    );
    if g.n() <= DENSE_LIMIT {
        exact_dense(g)
    } else {
        exact_cg(g)
    }
}

fn exact_dense(g: &Graph) -> Vec<f64> {
    let n = g.n();
    let l = DenseMatrix::from_csr(&CsrMatrix::laplacian(g));
    // Pseudo-inverse action: solve L x = (e_u - e_v) for every distinct vertex that
    // appears, reusing the Cholesky factor of the regularized matrix.
    let mut reg = l.clone();
    let shift = 1.0 / n as f64;
    for r in 0..n {
        for c in 0..n {
            reg.add_to(r, c, shift);
        }
    }
    let chol = reg
        .cholesky()
        .expect("regularized Laplacian of a connected graph is positive definite");
    // Solve for the columns of L^+ we actually need: one per vertex appearing in edges.
    let mut need = vec![false; n];
    for e in g.edges() {
        need[e.u] = true;
        need[e.v] = true;
    }
    let cols: Vec<Option<Vec<f64>>> = (0..n)
        .into_par_iter()
        .map(|v| {
            if !need[v] {
                return None;
            }
            let mut b = vec![0.0; n];
            b[v] = 1.0;
            vector::project_out_ones(&mut b);
            let mut x = chol.solve(&b);
            vector::project_out_ones(&mut x);
            Some(x)
        })
        .collect();
    g.edges()
        .iter()
        .map(|e| {
            let cu = cols[e.u].as_ref().expect("column computed");
            let cv = cols[e.v].as_ref().expect("column computed");
            // R_uv = L^+[u,u] - 2 L^+[u,v] + L^+[v,v]
            (cu[e.u] - cu[e.v]) - (cv[e.u] - cv[e.v])
        })
        .collect()
}

fn exact_cg(g: &Graph) -> Vec<f64> {
    let op = GraphLaplacianOp::new(g);
    let cfg = CgConfig {
        tolerance: 1e-9,
        max_iterations: 50 * g.n(),
        project_ones: true,
    };
    let n = g.n();
    // One RHS buffer and one CG workspace per executor chunk (not per edge):
    // the RHS has exactly two nonzeros, so it is reset in O(1) after each
    // solve instead of being reallocated.
    g.edges()
        .par_iter()
        .map_init(
            || (vec![0.0; n], CgScratch::new(n)),
            |(b, scratch), e| {
                b[e.u] = 1.0;
                b[e.v] = -1.0;
                cg_solve_in(&op, b, &cfg, scratch);
                let x = scratch.solution();
                let resistance = x[e.u] - x[e.v];
                b[e.u] = 0.0;
                b[e.v] = 0.0;
                resistance
            },
        )
        .collect()
}

/// Approximate effective resistances via the Spielman–Srivastava random-projection
/// scheme: `R_e ≈ ‖Z (e_u − e_v)‖²` where `Z = Q W^{1/2} B L⁺` and `Q` has `k` rows of
/// scaled ±1 entries. `k = ⌈jl_factor · log₂ n⌉` Laplacian solves are performed.
///
/// Returns per-edge estimates that are within `(1 ± δ)` of the truth with high
/// probability for `jl_factor = O(1/δ²)`.
pub fn approx_effective_resistances(g: &Graph, jl_factor: f64, seed: u64) -> Vec<f64> {
    assert!(
        sgs_graph::connectivity::is_connected(g),
        "effective resistances require a connected graph"
    );
    let n = g.n();
    let k = ((jl_factor * (n.max(2) as f64).log2()).ceil() as usize).max(1);
    let opts = ResistanceOptions {
        rows: k,
        tolerance: 1e-8,
        max_iterations: 50 * n,
        seed,
        parallel: true,
    };
    let mut out = Vec::new();
    approx_effective_resistances_in(g, &opts, &mut ResistanceScratch::new(), &mut out);
    out
}

/// Knobs of the scratch-reusing resistance estimator
/// [`approx_effective_resistances_in`].
///
/// Unlike the `jl_factor` convenience wrapper, `rows` is the *absolute* number of
/// projection rows (= Laplacian solves): batch callers such as the leverage-aware
/// sampling strategy in `sgs-core` pick a small fixed row count and a loose CG
/// tolerance, trading per-edge accuracy for speed — the sampled leverage scores only
/// steer probabilities, they are not a certificate.
#[derive(Debug, Clone)]
pub struct ResistanceOptions {
    /// Number of random-projection rows, i.e. CG solves (`k` of Spielman–Srivastava).
    pub rows: usize,
    /// CG relative-residual tolerance per solve.
    pub tolerance: f64,
    /// CG iteration cap per solve.
    pub max_iterations: usize,
    /// Seed of the ±1 projection draws.
    pub seed: u64,
    /// Run the rows and the per-edge accumulation under rayon.
    pub parallel: bool,
}

/// Reusable workspace of [`approx_effective_resistances_in`]: the `k × n` projection
/// rows. Construction is free; the first call sizes it and later calls on graphs of
/// similar size reuse the allocations.
#[derive(Debug, Default)]
pub struct ResistanceScratch {
    zs: Vec<Vec<f64>>,
}

impl ResistanceScratch {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> ResistanceScratch {
        ResistanceScratch::default()
    }
}

/// Scratch-reusing [`approx_effective_resistances`] that also accepts **disconnected**
/// graphs, writing one estimate per edge into `out` (resized to `g.m()`).
///
/// Connectivity is not required because every projection RHS `y = Bᵀ W^{1/2} q` is
/// balanced *per connected component* (each edge contributes `±val` to two endpoints
/// of the same component), so it is orthogonal to the Laplacian null space and the CG
/// iterates stay component-balanced; the potential difference `z[u] − z[v]` is then
/// well-defined for every edge, whose endpoints share a component by definition. The
/// merge-and-reduce tree of `sgs-stream` relies on this: leaf slices of an edge stream
/// are routinely disconnected.
///
/// For a fixed seed the output is bitwise identical across thread counts *and* across
/// `parallel` on/off — rows and per-edge accumulations are independent, and no
/// cross-edge reduction is performed.
pub fn approx_effective_resistances_in(
    g: &Graph,
    opts: &ResistanceOptions,
    scratch: &mut ResistanceScratch,
    out: &mut Vec<f64>,
) {
    let n = g.n();
    let m = g.m();
    out.clear();
    out.resize(m, 0.0);
    if m == 0 {
        return;
    }
    let k = opts.rows.max(1);
    let op = GraphLaplacianOp::new(g);
    let cfg = CgConfig {
        tolerance: opts.tolerance,
        max_iterations: opts.max_iterations,
        project_ones: true,
    };

    // For each projection row i: y_i = Bᵀ W^{1/2} q_i  (an n-vector), z_i = L⁺ y_i.
    // Rows live in the caller's scratch; the RHS accumulator, the ±1 draw and the CG
    // workspace are reused across the rows of one executor chunk.
    scratch.zs.resize_with(k, Vec::new);
    for z in scratch.zs.iter_mut() {
        z.clear();
        z.resize(n, 0.0);
    }
    let fill_row =
        |y: &mut Vec<f64>, q: &mut Vec<f64>, cg: &mut CgScratch, i: usize, z: &mut [f64]| {
            y.fill(0.0);
            vector::rademacher_in(opts.seed.wrapping_add(i as u64).wrapping_mul(0x9E37), q);
            for (j, e) in g.edges().iter().enumerate() {
                let val = q[j] * e.w.sqrt();
                y[e.u] += val;
                y[e.v] -= val;
            }
            cg_solve_in(&op, y, &cfg, cg);
            z.copy_from_slice(cg.solution());
        };
    if opts.parallel {
        scratch.zs[..k]
            .par_iter_mut()
            .enumerate()
            .map_init(
                || (vec![0.0; n], vec![0.0; m], CgScratch::new(n)),
                |(y, q, cg), (i, z)| fill_row(y, q, cg, i, z),
            )
            .count();
    } else {
        let (mut y, mut q, mut cg) = (vec![0.0; n], vec![0.0; m], CgScratch::new(n));
        for (i, z) in scratch.zs[..k].iter_mut().enumerate() {
            fill_row(&mut y, &mut q, &mut cg, i, z);
        }
    }

    let zs = &scratch.zs[..k];
    let scale = 1.0 / k as f64;
    let estimate = |j: usize| -> f64 {
        let e = g.edge(j);
        let mut acc = 0.0;
        for z in zs {
            let d = z[e.u] - z[e.v];
            acc += d * d;
        }
        acc * scale
    };
    if opts.parallel {
        // Each estimate is k multiply-adds; batch the per-edge dispatch so the ER
        // sampling strategy and `resparsify_er` stop paying per-item overhead.
        out.par_iter_mut()
            .enumerate()
            .with_min_len(256)
            .for_each(|(j, r)| *r = estimate(j));
    } else {
        for (j, r) in out.iter_mut().enumerate() {
            *r = estimate(j);
        }
    }
}

/// Sum of leverage scores `Σ_e w_e R_e[G]`; equals `n − 1` exactly for a connected
/// graph, a classical identity used as a sanity check in tests and experiments.
pub fn total_leverage(g: &Graph, resistances: &[f64]) -> f64 {
    g.edges()
        .iter()
        .zip(resistances)
        .map(|(e, r)| e.w * r)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    #[test]
    fn path_resistances_are_series_sums() {
        let g = generators::path(5, 2.0); // each edge resistance 0.5
        let r = exact_effective_resistances(&g);
        for v in &r {
            assert!((v - 0.5).abs() < 1e-8);
        }
    }

    #[test]
    fn parallel_edges_halve_resistance() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(0, 1, 1.0).unwrap();
        let r = exact_effective_resistances(&g);
        assert!((r[0] - 0.5).abs() < 1e-8);
        assert!((r[1] - 0.5).abs() < 1e-8);
    }
    use sgs_graph::Graph;

    #[test]
    fn complete_graph_resistance_is_two_over_n() {
        let n = 9;
        let g = generators::complete(n, 1.0);
        let r = exact_effective_resistances(&g);
        for v in &r {
            assert!((v - 2.0 / n as f64).abs() < 1e-8, "r = {v}");
        }
    }

    #[test]
    fn cycle_resistance_matches_series_parallel_formula() {
        let n = 10;
        let g = generators::cycle(n, 1.0);
        let r = exact_effective_resistances(&g);
        let expected = (1.0 * (n - 1) as f64) / n as f64; // 1 || (n-1)
        for v in &r {
            assert!((v - expected).abs() < 1e-8);
        }
    }

    #[test]
    fn total_leverage_is_n_minus_one() {
        let g = generators::erdos_renyi_weighted(60, 0.25, 0.5, 3.0, 13);
        assert!(sgs_graph::connectivity::is_connected(&g));
        let r = exact_effective_resistances(&g);
        let total = total_leverage(&g, &r);
        assert!(
            (total - (g.n() as f64 - 1.0)).abs() < 1e-5,
            "total = {total}"
        );
    }

    #[test]
    fn cg_and_dense_paths_agree() {
        let g = generators::grid2d(8, 8, 1.0);
        let dense = exact_dense(&g);
        let cg = exact_cg(&g);
        for (a, b) in dense.iter().zip(&cg) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn approximate_resistances_track_exact_values() {
        let g = generators::erdos_renyi(80, 0.15, 1.0, 21);
        assert!(sgs_graph::connectivity::is_connected(&g));
        let exact = exact_effective_resistances(&g);
        let approx = approx_effective_resistances(&g, 10.0, 5);
        let mut worst: f64 = 0.0;
        for (a, b) in exact.iter().zip(&approx) {
            worst = worst.max((a - b).abs() / a);
        }
        assert!(worst < 0.75, "worst relative error {worst}");
        // The *sum* concentrates much better than individual entries.
        let sum_exact: f64 = exact.iter().sum();
        let sum_approx: f64 = approx.iter().sum();
        assert!((sum_exact - sum_approx).abs() / sum_exact < 0.15);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_panics() {
        let g = Graph::from_tuples(4, vec![(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let _ = exact_effective_resistances(&g);
    }

    #[test]
    fn scratch_estimator_matches_wrapper_bitwise() {
        let g = generators::erdos_renyi(80, 0.15, 1.0, 21);
        let n = g.n();
        let k = ((10.0 * (n as f64).log2()).ceil() as usize).max(1);
        let wrapper = approx_effective_resistances(&g, 10.0, 5);
        let opts = ResistanceOptions {
            rows: k,
            tolerance: 1e-8,
            max_iterations: 50 * n,
            seed: 5,
            parallel: true,
        };
        let mut scratch = ResistanceScratch::new();
        let mut out = Vec::new();
        approx_effective_resistances_in(&g, &opts, &mut scratch, &mut out);
        assert_eq!(wrapper.len(), out.len());
        for (a, b) in wrapper.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Sequential mode is bitwise identical too (per-row and per-edge math are
        // independent; no cross-edge float reduction exists in the estimator).
        let seq_opts = ResistanceOptions {
            parallel: false,
            ..opts
        };
        let mut seq = Vec::new();
        approx_effective_resistances_in(&g, &seq_opts, &mut scratch, &mut seq);
        for (a, b) in out.iter().zip(&seq) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scratch_estimator_handles_disconnected_graphs_per_component() {
        // Two disjoint 3-paths: each edge's resistance within its component must match
        // the exact value computed on that component alone.
        let g = Graph::from_tuples(
            8,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (4, 5, 2.0),
                (5, 6, 2.0),
                (6, 7, 2.0),
            ],
        )
        .unwrap();
        let opts = ResistanceOptions {
            rows: 96,
            tolerance: 1e-10,
            max_iterations: 2000,
            seed: 11,
            parallel: true,
        };
        let mut out = Vec::new();
        approx_effective_resistances_in(&g, &opts, &mut ResistanceScratch::new(), &mut out);
        // Path edges are in series: R = 1/w exactly.
        for (e, r) in g.edges().iter().zip(&out) {
            let exact = 1.0 / e.w;
            assert!(
                (r - exact).abs() / exact < 0.6,
                "edge ({}, {}): estimate {r} vs exact {exact}",
                e.u,
                e.v
            );
        }
    }

    #[test]
    fn scratch_is_reusable_across_graph_sizes() {
        let mut scratch = ResistanceScratch::new();
        let mut out = Vec::new();
        let opts = ResistanceOptions {
            rows: 12,
            tolerance: 1e-8,
            max_iterations: 2000,
            seed: 3,
            parallel: true,
        };
        for g in [
            generators::erdos_renyi(60, 0.2, 1.0, 1),
            generators::erdos_renyi(120, 0.1, 1.0, 2),
            generators::grid2d(6, 6, 1.0),
        ] {
            approx_effective_resistances_in(&g, &opts, &mut scratch, &mut out);
            let mut fresh = Vec::new();
            approx_effective_resistances_in(&g, &opts, &mut ResistanceScratch::new(), &mut fresh);
            assert_eq!(out.len(), g.m());
            for (a, b) in out.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "reused scratch must not leak");
            }
        }
    }

    #[test]
    fn rayleigh_monotonicity_adding_edges_lowers_resistance() {
        let base = generators::cycle(12, 1.0);
        let denser = {
            let mut g = base.clone();
            g.add_edge(0, 6, 1.0).unwrap();
            g.add_edge(3, 9, 1.0).unwrap();
            g
        };
        let r_base = exact_effective_resistances(&base);
        // Only compare the first 12 edges, which exist in both graphs.
        let r_dense = exact_effective_resistances(&denser);
        for i in 0..12 {
            assert!(r_dense[i] <= r_base[i] + 1e-9);
        }
    }
}
