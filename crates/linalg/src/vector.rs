//! Dense vector kernels.
//!
//! These are the primitive operations used by every iterative method in the crate. The
//! kernels switch to rayon data parallelism above a size threshold: below it the
//! sequential loop is faster than the fork-join overhead (a standard guideline from the
//! Rust performance literature).

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Vectors shorter than this are processed sequentially.
const PAR_THRESHOLD: usize = 1 << 14;

/// Dot product `xᵀ y`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    } else {
        x.par_iter().zip(y.par_iter()).map(|(a, b)| a * b).sum()
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
}

/// `y ← y + alpha · x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    } else {
        y.par_iter_mut()
            .zip(x.par_iter())
            .for_each(|(yi, xi)| *yi += alpha * xi);
    }
}

/// Fused pair of axpy updates over different targets:
/// `x ← x + alpha · p` and `r ← r + nalpha · ap`, in one pass.
///
/// The CG inner loop runs exactly this pair back to back; fusing them halves the
/// number of sweeps over memory (and fork-joins, above the threshold). Each element
/// update is the same arithmetic as two separate [`axpy`] calls, so results are
/// bitwise identical to the unfused sequence.
pub fn axpy2(alpha: f64, p: &[f64], x: &mut [f64], nalpha: f64, ap: &[f64], r: &mut [f64]) {
    debug_assert_eq!(p.len(), x.len());
    debug_assert_eq!(ap.len(), r.len());
    debug_assert_eq!(x.len(), r.len());
    if x.len() < PAR_THRESHOLD {
        for (((xi, pi), ri), api) in x.iter_mut().zip(p).zip(r.iter_mut()).zip(ap) {
            *xi += alpha * pi;
            *ri += nalpha * api;
        }
    } else {
        x.par_iter_mut()
            .zip(p.par_iter())
            .zip(r.par_iter_mut())
            .zip(ap.par_iter())
            .with_min_len(1 << 12)
            .for_each(|(((xi, pi), ri), api)| {
                *xi += alpha * pi;
                *ri += nalpha * api;
            });
    }
}

/// `x ← alpha · x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    if x.len() < PAR_THRESHOLD {
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    } else {
        x.par_iter_mut().for_each(|xi| *xi *= alpha);
    }
}

/// Returns `x − y` as a new vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Returns `x + y` as a new vector.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Removes the component of `x` along the all-ones vector, i.e. subtracts the mean.
///
/// Laplacians are singular with null space `span{1}`; every solver and eigen-iteration
/// in this crate works in the orthogonal complement, so right-hand sides and iterates
/// are routinely projected with this function.
pub fn project_out_ones(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for xi in x.iter_mut() {
        *xi -= mean;
    }
}

/// A deterministic pseudo-random unit vector orthogonal to the all-ones vector.
pub fn random_unit_orthogonal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    project_out_ones(&mut x);
    let nrm = norm2(&x);
    if nrm > 0.0 {
        scale(1.0 / nrm, &mut x);
    }
    x
}

/// A deterministic vector of independent Rademacher (±1) entries, used by the
/// Spielman–Srivastava random-projection resistance estimator.
pub fn rademacher(n: usize, seed: u64) -> Vec<f64> {
    let mut out = vec![0.0; n];
    rademacher_in(seed, &mut out);
    out
}

/// In-place [`rademacher`]: fills `out` with the same ±1 stream for the same seed,
/// letting batch callers (the engine-scratch resistance estimator) reuse one buffer
/// across draws instead of allocating per projection row.
pub fn rademacher_in(seed: u64, out: &mut [f64]) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for v in out.iter_mut() {
        *v = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = vec![3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0, 6.5]), 7.0);
    }

    #[test]
    fn axpy_scale_add_sub() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0, 18.0]);
        assert_eq!(add(&x, &x), vec![2.0, 4.0, 6.0]);
        assert_eq!(sub(&y, &x), vec![5.0, 10.0, 15.0]);
    }

    #[test]
    fn parallel_paths_match_sequential() {
        let n = PAR_THRESHOLD + 123;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let seq: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - seq).abs() < 1e-6);
        let mut y1 = y.clone();
        let mut y2 = y.clone();
        axpy(1.5, &x, &mut y1);
        for (yi, xi) in y2.iter_mut().zip(&x) {
            *yi += 1.5 * xi;
        }
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn axpy2_is_bitwise_two_axpys() {
        for n in [37usize, PAR_THRESHOLD + 55] {
            let p: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let ap: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
            let x0: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
            let r0: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 * 0.02).collect();
            let (mut x1, mut r1) = (x0.clone(), r0.clone());
            axpy2(0.375, &p, &mut x1, -0.375, &ap, &mut r1);
            let (mut x2, mut r2) = (x0, r0);
            axpy(0.375, &p, &mut x2);
            axpy(-0.375, &ap, &mut r2);
            for (a, b) in x1.iter().zip(&x2).chain(r1.iter().zip(&r2)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn projection_removes_mean() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        project_out_ones(&mut x);
        assert!(x.iter().sum::<f64>().abs() < 1e-12);
        let mut empty: Vec<f64> = vec![];
        project_out_ones(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn random_unit_orthogonal_properties() {
        let x = random_unit_orthogonal(100, 3);
        assert!((norm2(&x) - 1.0).abs() < 1e-10);
        assert!(x.iter().sum::<f64>().abs() < 1e-10);
        let y = random_unit_orthogonal(100, 3);
        assert_eq!(x, y, "same seed must give same vector");
        let z = random_unit_orthogonal(100, 4);
        assert_ne!(x, z);
    }

    #[test]
    fn rademacher_entries_are_pm_one() {
        let x = rademacher(64, 9);
        assert!(x.iter().all(|&v| v == 1.0 || v == -1.0));
        assert_eq!(x, rademacher(64, 9));
    }
}
