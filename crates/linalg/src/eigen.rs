//! Extreme eigenvalue estimation.
//!
//! The solver and the spectral-certification code need two quantities:
//!
//! * `λ_max(L)` — estimated with power iteration;
//! * `λ_min⁺(L)` — the smallest *non-zero* eigenvalue of a connected Laplacian,
//!   estimated with inverse power iteration where each inverse application is a CG
//!   solve restricted to the complement of the all-ones null space.
//!
//! Their ratio is the (finite) condition number `κ` that drives the chain depth of the
//! Peng–Spielman solver (Section 4 of the paper).

use crate::cg::{cg_solve, CgConfig, LinearOperator};
use crate::vector;

/// Result of an eigenvalue estimation.
#[derive(Debug, Clone, Copy)]
pub struct EigenEstimate {
    /// The estimated eigenvalue.
    pub value: f64,
    /// Number of (outer) iterations performed.
    pub iterations: usize,
}

/// Estimates the largest eigenvalue of a symmetric PSD operator with power iteration,
/// deflating the all-ones direction (appropriate for Laplacians).
pub fn power_method<A: LinearOperator + ?Sized>(
    a: &A,
    max_iterations: usize,
    tolerance: f64,
    seed: u64,
) -> EigenEstimate {
    let n = a.dim();
    let mut x = vector::random_unit_orthogonal(n, seed);
    let mut value = 0.0;
    let mut iterations = 0;
    let mut y = vec![0.0; n];
    for _ in 0..max_iterations {
        iterations += 1;
        a.apply_into(&x, &mut y);
        vector::project_out_ones(&mut y);
        let norm = vector::norm2(&y);
        if norm == 0.0 {
            value = 0.0;
            break;
        }
        let new_value = vector::dot(&x, &y);
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
        if (new_value - value).abs() <= tolerance * new_value.abs().max(1e-300) {
            value = new_value;
            break;
        }
        value = new_value;
    }
    EigenEstimate { value, iterations }
}

/// Estimates the smallest non-zero eigenvalue of a connected Laplacian-like operator by
/// inverse power iteration. Each step solves `A y = x` with CG projected against the
/// all-ones vector.
pub fn smallest_nonzero_eigenvalue<A: LinearOperator + ?Sized>(
    a: &A,
    max_iterations: usize,
    tolerance: f64,
    seed: u64,
) -> EigenEstimate {
    let n = a.dim();
    let mut x = vector::random_unit_orthogonal(n, seed);
    let cg_cfg = CgConfig {
        tolerance: tolerance.min(1e-6) * 1e-2,
        max_iterations: 20 * n + 200,
        project_ones: true,
    };
    let mut inv_value = 0.0f64;
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let out = cg_solve(a, &x, &cg_cfg);
        let mut y = out.solution;
        vector::project_out_ones(&mut y);
        let norm = vector::norm2(&y);
        if norm == 0.0 {
            break;
        }
        // Rayleigh quotient of A⁻¹ at x.
        let new_inv = vector::dot(&x, &y);
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
        if (new_inv - inv_value).abs() <= tolerance * new_inv.abs().max(1e-300) {
            inv_value = new_inv;
            break;
        }
        inv_value = new_inv;
    }
    let value = if inv_value > 0.0 {
        1.0 / inv_value
    } else {
        f64::INFINITY
    };
    EigenEstimate { value, iterations }
}

/// Estimates the finite condition number `κ = λ_max / λ_min⁺` of a connected Laplacian.
pub fn condition_number<A: LinearOperator + ?Sized>(a: &A, seed: u64) -> f64 {
    let hi = power_method(a, 200, 1e-6, seed);
    let lo = smallest_nonzero_eigenvalue(a, 100, 1e-6, seed.wrapping_add(1));
    if lo.value == 0.0 {
        f64::INFINITY
    } else {
        hi.value / lo.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;
    use sgs_graph::generators;

    #[test]
    fn power_method_on_complete_graph() {
        // L(K_n) has eigenvalues {0, n (multiplicity n-1)}.
        let n = 12;
        let g = generators::complete(n, 1.0);
        let l = CsrMatrix::laplacian(&g);
        let est = power_method(&l, 500, 1e-10, 3);
        assert!(
            (est.value - n as f64).abs() < 1e-6,
            "lambda_max = {}",
            est.value
        );
    }

    #[test]
    fn smallest_eigenvalue_of_complete_graph() {
        let n = 10;
        let g = generators::complete(n, 1.0);
        let l = CsrMatrix::laplacian(&g);
        let est = smallest_nonzero_eigenvalue(&l, 100, 1e-8, 5);
        assert!(
            (est.value - n as f64).abs() < 1e-4,
            "lambda_min+ = {}",
            est.value
        );
    }

    #[test]
    fn eigenvalues_of_path_match_closed_form() {
        // Path P_n Laplacian eigenvalues: 2 - 2 cos(k π / n), k = 0..n-1.
        let n = 16usize;
        let g = generators::path(n, 1.0);
        let l = CsrMatrix::laplacian(&g);
        let lam_max = 2.0 - 2.0 * ((n as f64 - 1.0) * std::f64::consts::PI / n as f64).cos();
        let lam_min = 2.0 - 2.0 * (std::f64::consts::PI / n as f64).cos();
        let hi = power_method(&l, 2000, 1e-12, 7);
        let lo = smallest_nonzero_eigenvalue(&l, 300, 1e-10, 11);
        assert!(
            (hi.value - lam_max).abs() / lam_max < 1e-3,
            "{} vs {}",
            hi.value,
            lam_max
        );
        assert!(
            (lo.value - lam_min).abs() / lam_min < 2e-2,
            "{} vs {}",
            lo.value,
            lam_min
        );
    }

    #[test]
    fn condition_number_of_path_grows_quadratically() {
        let k20 = condition_number(&CsrMatrix::laplacian(&generators::path(20, 1.0)), 1);
        let k40 = condition_number(&CsrMatrix::laplacian(&generators::path(40, 1.0)), 1);
        // kappa ~ (2n/pi)^2, so doubling n should roughly quadruple kappa.
        let ratio = k40 / k20;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio = {ratio}");
    }

    #[test]
    fn scaling_the_graph_scales_eigenvalues() {
        let g = generators::cycle(20, 1.0);
        let g4 = sgs_graph::ops::scale(&g, 4.0).unwrap();
        let hi1 = power_method(&CsrMatrix::laplacian(&g), 500, 1e-10, 3).value;
        let hi4 = power_method(&CsrMatrix::laplacian(&g4), 500, 1e-10, 3).value;
        assert!((hi4 / hi1 - 4.0).abs() < 1e-3);
    }
}
