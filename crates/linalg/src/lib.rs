//! # sgs-linalg
//!
//! Sparse linear algebra for the spectral-sparsification suite.
//!
//! The crate provides everything needed to *verify* the paper's spectral claims and to
//! build the SDD solver of Section 4:
//!
//! * [`vector`] — dense vector kernels (dot products, norms, axpy, projection against
//!   the all-ones vector), parallelised with rayon where it pays off.
//! * [`csr`] — a compressed-sparse-row matrix with parallel matrix–vector products.
//! * [`laplacian`] — assembly of graph Laplacians and SDD checks.
//! * [`dense`] — small dense matrices with Cholesky factorization, used as ground truth
//!   on tiny instances.
//! * [`cg`] — conjugate gradient and preconditioned conjugate gradient solvers.
//! * [`eigen`] — power iteration and Lanczos bounds for extreme eigenvalues.
//! * [`spectral`] — certification of `(1 ± ε)` spectral approximations between two
//!   graphs via generalized power iteration on the pencil `(L_G, L_H)`.
//! * [`resistance`] — exact and approximate effective resistances, including the
//!   Spielman–Srivastava random-projection estimator used by the baseline sparsifier.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cg;
pub mod chebyshev;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod laplacian;
pub mod resistance;
pub mod spectral;
pub mod vector;

pub use cg::{
    cg_solve, cg_solve_in, pcg_solve, pcg_solve_in, CgConfig, CgOutcome, CgScratch, CgStats,
    Preconditioner,
};
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use laplacian::{is_sdd, laplacian_of};
pub use resistance::{
    approx_effective_resistances, approx_effective_resistances_in, exact_effective_resistances,
    ResistanceOptions, ResistanceScratch,
};
pub use spectral::{approximation_bounds, relative_condition_number, SpectralBounds};

/// Commonly used items for downstream crates.
pub mod prelude {
    pub use crate::cg::{
        cg_solve, pcg_solve, CgConfig, CgOutcome, JacobiPreconditioner, Preconditioner,
    };
    pub use crate::chebyshev::chebyshev_solve;
    pub use crate::csr::CsrMatrix;
    pub use crate::dense::DenseMatrix;
    pub use crate::eigen::{power_method, smallest_nonzero_eigenvalue};
    pub use crate::laplacian::{is_sdd, laplacian_of};
    pub use crate::resistance::{approx_effective_resistances, exact_effective_resistances};
    pub use crate::spectral::{approximation_bounds, relative_condition_number, SpectralBounds};
    pub use crate::vector;
}
