//! Certification of spectral approximation between two graphs.
//!
//! The paper's central guarantee (Theorems 4 and 5) is a two-sided bound
//! `(1 − ε) G ⪯ G̃ ⪯ (1 + ε) G`, i.e. for every vector `x`
//! `(1 − ε) xᵀL_G x ≤ xᵀL_{G̃} x ≤ (1 + ε) xᵀL_G x`.
//!
//! This module *measures* the best constants empirically: it estimates the extreme
//! generalized eigenvalues of the pencil `(L_H, L_G)` restricted to the complement of
//! the all-ones vector, using power iteration where the pseudo-inverse applications are
//! CG solves. The returned [`SpectralBounds`] are the experimentally certified
//! `lower ≤ xᵀL_H x / xᵀL_G x ≤ upper`.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use sgs_graph::Graph;

use crate::cg::{cg_solve, CgConfig, GraphLaplacianOp};
use crate::vector;

/// Empirical two-sided bounds for the ratio `xᵀ L_H x / xᵀ L_G x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralBounds {
    /// Estimated minimum of the ratio over `x ⟂ 1` (the `1 − ε` side).
    pub lower: f64,
    /// Estimated maximum of the ratio over `x ⟂ 1` (the `1 + ε` side).
    pub upper: f64,
}

impl SpectralBounds {
    /// The relative condition number `upper / lower` of the pair; `1` means identical
    /// quadratic forms.
    pub fn condition(&self) -> f64 {
        self.upper / self.lower
    }

    /// The smallest `ε` such that `(1 − ε) ≤ lower` and `upper ≤ (1 + ε)`.
    pub fn epsilon(&self) -> f64 {
        (1.0 - self.lower).max(self.upper - 1.0).max(0.0)
    }

    /// True if the bounds certify a `(1 ± ε)` approximation.
    pub fn within_epsilon(&self, eps: f64) -> bool {
        self.lower >= 1.0 - eps - 1e-9 && self.upper <= 1.0 + eps + 1e-9
    }
}

/// Options controlling the power-iteration certification.
#[derive(Debug, Clone)]
pub struct CertifyOptions {
    /// Outer power-iteration steps per extreme.
    pub iterations: usize,
    /// Relative tolerance of the inner CG solves.
    pub cg_tolerance: f64,
    /// Seed for the starting vectors.
    pub seed: u64,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            iterations: 40,
            cg_tolerance: 1e-8,
            seed: 0x5eed,
        }
    }
}

/// Rayleigh quotient `xᵀ L_H x / xᵀ L_G x`.
fn ratio(h: &Graph, g: &Graph, x: &[f64]) -> f64 {
    let num = h.quadratic_form(x);
    let den = g.quadratic_form(x);
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Estimates `max_x xᵀ L_H x / xᵀ L_G x` by power iteration on `L_G⁺ L_H`.
fn max_generalized_eigenvalue(h: &Graph, g: &Graph, opts: &CertifyOptions) -> f64 {
    let n = g.n();
    let op_g = GraphLaplacianOp::new(g);
    let cg_cfg = CgConfig {
        tolerance: opts.cg_tolerance,
        max_iterations: 30 * n + 500,
        project_ones: true,
    };
    let mut x = vector::random_unit_orthogonal(n, opts.seed);
    let mut best = ratio(h, g, &x);
    for _ in 0..opts.iterations {
        // y = L_G^+ (L_H x)
        let hx = h.laplacian_apply(&x);
        let mut y = cg_solve(&op_g, &hx, &cg_cfg).solution;
        vector::project_out_ones(&mut y);
        let norm = vector::norm2(&y);
        if norm == 0.0 {
            break;
        }
        for yi in y.iter_mut() {
            *yi /= norm;
        }
        let r = ratio(h, g, &y);
        let converged = (r - best).abs() <= 1e-7 * best.abs().max(1e-300);
        best = best.max(r);
        x = y;
        if converged {
            break;
        }
    }
    best
}

/// Estimates the two-sided bounds for `xᵀ L_H x / xᵀ L_G x` over `x ⟂ 1`.
///
/// Both graphs must be connected; the maximum direction is found on the pencil
/// `(L_H, L_G)` and the minimum as the reciprocal of the maximum of the swapped pencil.
pub fn approximation_bounds(g: &Graph, h: &Graph, opts: &CertifyOptions) -> SpectralBounds {
    assert_eq!(g.n(), h.n(), "graphs must share a vertex set");
    let upper = max_generalized_eigenvalue(h, g, opts);
    let inv_lower = max_generalized_eigenvalue(
        g,
        h,
        &CertifyOptions {
            seed: opts.seed.wrapping_add(1),
            ..opts.clone()
        },
    );
    let lower = if inv_lower > 0.0 {
        1.0 / inv_lower
    } else {
        0.0
    };
    SpectralBounds { lower, upper }
}

/// Relative condition number of the pair `(H, G)`: `λ_max / λ_min` of the pencil.
pub fn relative_condition_number(g: &Graph, h: &Graph, opts: &CertifyOptions) -> f64 {
    approximation_bounds(g, h, opts).condition()
}

/// Cheap statistical check: evaluates the quadratic-form ratio on `k` random vectors
/// and returns the `(min, max)` observed. This is a *necessary* condition only, but it
/// is fast and used as a smoke test inside property-based tests.
pub fn ratio_samples(g: &Graph, h: &Graph, k: usize, seed: u64) -> (f64, f64) {
    assert_eq!(g.n(), h.n());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for _ in 0..k {
        let mut x: Vec<f64> = (0..g.n()).map(|_| rng.gen_range(-1.0..1.0)).collect();
        vector::project_out_ones(&mut x);
        let den = g.quadratic_form(&x);
        if den <= 0.0 {
            continue;
        }
        let r = h.quadratic_form(&x) / den;
        lo = lo.min(r);
        hi = hi.max(r);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{generators, ops};

    #[test]
    fn identical_graphs_have_unit_bounds() {
        let g = generators::erdos_renyi(60, 0.2, 1.0, 3);
        let b = approximation_bounds(&g, &g, &CertifyOptions::default());
        assert!((b.lower - 1.0).abs() < 1e-6, "lower = {}", b.lower);
        assert!((b.upper - 1.0).abs() < 1e-6, "upper = {}", b.upper);
        assert!(b.within_epsilon(1e-5));
        assert!(b.epsilon() < 1e-5);
        assert!((b.condition() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn scaled_graph_has_scaled_bounds() {
        let g = generators::grid2d(6, 6, 1.0);
        let h = ops::scale(&g, 1.3).unwrap();
        let b = approximation_bounds(&g, &h, &CertifyOptions::default());
        assert!((b.lower - 1.3).abs() < 1e-5);
        assert!((b.upper - 1.3).abs() < 1e-5);
    }

    #[test]
    fn removing_an_edge_lowers_the_lower_bound() {
        let g = generators::complete(10, 1.0);
        let h = ops::remove_edges(&g, &[0]);
        let b = approximation_bounds(&g, &h, &CertifyOptions::default());
        assert!(b.upper <= 1.0 + 1e-9);
        assert!(b.lower < 1.0);
        assert!(
            b.lower > 0.5,
            "complete graph tolerates one edge removal well"
        );
    }

    #[test]
    fn cycle_vs_path_bound_matches_theory() {
        // H = path (cycle minus one edge). The worst direction for the ratio
        // path/cycle on C_n has ratio lambda; for the removed edge's indicator-like
        // vector the ratio approaches (n-1)/n... we check the certified epsilon is
        // consistent with exhaustive random sampling.
        let g = generators::cycle(12, 1.0);
        let h = ops::remove_edges(&g, &[11]);
        let b = approximation_bounds(&g, &h, &CertifyOptions::default());
        let (lo, hi) = ratio_samples(&g, &h, 200, 7);
        assert!(b.lower <= lo + 1e-6);
        assert!(b.upper >= hi - 1e-6);
        assert!(b.upper <= 1.0 + 1e-9);
    }

    #[test]
    fn within_epsilon_detects_violations() {
        let g = generators::complete(8, 1.0);
        let h = ops::scale(&g, 2.0).unwrap();
        let b = approximation_bounds(&g, &h, &CertifyOptions::default());
        assert!(!b.within_epsilon(0.5));
        assert!(b.within_epsilon(1.1));
    }

    #[test]
    fn ratio_samples_are_inside_certified_bounds() {
        let g = generators::erdos_renyi(40, 0.3, 1.0, 9);
        // Sparser approximation: keep every edge with doubled weight on a matching-ish set.
        let keep: Vec<bool> = (0..g.m()).map(|i| i % 2 == 0).collect();
        let mut h = g.edge_subgraph(&keep);
        for e in h.edges_mut() {
            e.w *= 2.0;
        }
        if !sgs_graph::connectivity::is_connected(&h) {
            return; // extremely unlikely with p = 0.3; skip rather than fail spuriously
        }
        let b = approximation_bounds(&g, &h, &CertifyOptions::default());
        let (lo, hi) = ratio_samples(&g, &h, 100, 11);
        assert!(b.lower <= lo + 1e-6);
        assert!(b.upper >= hi - 1e-6);
    }
}
