//! Compressed-sparse-row symmetric matrices with parallel mat-vec.

use rayon::prelude::*;

use sgs_graph::Graph;

/// A sparse matrix in compressed-sparse-row format.
///
/// The matrix is stored fully (both triangles for symmetric matrices) so that the
/// matrix–vector product is a simple row-parallel loop; this is the layout every
/// iterative solver in the crate consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from coordinate triplets `(row, col, value)` on an `n × n`
    /// matrix. Duplicate entries are summed.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut counts = vec![0usize; n + 1];
        for &(r, _, _) in triplets {
            assert!(r < n, "row index out of range");
            counts[r + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_start = counts.clone();
        let mut cursor = counts;
        let nnz = triplets.len();
        // Bucket all entries into one row-major buffer, then sort each row's
        // segment in place — no per-row temporaries.
        let mut entries: Vec<(usize, f64)> = vec![(0, 0.0); nnz];
        for &(r, c, v) in triplets {
            assert!(c < n, "column index out of range");
            entries[cursor[r]] = (c, v);
            cursor[r] += 1;
        }
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for r in 0..n {
            let segment = &mut entries[row_start[r]..row_start[r + 1]];
            segment.sort_unstable_by_key(|&(c, _)| c);
            // Merge duplicates strictly within this row: comparing against
            // anything pushed before `row_begin` would merge across row
            // boundaries.
            let row_begin = col_idx.len();
            for &(c, v) in segment.iter() {
                if col_idx.len() > row_begin && *col_idx.last().unwrap() == c {
                    *values.last_mut().unwrap() += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds the Laplacian matrix of a graph.
    pub fn laplacian(g: &Graph) -> Self {
        let n = g.n();
        let mut triplets = Vec::with_capacity(4 * g.m() + n);
        let degrees = g.weighted_degrees();
        for (i, &d) in degrees.iter().enumerate() {
            triplets.push((i, i, d));
        }
        for e in g.edges() {
            triplets.push((e.u, e.v, -e.w));
            triplets.push((e.v, e.u, -e.w));
        }
        CsrMatrix::from_triplets(n, &triplets)
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Entry `(r, c)`, scanning row `r` (zero if not stored).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (start, end) = (self.row_ptr[r], self.row_ptr[r + 1]);
        match self.col_idx[start..end].binary_search(&c) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// The diagonal of the matrix.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// Parallel matrix–vector product `y = A x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        self.apply_into(x, &mut y);
        y
    }

    /// Parallel matrix–vector product writing into a caller-provided buffer.
    pub fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        if self.n < 2048 {
            for (r, out) in y.iter_mut().enumerate() {
                let mut acc = 0.0;
                for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                    acc += self.values[i] * x[self.col_idx[i]];
                }
                *out = acc;
            }
        } else {
            // Rows are cheap (a handful of multiply-adds for graph Laplacians); the
            // chunk hint keeps the executor from dispatching tiny row batches.
            y.par_iter_mut()
                .enumerate()
                .with_min_len(512)
                .for_each(|(r, out)| {
                    let mut acc = 0.0;
                    for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                        acc += self.values[i] * x[self.col_idx[i]];
                    }
                    *out = acc;
                });
        }
    }

    /// Quadratic form `xᵀ A x`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        let ax = self.apply(x);
        crate::vector::dot(x, &ax)
    }

    /// Checks structural symmetry with matching values up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for r in 0..self.n {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[i];
                if (self.values[i] - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Sum of absolute off-diagonal entries per row, used by SDD checks.
    pub fn offdiagonal_abs_row_sums(&self) -> Vec<f64> {
        (0..self.n)
            .map(|r| {
                let mut s = 0.0;
                for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                    if self.col_idx[i] != r {
                        s += self.values[i].abs();
                    }
                }
                s
            })
            .collect()
    }

    /// Returns a dense copy (rows of length `n`); intended for tiny matrices in tests.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n]; self.n];
        for (r, row) in d.iter_mut().enumerate() {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                row[self.col_idx[i]] += self.values[i];
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    #[test]
    fn triplet_construction_merges_duplicates() {
        let a = CsrMatrix::from_triplets(
            2,
            &[
                (0, 0, 1.0),
                (0, 0, 2.0),
                (1, 0, -1.0),
                (0, 1, -1.0),
                (1, 1, 3.0),
            ],
        );
        assert_eq!(a.n(), 2);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(1, 0), -1.0);
    }

    #[test]
    fn duplicate_merge_is_confined_to_one_row() {
        // Row 0 ends with column 2 and row 1 starts with column 2 (plus
        // genuine duplicates inside each row); the shared column must NOT be
        // merged across the row boundary.
        let a = CsrMatrix::from_triplets(
            3,
            &[
                (0, 2, 1.0),
                (0, 2, 2.0),
                (1, 2, 4.0),
                (1, 2, 8.0),
                (1, 0, 1.0),
                (2, 2, 5.0),
            ],
        );
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 2), 3.0);
        assert_eq!(a.get(1, 2), 12.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(2, 2), 5.0);
        assert_eq!(a.row_ptr(), &[0, 1, 3, 4]);
    }

    #[test]
    fn empty_rows_between_duplicates_stay_empty() {
        // Row 1 is empty; rows 0 and 2 share a column — still no merge.
        let a = CsrMatrix::from_triplets(3, &[(0, 1, 2.0), (2, 1, 3.0)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(2, 1), 3.0);
        assert_eq!(a.row_ptr(), &[0, 1, 1, 2]);
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = generators::erdos_renyi_weighted(50, 0.2, 0.5, 2.0, 3);
        let l = CsrMatrix::laplacian(&g);
        let ones = vec![1.0; 50];
        let y = l.apply(&ones);
        for v in y {
            assert!(v.abs() < 1e-9);
        }
        assert!(l.is_symmetric(1e-12));
    }

    #[test]
    fn laplacian_quadratic_form_matches_graph() {
        let g = generators::grid2d(5, 6, 2.0);
        let l = CsrMatrix::laplacian(&g);
        let x: Vec<f64> = (0..g.n()).map(|i| (i as f64 * 0.37).sin()).collect();
        assert!((l.quadratic_form(&x) - g.quadratic_form(&x)).abs() < 1e-9);
    }

    #[test]
    fn apply_matches_dense() {
        let g = generators::complete(6, 1.5);
        let l = CsrMatrix::laplacian(&g);
        let d = l.to_dense();
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.0).collect();
        let y = l.apply(&x);
        for r in 0..6 {
            let expect: f64 = (0..6).map(|c| d[r][c] * x[c]).sum();
            assert!((y[r] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn diagonal_and_offdiag_sums() {
        let g = generators::path(4, 2.0);
        let l = CsrMatrix::laplacian(&g);
        assert_eq!(l.diagonal(), vec![2.0, 4.0, 4.0, 2.0]);
        assert_eq!(l.offdiagonal_abs_row_sums(), vec![2.0, 4.0, 4.0, 2.0]);
    }

    #[test]
    fn get_of_missing_entry_is_zero() {
        let g = generators::path(4, 1.0);
        let l = CsrMatrix::laplacian(&g);
        assert_eq!(l.get(0, 3), 0.0);
        assert_eq!(l.get(3, 0), 0.0);
    }

    #[test]
    fn parallel_apply_matches_sequential_on_large_matrix() {
        let g = generators::grid2d(60, 60, 1.0); // n = 3600 > parallel threshold
        let l = CsrMatrix::laplacian(&g);
        let x: Vec<f64> = (0..g.n()).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let y = l.apply(&x);
        // sequential reference
        let mut y_ref = vec![0.0; g.n()];
        for (r, out) in y_ref.iter_mut().enumerate() {
            for i in l.row_ptr()[r]..l.row_ptr()[r + 1] {
                *out += l.values()[i] * x[l.col_idx()[i]];
            }
        }
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
