//! Criterion bench for experiment E6: wall-clock of the sparsifier under thread pools of
//! different sizes (the CRCW PRAM work/depth claims realised as rayon speed-ups).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgs_bench::Workload;
use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/threads");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 3000, deg: 100 }.build(31);
    let cfg = SparsifyConfig::new(0.75, 8.0)
        .with_bundle_sizing(BundleSizing::Fixed(4))
        .with_seed(5);
    for &threads in &[1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| pool.install(|| parallel_sparsify(&g, &cfg)))
        });
    }
    group.finish();
}

fn bench_sequential_vs_parallel_flag(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling/flag");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 3000, deg: 100 }.build(31);
    for &(label, parallel) in &[("parallel", true), ("sequential", false)] {
        let cfg = SparsifyConfig::new(0.75, 8.0)
            .with_bundle_sizing(BundleSizing::Fixed(4))
            .with_parallel(parallel)
            .with_seed(5);
        group.bench_function(label, |b| b.iter(|| parallel_sparsify(&g, &cfg)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_thread_scaling,
    bench_sequential_vs_parallel_flag
);
criterion_main!(benches);
