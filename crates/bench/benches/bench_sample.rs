//! Criterion bench for experiment E4: one PARALLELSAMPLE round (Theorem 4's
//! `O(m log³ n / ε²)` work), split into its two phases (bundle vs coin flips).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgs_bench::Workload;
use sgs_core::{parallel_sample, BundleSizing, SparsifyConfig};
use sgs_spanner::{t_bundle, BundleConfig};

fn bench_sample_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample/full_round");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 2000, deg: 80 }.build(17);
    for t in [2usize, 4, 8] {
        let cfg = SparsifyConfig::new(0.5, 2.0)
            .with_bundle_sizing(BundleSizing::Fixed(t))
            .with_seed(7);
        group.bench_with_input(BenchmarkId::new("t", t), &cfg, |b, cfg| {
            b.iter(|| parallel_sample(&g, cfg))
        });
    }
    group.finish();
}

fn bench_sample_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample/phases");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 2000, deg: 80 }.build(17);
    // Phase 1: the bundle alone.
    group.bench_function("bundle_only_t4", |b| {
        b.iter(|| t_bundle(&g, &BundleConfig::new(4).with_seed(7)))
    });
    // Full round (bundle + sampling) for comparison; the difference is the coin-flip
    // pass, which Theorem 4 treats as O(m) work.
    let cfg = SparsifyConfig::new(0.5, 2.0)
        .with_bundle_sizing(BundleSizing::Fixed(4))
        .with_seed(7);
    group.bench_function("bundle_plus_sampling_t4", |b| {
        b.iter(|| parallel_sample(&g, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_sample_round, bench_sample_phases);
criterion_main!(benches);
