//! Criterion bench for experiment E8: chain construction cost and per-solve cost of the
//! chain-preconditioned solver versus plain CG (Theorem 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgs_bench::Workload;
use sgs_solver::{SddSolver, SolverConfig, SolverMethod};

fn bench_chain_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/chain_build");
    group.sample_size(10);
    for workload in [
        Workload::ErdosRenyi { n: 1000, deg: 30 },
        Workload::Grid { side: 32 },
        Workload::ImageGrid { side: 32 },
    ] {
        let g = workload.build(41);
        group.bench_with_input(BenchmarkId::new("build", workload.label()), &g, |b, g| {
            b.iter(|| SddSolver::for_laplacian(g.clone(), SolverConfig::default()))
        });
    }
    group.finish();
}

fn bench_solve_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/solve_methods");
    group.sample_size(10);
    let g = Workload::ImageGrid { side: 32 }.build(43);
    let n = g.n();
    let solver = SddSolver::for_laplacian(g, SolverConfig::default());
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    b[n - 1] = -1.0;
    for (label, method) in [
        ("cg", SolverMethod::Cg),
        ("jacobi_pcg", SolverMethod::JacobiPcg),
        ("chain_pcg", SolverMethod::ChainPcg),
    ] {
        group.bench_function(label, |bench| bench.iter(|| solver.solve_with(&b, method)));
    }
    group.finish();
}

fn bench_solve_vs_condition_number(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/vs_condition_number");
    group.sample_size(10);
    for &n in &[200usize, 800] {
        let g = sgs_graph::generators::path(n, 1.0);
        let solver = SddSolver::for_laplacian(g, SolverConfig::default());
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        group.bench_with_input(BenchmarkId::new("cg/path", n), &n, |bench, _| {
            bench.iter(|| solver.solve_with(&b, SolverMethod::Cg))
        });
        group.bench_with_input(BenchmarkId::new("chain_pcg/path", n), &n, |bench, _| {
            bench.iter(|| solver.solve_with(&b, SolverMethod::ChainPcg))
        });
    }
    group.finish();
}

fn bench_effective_resistances(c: &mut Criterion) {
    // Exercises the per-edge CG path of `exact_effective_resistances` (the
    // grid is above the dense-Cholesky cutoff) and the JL-approximate path.
    // Both paths reuse per-worker scratch buffers via `map_init`; this bench
    // is the measurement point for that optimisation.
    let mut group = c.benchmark_group("solver/effective_resistances");
    group.sample_size(10);
    let g = Workload::Grid { side: 26 }.build(47); // 676 vertices > DENSE_LIMIT
    group.bench_function("exact_cg_per_edge", |b| {
        b.iter(|| sgs_linalg::resistance::exact_effective_resistances(&g))
    });
    group.bench_function("approx_jl", |b| {
        b.iter(|| sgs_linalg::resistance::approx_effective_resistances(&g, 2.0, 7))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_chain_build,
    bench_solve_methods,
    bench_solve_vs_condition_number,
    bench_effective_resistances
);
criterion_main!(benches);
