//! Criterion bench for experiment E8: chain construction cost and per-solve cost of the
//! chain-preconditioned solver versus plain CG (Theorem 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgs_bench::Workload;
use sgs_solver::{SddSolver, SolverConfig, SolverMethod};

fn bench_chain_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/chain_build");
    group.sample_size(10);
    for workload in [
        Workload::ErdosRenyi { n: 1000, deg: 30 },
        Workload::Grid { side: 32 },
        Workload::ImageGrid { side: 32 },
    ] {
        let g = workload.build(41);
        group.bench_with_input(BenchmarkId::new("build", workload.label()), &g, |b, g| {
            b.iter(|| SddSolver::for_laplacian(g.clone(), SolverConfig::default()))
        });
    }
    group.finish();
}

fn bench_solve_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/solve_methods");
    group.sample_size(10);
    let g = Workload::ImageGrid { side: 32 }.build(43);
    let n = g.n();
    let solver = SddSolver::for_laplacian(g, SolverConfig::default());
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    b[n - 1] = -1.0;
    for (label, method) in [
        ("cg", SolverMethod::Cg),
        ("jacobi_pcg", SolverMethod::JacobiPcg),
        ("chain_pcg", SolverMethod::ChainPcg),
    ] {
        group.bench_function(label, |bench| bench.iter(|| solver.solve_with(&b, method)));
    }
    group.finish();
}

fn bench_solve_vs_condition_number(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/vs_condition_number");
    group.sample_size(10);
    for &n in &[200usize, 800] {
        let g = sgs_graph::generators::path(n, 1.0);
        let solver = SddSolver::for_laplacian(g, SolverConfig::default());
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        group.bench_with_input(BenchmarkId::new("cg/path", n), &n, |bench, _| {
            bench.iter(|| solver.solve_with(&b, SolverMethod::Cg))
        });
        group.bench_with_input(BenchmarkId::new("chain_pcg/path", n), &n, |bench, _| {
            bench.iter(|| solver.solve_with(&b, SolverMethod::ChainPcg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chain_build,
    bench_solve_methods,
    bench_solve_vs_condition_number
);
criterion_main!(benches);
