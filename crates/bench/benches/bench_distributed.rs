//! Criterion bench for the distributed (CONGEST) engine: the simulator's flat-mailbox
//! round loop, the distributed Baswana–Sen spanner (Theorem 2), and distributed
//! `PARALLELSAMPLE` (Corollary 3) as the bundle parameter grows.
//!
//! Wall-clock here tracks the *simulator engine*, not the model cost — the model cost
//! is the rounds/messages/bits accounting, which `exp_distributed` and the
//! `exp_scaling --distributed` columns report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgs_bench::Workload;
use sgs_core::{BundleSizing, SparsifyConfig};
use sgs_distributed::{distributed_sample, distributed_spanner, DistSpannerConfig};

fn bench_distributed_spanner(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed/spanner");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2000] {
        let g = Workload::ErdosRenyi { n, deg: 16 }.build(9);
        group.bench_with_input(BenchmarkId::new("n", n), &g, |b, g| {
            b.iter(|| distributed_spanner(g, &DistSpannerConfig::with_seed(3)))
        });
    }
    group.finish();
}

fn bench_distributed_sample(c: &mut Criterion) {
    // The sparsifier hot path: t successive spanner runs on residual edges plus the
    // (communication-free) local sampling step.
    let mut group = c.benchmark_group("distributed/sample");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 1000, deg: 40 }.build(11);
    for t in [1usize, 2, 4] {
        let cfg = SparsifyConfig::new(0.5, 2.0)
            .with_bundle_sizing(BundleSizing::Fixed(t))
            .with_seed(13);
        group.bench_with_input(BenchmarkId::new("t", t), &cfg, |b, cfg| {
            b.iter(|| distributed_sample(&g, cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed_spanner, bench_distributed_sample);
criterion_main!(benches);
