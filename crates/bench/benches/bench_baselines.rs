//! Criterion bench for experiment E9: construction cost of PARALLELSPARSIFY versus the
//! baseline sparsifiers (Spielman–Srivastava resistance sampling pays for Laplacian
//! solves; uniform sampling is nearly free but carries no guarantee).

use criterion::{criterion_group, criterion_main, Criterion};

use sgs_bench::Workload;
use sgs_core::baselines::{
    effective_resistance_sparsify, spanner_oversampling_sparsify, uniform_sparsify,
};
use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};

fn bench_baseline_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/construction");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 1000, deg: 80 }.build(37);
    let cfg = SparsifyConfig::new(0.5, 4.0)
        .with_bundle_sizing(BundleSizing::Fixed(4))
        .with_seed(5);
    group.bench_function("parallel_sparsify", |b| {
        b.iter(|| parallel_sparsify(&g, &cfg))
    });
    group.bench_function("effective_resistance", |b| {
        b.iter(|| effective_resistance_sparsify(&g, 0.5, 0.5, 5))
    });
    group.bench_function("uniform", |b| b.iter(|| uniform_sparsify(&g, 0.25, 5)));
    group.bench_function("spanner_oversample", |b| {
        b.iter(|| spanner_oversampling_sparsify(&g, 0.25, 5))
    });
    group.finish();
}

fn bench_baselines_on_structured_graphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/structured");
    group.sample_size(10);
    let cfg = SparsifyConfig::new(0.5, 4.0)
        .with_bundle_sizing(BundleSizing::Fixed(4))
        .with_seed(5);
    for workload in [
        Workload::Preferential { n: 1000, k: 20 },
        Workload::Barbell { k: 60 },
    ] {
        let g = workload.build(39);
        group.bench_function(format!("parallel_sparsify/{}", workload.label()), |b| {
            b.iter(|| parallel_sparsify(&g, &cfg))
        });
        group.bench_function(format!("effective_resistance/{}", workload.label()), |b| {
            b.iter(|| effective_resistance_sparsify(&g, 0.5, 0.5, 5))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_baseline_construction,
    bench_baselines_on_structured_graphs
);
criterion_main!(benches);
