//! Criterion bench for experiment E1: Baswana–Sen spanner construction time as a
//! function of graph size and density (Theorem 1's `O(m log n)` work bound), including
//! the sequential-vs-parallel comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgs_bench::Workload;
use sgs_spanner::{baswana_sen_spanner, greedy_spanner, t_bundle, BundleConfig, SpannerConfig};

fn bench_spanner_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanner/baswana_sen_scaling");
    group.sample_size(10);
    for &n in &[1000usize, 2000, 4000] {
        let g = Workload::ErdosRenyi { n, deg: 32 }.build(7);
        group.bench_with_input(BenchmarkId::new("m", g.m()), &g, |b, g| {
            b.iter(|| baswana_sen_spanner(g, &SpannerConfig::with_seed(3)))
        });
    }
    group.finish();
}

fn bench_spanner_parallel_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanner/parallel_vs_sequential");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 3000, deg: 60 }.build(9);
    group.bench_function("parallel", |b| {
        b.iter(|| baswana_sen_spanner(&g, &SpannerConfig::with_seed(3).with_parallel(true)))
    });
    group.bench_function("sequential", |b| {
        b.iter(|| baswana_sen_spanner(&g, &SpannerConfig::with_seed(3).with_parallel(false)))
    });
    group.finish();
}

fn bench_t_bundle(c: &mut Criterion) {
    // The t-bundle peeling is the sparsifier's hot path (Section 3.1): this tracks the
    // engine's build-once/compact-in-place CSR against the per-component cost.
    let mut group = c.benchmark_group("spanner/t_bundle");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 2000, deg: 60 }.build(7);
    for t in [1usize, 3] {
        group.bench_with_input(BenchmarkId::new("t", t), &t, |b, &t| {
            b.iter(|| t_bundle(&g, &BundleConfig::new(t).with_seed(5)))
        });
    }
    group.finish();
}

fn bench_greedy_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanner/greedy_baseline");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 400, deg: 30 }.build(5);
    let bound = 2.0 * (g.n() as f64).log2();
    group.bench_function("greedy", |b| b.iter(|| greedy_spanner(&g, bound)));
    group.bench_function("baswana_sen", |b| {
        b.iter(|| baswana_sen_spanner(&g, &SpannerConfig::with_seed(3)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spanner_scaling,
    bench_spanner_parallel_vs_sequential,
    bench_t_bundle,
    bench_greedy_baseline
);
criterion_main!(benches);
