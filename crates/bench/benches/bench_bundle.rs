//! Criterion bench for experiment E3: t-bundle spanner construction cost as a function
//! of `t` (Corollary 2's `O(t m log n)` work bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgs_bench::Workload;
use sgs_spanner::{t_bundle, BundleConfig};

fn bench_bundle_vs_t(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundle/vs_t");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 1500, deg: 60 }.build(11);
    for t in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("t", t), &t, |b, &t| {
            b.iter(|| t_bundle(&g, &BundleConfig::new(t).with_seed(5)))
        });
    }
    group.finish();
}

fn bench_bundle_vs_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundle/vs_density");
    group.sample_size(10);
    for &deg in &[20usize, 60, 120] {
        let g = Workload::ErdosRenyi { n: 1000, deg }.build(13);
        group.bench_with_input(BenchmarkId::new("m", g.m()), &g, |b, g| {
            b.iter(|| t_bundle(g, &BundleConfig::new(4).with_seed(5)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bundle_vs_t, bench_bundle_vs_density);
criterion_main!(benches);
