//! Criterion bench for experiment E8: the semi-streaming engine (`sgs-stream`).
//!
//! The batch-count sweep pins the engine's core claim — the batch chop is pure
//! ingestion granularity, so throughput must be flat across it (identical leaves,
//! identical reductions, only `ingest_batch` call overhead varies). The budget sweep
//! shows the work/memory trade: tighter budgets force more (and deeper) reductions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgs_bench::Workload;
use sgs_core::BundleSizing;
use sgs_graph::Graph;
use sgs_stream::{StreamConfig, StreamOutput, StreamSparsifier};

fn stream(g: &Graph, cfg: &StreamConfig, batch_edges: usize) -> StreamOutput {
    let mut s = StreamSparsifier::new(g.n(), cfg.clone());
    for chunk in g.edges().chunks(batch_edges) {
        s.ingest_batch(chunk).expect("valid edges");
    }
    s.finish()
}

fn bench_stream_batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream/batch_sweep");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 2000, deg: 60 }.build(51);
    let cfg = StreamConfig::new(0.75, g.m() / 4)
        .with_bundle_sizing(BundleSizing::Fixed(2))
        .with_seed(5);
    for batches in [1usize, 8, 64] {
        let batch_edges = g.m().div_ceil(batches);
        group.bench_with_input(
            BenchmarkId::new("batches", batches),
            &batch_edges,
            |b, &batch_edges| b.iter(|| stream(&g, &cfg, batch_edges)),
        );
    }
    group.finish();
}

fn bench_stream_budget_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream/budget_sweep");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 2000, deg: 60 }.build(51);
    for divisor in [2usize, 4, 8] {
        let cfg = StreamConfig::new(0.75, g.m() / divisor)
            .with_bundle_sizing(BundleSizing::Fixed(2))
            .with_seed(5);
        group.bench_with_input(BenchmarkId::new("budget_m_div", divisor), &cfg, |b, cfg| {
            b.iter(|| stream(&g, cfg, g.m() / 8))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream_batch_sweep, bench_stream_budget_sweep);
criterion_main!(benches);
