//! Criterion bench for experiment E5: full PARALLELSPARSIFY runs under the ρ sweep
//! (Theorem 5's `O(m log² n log³ ρ / ε²)` total work, dominated by the first round).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgs_bench::Workload;
use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};

fn bench_sparsify_rho_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparsify/rho_sweep");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 2000, deg: 100 }.build(19);
    for rho in [2u32, 8, 32] {
        let cfg = SparsifyConfig::new(0.75, rho as f64)
            .with_bundle_sizing(BundleSizing::Fixed(4))
            .with_seed(3);
        group.bench_with_input(BenchmarkId::new("rho", rho), &cfg, |b, cfg| {
            b.iter(|| parallel_sparsify(&g, cfg))
        });
    }
    group.finish();
}

fn bench_sparsify_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparsify/size_scaling");
    group.sample_size(10);
    for &n in &[1000usize, 2000, 4000] {
        let g = Workload::ErdosRenyi { n, deg: 60 }.build(23);
        let cfg = SparsifyConfig::new(0.75, 8.0)
            .with_bundle_sizing(BundleSizing::Fixed(4))
            .with_seed(3);
        group.bench_with_input(BenchmarkId::new("m", g.m()), &g, |b, g| {
            b.iter(|| parallel_sparsify(g, &cfg))
        });
    }
    group.finish();
}

fn bench_sparsify_epsilon_ablation(c: &mut Criterion) {
    // Ablation called out in DESIGN.md: the keep-probability (the paper fixes 1/4).
    let mut group = c.benchmark_group("sparsify/keep_probability_ablation");
    group.sample_size(10);
    let g = Workload::ErdosRenyi { n: 2000, deg: 80 }.build(29);
    for &(label, p) in &[("p=0.25", 0.25f64), ("p=0.5", 0.5), ("p=0.75", 0.75)] {
        let cfg = SparsifyConfig::new(0.75, 8.0)
            .with_bundle_sizing(BundleSizing::Fixed(4))
            .with_keep_probability(p)
            .with_seed(3);
        group.bench_function(label, |b| b.iter(|| parallel_sparsify(&g, &cfg)));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sparsify_rho_sweep,
    bench_sparsify_size_scaling,
    bench_sparsify_epsilon_ablation
);
criterion_main!(benches);
