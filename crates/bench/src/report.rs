//! Ledger → [`RunReport`] converters.
//!
//! Every engine keeps its own typed ledger (`WorkStats`, `StreamStats`,
//! `NetworkMetrics`, `ErPassStats`, `SolveStats`). The bench bins flatten them
//! all into the neutral [`Section`] schema here, so one `--report-out` JSONL
//! line carries the full cross-subsystem record of a run.

use sgs_core::WorkStats;
use sgs_distributed::NetworkMetrics;
use sgs_obs::Section;
use sgs_solver::SolveStats;
use sgs_stream::{ErPassStats, StreamStats};

use crate::Row;

/// One section per table row: the row label becomes the section name and the
/// named columns become scalar fields. This is the generic absorber for rows
/// that have no richer typed ledger behind them.
pub fn rows_sections(rows: &[Row]) -> Vec<Section> {
    rows.iter()
        .map(|row| {
            let mut s = Section::new(&row.label);
            for (name, value) in &row.values {
                s = s.field(name, *value);
            }
            s
        })
        .collect()
}

/// Flattens a sparsification [`WorkStats`] ledger.
pub fn work_stats_section(stats: &WorkStats) -> Section {
    Section::new("work")
        .field("spanner_work", stats.spanner_work as f64)
        .field("sampling_work", stats.sampling_work as f64)
        .field("total_work", stats.total_work() as f64)
        .field("rounds", stats.rounds as f64)
        .series(
            "edges_per_round",
            stats.edges_per_round.iter().map(|&v| v as f64).collect(),
        )
        .series(
            "bundle_t_per_round",
            stats.bundle_t_per_round.iter().map(|&v| v as f64).collect(),
        )
        .series(
            "bundle_edges_per_round",
            stats
                .bundle_edges_per_round
                .iter()
                .map(|&v| v as f64)
                .collect(),
        )
}

/// Flattens a streaming [`StreamStats`] ledger, including the per-depth level
/// trajectories, the spill ledger, and the optional ER-pass entry.
pub fn stream_stats_section(stats: &StreamStats) -> Section {
    let mut s = Section::new("stream")
        .field("edges_ingested", stats.edges_ingested as f64)
        .field("batches_ingested", stats.batches_ingested as f64)
        .field("leaves", stats.leaves as f64)
        .field("forced_reductions", stats.forced_reductions as f64)
        .field("peak_resident_edges", stats.peak_resident_edges as f64)
        .field("peak_resident_bytes", stats.peak_resident_bytes as f64)
        .field("final_depth", stats.final_depth as f64)
        .field("spilled_nodes", stats.spill.spilled_nodes as f64)
        .field("spilled_bytes", stats.spill.spilled_bytes as f64)
        .field("readback_nodes", stats.spill.readback_nodes as f64)
        .field("readback_bytes", stats.spill.readback_bytes as f64)
        .series(
            "level_epsilon",
            stats.levels.iter().map(|l| l.epsilon).collect(),
        )
        .series(
            "level_reductions",
            stats.levels.iter().map(|l| l.reductions as f64).collect(),
        )
        .series(
            "level_edges_in",
            stats.levels.iter().map(|l| l.edges_in as f64).collect(),
        )
        .series(
            "level_edges_out",
            stats.levels.iter().map(|l| l.edges_out as f64).collect(),
        );
    if let Some(er) = &stats.er_pass {
        s = s
            .field("er_m_in", er.m_in as f64)
            .field("er_m_out", er.m_out as f64)
            .field("er_resampled", if er.resampled { 1.0 } else { 0.0 });
    }
    s
}

/// Flattens the ER-weighted final-pass ledger on its own (for experiments that
/// run the pass outside a stream).
pub fn er_pass_section(stats: &ErPassStats) -> Section {
    Section::new("er_pass")
        .field("epsilon", stats.epsilon)
        .field("m_in", stats.m_in as f64)
        .field("m_out", stats.m_out as f64)
        .field("solves", stats.solves as f64)
        .field("resampled", if stats.resampled { 1.0 } else { 0.0 })
}

/// Flattens a CONGEST [`NetworkMetrics`] ledger.
pub fn network_metrics_section(metrics: &NetworkMetrics) -> Section {
    Section::new("congest")
        .field("rounds", metrics.rounds as f64)
        .field("messages", metrics.messages as f64)
        .field("total_bits", metrics.total_bits as f64)
        .field("max_message_bits", metrics.max_message_bits as f64)
        .field("dropped", metrics.dropped as f64)
        .field("duplicated", metrics.duplicated as f64)
        .field("delayed", metrics.delayed as f64)
        .field("retransmits", metrics.retransmits as f64)
        .field("acks", metrics.acks as f64)
        .field("dup_suppressed", metrics.dup_suppressed as f64)
        .field("abandoned", metrics.abandoned as f64)
}

/// Flattens a solver [`SolveStats`] ledger, keeping the per-level work vector
/// as a series.
pub fn solve_stats_section(stats: &SolveStats) -> Section {
    Section::new("solver")
        .field("iterations", stats.iterations as f64)
        .field("relative_residual", stats.relative_residual)
        .field(
            "preconditioner_applies",
            stats.preconditioner_applies as f64,
        )
        .series(
            "per_level_work",
            stats.per_level_work.iter().map(|&v| v as f64).collect(),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_flatten_one_section_per_row() {
        let rows = vec![
            Row::new("t=1").push("sparsify_ms", 10.0),
            Row::new("t=2").push("sparsify_ms", 6.0),
        ];
        let sections = rows_sections(&rows);
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].name, "t=1");
        assert_eq!(sections[1].fields, vec![("sparsify_ms".to_string(), 6.0)]);
    }

    #[test]
    fn ledgers_flatten_without_losing_series() {
        let work = WorkStats {
            spanner_work: 10,
            sampling_work: 5,
            rounds: 2,
            edges_per_round: vec![100, 40],
            bundle_t_per_round: vec![3, 3],
            bundle_edges_per_round: vec![60, 20],
        };
        let s = work_stats_section(&work);
        assert_eq!(s.name, "work");
        assert!(s
            .fields
            .iter()
            .any(|(k, v)| k == "total_work" && *v == 15.0));
        assert_eq!(s.series[0].1, vec![100.0, 40.0]);

        let solve = SolveStats {
            iterations: 7,
            relative_residual: 1e-9,
            preconditioner_applies: 8,
            per_level_work: vec![800, 200],
        };
        let s = solve_stats_section(&solve);
        assert!(s.fields.iter().any(|(k, v)| k == "iterations" && *v == 7.0));
        assert_eq!(s.series[0].1, vec![800.0, 200.0]);

        let s = network_metrics_section(&NetworkMetrics::default());
        assert_eq!(s.fields.len(), 11);

        let s = stream_stats_section(&StreamStats::default());
        assert!(s.fields.iter().all(|(k, _)| !k.starts_with("er_")));
    }
}
