//! # sgs-bench
//!
//! Shared infrastructure for the experiment binaries (`src/bin/exp_*.rs`) and the
//! Criterion benches (`benches/bench_*.rs`) that regenerate every experiment listed in
//! `EXPERIMENTS.md`.
//!
//! Each experiment binary prints a table whose rows correspond to the series recorded in
//! `EXPERIMENTS.md`, and optionally dumps the same rows as JSON (pass `--json`), so the
//! document can be regenerated mechanically.

#![warn(missing_docs)]

use serde::Serialize;

use sgs_graph::{generators, Graph};

/// The standard workload suite used across experiments.
///
/// The families mirror the workloads the paper's introduction motivates: dense random
/// graphs (the sparsification target), expander-like random regular graphs (where
/// uniform sampling is already competitive), structured grids / image-affinity graphs
/// (the SDD-solver workload of Remark 1), heavy-tailed preferential-attachment graphs,
/// and barbells (adversarial for uniform sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Erdős–Rényi `G(n, p)` with expected average degree `deg`.
    ErdosRenyi {
        /// Number of vertices.
        n: usize,
        /// Target average degree.
        deg: usize,
    },
    /// Random `d`-regular graph.
    RandomRegular {
        /// Number of vertices.
        n: usize,
        /// Degree.
        d: usize,
    },
    /// Two-dimensional grid.
    Grid {
        /// Side length (the graph has `side²` vertices).
        side: usize,
    },
    /// Synthetic image-affinity grid.
    ImageGrid {
        /// Side length.
        side: usize,
    },
    /// Preferential-attachment graph with `k` edges per new vertex.
    Preferential {
        /// Number of vertices.
        n: usize,
        /// Edges added per vertex.
        k: usize,
    },
    /// Barbell: two cliques of size `k` joined by one unit-weight edge.
    Barbell {
        /// Clique size.
        k: usize,
    },
}

impl Workload {
    /// Short label used in tables.
    pub fn label(&self) -> String {
        match self {
            Workload::ErdosRenyi { n, deg } => format!("er(n={n},deg={deg})"),
            Workload::RandomRegular { n, d } => format!("reg(n={n},d={d})"),
            Workload::Grid { side } => format!("grid({side}x{side})"),
            Workload::ImageGrid { side } => format!("image({side}x{side})"),
            Workload::Preferential { n, k } => format!("pa(n={n},k={k})"),
            Workload::Barbell { k } => format!("barbell(k={k})"),
        }
    }

    /// Materialises the workload graph with a fixed seed.
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            Workload::ErdosRenyi { n, deg } => {
                let p = (deg as f64 / (n as f64 - 1.0)).min(1.0);
                generators::erdos_renyi(n, p, 1.0, seed)
            }
            Workload::RandomRegular { n, d } => generators::random_regular(n, d, 1.0, seed),
            Workload::Grid { side } => generators::grid2d(side, side, 1.0),
            Workload::ImageGrid { side } => generators::image_affinity_grid(side, side, 50.0, seed),
            Workload::Preferential { n, k } => generators::preferential_attachment(n, k, 1.0, seed),
            Workload::Barbell { k } => generators::barbell(k, 1, 1.0, 1.0),
        }
    }
}

/// A single row of an experiment table: a label plus named numeric columns.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Row label (workload / parameter setting).
    pub label: String,
    /// Named numeric values.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Adds a named value.
    pub fn push(mut self, name: &str, value: f64) -> Self {
        self.values.push((name.to_string(), value));
        self
    }
}

/// Prints a table of rows with aligned columns, followed by optional JSON output when
/// the process was invoked with `--json`.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    // Header from the first row's value names.
    let headers: Vec<&str> = rows[0].values.iter().map(|(n, _)| n.as_str()).collect();
    print!("{:<26}", "workload");
    for h in &headers {
        print!(" {h:>14}");
    }
    println!();
    for row in rows {
        print!("{:<26}", row.label);
        for (_, v) in &row.values {
            if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                print!(" {v:>14.3e}");
            } else {
                print!(" {v:>14.3}");
            }
        }
        println!();
    }
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(rows).expect("serializable rows")
        );
    }
}

/// Measures the wall-clock time of a closure in milliseconds, returning the result too.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_nonempty_graphs() {
        let workloads = [
            Workload::ErdosRenyi { n: 100, deg: 10 },
            Workload::RandomRegular { n: 100, d: 6 },
            Workload::Grid { side: 10 },
            Workload::ImageGrid { side: 10 },
            Workload::Preferential { n: 100, k: 3 },
            Workload::Barbell { k: 10 },
        ];
        for w in workloads {
            let g = w.build(3);
            assert!(g.n() > 0, "{}", w.label());
            assert!(g.m() > 0, "{}", w.label());
            assert!(!w.label().is_empty());
        }
    }

    #[test]
    fn rows_and_timer() {
        let row = Row::new("x").push("a", 1.0).push("b", 2.0);
        assert_eq!(row.values.len(), 2);
        let (v, ms) = time_ms(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        print_table("test table", &[row]);
        print_table("empty", &[]);
    }
}
