//! # sgs-bench
//!
//! Shared infrastructure for the experiment binaries (`src/bin/exp_*.rs`) and the
//! Criterion benches (`benches/bench_*.rs`) that regenerate every experiment listed in
//! `EXPERIMENTS.md`.
//!
//! Each experiment binary prints a table whose rows correspond to the series recorded in
//! `EXPERIMENTS.md`, and optionally dumps the same rows as JSON (pass `--json`), so the
//! document can be regenerated mechanically.

#![warn(missing_docs)]

use serde::Serialize;

use sgs_graph::{generators, Graph};
use sgs_obs::RunReport;

pub mod report;

/// The standard workload suite used across experiments.
///
/// The families mirror the workloads the paper's introduction motivates: dense random
/// graphs (the sparsification target), expander-like random regular graphs (where
/// uniform sampling is already competitive), structured grids / image-affinity graphs
/// (the SDD-solver workload of Remark 1), heavy-tailed preferential-attachment graphs,
/// and barbells (adversarial for uniform sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Erdős–Rényi `G(n, p)` with expected average degree `deg`.
    ErdosRenyi {
        /// Number of vertices.
        n: usize,
        /// Target average degree.
        deg: usize,
    },
    /// Random `d`-regular graph.
    RandomRegular {
        /// Number of vertices.
        n: usize,
        /// Degree.
        d: usize,
    },
    /// Two-dimensional grid.
    Grid {
        /// Side length (the graph has `side²` vertices).
        side: usize,
    },
    /// Synthetic image-affinity grid.
    ImageGrid {
        /// Side length.
        side: usize,
    },
    /// Preferential-attachment graph with `k` edges per new vertex.
    Preferential {
        /// Number of vertices.
        n: usize,
        /// Edges added per vertex.
        k: usize,
    },
    /// Barbell: two cliques of size `k` joined by one unit-weight edge.
    Barbell {
        /// Clique size.
        k: usize,
    },
}

impl Workload {
    /// Short label used in tables.
    pub fn label(&self) -> String {
        match self {
            Workload::ErdosRenyi { n, deg } => format!("er(n={n},deg={deg})"),
            Workload::RandomRegular { n, d } => format!("reg(n={n},d={d})"),
            Workload::Grid { side } => format!("grid({side}x{side})"),
            Workload::ImageGrid { side } => format!("image({side}x{side})"),
            Workload::Preferential { n, k } => format!("pa(n={n},k={k})"),
            Workload::Barbell { k } => format!("barbell(k={k})"),
        }
    }

    /// Materialises the workload graph with a fixed seed.
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            Workload::ErdosRenyi { n, deg } => {
                let p = (deg as f64 / (n as f64 - 1.0)).min(1.0);
                generators::erdos_renyi(n, p, 1.0, seed)
            }
            Workload::RandomRegular { n, d } => generators::random_regular(n, d, 1.0, seed),
            Workload::Grid { side } => generators::grid2d(side, side, 1.0),
            Workload::ImageGrid { side } => generators::image_affinity_grid(side, side, 50.0, seed),
            Workload::Preferential { n, k } => generators::preferential_attachment(n, k, 1.0, seed),
            Workload::Barbell { k } => generators::barbell(k, 1, 1.0, 1.0),
        }
    }
}

/// A single row of an experiment table: a label plus named numeric columns.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Row label (workload / parameter setting).
    pub label: String,
    /// Named numeric values.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Adds a named value.
    pub fn push(mut self, name: &str, value: f64) -> Self {
        self.values.push((name.to_string(), value));
        self
    }
}

/// Prints a table of rows with aligned columns, followed by optional JSON output when
/// the process was invoked with `--json`.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    // Header from the first row's value names.
    let headers: Vec<&str> = rows[0].values.iter().map(|(n, _)| n.as_str()).collect();
    print!("{:<26}", "workload");
    for h in &headers {
        print!(" {h:>14}");
    }
    println!();
    for row in rows {
        print!("{:<26}", row.label);
        for (_, v) in &row.values {
            if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                print!(" {v:>14.3e}");
            } else {
                print!(" {v:>14.3}");
            }
        }
        println!();
    }
    if std::env::args().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(rows).expect("serializable rows")
        );
    }
}

/// Measures the wall-clock time of a closure in milliseconds, returning the result too.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Parsed command line shared by every experiment binary, so that the common flags
/// (`--seed`, `--threads`, `--json`, `--json-out PATH`, `--bench-json PATH`,
/// `--trace-out PATH`, `--report-out PATH`) carry the same spelling and semantics
/// everywhere instead of each binary re-implementing its own `flag_value` helper.
#[derive(Debug, Clone)]
pub struct Cli {
    args: Vec<String>,
}

impl Cli {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Cli {
            args: std::env::args().collect(),
        }
    }

    /// Builds a CLI from explicit arguments (for tests).
    pub fn from_args(args: Vec<String>) -> Self {
        Cli { args }
    }

    /// Whether a bare flag (`--verify`, `--distributed`, …) is present.
    pub fn has(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    /// The value following `name`, if present.
    pub fn value(&self, name: &str) -> Option<String> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1).cloned())
    }

    /// An integer-valued flag with a default.
    pub fn usize_flag(&self, name: &str, default: usize) -> usize {
        self.value(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{name} takes an integer"))
            })
            .unwrap_or(default)
    }

    /// A float-valued flag with a default.
    pub fn f64_flag(&self, name: &str, default: f64) -> f64 {
        self.value(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("{name} takes a float")))
            .unwrap_or(default)
    }

    /// A `u64`-valued flag with a default.
    pub fn u64_flag(&self, name: &str, default: u64) -> u64 {
        self.value(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{name} takes an integer"))
            })
            .unwrap_or(default)
    }

    /// The `--seed` flag (configuration seed; workload generators keep their own
    /// pinned seeds so the graph under test stays comparable across runs).
    pub fn seed(&self, default: u64) -> u64 {
        self.u64_flag("--seed", default)
    }

    /// The `--threads 1,2,4` comma-list, with a default sweep.
    pub fn threads(&self, default: &[usize]) -> Vec<usize> {
        self.value("--threads")
            .map(|v| {
                v.split(',')
                    .map(|t| t.trim().parse().expect("--threads takes a comma list"))
                    .collect()
            })
            .unwrap_or_else(|| default.to_vec())
    }

    /// The `--trace-out PATH` flag: where to write the Chrome `trace_event` JSON.
    pub fn trace_out(&self) -> Option<String> {
        self.value("--trace-out")
    }

    /// The `--report-out PATH` flag: where to append the run's [`RunReport`] JSONL line.
    pub fn report_out(&self) -> Option<String> {
        self.value("--report-out")
    }

    /// Installs a global recording sink when `--trace-out` or `--report-out` is
    /// present, returning it for [`Cli::finish_observability`]. With neither flag the
    /// run stays untraced: [`sgs_obs::enabled`] remains false and every emission site
    /// is a single untaken branch.
    pub fn start_observability(&self) -> Option<&'static sgs_obs::RecordingSink> {
        if self.trace_out().is_some() || self.report_out().is_some() {
            Some(sgs_obs::install_recording())
        } else {
            None
        }
    }

    /// Uninstalls the sink and writes whatever the command line asked for: the Chrome
    /// trace to `--trace-out` and one appended `report` JSONL line to `--report-out`.
    pub fn finish_observability(
        &self,
        sink: Option<&'static sgs_obs::RecordingSink>,
        report: &RunReport,
    ) {
        let Some(sink) = sink else { return };
        sgs_obs::clear();
        let events = sink.take();
        if let Some(path) = self.trace_out() {
            std::fs::write(&path, sgs_obs::export_chrome_trace(&events))
                .expect("writing --trace-out file");
            println!("chrome trace written to {path} ({} events)", events.len());
        }
        if let Some(path) = self.report_out() {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .expect("opening --report-out file");
            writeln!(file, "{}", report.to_jsonl_line()).expect("writing --report-out file");
            println!("run report appended to {path}");
        }
    }

    /// Writes `rows` to the `--json-out` path when the flag is present.
    pub fn write_json_out(&self, rows: &[Row]) {
        if let Some(path) = self.value("--json-out") {
            let json = serde_json::to_string_pretty(rows).expect("serializable rows");
            std::fs::write(&path, json).expect("writing --json-out file");
            println!("rows written to {path}");
        }
    }

    /// Writes a [`BenchSnapshot`] to the `--bench-json` path when the flag is present.
    pub fn write_bench_json(&self, bench: &str, workload: &Workload, g: &Graph, rows: &[Row]) {
        self.write_bench_json_labeled(bench, &workload.label(), g.n(), g.m(), rows);
    }

    /// [`Cli::write_bench_json`] for experiments whose workload is never materialised
    /// as a [`Graph`] (e.g. generator-driven out-of-core streams): the label and sizes
    /// are passed explicitly.
    pub fn write_bench_json_labeled(
        &self,
        bench: &str,
        workload_label: &str,
        n: usize,
        m: usize,
        rows: &[Row],
    ) {
        if let Some(path) = self.value("--bench-json") {
            let snapshot = BenchSnapshot {
                bench: bench.to_string(),
                workload: workload_label.to_string(),
                graph_n: n,
                graph_m: m,
                host_cores: std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1),
                rows: rows.to_vec(),
            };
            let json = serde_json::to_string_pretty(&snapshot).expect("serializable snapshot");
            std::fs::write(&path, json).expect("writing --bench-json file");
            println!("perf snapshot written to {path}");
        }
    }
}

/// Repo-root perf snapshot (`BENCH_*.json`): one record per swept setting on one fixed
/// workload, diffed across commits by `bench_compare`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchSnapshot {
    /// Name of the experiment binary that produced the snapshot.
    pub bench: String,
    /// Workload label.
    pub workload: String,
    /// Vertices of the workload graph.
    pub graph_n: usize,
    /// Edges of the workload graph.
    pub graph_m: usize,
    /// Cores of the host that produced the snapshot.
    pub host_cores: usize,
    /// The measured rows.
    pub rows: Vec<Row>,
}

impl BenchSnapshot {
    /// Assembles a snapshot for one workload/graph pair.
    pub fn new(bench: &str, workload: &Workload, g: &Graph, rows: Vec<Row>) -> Self {
        BenchSnapshot {
            bench: bench.to_string(),
            workload: workload.label(),
            graph_n: g.n(),
            graph_m: g.m(),
            host_cores: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_nonempty_graphs() {
        let workloads = [
            Workload::ErdosRenyi { n: 100, deg: 10 },
            Workload::RandomRegular { n: 100, d: 6 },
            Workload::Grid { side: 10 },
            Workload::ImageGrid { side: 10 },
            Workload::Preferential { n: 100, k: 3 },
            Workload::Barbell { k: 10 },
        ];
        for w in workloads {
            let g = w.build(3);
            assert!(g.n() > 0, "{}", w.label());
            assert!(g.m() > 0, "{}", w.label());
            assert!(!w.label().is_empty());
        }
    }

    #[test]
    fn cli_flags_parse_with_shared_semantics() {
        let cli = Cli::from_args(
            [
                "exp",
                "--n",
                "100",
                "--seed",
                "9",
                "--threads",
                "1, 2,4",
                "--keep",
                "0.25",
                "--verify",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        assert_eq!(cli.usize_flag("--n", 4000), 100);
        assert_eq!(cli.usize_flag("--deg", 150), 150);
        assert_eq!(cli.seed(5), 9);
        assert_eq!(cli.threads(&[1, 2]), vec![1, 2, 4]);
        assert!((cli.f64_flag("--keep", 0.5) - 0.25).abs() < 1e-12);
        assert!(cli.has("--verify"));
        assert!(!cli.has("--json"));
        assert!(cli.value("--json-out").is_none());
    }

    #[test]
    fn bench_snapshot_captures_workload_shape() {
        let w = Workload::Barbell { k: 10 };
        let g = w.build(1);
        let snap = BenchSnapshot::new("exp_test", &w, &g, vec![Row::new("r").push("a", 1.0)]);
        assert_eq!(snap.bench, "exp_test");
        assert_eq!(snap.workload, w.label());
        assert_eq!(snap.graph_n, g.n());
        assert_eq!(snap.graph_m, g.m());
        assert!(snap.host_cores >= 1);
        assert_eq!(snap.rows.len(), 1);
    }

    #[test]
    fn rows_and_timer() {
        let row = Row::new("x").push("a", 1.0).push("b", 2.0);
        assert_eq!(row.values.len(), 2);
        let (v, ms) = time_ms(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        print_table("test table", &[row]);
        print_table("empty", &[]);
    }
}
