//! Perf-trajectory gate: compares two `exp_scaling --bench-json` snapshots and fails
//! (exit code 1) when a watched metric regressed by more than the allowed fraction on
//! the single-thread row, or when the candidate's multicore speedup falls below a
//! requested floor.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sgs-bench --bin bench_compare -- \
//!     BENCH_3.json BENCH_ci.json [--max-regress 0.25] [--metrics spanner_ms,sparsify_ms] \
//!     [--min-speedup 1.8 --speedup-metric sparsify_ms --speedup-threads 4]
//! ```
//!
//! The baseline and candidate must describe the same workload (the tool refuses to
//! compare apples to oranges). Only the `threads = 1` row is gated on regressions:
//! multi-thread wall-clock depends on the host's core count, which differs between the
//! machine that committed the baseline and the CI runner, while single-thread time is
//! the architecture-stable signal the >25% budget is meant for. When the two
//! snapshots' `host_cores` differ, the tool says so explicitly — their multi-thread
//! rows are not comparable to each other.
//!
//! The `--min-speedup` gate is *candidate-internal*: it divides the candidate's own
//! `threads = 1` wall-clock by its `threads = T` wall-clock, so it needs no
//! cross-host baseline. If the candidate snapshot was captured on fewer than `T`
//! cores (e.g. a 1-core container, where every speedup is legitimately ~1.0×), the
//! gate is skipped with a warning instead of failing.
//!
//! The vendored `serde_json` shim is serialize-only, so this tool carries a minimal
//! field scanner for the snapshot layout `exp_scaling` itself emits (string fields and
//! `["name", number]` pairs); it is not a general JSON parser.

use std::process::ExitCode;

/// Extracts the string value of `"key": "…"`.
fn string_field(json: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let rest = &json[at + pat.len()..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts the numeric second element of the `["name", number]` pair that follows
/// `anchor` (the row label), i.e. the named column of one snapshot row.
fn row_metric(json: &str, row_label: &str, metric: &str) -> Option<f64> {
    let row_pat = format!("\"{row_label}\"");
    let row_at = json.find(&row_pat)?;
    let rest = &json[row_at + row_pat.len()..];
    // Bound the scan at the next row's "label" key so a metric missing from this row
    // errors out instead of silently reading a later row's value.
    let row = match rest.find("\"label\"") {
        Some(next_row) => &rest[..next_row],
        None => rest,
    };
    let metric_pat = format!("\"{metric}\"");
    let at = row.find(&metric_pat)?;
    let rest = &row[at + metric_pat.len()..];
    let comma = rest.find(',')?;
    let tail = rest[comma + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Extracts the numeric value of a top-level `"key": N` field (e.g. `host_cores`).
/// Distinct from [`row_metric`]: snapshot scalars are plain JSON fields, not
/// `["name", number]` row pairs.
fn number_field(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let rest = &json[at + pat.len()..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run(args: &[String]) -> Result<(), String> {
    let files: Vec<&String> = args
        .iter()
        .skip(1)
        .take_while(|a| !a.starts_with("--"))
        .collect();
    let [baseline_path, current_path] = files.as_slice() else {
        return Err(
            "usage: bench_compare <baseline.json> <current.json> [--max-regress F] [--metrics a,b]"
                .into(),
        );
    };
    let max_regress: f64 = flag_value(args, "--max-regress")
        .map(|v| v.parse().expect("--max-regress takes a float"))
        .unwrap_or(0.25);
    let metrics: Vec<String> = flag_value(args, "--metrics")
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_else(|| vec!["spanner_ms".to_string(), "sparsify_ms".to_string()]);
    let min_speedup: Option<f64> =
        flag_value(args, "--min-speedup").map(|v| v.parse().expect("--min-speedup takes a float"));
    let speedup_metric =
        flag_value(args, "--speedup-metric").unwrap_or_else(|| "sparsify_ms".to_string());
    let speedup_threads: usize = flag_value(args, "--speedup-threads")
        .map(|v| v.parse().expect("--speedup-threads takes an integer"))
        .unwrap_or(4);

    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    let current = std::fs::read_to_string(current_path)
        .map_err(|e| format!("reading {current_path}: {e}"))?;

    let wl_base = string_field(&baseline, "workload")
        .ok_or_else(|| format!("{baseline_path}: no workload field"))?;
    let wl_cur = string_field(&current, "workload")
        .ok_or_else(|| format!("{current_path}: no workload field"))?;
    if wl_base != wl_cur {
        return Err(format!(
            "workload mismatch: baseline is {wl_base}, candidate is {wl_cur}"
        ));
    }

    let cores_base = number_field(&baseline, "host_cores");
    let cores_cur = number_field(&current, "host_cores");
    if cores_base != cores_cur {
        // Wall-clock rows from different hosts are not mutually comparable; the
        // regression gate below stays valid because it reads only the
        // architecture-stable threads = 1 row, but say so loudly.
        println!(
            "note: host_cores differ (baseline {}, candidate {}); multi-thread rows are not \
             cross-comparable, gating only the single-thread row",
            cores_base.map_or("?".to_string(), |c| format!("{c:.0}")),
            cores_cur.map_or("?".to_string(), |c| format!("{c:.0}")),
        );
    }

    let row = "threads = 1";
    let mut failures = Vec::new();
    println!(
        "perf gate: {wl_cur} @ {row}, budget {:.0}%",
        max_regress * 100.0
    );
    for metric in &metrics {
        let base = row_metric(&baseline, row, metric)
            .ok_or_else(|| format!("{baseline_path}: missing {metric} in '{row}' row"))?;
        let cur = row_metric(&current, row, metric)
            .ok_or_else(|| format!("{current_path}: missing {metric} in '{row}' row"))?;
        let ratio = cur / base;
        let verdict = if ratio > 1.0 + max_regress {
            failures.push(metric.clone());
            "REGRESSION"
        } else if ratio < 1.0 {
            "improved"
        } else {
            "ok"
        };
        println!("  {metric:>12}: {base:10.3} ms -> {cur:10.3} ms  ({ratio:5.2}x)  {verdict}");
    }

    if let Some(min) = min_speedup {
        // Candidate-internal: threads = 1 vs threads = T from the *same* snapshot, so
        // no cross-host baseline is involved.
        match cores_cur {
            Some(cores) if cores >= speedup_threads as f64 => {
                let t_row = format!("threads = {speedup_threads}");
                let one = row_metric(&current, row, &speedup_metric).ok_or_else(|| {
                    format!("{current_path}: missing {speedup_metric} in '{row}' row")
                })?;
                let many = row_metric(&current, &t_row, &speedup_metric).ok_or_else(|| {
                    format!("{current_path}: missing {speedup_metric} in '{t_row}' row")
                })?;
                let speedup = one / many;
                if speedup < min {
                    println!(
                        "  {speedup_metric} speedup @ {speedup_threads} threads: {speedup:.2}x < {min:.2}x  SCALING FAILURE"
                    );
                    failures.push(format!(
                        "{speedup_metric} speedup ({speedup:.2}x < {min:.2}x)"
                    ));
                } else {
                    println!(
                        "  {speedup_metric} speedup @ {speedup_threads} threads: {speedup:.2}x >= {min:.2}x  ok"
                    );
                }
            }
            Some(cores) => println!(
                "  speedup gate SKIPPED: candidate snapshot captured on {cores:.0} core(s) < \
                 {speedup_threads} gate threads (speedups ~1.0x are expected there)"
            ),
            None => println!("  speedup gate SKIPPED: candidate snapshot has no host_cores field"),
        }
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "perf gate failed ({:.0}% single-thread budget): {}",
            max_regress * 100.0,
            failures.join(", ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_compare: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
  "bench": "exp_scaling",
  "workload": "er(n=4000,deg=150)",
  "host_cores": 1,
  "rows": [
    {
      "label": "threads = 1",
      "values": [["threads", 1], ["sparsify_ms", 663.892947], ["spanner_ms", 119.033917]]
    },
    {
      "label": "threads = 2",
      "values": [["threads", 2], ["sparsify_ms", 705.98], ["spanner_ms", 127.16], ["only_here", 3.5]]
    }
  ]
}"#;

    /// A 4-core capture of the same workload: threads = 4 runs 2.4x faster than
    /// threads = 1, which clears a 1.8x speedup floor.
    const SNAPSHOT_4CORE: &str = r#"{
  "bench": "exp_scaling",
  "workload": "er(n=4000,deg=150)",
  "host_cores": 4,
  "rows": [
    {
      "label": "threads = 1",
      "values": [["threads", 1], ["sparsify_ms", 660.0], ["spanner_ms", 120.0]]
    },
    {
      "label": "threads = 4",
      "values": [["threads", 4], ["sparsify_ms", 275.0], ["spanner_ms", 55.0]]
    }
  ]
}"#;

    #[test]
    fn extracts_fields_and_row_metrics() {
        assert_eq!(
            string_field(SNAPSHOT, "workload").as_deref(),
            Some("er(n=4000,deg=150)")
        );
        assert_eq!(number_field(SNAPSHOT, "host_cores"), Some(1.0));
        assert_eq!(number_field(SNAPSHOT_4CORE, "host_cores"), Some(4.0));
        assert_eq!(number_field(SNAPSHOT, "no_such_field"), None);
        let v = row_metric(SNAPSHOT, "threads = 1", "spanner_ms").unwrap();
        assert!((v - 119.033917).abs() < 1e-9);
        let v2 = row_metric(SNAPSHOT, "threads = 2", "sparsify_ms").unwrap();
        assert!((v2 - 705.98).abs() < 1e-9);
        assert!(row_metric(SNAPSHOT, "threads = 1", "nope").is_none());
        // A metric present only in a *later* row must not leak into this row's lookup.
        assert!(row_metric(SNAPSHOT, "threads = 1", "only_here").is_none());
        let v3 = row_metric(SNAPSHOT, "threads = 2", "only_here").unwrap();
        assert!((v3 - 3.5).abs() < 1e-12);
    }

    #[test]
    fn gate_passes_and_fails_correctly() {
        let dir = std::env::temp_dir();
        let base_path = dir.join("bench_compare_base.json");
        let fast_path = dir.join("bench_compare_fast.json");
        let slow_path = dir.join("bench_compare_slow.json");
        std::fs::write(&base_path, SNAPSHOT).unwrap();
        std::fs::write(&fast_path, SNAPSHOT.replace("663.892947", "400.0")).unwrap();
        std::fs::write(&slow_path, SNAPSHOT.replace("663.892947", "900.0")).unwrap();
        let argv = |cur: &std::path::Path| {
            vec![
                "bench_compare".to_string(),
                base_path.to_string_lossy().into_owned(),
                cur.to_string_lossy().into_owned(),
            ]
        };
        assert!(run(&argv(&fast_path)).is_ok());
        let err = run(&argv(&slow_path)).unwrap_err();
        assert!(err.contains("sparsify_ms"), "{err}");
        // Workload mismatch is refused.
        let other_path = dir.join("bench_compare_other.json");
        std::fs::write(&other_path, SNAPSHOT.replace("n=4000", "n=2000")).unwrap();
        let err = run(&argv(&other_path)).unwrap_err();
        assert!(err.contains("workload mismatch"), "{err}");
    }

    #[test]
    fn speedup_gate_passes_fails_and_skips() {
        let dir = std::env::temp_dir();
        let base_path = dir.join("bench_compare_su_base.json");
        let scaling_path = dir.join("bench_compare_su_ok.json");
        let flat_path = dir.join("bench_compare_su_flat.json");
        let onecore_path = dir.join("bench_compare_su_1core.json");
        std::fs::write(&base_path, SNAPSHOT_4CORE).unwrap();
        // Scales 2.4x at 4 threads.
        std::fs::write(&scaling_path, SNAPSHOT_4CORE).unwrap();
        // Barely scales: 660 -> 600 is 1.1x, under the 1.8x floor.
        std::fs::write(&flat_path, SNAPSHOT_4CORE.replace("275.0", "600.0")).unwrap();
        // Captured on a 1-core host: the gate must skip, not fail, even though the
        // snapshot's own speedup is ~1.0x.
        std::fs::write(
            &onecore_path,
            SNAPSHOT_4CORE
                .replace("\"host_cores\": 4", "\"host_cores\": 1")
                .replace("275.0", "660.0"),
        )
        .unwrap();
        let argv = |cur: &std::path::Path| {
            vec![
                "bench_compare".to_string(),
                base_path.to_string_lossy().into_owned(),
                cur.to_string_lossy().into_owned(),
                "--min-speedup".to_string(),
                "1.8".to_string(),
                "--speedup-metric".to_string(),
                "sparsify_ms".to_string(),
                "--speedup-threads".to_string(),
                "4".to_string(),
            ]
        };
        assert!(run(&argv(&scaling_path)).is_ok());
        let err = run(&argv(&flat_path)).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
        assert!(run(&argv(&onecore_path)).is_ok());
        // Without --min-speedup the flat snapshot passes (regression gate only looks
        // at the unchanged threads = 1 row).
        let argv_nogate = vec![
            "bench_compare".to_string(),
            base_path.to_string_lossy().into_owned(),
            flat_path.to_string_lossy().into_owned(),
        ];
        assert!(run(&argv_nogate).is_ok());
    }
}
