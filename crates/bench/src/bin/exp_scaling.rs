//! Experiment E6 — parallel scalability (the CRCW PRAM → rayon substitution).
//!
//! Runs PARALLELSPARSIFY and the Baswana–Sen spanner on a fixed dense graph under rayon
//! thread pools of growing size and reports wall-clock speed-ups, plus the work counter
//! (which is thread-count independent, as the PRAM work measure should be).
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_scaling [-- FLAGS]`
//!
//! Flags:
//! * `--n N` / `--deg D` — workload size: Erdős–Rényi with `N` vertices and expected
//!   average degree `D` (defaults 4000 / 150, ≈300k edges).
//! * `--threads 1,2,4` — comma-separated pool widths to sweep (default `1,2,4,8,16`).
//! * `--seed S` — configuration seed (default 5; the workload graph keeps its own
//!   pinned seed so runs stay comparable).
//! * `--distributed` — also run the distributed (CONGEST) pipeline per thread count and
//!   append `dist_sample_ms` / `dist_spanner_ms` wall-clock plus the communication
//!   columns `dist_rounds` / `dist_messages` / `dist_bits` (which must be identical
//!   across rows: the simulator's accounting is deterministic per seed).
//! * `--json` — append the rows as JSON to stdout (as in every experiment binary).
//! * `--json-out PATH` — write the rows as a JSON file (for CI artifacts).
//! * `--bench-json PATH` — write a `BENCH_*.json` perf snapshot (graph size, host
//!   cores, wall-clock per thread count) for the repo-root perf trajectory.
//! * `--trace-out PATH` / `--report-out PATH` — record the run through `sgs-obs` and
//!   write a Chrome `trace_event` JSON / append a `RunReport` JSONL line. Tracing
//!   changes no output: the kept edge set and every counter stay byte-identical.
//!
//! Reading the output: `sparsify_ms` / `spanner_ms` / `bundle_ms` are wall-clock; the
//! `*_speedup` columns are relative to the first (usually 1-thread) row, so ideal
//! scaling shows `speedup ≈ threads` until the machine runs out of cores. The
//! `decide_ms` / `apply_ms` / `sweep_ms` / `join_ms` / `sampling_ms` columns break the
//! sparsify wall-clock into the engine's phases — in particular `apply_ms` must shrink
//! with the pool like `decide_ms` does, demonstrating that the decision commit is no
//! longer a serial section. `work_ops`, `m_out`, `spanner_edges` and `bundle_edges`
//! must be **identical** across rows — the outputs are deterministic per seed
//! regardless of the thread count; only the wall clock (and hence the phase timings)
//! may change. `bench_compare` diffs two `--bench-json` snapshots and fails on
//! single-thread wall-clock regressions (the CI perf gate).

use sgs_bench::{print_table, report, time_ms, Cli, Row, Workload};
use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};
use sgs_distributed::{distributed_sample, distributed_spanner, DistSpannerConfig};
use sgs_obs::RunReport;
use sgs_spanner::{baswana_sen_spanner, t_bundle, BundleConfig, SpannerConfig};

fn main() {
    let cli = Cli::parse();
    let sink = cli.start_observability();
    let n = cli.usize_flag("--n", 4000);
    let deg = cli.usize_flag("--deg", 150);
    let thread_counts = cli.threads(&[1, 2, 4, 8, 16]);
    let distributed = cli.has("--distributed");
    let seed = cli.seed(5);

    let workload = Workload::ErdosRenyi { n, deg };
    let g = workload.build(51);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    let cfg = SparsifyConfig::new(0.75, 8.0)
        .with_bundle_sizing(BundleSizing::Fixed(4))
        .with_seed(seed);

    let mut rows = Vec::new();
    let mut baseline_sparsify = f64::NAN;
    let mut baseline_spanner = f64::NAN;
    let mut last_work = None;
    let mut last_net = None;
    for &threads in &thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let (sparsify_out, sparsify_ms) = pool.install(|| {
            let mut cfg = cfg.clone();
            cfg.parallel = true;
            time_ms(|| parallel_sparsify(&g, &cfg))
        });
        let (spanner_out, spanner_ms) =
            pool.install(|| time_ms(|| baswana_sen_spanner(&g, &SpannerConfig::with_seed(3))));
        let (bundle_out, bundle_ms) =
            pool.install(|| time_ms(|| t_bundle(&g, &BundleConfig::new(3).with_seed(3))));
        if baseline_sparsify.is_nan() {
            baseline_sparsify = sparsify_ms;
            baseline_spanner = spanner_ms;
        }
        let mut row = Row::new(format!("threads = {threads}"))
            .push("threads", threads as f64)
            .push("sparsify_ms", sparsify_ms)
            .push("sparsify_speedup", baseline_sparsify / sparsify_ms)
            .push("decide_ms", sparsify_out.phases.spanner.decide_ms)
            .push("apply_ms", sparsify_out.phases.spanner.apply_ms)
            .push("sweep_ms", sparsify_out.phases.spanner.sweep_ms)
            .push("join_ms", sparsify_out.phases.spanner.join_ms)
            .push("sampling_ms", sparsify_out.phases.sampling_ms)
            .push("spanner_ms", spanner_ms)
            .push("spanner_speedup", baseline_spanner / spanner_ms)
            .push("bundle_ms", bundle_ms)
            .push("work_ops", sparsify_out.stats.total_work() as f64)
            .push("m_out", sparsify_out.sparsifier.m() as f64)
            .push("spanner_edges", spanner_out.edge_ids.len() as f64)
            .push("bundle_edges", bundle_out.bundle_size as f64);
        last_work = Some(sparsify_out.stats.clone());
        if distributed {
            // Same workload through the CONGEST simulator: the wall clock tracks the
            // engine, the rounds/messages/bits columns track Theorem 2 / Corollary 3
            // accounting (deterministic per seed, so identical across thread rows).
            let dist_cfg = SparsifyConfig::new(0.75, 4.0)
                .with_bundle_sizing(BundleSizing::Fixed(2))
                .with_seed(seed);
            let (dist_out, dist_sample_ms) =
                pool.install(|| time_ms(|| distributed_sample(&g, &dist_cfg)));
            let (dist_sp, dist_spanner_ms) = pool
                .install(|| time_ms(|| distributed_spanner(&g, &DistSpannerConfig::with_seed(3))));
            row = row
                .push("dist_sample_ms", dist_sample_ms)
                .push("dist_spanner_ms", dist_spanner_ms)
                .push("dist_rounds", dist_out.metrics.rounds as f64)
                .push("dist_messages", dist_out.metrics.messages as f64)
                .push("dist_bits", dist_out.metrics.total_bits as f64)
                .push("dist_m_out", dist_out.sparsifier.m() as f64)
                .push("dist_spanner_edges", dist_sp.edge_ids.len() as f64);
            last_net = Some(dist_out.metrics.clone());
        }
        rows.push(row);
    }
    print_table(
        "E6: parallel scalability — wall clock vs threads at fixed work (CRCW PRAM substitute)",
        &rows,
    );
    println!(
        "the work counter and the outputs are identical across thread counts (deterministic\n\
         seeding); only the wall clock changes, which is the PRAM work/depth separation."
    );

    cli.write_json_out(&rows);
    cli.write_bench_json("exp_scaling", &workload, &g, &rows);

    let mut run_report = RunReport::new("exp_scaling", &workload.label());
    for section in report::rows_sections(&rows) {
        run_report.push(section);
    }
    if let Some(work) = &last_work {
        run_report.push(report::work_stats_section(work));
    }
    if let Some(metrics) = &last_net {
        run_report.push(report::network_metrics_section(metrics));
    }
    cli.finish_observability(sink, &run_report);
}
