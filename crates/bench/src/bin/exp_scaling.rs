//! Experiment E6 — parallel scalability (the CRCW PRAM → rayon substitution).
//!
//! Runs PARALLELSPARSIFY and the Baswana–Sen spanner on a fixed dense graph under rayon
//! thread pools of growing size and reports wall-clock speed-ups, plus the work counter
//! (which is thread-count independent, as the PRAM work measure should be).
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_scaling [--json]`

use sgs_bench::{print_table, time_ms, Row, Workload};
use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};
use sgs_spanner::{baswana_sen_spanner, SpannerConfig};

fn main() {
    let g = Workload::ErdosRenyi { n: 4000, deg: 150 }.build(51);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    let cfg = SparsifyConfig::new(0.75, 8.0)
        .with_bundle_sizing(BundleSizing::Fixed(4))
        .with_seed(5);

    let mut rows = Vec::new();
    let mut baseline_sparsify = f64::NAN;
    let mut baseline_spanner = f64::NAN;
    for threads in [1usize, 2, 4, 8, 16] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let (sparsify_out, sparsify_ms) = pool.install(|| {
            let mut cfg = cfg.clone();
            cfg.parallel = true;
            time_ms(|| parallel_sparsify(&g, &cfg))
        });
        let (spanner_out, spanner_ms) =
            pool.install(|| time_ms(|| baswana_sen_spanner(&g, &SpannerConfig::with_seed(3))));
        if threads == 1 {
            baseline_sparsify = sparsify_ms;
            baseline_spanner = spanner_ms;
        }
        rows.push(
            Row::new(format!("threads = {threads}"))
                .push("sparsify_ms", sparsify_ms)
                .push("sparsify_speedup", baseline_sparsify / sparsify_ms)
                .push("spanner_ms", spanner_ms)
                .push("spanner_speedup", baseline_spanner / spanner_ms)
                .push("work_ops", sparsify_out.stats.total_work() as f64)
                .push("m_out", sparsify_out.sparsifier.m() as f64)
                .push("spanner_edges", spanner_out.edge_ids.len() as f64),
        );
    }
    print_table(
        "E6: parallel scalability — wall clock vs threads at fixed work (CRCW PRAM substitute)",
        &rows,
    );
    println!(
        "the work counter and the outputs are identical across thread counts (deterministic\n\
         seeding); only the wall clock changes, which is the PRAM work/depth separation."
    );
}
