//! Experiment E1 — Theorem 1: Baswana–Sen spanner size, stretch and work.
//!
//! For each workload and size, reports the spanner edge count against the `n log n`
//! scale, the maximum stretch against the `2 log n` bound, and the measured work counter
//! against `m log n`.
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_spanner [--json]`

use sgs_bench::{print_table, time_ms, Row, Workload};
use sgs_graph::{connectivity::is_connected, stretch};
use sgs_spanner::{baswana_sen_spanner, SpannerConfig};

fn main() {
    let mut rows = Vec::new();
    let sizes = [1000usize, 2000, 4000, 8000];
    for &n in &sizes {
        for workload in [
            Workload::ErdosRenyi { n, deg: 32 },
            Workload::RandomRegular { n, d: 16 },
        ] {
            let g = workload.build(7);
            if !is_connected(&g) {
                continue;
            }
            let log_n = (n as f64).log2();
            let (result, ms) = time_ms(|| baswana_sen_spanner(&g, &SpannerConfig::with_seed(3)));
            let h = result.to_graph(&g);
            // Max stretch is expensive on the largest instances; sample it on a subset
            // by computing it only for n <= 4000.
            let max_stretch = if n <= 4000 {
                stretch::max_stretch(&g, &h)
            } else {
                f64::NAN
            };
            rows.push(
                Row::new(workload.label())
                    .push("m", g.m() as f64)
                    .push("spanner_edges", result.edge_ids.len() as f64)
                    .push(
                        "edges/(n log n)",
                        result.edge_ids.len() as f64 / (n as f64 * log_n),
                    )
                    .push("max_stretch", max_stretch)
                    .push("2 log n", 2.0 * log_n)
                    .push(
                        "work/(m log n)",
                        result.work as f64 / (g.m() as f64 * log_n),
                    )
                    .push("time_ms", ms),
            );
        }
    }
    print_table(
        "E1: Baswana-Sen spanner (Theorem 1) — size O(n log n), stretch <= 2 log n, work O(m log n)",
        &rows,
    );
}
