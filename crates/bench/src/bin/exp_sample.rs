//! Experiment E4 — Theorem 4: one round of PARALLELSAMPLE.
//!
//! Sweeps the accuracy parameter (through the bundle size) and reports the output edge
//! count against the `bundle + m/4` prediction, the certified spectral bounds, and the
//! work counters against `O(m log³ n / ε²)`.
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_sample [--json]`

use sgs_bench::{print_table, time_ms, Row, Workload};
use sgs_core::{parallel_sample, BundleSizing, SparsifyConfig};
use sgs_linalg::spectral::CertifyOptions;

fn main() {
    let workload = Workload::ErdosRenyi { n: 1000, deg: 100 };
    let g = workload.build(13);
    println!("graph: {} with m = {}", workload.label(), g.m());

    let mut rows = Vec::new();
    for t in [1usize, 2, 4, 8, 16] {
        let cfg = SparsifyConfig::new(0.5, 2.0)
            .with_bundle_sizing(BundleSizing::Fixed(t))
            .with_seed(7);
        let (out, ms) = time_ms(|| parallel_sample(&g, &cfg));
        let predicted = out.stats.bundle_edges_per_round[0] as f64
            + (g.m() - out.stats.bundle_edges_per_round[0]) as f64 / 4.0;
        let bounds = sgs_linalg::spectral::approximation_bounds(
            &g,
            &out.sparsifier,
            &CertifyOptions::default(),
        );
        rows.push(
            Row::new(format!("t = {t}"))
                .push("bundle", out.bundle_edges as f64)
                .push("sampled", out.sampled_edges as f64)
                .push("m_out", out.sparsifier.m() as f64)
                .push("predicted", predicted)
                .push("lower", bounds.lower)
                .push("upper", bounds.upper)
                .push("eps_achieved", bounds.epsilon())
                .push("time_ms", ms),
        );
    }
    print_table(
        "E4: PARALLELSAMPLE (Theorem 4) — output size vs bundle + m/4, certified (1±eps) bounds",
        &rows,
    );
    println!(
        "larger bundles (larger t) tighten the certified epsilon at the cost of a larger output,\n\
         which is exactly the trade-off the t = O(log^2 n / eps^2) setting of Theorem 4 resolves."
    );
}
