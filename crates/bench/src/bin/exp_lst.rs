//! Experiment E10 — Remark 2: trees instead of spanners in the bundle.
//!
//! Compares the spanner-bundle sparsifier with the tree-bundle variant at equal `t`:
//! bundle size (the tree bundle should be roughly a `log n` factor smaller), output
//! size, and the certified spectral bounds (the tree variant trades size for a looser
//! certificate, since our trees only control *average* stretch).
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_lst [--json]`

use sgs_bench::{print_table, time_ms, Row, Workload};
use sgs_core::lst::tree_bundle_sample;
use sgs_core::{parallel_sample, BundleSizing, SparsifyConfig};
use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};

fn main() {
    let workload = Workload::ErdosRenyi { n: 1000, deg: 80 };
    let g = workload.build(41);
    println!(
        "graph: {} with n = {}, m = {}",
        workload.label(),
        g.n(),
        g.m()
    );
    let log_n = (g.n() as f64).log2();

    let mut rows = Vec::new();
    for t in [2usize, 4, 8] {
        let cfg = SparsifyConfig::new(0.5, 2.0)
            .with_bundle_sizing(BundleSizing::Fixed(t))
            .with_seed(3);
        let (spanner_out, spanner_ms) = time_ms(|| parallel_sample(&g, &cfg));
        let spanner_bounds =
            approximation_bounds(&g, &spanner_out.sparsifier, &CertifyOptions::default());
        let (tree_out, tree_ms) = time_ms(|| tree_bundle_sample(&g, t, &cfg));
        let tree_bounds =
            approximation_bounds(&g, &tree_out.sparsifier, &CertifyOptions::default());
        rows.push(
            Row::new(format!("t = {t} spanner-bundle"))
                .push("bundle", spanner_out.bundle_edges as f64)
                .push("m_out", spanner_out.sparsifier.m() as f64)
                .push("lower", spanner_bounds.lower)
                .push("upper", spanner_bounds.upper)
                .push("time_ms", spanner_ms),
        );
        rows.push(
            Row::new(format!("t = {t} tree-bundle"))
                .push("bundle", tree_out.bundle_edges as f64)
                .push("m_out", tree_out.sparsifier.m() as f64)
                .push("lower", tree_bounds.lower)
                .push("upper", tree_bounds.upper)
                .push("time_ms", tree_ms),
        );
    }
    print_table(
        "E10: Remark 2 — spanner bundles vs tree bundles at equal t",
        &rows,
    );
    println!(
        "expected shape: the tree bundle is roughly a log n ≈ {log_n:.1} factor smaller per\n\
         component, with somewhat looser (but still two-sided) certified bounds."
    );
}
