//! Perf-trajectory registry: appends an `exp_scaling --bench-json` snapshot as one
//! JSONL row to the repo-root `PERF_HISTORY.jsonl`, so every CI scaling run on `main`
//! leaves a queryable record (commit, host cores, full row set) instead of silently
//! overwriting the previous number.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sgs-bench --bin perf_history -- \
//!     BENCH_7.json --commit abc1234 [--source BENCH_7.json] [--history PERF_HISTORY.jsonl]
//! ```
//!
//! Each line of the history is a self-contained JSON object:
//!
//! ```text
//! {"commit":"abc1234","source":"BENCH_7.json","snapshot":{...}}
//! ```
//!
//! where `snapshot` is the snapshot file verbatim, minified to one line. The snapshot
//! already carries `workload`, `host_cores` and the per-thread rows, so a history line
//! never needs the original file again. Appends are idempotent per (commit, source):
//! re-running on the same commit is a no-op, so a CI retry doesn't duplicate rows.
//!
//! The vendored `serde_json` shim is serialize-only, so minification is textual: the
//! input must already be valid JSON (which `exp_scaling` guarantees for its own
//! output); this tool only strips inter-token whitespace, respecting string literals.

use std::process::ExitCode;

/// Strips whitespace outside string literals, collapsing a pretty-printed JSON
/// document to one line. Not a validator: it assumes well-formed input.
fn minify_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
            out.push(c);
        } else if !c.is_whitespace() {
            out.push(c);
        }
    }
    out
}

/// Escapes a string for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run(args: &[String]) -> Result<(), String> {
    let files: Vec<&String> = args
        .iter()
        .skip(1)
        .take_while(|a| !a.starts_with("--"))
        .collect();
    let [snapshot_path] = files.as_slice() else {
        return Err(
            "usage: perf_history <snapshot.json> --commit SHA [--source LABEL] [--history PATH]"
                .into(),
        );
    };
    let commit = flag_value(args, "--commit").ok_or("--commit SHA is required")?;
    let source = flag_value(args, "--source").unwrap_or_else(|| snapshot_path.to_string());
    let history_path =
        flag_value(args, "--history").unwrap_or_else(|| "PERF_HISTORY.jsonl".to_string());

    let snapshot = std::fs::read_to_string(snapshot_path)
        .map_err(|e| format!("reading {snapshot_path}: {e}"))?;
    let line = format!(
        "{{\"commit\":\"{}\",\"source\":\"{}\",\"snapshot\":{}}}",
        escape_json(&commit),
        escape_json(&source),
        minify_json(&snapshot)
    );

    let existing = std::fs::read_to_string(&history_path).unwrap_or_default();
    let key = format!(
        "{{\"commit\":\"{}\",\"source\":\"{}\"",
        escape_json(&commit),
        escape_json(&source)
    );
    if existing.lines().any(|l| l.starts_with(&key)) {
        println!("perf_history: {history_path} already has ({commit}, {source}); nothing to do");
        return Ok(());
    }

    let mut out = existing;
    if !out.is_empty() && !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&line);
    out.push('\n');
    std::fs::write(&history_path, out).map_err(|e| format!("writing {history_path}: {e}"))?;
    println!("perf_history: appended ({commit}, {source}) to {history_path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("perf_history: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minify_strips_whitespace_but_not_string_contents() {
        let pretty =
            "{\n  \"workload\": \"er(n=4000, deg=150)\",\n  \"rows\": [ [\"a b\", 1.5] ]\n}";
        assert_eq!(
            minify_json(pretty),
            "{\"workload\":\"er(n=4000, deg=150)\",\"rows\":[[\"a b\",1.5]]}"
        );
        // Escaped quotes inside strings don't terminate the literal.
        assert_eq!(minify_json("{\"k\": \"a\\\" b\"}"), "{\"k\":\"a\\\" b\"}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn append_is_idempotent_per_commit_and_source() {
        let dir = std::env::temp_dir();
        let snap_path = dir.join("perf_history_snap.json");
        let hist_path = dir.join("perf_history_test.jsonl");
        std::fs::write(
            &snap_path,
            "{\n  \"workload\": \"er\",\n  \"host_cores\": 1\n}",
        )
        .unwrap();
        let _ = std::fs::remove_file(&hist_path);
        let argv = |commit: &str| {
            vec![
                "perf_history".to_string(),
                snap_path.to_string_lossy().into_owned(),
                "--commit".to_string(),
                commit.to_string(),
                "--source".to_string(),
                "BENCH_X.json".to_string(),
                "--history".to_string(),
                hist_path.to_string_lossy().into_owned(),
            ]
        };
        run(&argv("aaa1111")).unwrap();
        run(&argv("aaa1111")).unwrap(); // retry: must not duplicate
        run(&argv("bbb2222")).unwrap();
        let hist = std::fs::read_to_string(&hist_path).unwrap();
        let lines: Vec<&str> = hist.lines().collect();
        assert_eq!(lines.len(), 2, "{hist}");
        assert_eq!(
            lines[0],
            "{\"commit\":\"aaa1111\",\"source\":\"BENCH_X.json\",\"snapshot\":{\"workload\":\"er\",\"host_cores\":1}}"
        );
        assert!(lines[1].starts_with("{\"commit\":\"bbb2222\""), "{hist}");
    }

    #[test]
    fn missing_commit_is_an_error() {
        let err = run(&["perf_history".to_string(), "x.json".to_string()]).unwrap_err();
        assert!(err.contains("--commit"), "{err}");
    }
}
