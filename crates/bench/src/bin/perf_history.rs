//! Perf-trajectory registry: appends an `exp_scaling --bench-json` snapshot as one
//! JSONL row to the repo-root `PERF_HISTORY.jsonl`, so every CI scaling run on `main`
//! leaves a queryable record (commit, host cores, full row set) instead of silently
//! overwriting the previous number.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sgs-bench --bin perf_history -- \
//!     BENCH_7.json --commit abc1234 [--source BENCH_7.json] [--history PERF_HISTORY.jsonl]
//! ```
//!
//! Each line of the history is a self-contained JSON object:
//!
//! ```text
//! {"commit":"abc1234","source":"BENCH_7.json","snapshot":{...}}
//! ```
//!
//! where `snapshot` is the snapshot file verbatim, minified to one line. The snapshot
//! already carries `workload`, `host_cores` and the per-thread rows, so a history line
//! never needs the original file again. Appends are idempotent per (commit, source):
//! re-running on the same commit is a no-op, so a CI retry doesn't duplicate rows.
//!
//! The vendored `serde_json` shim is serialize-only, so minification is textual: the
//! input must already be valid JSON (which `exp_scaling` guarantees for its own
//! output); this tool only strips inter-token whitespace, respecting string literals.
//!
//! # Report mode
//!
//! ```text
//! cargo run --release -p sgs-bench --bin perf_history -- report \
//!     [--history PERF_HISTORY.jsonl] [--metrics sparsify_ms,spanner_ms] [--max-regress 0.25]
//! ```
//!
//! Parses the history back (via `sgs_obs::json`) and summarises the trend of each
//! `(source, metric)` pair on the single-thread row: first / last / best value and how
//! many commit-to-commit steps exceeded the regression budget (default 25%, matching
//! the CI `bench_compare` gate). Metrics default to every `*_ms` wall-clock column.

use std::process::ExitCode;

use sgs_obs::json;

/// Strips whitespace outside string literals, collapsing a pretty-printed JSON
/// document to one line. Not a validator: it assumes well-formed input.
fn minify_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
            out.push(c);
        } else if !c.is_whitespace() {
            out.push(c);
        }
    }
    out
}

/// Escapes a string for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// One `(commit, source)` history line reduced to the single-thread row's metrics.
struct HistoryEntry {
    commit: String,
    source: String,
    metrics: Vec<(String, f64)>,
}

/// Pulls the `threads = 1` row (falling back to the first row) out of one parsed
/// history line. Rows serialize as `{"label": ..., "values": [["name", v], ...]}`.
fn entry_metrics(snapshot: &serde::Value) -> Vec<(String, f64)> {
    let Some(rows) = json::get(snapshot, "rows").and_then(json::as_array) else {
        return Vec::new();
    };
    let row = rows
        .iter()
        .find(|r| json::get(r, "label").and_then(json::as_str) == Some("threads = 1"))
        .or_else(|| rows.first());
    let Some(values) = row
        .and_then(|r| json::get(r, "values"))
        .and_then(json::as_array)
    else {
        return Vec::new();
    };
    values
        .iter()
        .filter_map(|pair| {
            let pair = json::as_array(pair)?;
            let name = json::as_str(pair.first()?)?;
            let value = json::as_f64(pair.get(1)?)?;
            Some((name.to_string(), value))
        })
        .collect()
}

fn report(args: &[String]) -> Result<(), String> {
    let history_path =
        flag_value(args, "--history").unwrap_or_else(|| "PERF_HISTORY.jsonl".to_string());
    let budget = flag_value(args, "--max-regress")
        .map(|v| v.parse::<f64>().map_err(|e| format!("--max-regress: {e}")))
        .transpose()?
        .unwrap_or(0.25);
    let wanted: Option<Vec<String>> =
        flag_value(args, "--metrics").map(|v| v.split(',').map(|m| m.trim().to_string()).collect());

    let text = std::fs::read_to_string(&history_path)
        .map_err(|e| format!("reading {history_path}: {e}"))?;
    let mut entries = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("{history_path}:{}: {e}", idx + 1))?;
        let commit = json::get(&v, "commit")
            .and_then(json::as_str)
            .unwrap_or("?")
            .to_string();
        let source = json::get(&v, "source")
            .and_then(json::as_str)
            .unwrap_or("?")
            .to_string();
        let snapshot = json::get(&v, "snapshot")
            .ok_or_else(|| format!("{history_path}:{}: missing snapshot", idx + 1))?;
        entries.push(HistoryEntry {
            commit,
            source,
            metrics: entry_metrics(snapshot),
        });
    }
    if entries.is_empty() {
        println!("perf_history report: {history_path} is empty");
        return Ok(());
    }

    // Group by source, preserving first-seen order.
    let mut sources: Vec<String> = Vec::new();
    for e in &entries {
        if !sources.contains(&e.source) {
            sources.push(e.source.clone());
        }
    }

    println!(
        "== perf history report: {history_path} ({} lines, budget {:.0}%) ==",
        entries.len(),
        budget * 100.0
    );
    println!(
        "{:<20} {:<22} {:>4} {:>12} {:>12} {:>12} {:>12}",
        "source", "metric", "runs", "first", "last", "best", "regressions"
    );
    let mut total_regressions = 0usize;
    for source in &sources {
        let series: Vec<&HistoryEntry> = entries.iter().filter(|e| &e.source == source).collect();
        // Metric names from the first entry of this source, filtered to the
        // requested list (default: wall-clock columns).
        let names: Vec<String> = series[0]
            .metrics
            .iter()
            .map(|(n, _)| n.clone())
            .filter(|n| match &wanted {
                Some(list) => list.contains(n),
                None => n.ends_with("_ms"),
            })
            .collect();
        for name in &names {
            let values: Vec<(f64, &str)> = series
                .iter()
                .filter_map(|e| {
                    e.metrics
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| (*v, e.commit.as_str()))
                })
                .collect();
            if values.is_empty() {
                continue;
            }
            let first = values[0].0;
            let last = values[values.len() - 1].0;
            let best = values.iter().map(|(v, _)| *v).fold(f64::INFINITY, f64::min);
            let regressions = values
                .windows(2)
                .filter(|w| w[1].0 > w[0].0 * (1.0 + budget))
                .count();
            total_regressions += regressions;
            println!(
                "{:<20} {:<22} {:>4} {:>12.3} {:>12.3} {:>12.3} {:>12}",
                source,
                name,
                values.len(),
                first,
                last,
                best,
                regressions
            );
            for w in values.windows(2) {
                if w[1].0 > w[0].0 * (1.0 + budget) {
                    println!(
                        "    regression: {} -> {}: {:.3} -> {:.3} (+{:.1}%)",
                        w[0].1,
                        w[1].1,
                        w[0].0,
                        w[1].0,
                        (w[1].0 / w[0].0 - 1.0) * 100.0
                    );
                }
            }
        }
    }
    println!(
        "{} step regression(s) exceeded the {:.0}% budget",
        total_regressions,
        budget * 100.0
    );
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    if args.get(1).map(String::as_str) == Some("report") {
        return report(args);
    }
    let files: Vec<&String> = args
        .iter()
        .skip(1)
        .take_while(|a| !a.starts_with("--"))
        .collect();
    let [snapshot_path] = files.as_slice() else {
        return Err(
            "usage: perf_history <snapshot.json> --commit SHA [--source LABEL] [--history PATH]"
                .into(),
        );
    };
    let commit = flag_value(args, "--commit").ok_or("--commit SHA is required")?;
    let source = flag_value(args, "--source").unwrap_or_else(|| snapshot_path.to_string());
    let history_path =
        flag_value(args, "--history").unwrap_or_else(|| "PERF_HISTORY.jsonl".to_string());

    let snapshot = std::fs::read_to_string(snapshot_path)
        .map_err(|e| format!("reading {snapshot_path}: {e}"))?;
    let line = format!(
        "{{\"commit\":\"{}\",\"source\":\"{}\",\"snapshot\":{}}}",
        escape_json(&commit),
        escape_json(&source),
        minify_json(&snapshot)
    );

    let existing = std::fs::read_to_string(&history_path).unwrap_or_default();
    let key = format!(
        "{{\"commit\":\"{}\",\"source\":\"{}\"",
        escape_json(&commit),
        escape_json(&source)
    );
    if existing.lines().any(|l| l.starts_with(&key)) {
        println!("perf_history: {history_path} already has ({commit}, {source}); nothing to do");
        return Ok(());
    }

    let mut out = existing;
    if !out.is_empty() && !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&line);
    out.push('\n');
    std::fs::write(&history_path, out).map_err(|e| format!("writing {history_path}: {e}"))?;
    println!("perf_history: appended ({commit}, {source}) to {history_path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("perf_history: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minify_strips_whitespace_but_not_string_contents() {
        let pretty =
            "{\n  \"workload\": \"er(n=4000, deg=150)\",\n  \"rows\": [ [\"a b\", 1.5] ]\n}";
        assert_eq!(
            minify_json(pretty),
            "{\"workload\":\"er(n=4000, deg=150)\",\"rows\":[[\"a b\",1.5]]}"
        );
        // Escaped quotes inside strings don't terminate the literal.
        assert_eq!(minify_json("{\"k\": \"a\\\" b\"}"), "{\"k\":\"a\\\" b\"}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn append_is_idempotent_per_commit_and_source() {
        let dir = std::env::temp_dir();
        let snap_path = dir.join("perf_history_snap.json");
        let hist_path = dir.join("perf_history_test.jsonl");
        std::fs::write(
            &snap_path,
            "{\n  \"workload\": \"er\",\n  \"host_cores\": 1\n}",
        )
        .unwrap();
        let _ = std::fs::remove_file(&hist_path);
        let argv = |commit: &str| {
            vec![
                "perf_history".to_string(),
                snap_path.to_string_lossy().into_owned(),
                "--commit".to_string(),
                commit.to_string(),
                "--source".to_string(),
                "BENCH_X.json".to_string(),
                "--history".to_string(),
                hist_path.to_string_lossy().into_owned(),
            ]
        };
        run(&argv("aaa1111")).unwrap();
        run(&argv("aaa1111")).unwrap(); // retry: must not duplicate
        run(&argv("bbb2222")).unwrap();
        let hist = std::fs::read_to_string(&hist_path).unwrap();
        let lines: Vec<&str> = hist.lines().collect();
        assert_eq!(lines.len(), 2, "{hist}");
        assert_eq!(
            lines[0],
            "{\"commit\":\"aaa1111\",\"source\":\"BENCH_X.json\",\"snapshot\":{\"workload\":\"er\",\"host_cores\":1}}"
        );
        assert!(lines[1].starts_with("{\"commit\":\"bbb2222\""), "{hist}");
    }

    #[test]
    fn missing_commit_is_an_error() {
        let err = run(&["perf_history".to_string(), "x.json".to_string()]).unwrap_err();
        assert!(err.contains("--commit"), "{err}");
    }

    #[test]
    fn report_reads_the_single_thread_row() {
        let snapshot = json::parse(
            "{\"bench\": \"exp_scaling\", \"rows\": [\
             {\"label\": \"threads = 1\", \"values\": [[\"sparsify_ms\", 120.5], [\"m_out\", 4000]]},\
             {\"label\": \"threads = 2\", \"values\": [[\"sparsify_ms\", 70.1], [\"m_out\", 4000]]}]}",
        )
        .unwrap();
        let metrics = entry_metrics(&snapshot);
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0], ("sparsify_ms".to_string(), 120.5));
    }

    #[test]
    fn report_runs_over_an_appended_history() {
        let dir = std::env::temp_dir();
        let hist_path = dir.join("perf_history_report_test.jsonl");
        // Two commits where sparsify_ms regresses by 50% — one step over a 25% budget.
        let lines = [
            "{\"commit\":\"aaa\",\"source\":\"BENCH_7.json\",\"snapshot\":{\"rows\":[{\"label\":\"threads = 1\",\"values\":[[\"sparsify_ms\",100]]}]}}",
            "{\"commit\":\"bbb\",\"source\":\"BENCH_7.json\",\"snapshot\":{\"rows\":[{\"label\":\"threads = 1\",\"values\":[[\"sparsify_ms\",150]]}]}}",
        ];
        std::fs::write(&hist_path, lines.join("\n")).unwrap();
        run(&[
            "perf_history".to_string(),
            "report".to_string(),
            "--history".to_string(),
            hist_path.to_string_lossy().into_owned(),
        ])
        .unwrap();
        // An explicit metric list and budget parse too.
        run(&[
            "perf_history".to_string(),
            "report".to_string(),
            "--history".to_string(),
            hist_path.to_string_lossy().into_owned(),
            "--metrics".to_string(),
            "sparsify_ms".to_string(),
            "--max-regress".to_string(),
            "0.6".to_string(),
        ])
        .unwrap();
    }
}
