//! Experiments E2 + E7 — Theorem 2 and Corollary 3 / Theorem 5 (distributed model).
//!
//! Part 1 (E2): distributed Baswana–Sen spanner — rounds vs `log² n`, messages vs
//! `m log n`, message width vs `log n`.
//!
//! Part 2 (E7): distributed PARALLELSAMPLE — rounds and communication as the bundle
//! parameter grows, and the full distributed PARALLELSPARSIFY for a ρ sweep.
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_distributed [--json]`

use sgs_bench::{print_table, Row, Workload};
use sgs_core::{BundleSizing, SparsifyConfig};
use sgs_distributed::{
    distributed_sample, distributed_spanner, distributed_sparsify, DistSpannerConfig,
};
use sgs_graph::stretch;

fn main() {
    // --- E2: spanner scaling.
    let mut rows = Vec::new();
    for &n in &[250usize, 500, 1000, 2000] {
        let g = Workload::ErdosRenyi { n, deg: 16 }.build(9);
        let log_n = (n as f64).log2();
        let r = distributed_spanner(&g, &DistSpannerConfig::with_seed(3));
        let h = g.with_edge_ids(&r.edge_ids);
        let s = if n <= 1000 {
            stretch::max_stretch(&g, &h)
        } else {
            f64::NAN
        };
        rows.push(
            Row::new(format!("n = {n}"))
                .push("m", g.m() as f64)
                .push("spanner", r.edge_ids.len() as f64)
                .push("rounds", r.metrics.rounds as f64)
                .push("rounds/log^2 n", r.metrics.rounds as f64 / (log_n * log_n))
                .push("messages", r.metrics.messages as f64)
                .push(
                    "msgs/(m log n)",
                    r.metrics.messages as f64 / (g.m() as f64 * log_n),
                )
                .push("max_bits", r.metrics.max_message_bits as f64)
                .push("max_stretch", s),
        );
    }
    print_table(
        "E2: distributed Baswana-Sen spanner (Theorem 2) — O(log^2 n) rounds, O(m log n) messages",
        &rows,
    );

    // --- E7: distributed sampling / sparsification.
    let g = Workload::ErdosRenyi { n: 600, deg: 40 }.build(11);
    println!("\ndistributed sampling input: n = {}, m = {}", g.n(), g.m());
    let mut rows = Vec::new();
    for t in [1usize, 2, 4, 8] {
        let cfg = SparsifyConfig::new(0.5, 2.0)
            .with_bundle_sizing(BundleSizing::Fixed(t))
            .with_seed(13);
        let out = distributed_sample(&g, &cfg);
        rows.push(
            Row::new(format!("t = {t}"))
                .push("bundle", out.bundle_edges as f64)
                .push("m_out", out.sparsifier.m() as f64)
                .push("rounds", out.metrics.rounds as f64)
                .push("rounds/t", out.metrics.rounds as f64 / t as f64)
                .push("messages", out.metrics.messages as f64)
                .push("messages/t", out.metrics.messages as f64 / t as f64),
        );
    }
    print_table(
        "E7a: distributed PARALLELSAMPLE (Corollary 3) — rounds and communication linear in t",
        &rows,
    );

    let mut rows = Vec::new();
    for rho in [2.0f64, 4.0, 16.0] {
        let cfg = SparsifyConfig::new(0.75, rho)
            .with_bundle_sizing(BundleSizing::Fixed(2))
            .with_seed(17);
        let out = distributed_sparsify(&g, &cfg);
        rows.push(
            Row::new(format!("rho = {rho}"))
                .push("rounds_executed", out.rounds_executed as f64)
                .push("m_out", out.sparsifier.m() as f64)
                .push("sim_rounds", out.metrics.rounds as f64)
                .push("messages", out.metrics.messages as f64)
                .push("max_bits", out.metrics.max_message_bits as f64),
        );
    }
    print_table(
        "E7b: distributed PARALLELSPARSIFY (Theorem 5, distributed part) — rho sweep",
        &rows,
    );
}
