//! Experiment E8 — the semi-streaming engine (`sgs-stream`) under a memory budget.
//!
//! Streams a fixed Erdős–Rényi workload through `StreamSparsifier` in a configurable
//! number of batches under a configurable resident-edge budget, sweeping rayon pool
//! widths, and reports wall-clock plus the memory/ε accounting. The outputs
//! (`m_out`, `peak_resident_edges`, ε ledger) must be identical across thread rows —
//! the engine is thread-count and batch-chop deterministic — so only the wall clock
//! varies.
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_stream [-- FLAGS]`
//!
//! Flags:
//! * `--n N` / `--deg D` — workload size (defaults 4000 / 150, ≈300k edges).
//! * `--batches B` — how many equal batches the edge stream is chopped into
//!   (default 16; informational only — the output provably does not depend on it).
//! * `--batch-edges E` — alternative to `--batches`: explicit batch size in edges.
//! * `--budget-edges M` — resident-edge budget (default `m / 4`).
//! * `--threads 1,2,4` — comma-separated pool widths to sweep (default `1,2,4`).
//! * `--t N` / `--keep P` / `--rho R` / `--arity K` — per-reduction bundle size,
//!   off-bundle keep probability, sparsification factor, and merge fan-in (defaults
//!   2 / 0.5 / 2 / 2; ablation knobs for the quality-vs-memory trade).
//! * `--verify` — also certify the spectral bounds of the final sparsifier against
//!   the full graph (adds a few seconds of CG-powered power iteration).
//! * `--json` / `--json-out PATH` / `--bench-json PATH` — as in every experiment
//!   binary; `bench_compare` gates `stream_sparsify_ms` and `peak_resident_edges`
//!   of the `threads = 1` row against the committed `BENCH_5.json`.

use serde::Serialize;
use sgs_bench::{print_table, time_ms, Row, Workload};
use sgs_core::BundleSizing;
use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};
use sgs_stream::{StreamConfig, StreamOutput, StreamSparsifier};

/// Repo-root perf snapshot: one record per thread count on one fixed workload.
#[derive(Debug, Clone, Serialize)]
struct BenchSnapshot {
    bench: String,
    workload: String,
    graph_n: usize,
    graph_m: usize,
    host_cores: usize,
    rows: Vec<Row>,
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = flag_value(&args, "--n")
        .map(|v| v.parse().expect("--n takes an integer"))
        .unwrap_or(4000);
    let deg: usize = flag_value(&args, "--deg")
        .map(|v| v.parse().expect("--deg takes an integer"))
        .unwrap_or(150);
    let thread_counts: Vec<usize> = flag_value(&args, "--threads")
        .map(|v| {
            v.split(',')
                .map(|t| t.trim().parse().expect("--threads takes a comma list"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4]);
    let verify = args.iter().any(|a| a == "--verify");

    let workload = Workload::ErdosRenyi { n, deg };
    let g = workload.build(51);
    let m = g.m();
    let budget: usize = flag_value(&args, "--budget-edges")
        .map(|v| v.parse().expect("--budget-edges takes an integer"))
        .unwrap_or(m / 4);
    let batch_edges: usize = flag_value(&args, "--batch-edges")
        .map(|v| v.parse().expect("--batch-edges takes an integer"))
        .unwrap_or_else(|| {
            let batches: usize = flag_value(&args, "--batches")
                .map(|v| v.parse().expect("--batches takes an integer"))
                .unwrap_or(16);
            m.div_ceil(batches.max(1)).max(1)
        });
    println!(
        "graph: n = {}, m = {m}, budget = {budget} resident edges, batches of {batch_edges}",
        g.n()
    );

    let t: usize = flag_value(&args, "--t")
        .map(|v| v.parse().expect("--t takes an integer"))
        .unwrap_or(2);
    let keep: f64 = flag_value(&args, "--keep")
        .map(|v| v.parse().expect("--keep takes a float"))
        .unwrap_or(0.5);
    let rho: f64 = flag_value(&args, "--rho")
        .map(|v| v.parse().expect("--rho takes a float"))
        .unwrap_or(2.0);
    let arity: usize = flag_value(&args, "--arity")
        .map(|v| v.parse().expect("--arity takes an integer"))
        .unwrap_or(2);
    let cfg = StreamConfig::new(0.75, budget)
        .with_bundle_sizing(BundleSizing::Fixed(t))
        .with_keep_probability(keep)
        .with_rho(rho)
        .with_arity(arity)
        .with_seed(5);

    let run = |cfg: &StreamConfig| -> StreamOutput {
        let mut stream = StreamSparsifier::new(g.n(), cfg.clone());
        for chunk in g.edges().chunks(batch_edges) {
            stream.ingest_batch(chunk).expect("valid edges");
        }
        stream.finish()
    };

    let mut rows = Vec::new();
    let mut baseline_ms = f64::NAN;
    for &threads in &thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let (out, stream_ms) = pool.install(|| time_ms(|| run(&cfg)));
        if baseline_ms.is_nan() {
            baseline_ms = stream_ms;
        }
        let mut row = Row::new(format!("threads = {threads}"))
            .push("threads", threads as f64)
            .push("stream_sparsify_ms", stream_ms)
            .push("stream_speedup", baseline_ms / stream_ms)
            .push("peak_resident_edges", out.stats.peak_resident_edges as f64)
            .push("budget_edges", budget as f64)
            .push("m_out", out.sparsifier.m() as f64)
            .push("leaves", out.stats.leaves as f64)
            .push("forced", out.stats.forced_reductions as f64)
            .push("depth", out.stats.final_depth as f64)
            .push("eps_spent", out.stats.epsilon_spent())
            .push("work_ops", out.stats.total_work() as f64);
        if verify {
            let bounds = approximation_bounds(&g, &out.sparsifier, &CertifyOptions::default());
            row = row
                .push("bound_lower", bounds.lower)
                .push("bound_upper", bounds.upper)
                .push("achieved_eps", bounds.epsilon());
        }
        rows.push(row);
    }
    print_table(
        "E8: semi-streaming sparsification — wall clock vs threads at a fixed memory budget",
        &rows,
    );
    println!(
        "peak_resident_edges, m_out and the ε ledger are identical across rows (the engine\n\
         is thread-count and batch-chop deterministic); only the wall clock changes."
    );

    if let Some(path) = flag_value(&args, "--json-out") {
        let json = serde_json::to_string_pretty(&rows).expect("serializable rows");
        std::fs::write(&path, json).expect("writing --json-out file");
        println!("rows written to {path}");
    }
    if let Some(path) = flag_value(&args, "--bench-json") {
        let snapshot = BenchSnapshot {
            bench: "exp_stream".to_string(),
            workload: workload.label(),
            graph_n: g.n(),
            graph_m: g.m(),
            host_cores: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            rows: rows.clone(),
        };
        let json = serde_json::to_string_pretty(&snapshot).expect("serializable snapshot");
        std::fs::write(&path, json).expect("writing --bench-json file");
        println!("perf snapshot written to {path}");
    }
}
