//! Experiment E8 — the semi-streaming engine (`sgs-stream`) under a memory budget.
//!
//! Streams a fixed Erdős–Rényi workload through `StreamSparsifier` in a configurable
//! number of batches under a configurable resident-edge budget, sweeping rayon pool
//! widths, and reports wall-clock plus the memory/ε accounting. The outputs
//! (`m_out`, `peak_resident_edges`, ε ledger) must be identical across thread rows —
//! the engine is thread-count and batch-chop deterministic — so only the wall clock
//! varies.
//!
//! Each thread row also runs the leverage-aware configuration — effective-resistance
//! interior sampling plus the ER-weighted final reduction pass — and reports its
//! output size (`m_out_er`), the standalone cost of the final pass on the uniform
//! tree's output (`er_pass_ms`), and the Laplacian solves consumed (`er_solves`).
//! The uniform run's `stream_sparsify_ms` is timed separately so the historical
//! like-for-like perf gate is unaffected.
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_stream [-- FLAGS]`
//!
//! Flags:
//! * `--n N` / `--deg D` — workload size (defaults 4000 / 150, ≈300k edges).
//! * `--batches B` — how many equal batches the edge stream is chopped into
//!   (default 16; informational only — the output provably does not depend on it).
//! * `--batch-edges E` — alternative to `--batches`: explicit batch size in edges.
//! * `--budget-edges M` — resident-edge budget (default `m / 4`).
//! * `--threads 1,2,4` — comma-separated pool widths to sweep (default `1,2,4`).
//! * `--seed S` — configuration seed (default 5; the workload graph keeps its own
//!   pinned seed so runs stay comparable).
//! * `--t N` / `--keep P` / `--rho R` / `--arity K` — per-reduction bundle size,
//!   off-bundle keep probability, sparsification factor, and merge fan-in (defaults
//!   2 / 0.5 / 2 / 2; ablation knobs for the quality-vs-memory trade).
//! * `--er-oversample C` / `--er-dims K` / `--er-tol T` — final-pass sample budget
//!   constant, JL sketch dimensions, and CG tolerance (defaults 0.02 / 8 / 1e-4).
//! * `--verify` — also certify the spectral bounds of the final sparsifier against
//!   the full graph (adds a few seconds of CG-powered power iteration).
//! * `--json` / `--json-out PATH` / `--bench-json PATH` — as in every experiment
//!   binary; `bench_compare` gates `stream_sparsify_ms` and `peak_resident_edges`
//!   of the `threads = 1` row against the committed `BENCH_5.json`, and `m_out_er`
//!   and `er_pass_ms` against `BENCH_6.json`.
//! * `--trace-out PATH` / `--report-out PATH` — record the run through `sgs-obs`
//!   (leaf flushes, tree reductions, spills, the ER pass) and write a Chrome trace /
//!   append a `RunReport` JSONL line. Tracing changes no output.

use sgs_bench::{print_table, report, time_ms, Cli, Row, Workload};
use sgs_core::{resparsify_er, BundleSizing, ErPassConfig, SamplingPolicy};
use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};
use sgs_obs::RunReport;
use sgs_stream::{FinalPassConfig, StreamConfig, StreamOutput, StreamSparsifier};

fn main() {
    let cli = Cli::parse();
    let sink = cli.start_observability();
    let n = cli.usize_flag("--n", 4000);
    let deg = cli.usize_flag("--deg", 150);
    let thread_counts = cli.threads(&[1, 2, 4]);
    let verify = cli.has("--verify");

    let workload = Workload::ErdosRenyi { n, deg };
    let g = workload.build(51);
    let m = g.m();
    let budget = cli.usize_flag("--budget-edges", m / 4);
    let batch_edges = cli.value("--batch-edges").map_or_else(
        || {
            let batches = cli.usize_flag("--batches", 16);
            m.div_ceil(batches.max(1)).max(1)
        },
        |v| v.parse().expect("--batch-edges takes an integer"),
    );
    println!(
        "graph: n = {}, m = {m}, budget = {budget} resident edges, batches of {batch_edges}",
        g.n()
    );

    let t = cli.usize_flag("--t", 2);
    let keep = cli.f64_flag("--keep", 0.5);
    let rho = cli.f64_flag("--rho", 2.0);
    let arity = cli.usize_flag("--arity", 2);
    let seed = cli.seed(5);
    let er_oversample = cli.f64_flag("--er-oversample", 0.02);
    let er_dims = cli.usize_flag("--er-dims", 8);
    let er_tol = cli.f64_flag("--er-tol", 1e-4);
    let cfg = StreamConfig::new(0.75, budget)
        .with_bundle_sizing(BundleSizing::Fixed(t))
        .with_keep_probability(keep)
        .with_rho(rho)
        .with_arity(arity)
        .with_seed(seed);
    // The leverage-aware configuration: ER sampling on interior reductions (where the
    // inputs are already sparsifiers and the solve cost is small) plus the ER-weighted
    // final pass on the tree's output.
    let cfg_er = cfg
        .clone()
        .with_interior_sampling(SamplingPolicy::effective_resistance(er_dims, er_tol))
        .with_final_pass(
            FinalPassConfig::new()
                .with_oversample(er_oversample)
                .with_jl_dims(er_dims)
                .with_cg_tol(er_tol),
        );

    let run = |cfg: &StreamConfig| -> StreamOutput {
        let mut stream = StreamSparsifier::new(g.n(), cfg.clone());
        for chunk in g.edges().chunks(batch_edges) {
            stream.ingest_batch(chunk).expect("valid edges");
        }
        stream.finish()
    };

    let mut rows = Vec::new();
    let mut baseline_ms = f64::NAN;
    let mut last_stats = None;
    let mut last_er_pass = None;
    for &threads in &thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let (out, stream_ms) = pool.install(|| time_ms(|| run(&cfg)));
        let (out_er, stream_er_ms) = pool.install(|| time_ms(|| run(&cfg_er)));
        // Standalone timing of the ER pass on the uniform tree's output: the pass cost
        // in isolation, on an input whose size does not depend on the ER knobs.
        let pass_cfg = ErPassConfig::new(cfg_er.final_pass_epsilon().min(1.0))
            .with_oversample(er_oversample)
            .with_jl_dims(er_dims)
            .with_cg_tol(er_tol)
            .with_seed(seed ^ 0xF1A1_9A55_0000_00ED);
        let (pass_out, er_pass_ms) =
            pool.install(|| time_ms(|| resparsify_er(&out.sparsifier, &pass_cfg)));
        if baseline_ms.is_nan() {
            baseline_ms = stream_ms;
        }
        let er_solves =
            out_er.stats.er_pass.as_ref().map(|p| p.solves).unwrap_or(0) + pass_out.solves as u64;
        last_stats = Some(out.stats.clone());
        last_er_pass = out_er.stats.er_pass.clone();
        let mut row = Row::new(format!("threads = {threads}"))
            .push("threads", threads as f64)
            .push("stream_sparsify_ms", stream_ms)
            .push("stream_speedup", baseline_ms / stream_ms)
            .push("peak_resident_edges", out.stats.peak_resident_edges as f64)
            .push("budget_edges", budget as f64)
            .push("m_out", out.sparsifier.m() as f64)
            .push("m_out_er", out_er.sparsifier.m() as f64)
            .push("stream_er_ms", stream_er_ms)
            .push("er_pass_ms", er_pass_ms)
            .push("er_solves", er_solves as f64)
            .push("eps_spent_er", out_er.stats.epsilon_spent())
            .push("leaves", out.stats.leaves as f64)
            .push("forced", out.stats.forced_reductions as f64)
            .push("depth", out.stats.final_depth as f64)
            .push("eps_spent", out.stats.epsilon_spent())
            .push("work_ops", out.stats.total_work() as f64);
        if verify {
            let bounds = approximation_bounds(&g, &out.sparsifier, &CertifyOptions::default());
            let bounds_er =
                approximation_bounds(&g, &out_er.sparsifier, &CertifyOptions::default());
            row = row
                .push("bound_lower", bounds.lower)
                .push("bound_upper", bounds.upper)
                .push("achieved_eps", bounds.epsilon())
                .push("achieved_eps_er", bounds_er.epsilon());
        }
        rows.push(row);
    }
    print_table(
        "E8: semi-streaming sparsification — wall clock vs threads at a fixed memory budget",
        &rows,
    );
    println!(
        "peak_resident_edges, m_out, m_out_er and the ε ledgers are identical across rows\n\
         (the engine is thread-count and batch-chop deterministic); only wall clocks change."
    );

    cli.write_json_out(&rows);
    cli.write_bench_json("exp_stream", &workload, &g, &rows);

    let mut run_report = RunReport::new("exp_stream", &workload.label());
    for section in report::rows_sections(&rows) {
        run_report.push(section);
    }
    if let Some(stats) = &last_stats {
        run_report.push(report::stream_stats_section(stats));
    }
    if let Some(er) = &last_er_pass {
        run_report.push(report::er_pass_section(er));
    }
    cli.finish_observability(sink, &run_report);
}
