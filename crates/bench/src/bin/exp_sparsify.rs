//! Experiment E5 — Theorem 5: PARALLELSPARSIFY under a ρ sweep.
//!
//! Reports, for growing sparsification factors ρ: the number of rounds (`⌈log ρ⌉`), the
//! achieved compression versus the requested ρ, the size against the
//! `n polylog(n) + m/ρ` prediction, the certified spectral bounds, and the total work
//! against `m` (Theorem 5 predicts the work is dominated by the first round).
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_sparsify [--json]`

use sgs_bench::{print_table, time_ms, Row, Workload};
use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};
use sgs_linalg::spectral::CertifyOptions;

fn main() {
    let workload = Workload::ErdosRenyi { n: 1500, deg: 120 };
    let g = workload.build(17);
    println!(
        "graph: {} with n = {}, m = {}",
        workload.label(),
        g.n(),
        g.m()
    );

    let mut rows = Vec::new();
    for rho in [2.0f64, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let cfg = SparsifyConfig::new(0.75, rho)
            .with_bundle_sizing(BundleSizing::Fixed(4))
            .with_seed(3);
        let (out, ms) = time_ms(|| parallel_sparsify(&g, &cfg));
        let bounds = sgs_linalg::spectral::approximation_bounds(
            &g,
            &out.sparsifier,
            &CertifyOptions::default(),
        );
        rows.push(
            Row::new(format!("rho = {rho}"))
                .push("rounds", out.rounds_executed as f64)
                .push("m_out", out.sparsifier.m() as f64)
                .push("m/rho", g.m() as f64 / rho)
                .push("achieved_factor", out.achieved_factor())
                .push("lower", bounds.lower)
                .push("upper", bounds.upper)
                .push("work/m", out.stats.total_work() as f64 / g.m() as f64)
                .push("time_ms", ms),
        );
    }
    print_table(
        "E5: PARALLELSPARSIFY (Theorem 5) — rho sweep: rounds, size vs n polylog + m/rho, quality, work",
        &rows,
    );
    println!(
        "the output size tracks m/rho until the n·polylog(n) floor (the bundle) dominates;\n\
         work grows only logarithmically in rho because later rounds run on geometrically\n\
         smaller graphs."
    );
}
