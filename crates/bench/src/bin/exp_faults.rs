//! Experiment E8 — fault tolerance: loss rate vs output quality and overhead.
//!
//! Sweeps i.i.d. message-loss rates over the distributed spanner in two transports:
//!
//! * **raw** — faults hit the protocol directly; the construction degrades gracefully
//!   (terminates, stays connected) but the spanner may grow and stretch may worsen;
//! * **ft** — the reliable ack/retransmit layer (default retry budget) recovers lost
//!   messages, trading extra rounds/messages for clean output.
//!
//! Columns report output quality (`m_out`, `max_stretch`, `connected`) and cost
//! (`rounds`, `messages`, overhead ratios vs the loss-free baseline, plus the
//! fault/recovery counters).
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_faults [--json]
//! [--loss 0,0.05,0.10] [--json-out PATH] [--bench-json PATH]`

use sgs_bench::{print_table, Cli, Row, Workload};
use sgs_distributed::{distributed_spanner, DistSpannerConfig, FaultPlan, ReliabilityConfig};
use sgs_graph::{connectivity, stretch, Graph};

fn loss_rates(cli: &Cli) -> Vec<f64> {
    cli.value("--loss")
        .map(|v| {
            v.split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .expect("--loss takes a comma list of rates")
                })
                .collect()
        })
        .unwrap_or_else(|| vec![0.0, 0.02, 0.05, 0.10, 0.20])
}

fn run(
    g: &Graph,
    seed: u64,
    loss: f64,
    ft: bool,
) -> (usize, f64, bool, sgs_distributed::NetworkMetrics) {
    let mut cfg = DistSpannerConfig::with_seed(seed);
    if loss > 0.0 {
        cfg = cfg.with_faults(FaultPlan::iid_loss(seed ^ 0xFA_17, loss));
    }
    if ft {
        cfg = cfg.with_fault_tolerance(ReliabilityConfig::default());
    }
    let r = distributed_spanner(g, &cfg);
    let h = g.with_edge_ids(&r.edge_ids);
    let s = stretch::max_stretch(g, &h);
    (
        r.edge_ids.len(),
        s,
        connectivity::is_connected(&h),
        r.metrics,
    )
}

fn main() {
    let cli = Cli::parse();
    let seed = cli.seed(3);
    let losses = loss_rates(&cli);
    let workload = Workload::ErdosRenyi { n: 400, deg: 16 };
    let g = workload.build(9);
    println!(
        "fault sweep input: {} (n = {}, m = {})",
        workload.label(),
        g.n(),
        g.m()
    );

    let mut all_rows = Vec::new();
    for ft in [false, true] {
        let transport = if ft { "ft" } else { "raw" };
        // Loss-free baseline for overhead ratios (per transport: the reliable layer
        // pays its ack traffic even on a clean network).
        let (_, _, _, base) = run(&g, seed, 0.0, ft);
        let mut rows = Vec::new();
        for &loss in &losses {
            let (m_out, s, connected, metrics) = run(&g, seed, loss, ft);
            rows.push(
                Row::new(format!("loss={loss:.2} {transport}"))
                    .push("m_out", m_out as f64)
                    .push("max_stretch", s)
                    .push("connected", if connected { 1.0 } else { 0.0 })
                    .push("rounds", metrics.rounds as f64)
                    .push("messages", metrics.messages as f64)
                    .push("rounds_x", metrics.rounds as f64 / base.rounds as f64)
                    .push("messages_x", metrics.messages as f64 / base.messages as f64)
                    .push("dropped", metrics.dropped as f64)
                    .push("retransmits", metrics.retransmits as f64)
                    .push("acks", metrics.acks as f64)
                    .push("dup_suppressed", metrics.dup_suppressed as f64)
                    .push("abandoned", metrics.abandoned as f64),
            );
        }
        let title = if ft {
            "E8b: loss vs quality/overhead behind the reliable delivery layer (default retry budget)"
        } else {
            "E8a: loss vs quality/overhead on the raw transport (graceful degradation)"
        };
        print_table(title, &rows);
        all_rows.extend(rows);
    }

    cli.write_json_out(&all_rows);
    cli.write_bench_json("exp_faults", &workload, &g, &all_rows);
}
