//! Experiment E9 — out-of-core streaming: generator → spilling merge tree → solver.
//!
//! Drives a deterministic generator-backed edge stream (path skeleton plus splitmix64
//! extras, never materialised as a `Graph`) through `StreamSparsifier` twice — once
//! with the default in-memory node store and once with `SpillStore` under a small
//! resident-byte budget — then grounds and chains the spill run's sparsifier with
//! `Chain::build_from_stream` and solves an SDD system against it with chain-PCG.
//!
//! The binary **asserts** the out-of-core contract, so a CI run gates on the
//! deterministic ledger rather than wall-clock:
//!
//! * the spill run's output is bitwise identical to the in-memory run's (same edges,
//!   same weights, same algorithmic stats);
//! * the spill ledger shows real traffic (`spilled_nodes > 0`);
//! * the spill run's `peak_resident_bytes` is at most the configured RSS budget,
//!   which the in-memory run *exceeds* (resident-only execution cannot meet it);
//! * the total streamed edges are at least 10× the store's resident budget.
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_outofcore [-- FLAGS]`
//!
//! Flags:
//! * `--n N` — vertices (default 1000).
//! * `--total-edges M` — streamed edges (default 600000).
//! * `--budget-edges B` — the tree's resident-edge budget (default 100000).
//! * `--store-budget-edges S` — `SpillStore` resident cap in edges (default `B / 8`).
//! * `--rss-budget-bytes R` — the gated RAM high-water mark (default
//!   `24 · (B/2 + 3 · S)`; must sit between the spill and in-memory peaks).
//! * `--batch-edges E` — ingestion batch size (default 65536; informational).
//! * `--threads 1,4` — pool widths to sweep (default `1,4`).
//! * `--seed S` — configuration seed (default 9; the stream keeps its own seed).
//! * `--json` / `--json-out PATH` / `--bench-json PATH` — as in every experiment
//!   binary; `bench_compare` gates `stream_spill_ms` and `solve_ms` of the
//!   `threads = 1` row against the committed `BENCH_9.json`.
//! * `--trace-out PATH` / `--report-out PATH` — record the run through `sgs-obs`
//!   (spill evictions, read-backs, chain levels, PCG iterations) and write a Chrome
//!   trace / append a `RunReport` JSONL line. Tracing changes no output.

use sgs_bench::{print_table, report, time_ms, Cli, Row};
use sgs_core::BundleSizing;
use sgs_graph::generators;
use sgs_obs::RunReport;
use sgs_solver::{SddSolver, SolverConfig};
use sgs_stream::store::EDGE_BYTES;
use sgs_stream::{SpillConfig, StreamConfig, StreamOutput, StreamSparsifier};

fn main() {
    let cli = Cli::parse();
    let sink = cli.start_observability();
    let n = cli.usize_flag("--n", 1000);
    let total_edges = cli.usize_flag("--total-edges", 600_000);
    let budget = cli.usize_flag("--budget-edges", 100_000);
    let store_budget_edges = cli.usize_flag("--store-budget-edges", budget / 8);
    let rss_budget_bytes = cli.usize_flag(
        "--rss-budget-bytes",
        (budget / 2 + 3 * store_budget_edges) * EDGE_BYTES,
    );
    let batch_edges = cli.usize_flag("--batch-edges", 65_536).max(1);
    let thread_counts = cli.threads(&[1, 4]);
    let seed = cli.seed(9);
    let stream_seed = 0xE9;

    assert!(
        total_edges >= 10 * store_budget_edges,
        "the stream must dwarf the store budget: {total_edges} < 10 * {store_budget_edges}"
    );
    println!(
        "stream: n = {n}, {total_edges} edges ({} MB), tree budget {budget} edges, \
         store budget {store_budget_edges} edges, RSS gate {rss_budget_bytes} bytes",
        total_edges * EDGE_BYTES / (1024 * 1024),
    );

    let cfg = StreamConfig::new(0.75, budget)
        .with_bundle_sizing(BundleSizing::Fixed(2))
        .with_seed(seed);
    let spill_cfg = cfg
        .clone()
        .with_spill(SpillConfig::new(store_budget_edges * EDGE_BYTES));

    let run = |cfg: &StreamConfig| -> StreamOutput {
        let mut stream = StreamSparsifier::new(n, cfg.clone());
        let mut batch = Vec::with_capacity(batch_edges);
        for e in generators::streaming_edges(n, total_edges, stream_seed) {
            batch.push(e);
            if batch.len() == batch_edges {
                stream.ingest_batch(&batch).expect("valid generated edges");
                batch.clear();
            }
        }
        if !batch.is_empty() {
            stream.ingest_batch(&batch).expect("valid generated edges");
        }
        stream.finish()
    };

    let mut rows = Vec::new();
    let mut baseline_ms = f64::NAN;
    let mut last_stats = None;
    let mut last_solve = None;
    for &threads in &thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let (mem_out, mem_ms) = pool.install(|| time_ms(|| run(&cfg)));
        let (spill_out, spill_ms) = pool.install(|| time_ms(|| run(&spill_cfg)));

        println!(
            "threads = {threads}: mem peak {} B, spill peak {} B, gate {rss_budget_bytes} B, \
             forced {}, spilled {} nodes / {} B, read back {} nodes",
            mem_out.stats.peak_resident_bytes,
            spill_out.stats.peak_resident_bytes,
            spill_out.stats.forced_reductions,
            spill_out.stats.spill.spilled_nodes,
            spill_out.stats.spill.spilled_bytes,
            spill_out.stats.spill.readback_nodes,
        );
        // The out-of-core contract, asserted (CI gates on these, not on wall-clock).
        assert_eq!(
            mem_out.sparsifier.edges(),
            spill_out.sparsifier.edges(),
            "spill output must be bitwise identical to the in-memory output"
        );
        assert!(
            mem_out.stats.eq_modulo_storage(&spill_out.stats),
            "algorithmic stats must not depend on storage"
        );
        let ledger = spill_out.stats.spill;
        assert!(ledger.spilled_nodes > 0, "no spilling happened");
        assert!(
            spill_out.stats.peak_resident_bytes <= rss_budget_bytes,
            "spill run busted the RSS budget: {} > {rss_budget_bytes}",
            spill_out.stats.peak_resident_bytes
        );
        assert!(
            mem_out.stats.peak_resident_bytes > rss_budget_bytes,
            "RSS gate is vacuous: the in-memory run ({} bytes) already fits it",
            mem_out.stats.peak_resident_bytes
        );

        let peak_mem = mem_out.stats.peak_resident_bytes;
        let peak_spill = spill_out.stats.peak_resident_bytes;
        let forced = spill_out.stats.forced_reductions;
        let eps = spill_out.stats.epsilon_spent();
        let m_out = spill_out.sparsifier.m();
        last_stats = Some(spill_out.stats.clone());
        drop(mem_out);

        // Ground + chain the sparsifier straight off the stream and solve.
        let ((solver, _stream_stats), chain_ms) =
            pool.install(|| time_ms(|| SddSolver::for_stream(spill_out, SolverConfig::default())));
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let (solve_out, solve_ms) = pool.install(|| time_ms(|| solver.solve(&b)));
        assert!(
            solve_out.converged,
            "chain-PCG failed to converge: residual {}",
            solve_out.relative_residual
        );
        last_solve = Some(solve_out.stats.clone());

        if baseline_ms.is_nan() {
            baseline_ms = spill_ms;
        }
        rows.push(
            Row::new(format!("threads = {threads}"))
                .push("threads", threads as f64)
                .push("stream_mem_ms", mem_ms)
                .push("stream_spill_ms", spill_ms)
                .push("spill_speedup", baseline_ms / spill_ms)
                .push("chain_build_ms", chain_ms)
                .push("solve_ms", solve_ms)
                .push("m_out", m_out as f64)
                .push("peak_mem_bytes", peak_mem as f64)
                .push("peak_spill_bytes", peak_spill as f64)
                .push("rss_budget_bytes", rss_budget_bytes as f64)
                .push("spilled_nodes", ledger.spilled_nodes as f64)
                .push("spilled_edges", ledger.spilled_edges as f64)
                .push("spilled_bytes", ledger.spilled_bytes as f64)
                .push("readback_nodes", ledger.readback_nodes as f64)
                .push("readback_edges", ledger.readback_edges as f64)
                .push("readback_bytes", ledger.readback_bytes as f64)
                .push("forced", forced as f64)
                .push("eps_spent", eps)
                .push("chain_depth", solve_out.chain_depth as f64)
                .push("chain_edges", solve_out.chain_edges as f64)
                .push("pcg_iterations", solve_out.iterations as f64)
                .push("residual", solve_out.relative_residual),
        );
    }
    print_table(
        "E9: out-of-core streaming — spill to disk, solve from the stream",
        &rows,
    );
    println!(
        "the spill and in-memory runs produce bitwise-identical sparsifiers; only\n\
         peak_resident_bytes and the spill ledger differ (that difference is the point)."
    );

    let label = format!("stream(n={n},edges={total_edges})");
    cli.write_json_out(&rows);
    cli.write_bench_json_labeled("exp_outofcore", &label, n, total_edges, &rows);

    let mut run_report = RunReport::new("exp_outofcore", &label);
    for section in report::rows_sections(&rows) {
        run_report.push(section);
    }
    if let Some(stats) = &last_stats {
        run_report.push(report::stream_stats_section(stats));
    }
    if let Some(solve) = &last_solve {
        run_report.push(report::solve_stats_section(solve));
    }
    cli.finish_observability(sink, &run_report);
}
