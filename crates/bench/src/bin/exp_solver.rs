//! Experiment E8 — Theorem 6: the chain-preconditioned SDD solver.
//!
//! Part 1: iteration counts of plain CG, Jacobi-PCG and chain-PCG as the condition
//! number of the input grows (weighted paths and stretched grids). Theorem 6's point is
//! that the chain makes the iteration count (nearly) independent of κ.
//!
//! Part 2: chain anatomy — depth and total chain size versus the input size, the
//! quantity whose `Õ((m + m′) log κ)` bound drives the solver's total work.
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_solver [--json]`
//!
//! `--trace-out PATH` / `--report-out PATH` record the runs through `sgs-obs`
//! (chain builds, per-level sizes, the PCG residual trajectory) and write a Chrome
//! trace / append a `RunReport` JSONL line carrying the chain-PCG `SolveStats`.

use sgs_bench::{print_table, report, time_ms, Cli, Row, Workload};
use sgs_graph::generators;
use sgs_linalg::csr::CsrMatrix;
use sgs_linalg::eigen;
use sgs_obs::RunReport;
use sgs_solver::{SddSolver, SolverConfig, SolverMethod};

fn main() {
    let cli = Cli::parse();
    let sink = cli.start_observability();
    let mut last_solve = None;
    // --- Part 1: iterations vs condition number.
    let mut rows = Vec::new();
    for &n in &[200usize, 400, 800, 1600] {
        let g = generators::path(n, 1.0);
        let kappa = eigen::condition_number(&CsrMatrix::laplacian(&g), 3);
        let solver = SddSolver::for_laplacian(g, SolverConfig::default());
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let cg = solver.solve_with(&b, SolverMethod::Cg);
        let jac = solver.solve_with(&b, SolverMethod::JacobiPcg);
        let (chain, chain_ms) = time_ms(|| solver.solve_with(&b, SolverMethod::ChainPcg));
        last_solve = Some(chain.stats.clone());
        rows.push(
            Row::new(format!("path n = {n}"))
                .push("kappa", kappa)
                .push("cg_iters", cg.iterations as f64)
                .push("jacobi_iters", jac.iterations as f64)
                .push("chain_iters", chain.iterations as f64)
                .push("chain_ms", chain_ms)
                .push("residual", chain.relative_residual),
        );
    }
    for &side in &[16usize, 32, 48] {
        let g = generators::image_affinity_grid(side, side, 80.0, 7);
        let n = g.n();
        let kappa = eigen::condition_number(&CsrMatrix::laplacian(&g), 5);
        let solver = SddSolver::for_laplacian(g, SolverConfig::default());
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let cg = solver.solve_with(&b, SolverMethod::Cg);
        let jac = solver.solve_with(&b, SolverMethod::JacobiPcg);
        let (chain, chain_ms) = time_ms(|| solver.solve_with(&b, SolverMethod::ChainPcg));
        last_solve = Some(chain.stats.clone());
        rows.push(
            Row::new(format!("image {side}x{side}"))
                .push("kappa", kappa)
                .push("cg_iters", cg.iterations as f64)
                .push("jacobi_iters", jac.iterations as f64)
                .push("chain_iters", chain.iterations as f64)
                .push("chain_ms", chain_ms)
                .push("residual", chain.relative_residual),
        );
    }
    print_table(
        "E8a: solver iteration counts (Theorem 6) — chain-PCG vs CG / Jacobi-PCG as kappa grows",
        &rows,
    );
    let mut run_report = RunReport::new("exp_solver", "solver suite");
    for section in report::rows_sections(&rows) {
        run_report.push(section);
    }

    // --- Part 2: chain anatomy.
    let mut rows = Vec::new();
    for workload in [
        Workload::ErdosRenyi { n: 1000, deg: 20 },
        Workload::ErdosRenyi { n: 1000, deg: 60 },
        Workload::Grid { side: 40 },
        Workload::Preferential { n: 1000, k: 10 },
    ] {
        let g = workload.build(31);
        let m = g.m();
        let (solver, build_ms) = time_ms(|| SddSolver::for_laplacian(g, SolverConfig::default()));
        let chain = solver.chain().expect("chain");
        rows.push(
            Row::new(workload.label())
                .push("m", m as f64)
                .push("depth", chain.depth() as f64)
                .push("chain_edges", chain.total_edges() as f64)
                .push("chain_edges/m", chain.total_edges() as f64 / m as f64)
                .push("build_ms", build_ms),
        );
    }
    print_table(
        "E8b: approximate inverse chain anatomy — depth and total size per workload",
        &rows,
    );
    println!(
        "expected shape: chain-PCG iteration counts stay nearly flat while plain CG grows like\n\
         sqrt(kappa); the chain is a constant number of times larger than the input for dense\n\
         graphs and (as Remark 3 concedes) relatively larger for very sparse ones."
    );

    for section in report::rows_sections(&rows) {
        run_report.push(section);
    }
    if let Some(solve) = &last_solve {
        run_report.push(report::solve_stats_section(solve));
    }
    cli.finish_observability(sink, &run_report);
}
