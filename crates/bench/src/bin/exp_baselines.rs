//! Experiment E9 — comparison against baselines (Remark 4 context).
//!
//! Compares PARALLELSPARSIFY against Spielman–Srivastava effective-resistance sampling,
//! plain uniform sampling (at matched output size) and the spanner+oversampling scheme,
//! on three qualitatively different workloads. Reported per method: output size,
//! certified spectral bounds, wall-clock time, the number of Laplacian solves consumed
//! (the paper's algorithm is solve-free), and whether the output stayed connected.
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_baselines [-- FLAGS]`
//!
//! Flags:
//! * `--seed S` — configuration seed shared by every method (default 5; the workload
//!   graphs keep their own pinned seeds so runs stay comparable).
//! * `--json` / `--json-out PATH` — as in every experiment binary (the JSON file
//!   concatenates the rows of all three workloads).

use sgs_bench::{print_table, time_ms, Cli, Row, Workload};
use sgs_core::baselines::{
    effective_resistance_sparsify, spanner_oversampling_sparsify, uniform_sparsify,
};
use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};
use sgs_graph::connectivity::is_connected;
use sgs_graph::Graph;
use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};

fn evaluate(name: &str, g: &Graph, h: &Graph, ms: f64, solves: usize) -> Row {
    let bounds = approximation_bounds(g, h, &CertifyOptions::default());
    Row::new(name)
        .push("m_out", h.m() as f64)
        .push("lower", bounds.lower)
        .push("upper", bounds.upper)
        .push("eps_achieved", bounds.epsilon())
        .push("time_ms", ms)
        .push("solves", solves as f64)
        .push("connected", if is_connected(h) { 1.0 } else { 0.0 })
}

fn main() {
    let cli = Cli::parse();
    let eps = 0.5;
    let seed = cli.seed(5);
    let mut all_rows = Vec::new();
    for workload in [
        Workload::ErdosRenyi { n: 800, deg: 80 },
        Workload::Preferential { n: 800, k: 20 },
        Workload::Barbell { k: 60 },
    ] {
        let g = workload.build(23);
        println!(
            "\nworkload {}: n = {}, m = {}",
            workload.label(),
            g.n(),
            g.m()
        );
        let mut rows = Vec::new();

        let cfg = SparsifyConfig::new(eps, 4.0)
            .with_bundle_sizing(BundleSizing::Fixed(4))
            .with_seed(seed);
        let (ours, ms) = time_ms(|| parallel_sparsify(&g, &cfg));
        rows.push(evaluate("parallel_sparsify", &g, &ours.sparsifier, ms, 0));

        let (er, ms) = time_ms(|| effective_resistance_sparsify(&g, eps, 0.5, seed));
        rows.push(evaluate(
            "effective_resistance",
            &g,
            &er.sparsifier,
            ms,
            er.solves,
        ));

        // Uniform sampling at the same expected size as the paper's output.
        let p = (ours.sparsifier.m() as f64 / g.m() as f64).min(1.0);
        let (uni, ms) = time_ms(|| uniform_sparsify(&g, p, seed));
        rows.push(evaluate(
            "uniform(matched size)",
            &g,
            &uni.sparsifier,
            ms,
            0,
        ));

        let (span, ms) = time_ms(|| spanner_oversampling_sparsify(&g, 0.25, seed));
        rows.push(evaluate("spanner+oversample", &g, &span.sparsifier, ms, 0));

        print_table(&format!("E9: baselines on {}", workload.label()), &rows);
        let label = workload.label();
        all_rows.extend(rows.into_iter().map(|mut r| {
            r.label = format!("{label}/{}", r.label);
            r
        }));
    }
    cli.write_json_out(&all_rows);
    println!(
        "\nexpected shape: on the barbell the uniform baseline loses connectivity / blows up its\n\
         upper bound, while the spanner-based schemes stay two-sided; effective-resistance\n\
         sampling gives the tightest bounds but pays O(log n) Laplacian solves."
    );
}
