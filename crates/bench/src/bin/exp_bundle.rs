//! Experiment E3 — Lemma 1 / Corollaries 1–2: the bundle certificate.
//!
//! For a graph small enough to compute exact effective resistances, sweeps the bundle
//! parameter `t` and reports: the bundle size against `t · n log n`, the worst
//! off-bundle leverage score `w_e R_e[G]` against the certified bound `log n / t`, and
//! the fraction of edges left outside the bundle (the uniformly sampled population).
//!
//! Run with: `cargo run --release -p sgs-bench --bin exp_bundle [--json]`

use sgs_bench::{print_table, time_ms, Row};
use sgs_graph::generators;
use sgs_linalg::resistance::exact_effective_resistances;
use sgs_spanner::{t_bundle, BundleConfig};

fn main() {
    let n = 500;
    let g = generators::erdos_renyi(n, 0.2, 1.0, 11);
    let resistances = exact_effective_resistances(&g);
    let log_n = (n as f64).log2();
    println!("graph: n = {n}, m = {}", g.m());

    let mut rows = Vec::new();
    for t in [1usize, 2, 4, 8, 16, 32] {
        let (bundle, ms) = time_ms(|| t_bundle(&g, &BundleConfig::new(t).with_seed(5)));
        let mut worst_leverage: f64 = 0.0;
        let mut off_bundle = 0usize;
        for (id, e) in g.edges().iter().enumerate() {
            if !bundle.in_bundle[id] {
                off_bundle += 1;
                worst_leverage = worst_leverage.max(e.w * resistances[id]);
            }
        }
        rows.push(
            Row::new(format!("t = {t}"))
                .push("bundle_edges", bundle.bundle_size as f64)
                .push(
                    "edges/(t n log n)",
                    bundle.bundle_size as f64 / (t as f64 * n as f64 * log_n),
                )
                .push("off_bundle", off_bundle as f64)
                .push("worst w_e R_e", worst_leverage)
                .push("bound log n / t", log_n / t as f64)
                .push(
                    "work/(t m log n)",
                    bundle.work as f64 / (t as f64 * g.m() as f64 * log_n),
                )
                .push("time_ms", ms),
        );
    }
    print_table(
        "E3: t-bundle spanner certificate (Lemma 1) — worst off-bundle leverage vs log n / t",
        &rows,
    );
    println!("every 'worst w_e R_e' entry must sit below its 'bound log n / t' entry.");
}
