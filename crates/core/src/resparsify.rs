//! Effective-resistance resparsification of a finished sparsifier.
//!
//! This is the Spielman–Srivastava scheme (arXiv:0808.4134) run as a *final pass*: by
//! the time a pipeline (notably the `sgs-stream` merge-and-reduce tree) has produced a
//! sparsifier `H`, `H` is small enough that a handful of Laplacian solves on it is
//! cheap — so instead of keeping `H`'s uniform-coin size, one last leverage-weighted
//! pass samples `q ≈ oversample · n log n / ε²` edges proportionally to `w_e · R̃_e`
//! and reweights by `1/p_e`. High-leverage edges (cut edges, bridges) clamp to
//! probability 1 and survive deterministically; bulk intra-expander edges are thinned
//! aggressively. The pass composes spectrally: if `H ≈_δ G` and the pass certifies
//! `H' ≈_ε H`, then `H' ≈_{δ+ε} G` (first-order), which is how
//! `StreamSparsifier::finish` accounts for it in the epsilon ledger.
//!
//! Like `PARALLELSAMPLE` — which keeps its t-bundle spanner verbatim and flips coins
//! only off-bundle — the pass keeps a spanning forest of its input verbatim and spends
//! the sample budget on the off-forest edges. That makes connectivity (and hence a
//! non-degenerate lower spectral bound) unconditional, even at sample budgets far
//! below the `n log n` floor where plain independent sampling isolates vertices.
//!
//! When the requested sample budget `q` already reaches the input size `m`, the pass
//! returns the input unchanged (no solves) — resampling could only add variance.

use rayon::prelude::*;
use sgs_graph::{Edge, Graph};
use sgs_linalg::resistance::ResistanceOptions;

use crate::engine::SparsifyEngine;
use crate::sample::edge_coin;

/// Configuration of the ER-weighted final pass.
#[derive(Debug, Clone)]
pub struct ErPassConfig {
    /// Accuracy `ε` attributed to this pass in the caller's epsilon ledger.
    pub epsilon: f64,
    /// Constant `c` in the sample budget `q = c · n log₂ n / ε²`. The theory wants
    /// `c ≈ 9/δ²`-ish constants that exceed any practical input; values well below 1
    /// are where the pass actually reduces size (see `target_samples`).
    pub oversample: f64,
    /// When `Some(shrink)`, the sample budget is auto-tuned from the *observed* input
    /// size instead of the fixed `oversample` constant: the pass targets
    /// `q ≈ m_in / shrink` edges (floored at `n`, the spanning-forest scale, so a
    /// huge `shrink` cannot starve the skeleton). A fixed constant over- or
    /// under-shoots whenever the input's density differs from the density it was
    /// hand-tuned for; the auto mode makes "cut this graph by 4×" mean the same thing
    /// at every density. Only the *thresholds* move — the coin stream
    /// (`edge_coin(seed, id)`) is byte-identical to the fixed mode, per the strategy
    /// contract.
    pub auto_shrink: Option<f64>,
    /// Number of JL projection rows (= Laplacian solves).
    pub jl_dims: usize,
    /// CG relative-residual tolerance of each solve.
    pub cg_tol: f64,
    /// Seed of the sampling coin stream and the JL projections.
    pub seed: u64,
    /// Run solves and the per-edge filter in parallel with rayon.
    pub parallel: bool,
}

/// Iteration cap on the pass's CG solves; estimates steer sampling only.
const CG_MAX_ITERATIONS: usize = 1000;

impl ErPassConfig {
    /// Creates a pass configuration for accuracy `epsilon` with practical defaults
    /// (oversample 0.25, 8 projection rows at tolerance `1e-4`).
    pub fn new(epsilon: f64) -> ErPassConfig {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        ErPassConfig {
            epsilon,
            oversample: 0.25,
            auto_shrink: None,
            jl_dims: 8,
            cg_tol: 1e-4,
            seed: 0xC0FFEE,
            parallel: true,
        }
    }

    /// Overrides the oversampling constant (and switches off auto-tuning).
    pub fn with_oversample(mut self, c: f64) -> Self {
        assert!(c > 0.0, "oversample must be positive");
        self.oversample = c;
        self.auto_shrink = None;
        self
    }

    /// Auto-tunes the sample budget from the observed input size: target
    /// `m_in / shrink` kept edges instead of the fixed `oversample` constant
    /// (see [`ErPassConfig::auto_shrink`]).
    pub fn with_auto_oversample(mut self, shrink: f64) -> Self {
        assert!(shrink >= 1.0, "shrink must be at least 1");
        self.auto_shrink = Some(shrink);
        self
    }

    /// Overrides the JL dimensions (projection rows).
    pub fn with_jl_dims(mut self, k: usize) -> Self {
        assert!(k > 0, "jl_dims must be positive");
        self.jl_dims = k;
        self
    }

    /// Overrides the CG tolerance.
    pub fn with_cg_tol(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "cg_tol must be positive");
        self.cg_tol = tol;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables rayon parallelism.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// The expected number of sampled edges: `oversample · n · log₂ n / ε²`.
    pub fn target_samples(&self, n: usize) -> f64 {
        self.oversample * n as f64 * (n.max(2) as f64).log2() / (self.epsilon * self.epsilon)
    }

    /// The sample budget the pass actually runs with for an input of `n` vertices and
    /// `m_in` edges: [`ErPassConfig::target_samples`] in fixed mode, or
    /// `max(m_in / shrink, n)` when auto-tuning is enabled.
    pub fn resolved_target(&self, n: usize, m_in: usize) -> f64 {
        match self.auto_shrink {
            None => self.target_samples(n),
            Some(shrink) => (m_in as f64 / shrink).max(n as f64),
        }
    }
}

/// Output of [`resparsify_er`].
#[derive(Debug, Clone)]
pub struct ErPassOutput {
    /// The resampled sparsifier (or a clone of the input when the pass short-circuits).
    pub sparsifier: Graph,
    /// Edge count of the input.
    pub m_in: usize,
    /// Edge count of the output.
    pub m_out: usize,
    /// Number of Laplacian solves performed (0 when the pass short-circuited).
    pub solves: usize,
    /// Whether resampling actually happened; `false` means the output is the input.
    pub resampled: bool,
}

/// Runs one leverage-weighted resampling pass over `g` (see module docs).
///
/// Deterministic in `(g, cfg)`: output is bitwise identical across thread counts and
/// across `cfg.parallel` on/off.
pub fn resparsify_er(g: &Graph, cfg: &ErPassConfig) -> ErPassOutput {
    resparsify_on_engine(g, cfg, &mut SparsifyEngine::new())
}

/// Re-entrant [`resparsify_er`] reusing a caller-owned engine's JL/CG scratch.
pub(crate) fn resparsify_on_engine(
    g: &Graph,
    cfg: &ErPassConfig,
    engine: &mut SparsifyEngine,
) -> ErPassOutput {
    let n = g.n();
    let m = g.m();
    let q = cfg.resolved_target(n, m);

    // Identity short-circuit: asking for at least as many samples as there are edges
    // means every probability would clamp to ~1 — return the input unchanged and spend
    // zero solves. This is also the honest behavior under the paper-faithful constants,
    // whose q exceeds any practical m.
    if m == 0 || q >= m as f64 {
        return ErPassOutput {
            sparsifier: g.clone(),
            m_in: m,
            m_out: m,
            solves: 0,
            resampled: false,
        };
    }

    let scratch = &mut engine.sampling;
    let opts = ResistanceOptions {
        rows: cfg.jl_dims.max(1),
        tolerance: cfg.cg_tol,
        max_iterations: CG_MAX_ITERATIONS,
        seed: cfg.seed ^ 0x1337_C0DE_ACE1_D00D,
        parallel: cfg.parallel,
    };
    sgs_linalg::resistance::approx_effective_resistances_in(
        g,
        &opts,
        &mut scratch.resistance,
        &mut scratch.resistances,
    );

    // Connectivity skeleton: a spanning forest in edge order, kept verbatim (p = 1,
    // weight unchanged) exactly as PARALLELSAMPLE keeps its bundle. The remaining
    // budget is spent on the off-forest edges.
    let mut uf = sgs_graph::connectivity::UnionFind::new(n);
    scratch.forest.clear();
    scratch.forest.resize(m, false);
    let mut forest_edges = 0usize;
    for (id, e) in g.edges().iter().enumerate() {
        if uf.union(e.u, e.v) {
            scratch.forest[id] = true;
            forest_edges += 1;
        }
    }

    // Off-forest leverage scores and their sum, accumulated sequentially so the
    // normalizer — and therefore every probability — is bitwise independent of thread
    // scheduling. Forest edges carry probability 1 directly.
    let mut sum = 0.0;
    let mut off_edges = 0usize;
    scratch.probs.clear();
    for (id, e) in g.edges().iter().enumerate() {
        if scratch.forest[id] {
            scratch.probs.push(1.0);
            continue;
        }
        let s = (e.w * scratch.resistances[id]).max(0.0);
        scratch.probs.push(s);
        sum += s;
        off_edges += 1;
    }
    if off_edges == 0 || sum <= 0.0 {
        return ErPassOutput {
            sparsifier: g.clone(),
            m_in: m,
            m_out: m,
            solves: cfg.jl_dims,
            resampled: false,
        };
    }

    // p_e ∝ q_off · s_e / Σs on off-forest edges — where q_off is what remains of the
    // budget after the forest — floored so no kept edge is blown up by more than
    // 100/(q_off/m_off) and capped at 1 (leverage-1 edges become deterministic keeps).
    let q_off = (q - forest_edges as f64).max(0.0);
    let floor = (q_off / off_edges as f64 * 1e-2).min(1.0);
    for (id, p) in scratch.probs.iter_mut().enumerate() {
        if !scratch.forest[id] {
            *p = (q_off * *p / sum).clamp(floor, 1.0);
        }
    }

    let coin_seed = cfg.seed ^ 0xE57A_B1E5_EED5_EED5;
    let probs = &scratch.probs;
    let decide = |id: usize| -> Option<Edge> {
        let e = g.edge(id);
        let p = probs[id];
        if edge_coin(coin_seed, id as u64) < p {
            Some(Edge::new(e.u, e.v, e.w / p))
        } else {
            None
        }
    };
    let kept: Vec<Edge> = if cfg.parallel {
        (0..m).into_par_iter().filter_map(decide).collect()
    } else {
        (0..m).filter_map(decide).collect()
    };

    let m_out = kept.len();
    ErPassOutput {
        sparsifier: Graph::from_edges_unchecked(n, kept),
        m_in: m,
        m_out,
        solves: cfg.jl_dims,
        resampled: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{connectivity::is_connected, generators};
    use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};

    fn pass_cfg() -> ErPassConfig {
        // oversample 0.25 keeps q ≈ n log n, the regime where the pass compresses a
        // dense input without leaning on the forest skeleton for most of its edges.
        ErPassConfig::new(0.5)
            .with_oversample(0.25)
            .with_jl_dims(4)
            .with_cg_tol(1e-3)
            .with_seed(11)
    }

    #[test]
    fn identity_short_circuit_when_budget_covers_input() {
        let g = generators::erdos_renyi(120, 0.1, 1.0, 3);
        // Paper-faithful oversampling: q = 24 n log n / eps² vastly exceeds m.
        let cfg = ErPassConfig::new(0.5).with_oversample(24.0);
        let out = resparsify_er(&g, &cfg);
        assert!(!out.resampled);
        assert_eq!(out.solves, 0);
        assert_eq!(out.m_out, g.m());
        assert_eq!(out.sparsifier.edges(), g.edges());
    }

    #[test]
    fn resamples_dense_graph_below_input_size() {
        let g = generators::erdos_renyi(300, 0.4, 1.0, 7);
        let out = resparsify_er(&g, &pass_cfg());
        assert!(out.resampled);
        assert_eq!(out.solves, 4);
        assert_eq!(out.m_in, g.m());
        assert!(
            out.m_out < g.m() / 2,
            "m_out {} vs m_in {}",
            out.m_out,
            out.m_in
        );
        assert!(is_connected(&out.sparsifier), "pass must keep connectivity");
    }

    #[test]
    fn spectral_quality_survives_the_pass() {
        let g = generators::erdos_renyi(200, 0.5, 1.0, 13);
        let out = resparsify_er(&g, &pass_cfg().with_oversample(0.4).with_jl_dims(6));
        let bounds = approximation_bounds(&g, &out.sparsifier, &CertifyOptions::default());
        // Same style of envelope as the sparsify tests: two-sided and far from
        // degenerate (probe bounds at practical constants, not the paper's 1 ± ε).
        assert!(bounds.lower > 0.3, "lower {}", bounds.lower);
        assert!(bounds.upper < 3.0, "upper {}", bounds.upper);
    }

    #[test]
    fn deterministic_and_parallelism_invariant() {
        let g = generators::erdos_renyi(250, 0.3, 1.0, 23);
        let a = resparsify_er(&g, &pass_cfg().with_parallel(true));
        let b = resparsify_er(&g, &pass_cfg().with_parallel(false));
        assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
        let c = resparsify_er(&g, &pass_cfg().with_seed(99));
        assert_ne!(a.sparsifier.edges(), c.sparsifier.edges());
    }

    #[test]
    fn engine_scratch_path_matches_free_function() {
        let mut engine = SparsifyEngine::new();
        for seed in [1u64, 2, 3] {
            let g = generators::erdos_renyi(180, 0.3, 1.0, seed);
            let a = engine.resparsify_er(&g, &pass_cfg());
            let b = resparsify_er(&g, &pass_cfg());
            assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
            assert_eq!(a.m_out, b.m_out);
        }
    }

    #[test]
    fn auto_oversample_tracks_observed_input_size() {
        // The same config must mean "cut by ~4x" at two very different densities —
        // exactly what a fixed constant cannot do.
        let cfg = pass_cfg().with_auto_oversample(4.0);
        for (p, seed) in [(0.15, 5u64), (0.5, 9)] {
            let g = generators::erdos_renyi(300, p, 1.0, seed);
            let out = resparsify_er(&g, &cfg);
            assert!(out.resampled);
            let target = g.m() as f64 / 4.0;
            let got = out.m_out as f64;
            assert!(
                (got - target).abs() < 4.0 * target.sqrt() + 0.05 * target,
                "p={p}: m_out {got} vs target {target}"
            );
            assert!(is_connected(&out.sparsifier));
        }
    }

    #[test]
    fn auto_oversample_shrink_one_is_the_identity() {
        // q = m_in / 1 = m_in triggers the short-circuit: nothing to thin.
        let g = generators::erdos_renyi(200, 0.3, 1.0, 3);
        let out = resparsify_er(&g, &pass_cfg().with_auto_oversample(1.0));
        assert!(!out.resampled);
        assert_eq!(out.sparsifier.edges(), g.edges());
    }

    #[test]
    fn auto_mode_consumes_the_same_coin_stream_as_fixed_mode() {
        // Auto-tuning only moves thresholds, never draws: a fixed config whose
        // target_samples equals the auto budget must produce the identical output.
        let g = generators::erdos_renyi(250, 0.4, 1.0, 17);
        let (n, m) = (g.n(), g.m());
        let auto = pass_cfg().with_auto_oversample(4.0);
        let q = auto.resolved_target(n, m);
        // Solve q = c · n log₂ n / ε² for the equivalent fixed constant.
        let eps = auto.epsilon;
        let c = q * eps * eps / (n as f64 * (n as f64).log2());
        let fixed = pass_cfg().with_oversample(c);
        let a = resparsify_er(&g, &auto);
        let b = resparsify_er(&g, &fixed);
        assert!(a.resampled && b.resampled);
        // Compare kept edge identities (weights differ in the last ulps because the
        // fixed constant is a float roundtrip of the auto budget).
        let ids = |o: &ErPassOutput| -> Vec<(usize, usize)> {
            o.sparsifier.edges().iter().map(|e| (e.u, e.v)).collect()
        };
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn with_oversample_resets_auto_mode() {
        let cfg = pass_cfg().with_auto_oversample(8.0).with_oversample(0.3);
        assert!(cfg.auto_shrink.is_none());
        assert_eq!(cfg.resolved_target(100, 5000), cfg.target_samples(100));
    }

    #[test]
    fn bridge_edges_survive() {
        let g = generators::barbell(40, 1, 1.0, 1.0);
        let out = resparsify_er(&g, &pass_cfg());
        if out.resampled {
            assert!(is_connected(&out.sparsifier));
            let has_neck = out
                .sparsifier
                .edges()
                .iter()
                .any(|e| (e.u < 40) != (e.v < 40));
            assert!(has_neck, "leverage-1 neck edge must clamp to p = 1");
        }
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = Graph::from_edges_unchecked(5, Vec::new());
        let out = resparsify_er(&g, &pass_cfg());
        assert!(!out.resampled);
        assert_eq!(out.m_out, 0);
    }
}
