//! Configuration of the sparsification algorithms.

use crate::strategy::SamplingPolicy;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// How the bundle parameter `t` of `PARALLELSAMPLE` is chosen.
///
/// The paper's analysis (Theorem 4) sets `t = 24 log² n / ε²`, which certifies the
/// `(1 ± ε)` bound with probability `1 − 1/n²` but is far too large to be useful on
/// graphs of practical size — the bundle alone would exceed the input. This is a purely
/// constant-factor phenomenon (the analysis is worst-case over the matrix Chernoff
/// bound), and every implementation of resistance-based sampling scales such constants
/// down. The enum makes the choice explicit and lets experiments sweep it.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum BundleSizing {
    /// The paper's constant: `t = ⌈24 log₂² n / ε²⌉`.
    Paper,
    /// A scaled version of the paper's formula: `t = ⌈c · log₂² n / ε²⌉`.
    Scaled(f64),
    /// A fixed bundle size, independent of `n` and `ε`.
    Fixed(usize),
}

impl BundleSizing {
    /// Resolves the bundle parameter `t` for a graph with `n` vertices and accuracy
    /// target `eps`.
    pub fn resolve(&self, n: usize, eps: f64) -> usize {
        let log_n = (n.max(2) as f64).log2();
        let t = match self {
            BundleSizing::Paper => 24.0 * log_n * log_n / (eps * eps),
            BundleSizing::Scaled(c) => c * log_n * log_n / (eps * eps),
            BundleSizing::Fixed(t) => return (*t).max(1),
        };
        (t.ceil() as usize).max(1)
    }
}

/// Configuration of `PARALLELSAMPLE` / `PARALLELSPARSIFY`.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SparsifyConfig {
    /// Overall accuracy target `ε` (the output is a `(1 ± ε)` approximation w.h.p.).
    pub epsilon: f64,
    /// Sparsification factor `ρ`: the off-bundle edge mass shrinks by roughly `ρ`.
    pub rho: f64,
    /// How the bundle parameter `t` is chosen per round.
    pub bundle_sizing: BundleSizing,
    /// Probability with which each off-bundle edge is kept (the paper fixes 1/4; kept
    /// configurable for the ablation benchmarks).
    pub keep_probability: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Run the per-edge sampling and the spanner construction in parallel with rayon.
    pub parallel: bool,
    /// Stop iterating once the graph has at most this many times `n · log₂ n` edges;
    /// mirrors the "threshold of applicability" discussion in Section 4.
    pub stop_below_nlogn_factor: f64,
    /// How off-bundle keep probabilities are assigned (uniform coin by default).
    pub sampling: SamplingPolicy,
}

impl SparsifyConfig {
    /// Creates a configuration with the given accuracy `ε` and sparsification factor
    /// `ρ`, using a practically sized bundle (`Scaled(0.5)`), keep probability 1/4 and
    /// parallelism enabled.
    pub fn new(epsilon: f64, rho: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        assert!(rho >= 1.0, "rho must be at least 1");
        SparsifyConfig {
            epsilon,
            rho,
            bundle_sizing: BundleSizing::Scaled(0.5),
            keep_probability: 0.25,
            seed: 0xC0FFEE,
            parallel: true,
            stop_below_nlogn_factor: 2.0,
            sampling: SamplingPolicy::uniform(),
        }
    }

    /// Uses the paper's exact constants for the bundle size.
    pub fn with_paper_constants(mut self) -> Self {
        self.bundle_sizing = BundleSizing::Paper;
        self
    }

    /// Overrides the bundle sizing rule.
    pub fn with_bundle_sizing(mut self, sizing: BundleSizing) -> Self {
        self.bundle_sizing = sizing;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the keep probability (must be in `(0, 1)`).
    pub fn with_keep_probability(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "keep probability must be in (0, 1)");
        self.keep_probability = p;
        self
    }

    /// Enables or disables rayon parallelism.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Selects the off-bundle sampling strategy (see [`SamplingPolicy`]).
    pub fn with_sampling(mut self, sampling: SamplingPolicy) -> Self {
        self.sampling = sampling;
        self
    }

    /// Number of outer rounds `⌈log₂ ρ⌉` (Algorithm 2, line 2).
    pub fn rounds(&self) -> usize {
        (self.rho.log2().ceil() as usize).max(1)
    }

    /// Per-round accuracy `ε / ⌈log₂ ρ⌉` (Algorithm 2, line 3).
    pub fn per_round_epsilon(&self) -> f64 {
        self.epsilon / self.rounds() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constant_matches_formula() {
        let n = 1024;
        let eps = 0.5;
        let t = BundleSizing::Paper.resolve(n, eps);
        let expected = (24.0f64 * 10.0 * 10.0 / 0.25).ceil() as usize;
        assert_eq!(t, expected);
    }

    #[test]
    fn scaled_and_fixed_sizing() {
        assert_eq!(BundleSizing::Fixed(7).resolve(10_000, 0.1), 7);
        assert_eq!(BundleSizing::Fixed(0).resolve(10, 0.1), 1);
        let a = BundleSizing::Scaled(1.0).resolve(1024, 1.0);
        let b = BundleSizing::Scaled(2.0).resolve(1024, 1.0);
        assert_eq!(a, 100);
        assert_eq!(b, 200);
        // Smaller epsilon means more bundle components.
        assert!(BundleSizing::Scaled(1.0).resolve(1024, 0.5) > a);
    }

    #[test]
    fn rounds_and_per_round_epsilon() {
        let cfg = SparsifyConfig::new(0.6, 8.0);
        assert_eq!(cfg.rounds(), 3);
        assert!((cfg.per_round_epsilon() - 0.2).abs() < 1e-12);
        let cfg = SparsifyConfig::new(0.6, 1.0);
        assert_eq!(cfg.rounds(), 1);
        let cfg = SparsifyConfig::new(0.6, 5.0);
        assert_eq!(cfg.rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = SparsifyConfig::new(0.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rejects_bad_rho() {
        let _ = SparsifyConfig::new(0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn rejects_bad_keep_probability() {
        let _ = SparsifyConfig::new(0.5, 2.0).with_keep_probability(1.5);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = SparsifyConfig::new(0.3, 16.0)
            .with_seed(9)
            .with_parallel(false)
            .with_bundle_sizing(BundleSizing::Fixed(5))
            .with_keep_probability(0.5)
            .with_sampling(SamplingPolicy::effective_resistance(4, 1e-3));
        assert_eq!(cfg.seed, 9);
        assert!(!cfg.parallel);
        assert_eq!(cfg.bundle_sizing, BundleSizing::Fixed(5));
        assert_eq!(cfg.keep_probability, 0.5);
        assert_eq!(cfg.rounds(), 4);
        assert_eq!(cfg.sampling.name(), "effective-resistance");
        assert_eq!(SparsifyConfig::new(0.3, 2.0).sampling.name(), "uniform");
    }
}
