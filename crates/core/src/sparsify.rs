//! `PARALLELSPARSIFY` (Algorithm 2 of the paper).
//!
//! ```text
//! Input: graph G, parameters ε, ρ
//! 1: G₀ := G
//! 2: for i = 1 .. ⌈log ρ⌉
//! 3:     G_i := PARALLELSAMPLE(G_{i−1}, ε / ⌈log ρ⌉)
//! 4: return G_{⌈log ρ⌉}
//! ```
//!
//! Theorem 5: the output is a `(1 ± ε)` approximation w.h.p., has
//! `O(n log³ n log³ ρ / ε² + m/ρ)` edges in expectation, and the total work is
//! `O(m log² n log³ ρ / ε²)` — dominated by the first round because the graphs shrink
//! geometrically.

use sgs_graph::Graph;

use crate::config::SparsifyConfig;
use crate::engine::SparsifyEngine;
use crate::sample::sample_on_engine;
use crate::stats::{PipelinePhases, WorkStats};

/// Output of `PARALLELSPARSIFY`.
#[derive(Debug, Clone)]
pub struct SparsifyOutput {
    /// The final sparsifier `G_{⌈log ρ⌉}`.
    pub sparsifier: Graph,
    /// Number of rounds actually executed (may stop early when the graph is already
    /// below the size threshold where further sparsification cannot help).
    pub rounds_executed: usize,
    /// The per-round accuracy `ε / ⌈log ρ⌉` that was used.
    pub per_round_epsilon: f64,
    /// Aggregated work counters across all rounds.
    pub stats: WorkStats,
    /// Wall-clock phase breakdown across all rounds (excluded from determinism checks).
    pub phases: PipelinePhases,
}

impl SparsifyOutput {
    /// Ratio of input edges to output edges (the achieved sparsification factor).
    pub fn achieved_factor(&self) -> f64 {
        let m_in = *self.stats.edges_per_round.first().unwrap_or(&0) as f64;
        let m_out = self.sparsifier.m().max(1) as f64;
        m_in / m_out
    }
}

/// Runs `PARALLELSPARSIFY` on `g` with the given configuration.
///
/// The iteration stops early when the current graph has at most
/// `stop_below_nlogn_factor · n log₂ n` edges — at that point the bundle would contain
/// the entire graph and further rounds are no-ops (this mirrors the "threshold of
/// applicability" discussion in Section 4 of the paper).
pub fn parallel_sparsify(g: &Graph, cfg: &SparsifyConfig) -> SparsifyOutput {
    sparsify_on_engine(g, cfg, &mut SparsifyEngine::new())
}

/// Re-entrant `PARALLELSPARSIFY`: identical to [`parallel_sparsify`] but every round's
/// bundle construction and probability scratch reuse the caller's [`SparsifyEngine`]
/// allocations. This is the per-batch entry point of [`crate::SparsifyEngine`].
pub(crate) fn sparsify_on_engine(
    g: &Graph,
    cfg: &SparsifyConfig,
    engine: &mut SparsifyEngine,
) -> SparsifyOutput {
    let rounds = cfg.rounds();
    let per_round_epsilon = cfg.per_round_epsilon();
    let n = g.n();
    let stop_threshold =
        (cfg.stop_below_nlogn_factor * n as f64 * (n.max(2) as f64).log2()).ceil() as usize;

    // `current` stays borrowed from the input until the first round produces an owned
    // graph — the input is only cloned when no round executes (the output must own its
    // edges either way), so per-batch callers never pay an O(m) copy of the input.
    let mut current: Option<Graph> = None;
    let mut stats = WorkStats::default();
    let mut phases = PipelinePhases::default();
    let mut rounds_executed = 0usize;

    for round in 0..rounds {
        let cur: &Graph = current.as_ref().unwrap_or(g);
        if cur.m() <= stop_threshold {
            break;
        }
        let mut round_cfg = cfg.clone();
        round_cfg.epsilon = per_round_epsilon;
        round_cfg.seed = cfg
            .seed
            .wrapping_add((round as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let out = sample_on_engine(cur, &round_cfg, engine);
        stats.absorb_round(&out.stats);
        phases.absorb(&out.phases);
        sgs_obs::point!(
            "sparsify.round",
            round = round,
            m_in = out.stats.edges_per_round.first().copied().unwrap_or(0),
            m_out = out.sparsifier.m(),
        );
        current = Some(out.sparsifier);
        rounds_executed += 1;
    }
    let current = current.unwrap_or_else(|| g.clone());

    // Record the final size as the last entry so experiments can read the full series.
    stats.edges_per_round.push(current.m());

    SparsifyOutput {
        sparsifier: current,
        rounds_executed,
        per_round_epsilon,
        stats,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BundleSizing, SparsifyConfig};
    use sgs_graph::{connectivity::is_connected, generators};
    use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};

    fn practical(eps: f64, rho: f64, seed: u64) -> SparsifyConfig {
        SparsifyConfig::new(eps, rho)
            .with_bundle_sizing(BundleSizing::Fixed(3))
            .with_seed(seed)
    }

    #[test]
    fn sparsifies_dense_graph_by_roughly_rho() {
        let g = generators::erdos_renyi(500, 0.4, 1.0, 3); // ~50k edges
        let cfg = practical(0.75, 8.0, 5);
        let out = parallel_sparsify(&g, &cfg);
        assert_eq!(out.rounds_executed, 3);
        assert!(
            out.sparsifier.m() < g.m() / 3,
            "only got {} of {}",
            out.sparsifier.m(),
            g.m()
        );
        assert!(out.achieved_factor() > 3.0);
        assert!(is_connected(&out.sparsifier));
    }

    #[test]
    fn rounds_follow_ceil_log_rho() {
        let g = generators::erdos_renyi(300, 0.4, 1.0, 7);
        for (rho, expected) in [(2.0, 1usize), (4.0, 2), (8.0, 3), (6.0, 3)] {
            let cfg = practical(0.75, rho, 1);
            let out = parallel_sparsify(&g, &cfg);
            assert!(
                out.rounds_executed <= expected,
                "rho={rho}: executed {} > expected {expected}",
                out.rounds_executed
            );
            assert!((out.per_round_epsilon - 0.75 / expected as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn stops_early_on_already_sparse_graphs() {
        let g = generators::grid2d(30, 30, 1.0); // m ≈ 2n, far below n log n
        let cfg = practical(0.5, 16.0, 2);
        let out = parallel_sparsify(&g, &cfg);
        assert_eq!(out.rounds_executed, 0);
        assert_eq!(out.sparsifier.m(), g.m());
        assert_eq!(out.achieved_factor(), 1.0); // nothing was removed
    }

    #[test]
    fn spectral_quality_degrades_gracefully_with_rho() {
        let g = generators::erdos_renyi(250, 0.5, 1.0, 13);
        let opts = CertifyOptions::default();
        // The bounds below are seed-sensitive: rho = 8 on a 250-vertex graph leaves few
        // edges, so the certified interval swings noticeably between sampling streams.
        // Seed 7 satisfies the asserted envelope with a wide margin under the splitmix
        // edge coin (see vendor/README.md for the RNG fidelity caveat); it was re-pinned
        // from seed 4 when the coin replaced the per-edge ChaCha8 stream.
        let small = parallel_sparsify(&g, &practical(0.75, 2.0, 7));
        let large = parallel_sparsify(&g, &practical(0.75, 8.0, 7));
        let b_small = approximation_bounds(&g, &small.sparsifier, &opts);
        let b_large = approximation_bounds(&g, &large.sparsifier, &opts);
        // Both stay two-sided; the more aggressive sparsification is at least as loose.
        assert!(b_small.lower > 0.3 && b_small.upper < 3.0, "{b_small:?}");
        assert!(b_large.lower > 0.15 && b_large.upper < 4.0, "{b_large:?}");
        assert!(b_large.condition() >= b_small.condition() * 0.9);
        // And the larger rho removes more edges.
        assert!(large.sparsifier.m() <= small.sparsifier.m());
    }

    #[test]
    fn total_weight_is_approximately_preserved() {
        let g = generators::erdos_renyi(400, 0.3, 1.0, 19);
        let out = parallel_sparsify(&g, &practical(0.75, 4.0, 7));
        let rel = (out.sparsifier.total_weight() - g.total_weight()).abs() / g.total_weight();
        assert!(rel < 0.2, "total weight drifted by {rel}");
    }

    #[test]
    fn work_is_dominated_by_the_first_round() {
        let g = generators::erdos_renyi(400, 0.4, 1.0, 29);
        let out = parallel_sparsify(&g, &practical(0.75, 16.0, 11));
        assert!(out.rounds_executed >= 2);
        // Edge counts must decrease (geometrically in expectation).
        let sizes = &out.stats.edges_per_round;
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "sizes must be non-increasing: {sizes:?}");
        }
        // Sampling work across all rounds is at most ~2x the first round's edges.
        let first = sizes[0] as u64;
        assert!(
            out.stats.sampling_work <= 3 * first,
            "sampling work not geometric"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(300, 0.3, 1.0, 37);
        let a = parallel_sparsify(&g, &practical(0.5, 4.0, 21));
        let b = parallel_sparsify(&g, &practical(0.5, 4.0, 21));
        assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
        let c = parallel_sparsify(&g, &practical(0.5, 4.0, 22));
        assert_ne!(a.sparsifier.edges(), c.sparsifier.edges());
    }

    #[test]
    fn vertex_set_is_preserved() {
        let g = generators::erdos_renyi(200, 0.4, 1.0, 41);
        let out = parallel_sparsify(&g, &practical(0.5, 4.0, 1));
        assert_eq!(out.sparsifier.n(), g.n());
    }
}
