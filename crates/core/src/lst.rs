//! The Remark 2 extension: trees instead of spanners inside the bundle.
//!
//! Remark 2 of the paper observes that low-stretch spanning trees can replace spanners
//! in the bundle, saving an `O(log n)` factor in the sparsifier size, at the price of a
//! larger stretch bound per component (low-stretch trees guarantee small *average*
//! stretch rather than small maximum stretch).
//!
//! **Substitution note** (documented in `DESIGN.md`): a full Abraham–Neiman style
//! low-stretch tree construction is out of scope; we use the classical substitute that
//! practical solvers (e.g. combinatorial-multigrid style preconditioners) use — a
//! maximum-weight spanning tree (minimum resistance), computed with Kruskal. On the
//! graph families in our experiments its average stretch is small, which is the property
//! the sparsifier actually consumes; the experiment E10 measures the achieved quality
//! rather than assuming the theoretical bound.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use sgs_graph::{connectivity::UnionFind, EdgeId, Graph};

use crate::config::SparsifyConfig;
use crate::stats::WorkStats;

/// Computes a maximum-weight (minimum-resistance) spanning forest of the edges that are
/// still `alive`, returning the chosen edge ids.
fn max_weight_spanning_forest(g: &Graph, alive: &[bool]) -> Vec<EdgeId> {
    let mut order: Vec<EdgeId> = (0..g.m()).filter(|&id| alive[id]).collect();
    order.sort_by(|&a, &b| {
        g.edge(b)
            .w
            .partial_cmp(&g.edge(a).w)
            .unwrap()
            .then_with(|| a.cmp(&b))
    });
    let mut uf = UnionFind::new(g.n());
    let mut tree = Vec::with_capacity(g.n().saturating_sub(1));
    for id in order {
        let e = g.edge(id);
        if uf.union(e.u, e.v) {
            tree.push(id);
        }
    }
    tree.sort_unstable();
    tree
}

/// Output of the tree-bundle sparsifier.
#[derive(Debug, Clone)]
pub struct TreeBundleOutput {
    /// The sparsified graph.
    pub sparsifier: Graph,
    /// Number of tree components in the bundle.
    pub trees: usize,
    /// Edges contributed by the tree bundle.
    pub bundle_edges: usize,
    /// Off-bundle edges kept by sampling.
    pub sampled_edges: usize,
    /// Work counters.
    pub stats: WorkStats,
}

/// One round of the Remark 2 variant of `PARALLELSAMPLE`: a bundle of `t` edge-disjoint
/// spanning forests (instead of spanners), then uniform sampling of the rest.
pub fn tree_bundle_sample(g: &Graph, t: usize, cfg: &SparsifyConfig) -> TreeBundleOutput {
    let m = g.m();
    let mut alive = vec![true; m];
    let mut in_bundle = vec![false; m];
    let mut work = 0u64;
    let mut trees = 0usize;
    for _ in 0..t {
        let forest = max_weight_spanning_forest(g, &alive);
        work += m as u64;
        if forest.is_empty() {
            break;
        }
        trees += 1;
        for id in forest {
            in_bundle[id] = true;
            alive[id] = false;
        }
    }

    let p = cfg.keep_probability;
    let seed = cfg.seed ^ 0x7EE5_0000_0000_0001;
    let mut sparsifier = Graph::with_capacity(g.n(), m / 2);
    let mut bundle_edges = 0usize;
    let mut sampled_edges = 0usize;
    for (id, e) in g.edges().iter().enumerate() {
        if in_bundle[id] {
            sparsifier.push_edge_unchecked(e.u, e.v, e.w);
            bundle_edges += 1;
        } else {
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(id as u64));
            if rng.gen::<f64>() < p {
                sparsifier.push_edge_unchecked(e.u, e.v, e.w / p);
                sampled_edges += 1;
            }
        }
    }

    let stats = WorkStats {
        spanner_work: work,
        sampling_work: m as u64,
        rounds: 1,
        edges_per_round: vec![m],
        bundle_t_per_round: vec![t],
        bundle_edges_per_round: vec![bundle_edges],
    };
    TreeBundleOutput {
        sparsifier,
        trees,
        bundle_edges,
        sampled_edges,
        stats,
    }
}

/// The iterated (Algorithm 2 style) version of the tree-bundle sparsifier.
pub fn tree_bundle_sparsify(g: &Graph, t: usize, cfg: &SparsifyConfig) -> TreeBundleOutput {
    let rounds = cfg.rounds();
    let n = g.n();
    let stop_threshold =
        (cfg.stop_below_nlogn_factor * n as f64 * (n.max(2) as f64).log2()).ceil() as usize;
    let mut current = g.clone();
    let mut stats = WorkStats::default();
    let mut total_trees = 0;
    let mut bundle_edges = 0;
    let mut sampled_edges = 0;
    for round in 0..rounds {
        if current.m() <= stop_threshold {
            break;
        }
        let mut round_cfg = cfg.clone();
        round_cfg.seed = cfg.seed.wrapping_add(round as u64 * 0x51ED);
        let out = tree_bundle_sample(&current, t, &round_cfg);
        stats.absorb_round(&out.stats);
        total_trees += out.trees;
        bundle_edges = out.bundle_edges;
        sampled_edges = out.sampled_edges;
        current = out.sparsifier;
    }
    stats.edges_per_round.push(current.m());
    TreeBundleOutput {
        sparsifier: current,
        trees: total_trees,
        bundle_edges,
        sampled_edges,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{connectivity::is_connected, generators};
    use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};

    fn cfg(seed: u64) -> SparsifyConfig {
        SparsifyConfig::new(0.5, 4.0).with_seed(seed)
    }

    #[test]
    fn spanning_forest_is_a_tree_on_connected_graphs() {
        let g = generators::erdos_renyi(100, 0.2, 1.0, 3);
        assert!(is_connected(&g));
        let tree = max_weight_spanning_forest(&g, &vec![true; g.m()]);
        assert_eq!(tree.len(), g.n() - 1);
        let tg = g.with_edge_ids(&tree);
        assert!(is_connected(&tg));
    }

    #[test]
    fn forest_prefers_heavy_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 10.0).unwrap();
        g.add_edge(1, 2, 10.0).unwrap();
        g.add_edge(0, 2, 0.1).unwrap();
        let tree = max_weight_spanning_forest(&g, &[true, true, true]);
        assert_eq!(tree, vec![0, 1]);
    }
    use sgs_graph::Graph;

    #[test]
    fn tree_bundle_keeps_graph_connected_and_smaller() {
        let g = generators::erdos_renyi(300, 0.3, 1.0, 7);
        let out = tree_bundle_sample(&g, 3, &cfg(1));
        assert!(is_connected(&out.sparsifier));
        assert!(out.sparsifier.m() < g.m());
        assert_eq!(out.trees, 3);
        assert!(out.bundle_edges >= g.n() - 1);
        assert_eq!(out.bundle_edges + out.sampled_edges, out.sparsifier.m());
    }

    #[test]
    fn tree_bundle_is_smaller_than_spanner_bundle_per_component() {
        // Remark 2's selling point: each tree has n-1 edges versus O(n log n) for a
        // spanner, so at equal t the bundle is about a log n factor smaller.
        let g = generators::erdos_renyi(400, 0.3, 1.0, 9);
        let tree_out = tree_bundle_sample(&g, 4, &cfg(3));
        let spanner_out = crate::sample::parallel_sample(
            &g,
            &cfg(3).with_bundle_sizing(crate::config::BundleSizing::Fixed(4)),
        );
        assert!(
            tree_out.bundle_edges < spanner_out.bundle_edges,
            "tree bundle {} >= spanner bundle {}",
            tree_out.bundle_edges,
            spanner_out.bundle_edges
        );
    }

    #[test]
    fn iterated_tree_bundle_sparsifies_and_stays_reasonable() {
        let g = generators::erdos_renyi(250, 0.5, 1.0, 11);
        let out = tree_bundle_sparsify(&g, 4, &cfg(5));
        assert!(out.sparsifier.m() < g.m() / 2);
        assert!(is_connected(&out.sparsifier));
        let b = approximation_bounds(&g, &out.sparsifier, &CertifyOptions::default());
        assert!(b.lower > 0.2 && b.upper < 4.0, "{b:?}");
    }

    #[test]
    fn exhausting_t_swallows_sparse_graphs() {
        let g = generators::grid2d(12, 12, 1.0);
        let out = tree_bundle_sample(&g, 100, &cfg(2));
        assert_eq!(out.sparsifier.m(), g.m());
        assert_eq!(out.sampled_edges, 0);
    }
}
