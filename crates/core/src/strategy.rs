//! Pluggable off-bundle sampling strategies for `PARALLELSAMPLE`.
//!
//! The paper's Algorithm 1 keeps every off-bundle edge with one *uniform* probability.
//! That is work-optimal but size-suboptimal: Spielman–Srivastava (arXiv:0808.4134)
//! sampling proportional to leverage scores `w_e · R_e` crushes the output toward
//! `O(n log n / ε²)` edges at the price of `O(log n)` Laplacian solves. This module
//! makes the choice a first-class, object-safe [`SamplingStrategy`]: the uniform coin
//! stays the default (and the fast path — its byte stream is untouched), while
//! [`EffectiveResistance`] reweights the *threshold* each edge's coin is compared
//! against, so a strategy never changes which pseudorandom draw an edge consumes.
//!
//! Strategies are seed-deterministic: for a fixed `(graph, config, seed)` the computed
//! probabilities — and therefore the sampled graph — are bitwise identical across
//! rayon thread counts and across `parallel` on/off.

use std::fmt::Debug;
use std::sync::Arc;

use sgs_graph::Graph;
use sgs_linalg::resistance::{
    approx_effective_resistances_in, ResistanceOptions, ResistanceScratch,
};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Iteration cap of the leverage-estimation CG solves. The estimates only steer
/// probabilities (they are not a certificate), so a hard cap keeps worst-case graphs
/// from stalling a reduction; CG results stay deterministic regardless of where the
/// cap lands.
const CG_MAX_ITERATIONS: usize = 1000;

/// Everything a strategy may read when assigning per-edge keep probabilities.
#[derive(Debug)]
pub struct SampleContext<'a> {
    /// The graph being sampled this round.
    pub graph: &'a Graph,
    /// Bundle membership per edge id; bundle edges are kept unconditionally and their
    /// probability entries are ignored.
    pub in_bundle: &'a [bool],
    /// The round's accuracy target `ε`.
    pub epsilon: f64,
    /// The resolved bundle parameter `t`.
    pub t: usize,
    /// The uniform keep probability of the configuration — weighted strategies treat
    /// `keep_probability · #off-bundle` as the expected-size budget to redistribute.
    pub keep_probability: f64,
    /// The round's base seed (strategies derive their own streams from it).
    pub seed: u64,
    /// Whether rayon parallelism is enabled for this round.
    pub parallel: bool,
}

/// Reusable workspace for sampling strategies, owned by
/// [`SparsifyEngine`](crate::SparsifyEngine) so batch pipelines pay the probability /
/// resistance allocations once, not per reduction.
#[derive(Debug, Default)]
pub struct SamplingScratch {
    /// Per-edge keep probabilities, filled by weighted strategies.
    pub probs: Vec<f64>,
    /// Per-edge effective-resistance estimates.
    pub resistances: Vec<f64>,
    /// Spanning-forest membership marks used by the ER final pass's skeleton.
    pub forest: Vec<bool>,
    /// JL/CG workspace of the resistance estimator.
    pub resistance: ResistanceScratch,
}

impl SamplingScratch {
    /// Creates an empty scratch (no allocation until first use).
    pub fn new() -> SamplingScratch {
        SamplingScratch::default()
    }
}

/// An object-safe rule assigning each off-bundle edge its keep probability.
///
/// Implementations must be deterministic functions of `(ctx.graph, ctx.seed)` — in
/// particular bitwise independent of thread scheduling — because the sampled output's
/// reproducibility contract (golden fixtures, batch-chop invariance in `sgs-stream`)
/// extends through them.
pub trait SamplingStrategy: Debug + Send + Sync {
    /// Short stable identifier, used in logs and serialized configs.
    fn name(&self) -> &'static str;

    /// Fills `scratch.probs` with one keep probability per edge id and returns `true`,
    /// or returns `false` to request the uniform fast path (`scratch` untouched) —
    /// which keeps the default pipeline's output byte-identical to the plain
    /// Algorithm 1 coin.
    fn keep_probabilities(&self, ctx: &SampleContext<'_>, scratch: &mut SamplingScratch) -> bool;
}

/// The paper's uniform coin: every off-bundle edge is kept with
/// `cfg.keep_probability` at weight `w / p`. This is the default strategy and the
/// fast path — no probability vector is materialised.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl SamplingStrategy for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn keep_probabilities(&self, _ctx: &SampleContext<'_>, _scratch: &mut SamplingScratch) -> bool {
        false
    }
}

/// Spielman–Srivastava leverage-aware sampling: off-bundle edge `e` is kept with
/// probability proportional to its estimated leverage `w_e · R̃_e` (clamped to
/// `[p_floor, 1]`), normalised so the *expected* kept count matches the uniform
/// budget `keep_probability · #off-bundle`. High-leverage edges (bridges, barbell
/// necks) get probability 1; redundant intra-expander edges drop far below the
/// uniform coin — the output is smaller at equal spectral quality, which is exactly
/// what deep forced merge-and-reduce chains need.
///
/// Resistances come from the JL random-projection estimator (`jl_dims` CG solves at
/// tolerance `cg_tol`), reusing the engine scratch across reductions.
#[derive(Debug, Clone)]
pub struct EffectiveResistance {
    /// Number of random-projection rows (= Laplacian solves per reduction).
    pub jl_dims: usize,
    /// CG relative-residual tolerance of each solve.
    pub cg_tol: f64,
}

impl EffectiveResistance {
    /// A practical default: 8 projection rows at a loose tolerance — leverage scores
    /// steer sampling and need no more accuracy than that.
    pub fn new() -> EffectiveResistance {
        EffectiveResistance {
            jl_dims: 8,
            cg_tol: 1e-4,
        }
    }
}

impl Default for EffectiveResistance {
    fn default() -> Self {
        EffectiveResistance::new()
    }
}

impl SamplingStrategy for EffectiveResistance {
    fn name(&self) -> &'static str {
        "effective-resistance"
    }

    fn keep_probabilities(&self, ctx: &SampleContext<'_>, scratch: &mut SamplingScratch) -> bool {
        let g = ctx.graph;
        let m = g.m();
        if m == 0 {
            return false;
        }
        let opts = ResistanceOptions {
            rows: self.jl_dims.max(1),
            tolerance: self.cg_tol,
            max_iterations: CG_MAX_ITERATIONS,
            seed: ctx.seed ^ 0x7E57_ED5E_0DDB_A11E,
            parallel: ctx.parallel,
        };
        approx_effective_resistances_in(
            g,
            &opts,
            &mut scratch.resistance,
            &mut scratch.resistances,
        );

        // Scores and their sum are accumulated sequentially on purpose: a parallel
        // float reduction would combine per-chunk partials, whose grouping differs
        // from the sequential fold — breaking bitwise parallel/sequential identity.
        // O(m) adds are negligible next to the CG solves above.
        scratch.probs.clear();
        scratch.probs.resize(m, 1.0);
        let mut sum = 0.0;
        let mut off_bundle = 0usize;
        for (id, e) in g.edges().iter().enumerate() {
            if ctx.in_bundle[id] {
                continue;
            }
            let score = (e.w * scratch.resistances[id]).max(0.0);
            scratch.probs[id] = score;
            sum += score;
            off_bundle += 1;
        }
        if off_bundle == 0 || sum <= 0.0 {
            // Nothing to weight (all-bundle graph) or degenerate estimates: the
            // uniform coin is the honest fallback.
            return false;
        }

        // Redistribute the uniform expected budget proportionally to leverage. The
        // floor bounds the reweighting blow-up of any kept edge at 100/keep; the cap
        // at 1 makes leverage-1 edges (bridges) deterministic keeps.
        let budget = ctx.keep_probability * off_bundle as f64;
        let floor = (ctx.keep_probability * 1e-2).min(1.0);
        for (id, p) in scratch.probs.iter_mut().enumerate() {
            if ctx.in_bundle[id] {
                continue;
            }
            *p = (budget * *p / sum).clamp(floor, 1.0);
        }
        true
    }
}

/// A cloneable, config-embeddable handle to a [`SamplingStrategy`].
///
/// `SparsifyConfig` stores this instead of a bare trait object so configs stay
/// `Clone` (strategies are shared, not duplicated) and so the serde feature keeps
/// compiling: the policy serializes as its strategy name.
#[derive(Clone)]
pub struct SamplingPolicy(Arc<dyn SamplingStrategy>);

impl SamplingPolicy {
    /// Wraps a custom strategy.
    pub fn new(strategy: Arc<dyn SamplingStrategy>) -> SamplingPolicy {
        SamplingPolicy(strategy)
    }

    /// The paper's uniform coin (the default).
    pub fn uniform() -> SamplingPolicy {
        SamplingPolicy(Arc::new(Uniform))
    }

    /// Leverage-aware sampling with `jl_dims` projection rows at CG tolerance
    /// `cg_tol` (see [`EffectiveResistance`]).
    pub fn effective_resistance(jl_dims: usize, cg_tol: f64) -> SamplingPolicy {
        assert!(jl_dims > 0, "jl_dims must be positive");
        assert!(cg_tol > 0.0, "cg_tol must be positive");
        SamplingPolicy(Arc::new(EffectiveResistance { jl_dims, cg_tol }))
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &dyn SamplingStrategy {
        self.0.as_ref()
    }

    /// The strategy's stable name.
    pub fn name(&self) -> &'static str {
        self.0.name()
    }
}

impl Default for SamplingPolicy {
    fn default() -> Self {
        SamplingPolicy::uniform()
    }
}

impl Debug for SamplingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SamplingPolicy").field(&self.0).finish()
    }
}

#[cfg(feature = "serde")]
impl Serialize for SamplingPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

#[cfg(feature = "serde")]
impl<'de> Deserialize<'de> for SamplingPolicy {}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::generators;

    fn ctx<'a>(
        g: &'a Graph,
        in_bundle: &'a [bool],
        seed: u64,
        parallel: bool,
    ) -> SampleContext<'a> {
        SampleContext {
            graph: g,
            in_bundle,
            epsilon: 0.5,
            t: 2,
            keep_probability: 0.25,
            seed,
            parallel,
        }
    }

    #[test]
    fn uniform_requests_the_fast_path() {
        let g = generators::erdos_renyi(50, 0.3, 1.0, 1);
        let in_bundle = vec![false; g.m()];
        let mut scratch = SamplingScratch::new();
        assert!(!Uniform.keep_probabilities(&ctx(&g, &in_bundle, 7, true), &mut scratch));
        assert!(scratch.probs.is_empty(), "fast path must not allocate");
        assert_eq!(SamplingPolicy::default().name(), "uniform");
    }

    #[test]
    fn effective_resistance_fills_valid_probabilities() {
        let g = generators::erdos_renyi(80, 0.25, 1.0, 3);
        let mut in_bundle = vec![false; g.m()];
        in_bundle[0] = true;
        let er = EffectiveResistance {
            jl_dims: 4,
            cg_tol: 1e-3,
        };
        let mut scratch = SamplingScratch::new();
        assert!(er.keep_probabilities(&ctx(&g, &in_bundle, 7, true), &mut scratch));
        assert_eq!(scratch.probs.len(), g.m());
        assert_eq!(scratch.probs[0], 1.0, "bundle edges stay certain");
        for &p in &scratch.probs {
            assert!((0.0..=1.0).contains(&p) && p > 0.0, "probability {p}");
        }
        // The expected kept count tracks the uniform budget (clamping moves it a bit).
        let expected: f64 = scratch
            .probs
            .iter()
            .enumerate()
            .filter(|(id, _)| !in_bundle[*id])
            .map(|(_, p)| p)
            .sum();
        let budget = 0.25 * (g.m() - 1) as f64;
        assert!(
            expected <= budget * 1.5 && expected >= budget * 0.5,
            "expected {expected} vs budget {budget}"
        );
    }

    #[test]
    fn effective_resistance_is_parallelism_invariant() {
        let g = generators::erdos_renyi(70, 0.3, 1.0, 5);
        let in_bundle = vec![false; g.m()];
        let er = EffectiveResistance {
            jl_dims: 4,
            cg_tol: 1e-3,
        };
        let mut a = SamplingScratch::new();
        let mut b = SamplingScratch::new();
        assert!(er.keep_probabilities(&ctx(&g, &in_bundle, 9, true), &mut a));
        assert!(er.keep_probabilities(&ctx(&g, &in_bundle, 9, false), &mut b));
        for (x, y) in a.probs.iter().zip(&b.probs) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn bridges_are_kept_deterministically() {
        // Barbell: the neck edge has leverage ≈ 1, so its probability must clamp to 1.
        let g = generators::barbell(20, 1, 1.0, 1.0);
        let in_bundle = vec![false; g.m()];
        let er = EffectiveResistance {
            jl_dims: 6,
            cg_tol: 1e-4,
        };
        let mut scratch = SamplingScratch::new();
        assert!(er.keep_probabilities(&ctx(&g, &in_bundle, 3, true), &mut scratch));
        let neck = g
            .edges()
            .iter()
            .position(|e| (e.u < 20) != (e.v < 20))
            .expect("barbell has a neck edge");
        assert_eq!(scratch.probs[neck], 1.0, "neck probability");
    }

    #[test]
    fn all_bundle_graph_falls_back_to_uniform() {
        let g = generators::cycle(10, 1.0);
        let in_bundle = vec![true; g.m()];
        let er = EffectiveResistance::new();
        let mut scratch = SamplingScratch::new();
        assert!(!er.keep_probabilities(&ctx(&g, &in_bundle, 1, true), &mut scratch));
    }

    #[test]
    #[should_panic(expected = "jl_dims")]
    fn policy_rejects_zero_dims() {
        let _ = SamplingPolicy::effective_resistance(0, 1e-4);
    }
}
