//! Baseline sparsification algorithms used for the comparison experiments (E9).
//!
//! * [`effective_resistance_sparsify`] — the Spielman–Srivastava scheme [23]: sample `q`
//!   edges with replacement with probability proportional to `w_e R_e`, each kept at
//!   weight `w_e / (q p_e)`. Resistances are approximated with the random-projection
//!   estimator of `sgs_linalg`, which itself costs `O(log n)` Laplacian solves — this is
//!   the "needs a solver" dependence the paper's solve-free algorithm avoids.
//! * [`uniform_sparsify`] — keep every edge independently with probability `p` at weight
//!   `w_e / p`. Cheap, but has no spectral guarantee: it destroys low-connectivity
//!   structure (e.g. barbell bridges), which experiment E9 demonstrates.
//! * [`spanner_oversampling_sparsify`] — a Kapralov–Panigrahi-flavoured scheme: keep one
//!   spanner outright and sample the remaining edges uniformly, i.e. `PARALLELSAMPLE`
//!   with `t = 1` and a configurable keep probability. It sits between the two extremes
//!   and shows why the bundle (rather than a single spanner) is what buys the `1 ± ε`
//!   guarantee.

use rand::distributions::WeightedIndex;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use sgs_graph::{Graph, GraphBuilder};
use sgs_linalg::resistance::approx_effective_resistances;
use sgs_spanner::{baswana_sen_spanner, SpannerConfig};

/// Output of a baseline sparsification run.
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    /// The sparsified graph.
    pub sparsifier: Graph,
    /// Number of Laplacian solves spent estimating resistances (zero for the solve-free
    /// baselines).
    pub solves: usize,
}

/// Spielman–Srivastava effective-resistance sampling.
///
/// Draws `q = ⌈sample_factor · n log₂ n / ε²⌉` independent samples from the distribution
/// `p_e ∝ w_e R̃_e` and accumulates `w_e / (q p_e)` per drawn edge.
pub fn effective_resistance_sparsify(
    g: &Graph,
    eps: f64,
    sample_factor: f64,
    seed: u64,
) -> BaselineOutput {
    assert!(eps > 0.0, "epsilon must be positive");
    let n = g.n();
    let m = g.m();
    if m == 0 {
        return BaselineOutput {
            sparsifier: g.clone(),
            solves: 0,
        };
    }
    let jl_factor = 4.0;
    let resistances = approx_effective_resistances(g, jl_factor, seed);
    let solves = ((jl_factor * (n.max(2) as f64).log2()).ceil() as usize).max(1);

    // Sampling probabilities proportional to (approximate) leverage scores.
    let scores: Vec<f64> = g
        .edges()
        .iter()
        .zip(&resistances)
        .map(|(e, r)| (e.w * r).max(1e-12))
        .collect();
    let q = ((sample_factor * n as f64 * (n.max(2) as f64).log2() / (eps * eps)).ceil() as usize)
        .max(1);
    let total: f64 = scores.iter().sum();
    let dist = WeightedIndex::new(&scores).expect("positive weights");
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut builder = GraphBuilder::new(n);
    for _ in 0..q {
        let id = dist.sample(&mut rng);
        let e = g.edge(id);
        let p_e = scores[id] / total;
        let w = e.w / (q as f64 * p_e);
        let _ = builder.add(e.u, e.v, w);
    }
    BaselineOutput {
        sparsifier: builder.build(),
        solves,
    }
}

/// Plain uniform sampling: keep each edge with probability `p`, reweighted by `1/p`.
pub fn uniform_sparsify(g: &Graph, p: f64, seed: u64) -> BaselineOutput {
    assert!(p > 0.0 && p <= 1.0, "keep probability must be in (0, 1]");
    let mut out = Graph::with_capacity(g.n(), (g.m() as f64 * p) as usize + 8);
    for (id, e) in g.edges().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(id as u64));
        if rng.gen::<f64>() < p {
            out.push_edge_unchecked(e.u, e.v, e.w / p);
        }
    }
    BaselineOutput {
        sparsifier: out,
        solves: 0,
    }
}

/// Spanner-plus-uniform-oversampling: keep one Baswana–Sen spanner at its original
/// weights and every remaining edge with probability `p` at weight `w_e / p`.
pub fn spanner_oversampling_sparsify(g: &Graph, p: f64, seed: u64) -> BaselineOutput {
    assert!(p > 0.0 && p <= 1.0, "keep probability must be in (0, 1]");
    let spanner = baswana_sen_spanner(g, &SpannerConfig::with_seed(seed));
    let mut in_spanner = vec![false; g.m()];
    for &id in &spanner.edge_ids {
        in_spanner[id] = true;
    }
    let mut out = Graph::with_capacity(g.n(), spanner.edge_ids.len() + (g.m() as f64 * p) as usize);
    for (id, e) in g.edges().iter().enumerate() {
        if in_spanner[id] {
            out.push_edge_unchecked(e.u, e.v, e.w);
        } else {
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(id as u64) ^ 0x5151);
            if rng.gen::<f64>() < p {
                out.push_edge_unchecked(e.u, e.v, e.w / p);
            }
        }
    }
    BaselineOutput {
        sparsifier: out,
        solves: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgs_graph::{connectivity::is_connected, generators};
    use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};

    #[test]
    fn effective_resistance_sampling_preserves_spectrum_well() {
        let g = generators::erdos_renyi(150, 0.4, 1.0, 3);
        let out = effective_resistance_sparsify(&g, 0.5, 1.0, 7);
        assert!(out.solves > 0);
        assert!(
            is_connected(&out.sparsifier),
            "ER sampling keeps the graph connected whp"
        );
        let b = approximation_bounds(&g, &out.sparsifier, &CertifyOptions::default());
        assert!(b.lower > 0.4 && b.upper < 2.0, "{b:?}");
    }

    #[test]
    fn effective_resistance_sampling_is_sparser_than_input_on_dense_graphs() {
        let g = generators::complete(120, 1.0); // 7140 edges
        let out = effective_resistance_sparsify(&g, 1.0, 0.5, 5);
        assert!(out.sparsifier.m() < g.m() / 2);
    }

    #[test]
    fn uniform_sampling_keeps_about_p_fraction() {
        let g = generators::erdos_renyi(300, 0.3, 1.0, 11);
        let out = uniform_sparsify(&g, 0.25, 3);
        let got = out.sparsifier.m() as f64;
        let expected = g.m() as f64 * 0.25;
        assert!((got - expected).abs() < 5.0 * expected.sqrt() + 10.0);
        assert_eq!(out.solves, 0);
        // Weights are reweighted by 4.
        assert!(out
            .sparsifier
            .edges()
            .iter()
            .all(|e| (e.w - 4.0).abs() < 1e-12));
    }

    #[test]
    fn uniform_sampling_destroys_barbell_bridges() {
        // The bridge edge has very high leverage; uniform sampling drops it 75% of the
        // time, disconnecting the graph, while the spanner-based schemes always keep a
        // connected sparsifier.
        let g = generators::barbell(30, 1, 1.0, 1.0);
        let mut disconnected = 0;
        for seed in 0..20 {
            let out = uniform_sparsify(&g, 0.25, seed);
            if !is_connected(&out.sparsifier) {
                disconnected += 1;
            }
        }
        assert!(
            disconnected >= 10,
            "only {disconnected}/20 runs disconnected the barbell"
        );
        for seed in 0..5 {
            let out = spanner_oversampling_sparsify(&g, 0.25, seed);
            assert!(is_connected(&out.sparsifier));
        }
    }

    #[test]
    fn spanner_oversampling_is_between_uniform_and_full() {
        let g = generators::erdos_renyi(250, 0.4, 1.0, 13);
        let uni = uniform_sparsify(&g, 0.25, 5);
        let span = spanner_oversampling_sparsify(&g, 0.25, 5);
        assert!(span.sparsifier.m() >= uni.sparsifier.m());
        assert!(span.sparsifier.m() < g.m());
        assert!(is_connected(&span.sparsifier));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi(120, 0.3, 1.0, 17);
        let a = effective_resistance_sparsify(&g, 0.5, 1.0, 9);
        let b = effective_resistance_sparsify(&g, 0.5, 1.0, 9);
        assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
        let u1 = uniform_sparsify(&g, 0.3, 4);
        let u2 = uniform_sparsify(&g, 0.3, 4);
        assert_eq!(u1.sparsifier.edges(), u2.sparsifier.edges());
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = Graph::new(10);
        let out = effective_resistance_sparsify(&g, 0.5, 1.0, 1);
        assert_eq!(out.sparsifier.m(), 0);
        let out = uniform_sparsify(&g, 0.5, 1);
        assert_eq!(out.sparsifier.m(), 0);
    }
    use sgs_graph::Graph;
}
