//! # sgs-core
//!
//! The paper's primary contribution: spectral graph sparsification by iterated spanner
//! computation and uniform sampling.
//!
//! * [`sample`] — `PARALLELSAMPLE` (Algorithm 1): build a t-bundle spanner, keep it, and
//!   keep every off-bundle edge independently with probability 1/4 at weight `4 w_e`.
//! * [`sparsify`] — `PARALLELSPARSIFY` (Algorithm 2): iterate `PARALLELSAMPLE`
//!   `⌈log ρ⌉` times with per-round parameter `ε / ⌈log ρ⌉` to cut the edge count by a
//!   factor of `ρ` while staying a `(1 ± ε)` spectral approximation (Theorem 5).
//! * [`baselines`] — comparison algorithms: Spielman–Srivastava effective-resistance
//!   sampling, plain uniform sampling, and a spanner-plus-oversampling scheme in the
//!   spirit of Kapralov–Panigrahi.
//! * [`lst`] — the Remark 2 extension where spanning trees replace spanners inside the
//!   bundle.
//! * [`engine`] — a re-entrant [`SparsifyEngine`] that reuses the spanner engine's
//!   `O(m)` scratch across calls, for batch pipelines (the `sgs-stream` merge-and-reduce
//!   tree) that sparsify many graphs in sequence.
//! * [`strategy`] — pluggable off-bundle sampling: the object-safe [`SamplingStrategy`]
//!   trait with the paper's [`Uniform`](strategy::Uniform) coin and a Spielman–Srivastava
//!   [`EffectiveResistance`](strategy::EffectiveResistance) leverage-weighted variant,
//!   selected via [`SparsifyConfig::with_sampling`].
//! * [`resparsify`] — [`resparsify_er`], a standalone ER-weighted final pass that
//!   resamples a finished sparsifier down toward `O(n log n / ε²)` edges.
//! * [`config`], [`stats`], [`verify`] — configuration, work accounting, and spectral
//!   verification helpers shared by examples, tests and the benchmark harness.
//!
//! ## Quickstart
//!
//! ```
//! use sgs_graph::generators;
//! use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig};
//!
//! let g = generators::erdos_renyi(400, 0.25, 1.0, 7);
//! let cfg = SparsifyConfig::new(0.5, 4.0)
//!     .with_bundle_sizing(BundleSizing::Fixed(4))
//!     .with_seed(1);
//! let out = parallel_sparsify(&g, &cfg);
//! assert!(out.sparsifier.m() < g.m());
//! assert_eq!(out.sparsifier.n(), g.n());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod config;
pub mod engine;
pub mod lst;
pub mod resparsify;
pub mod sample;
pub mod sparsify;
pub mod stats;
pub mod strategy;
pub mod verify;

pub use config::{BundleSizing, SparsifyConfig};
pub use engine::SparsifyEngine;
pub use resparsify::{resparsify_er, ErPassConfig, ErPassOutput};
pub use sample::{edge_coin, parallel_sample, SampleOutput};
pub use sparsify::{parallel_sparsify, SparsifyOutput};
pub use stats::{PipelinePhases, WorkStats};
pub use strategy::{
    EffectiveResistance, SampleContext, SamplingPolicy, SamplingScratch, SamplingStrategy, Uniform,
};
pub use verify::{verify_sparsifier, VerificationReport};

/// Commonly used items for downstream crates and examples.
pub mod prelude {
    pub use crate::baselines::{
        effective_resistance_sparsify, spanner_oversampling_sparsify, uniform_sparsify,
    };
    pub use crate::config::{BundleSizing, SparsifyConfig};
    pub use crate::engine::SparsifyEngine;
    pub use crate::lst::tree_bundle_sparsify;
    pub use crate::resparsify::{resparsify_er, ErPassConfig, ErPassOutput};
    pub use crate::sample::{parallel_sample, SampleOutput};
    pub use crate::sparsify::{parallel_sparsify, SparsifyOutput};
    pub use crate::stats::WorkStats;
    pub use crate::strategy::{SamplingPolicy, SamplingStrategy};
    pub use crate::verify::{verify_sparsifier, VerificationReport};
}
