//! Convenience wrappers for verifying sparsifier quality.
//!
//! Experiments and examples repeatedly need the same report: the certified spectral
//! bounds, the achieved `ε`, and the size reduction. This module packages that into one
//! call on top of `sgs_linalg::spectral`.

use sgs_graph::Graph;
use sgs_linalg::spectral::{approximation_bounds, CertifyOptions, SpectralBounds};

/// Summary of a sparsifier-versus-input comparison.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Certified bounds for `xᵀ L_H x / xᵀ L_G x`.
    pub bounds: SpectralBounds,
    /// The smallest `ε` such that the sparsifier is a `(1 ± ε)` approximation.
    pub achieved_epsilon: f64,
    /// Edges in the input graph.
    pub input_edges: usize,
    /// Edges in the sparsifier.
    pub output_edges: usize,
    /// `input_edges / output_edges`.
    pub compression: f64,
}

impl VerificationReport {
    /// True if the sparsifier meets the requested accuracy.
    pub fn meets(&self, eps: f64) -> bool {
        self.bounds.within_epsilon(eps)
    }
}

impl std::fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "edges {} -> {} ({:.2}x), ratio in [{:.4}, {:.4}], achieved epsilon {:.4}",
            self.input_edges,
            self.output_edges,
            self.compression,
            self.bounds.lower,
            self.bounds.upper,
            self.achieved_epsilon
        )
    }
}

/// Certifies how well `h` spectrally approximates `g`.
pub fn verify_sparsifier(g: &Graph, h: &Graph, opts: &CertifyOptions) -> VerificationReport {
    let bounds = approximation_bounds(g, h, opts);
    VerificationReport {
        bounds,
        achieved_epsilon: bounds.epsilon(),
        input_edges: g.m(),
        output_edges: h.m(),
        compression: g.m() as f64 / h.m().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BundleSizing, SparsifyConfig};
    use crate::sparsify::parallel_sparsify;
    use sgs_graph::generators;

    #[test]
    fn report_on_identical_graphs() {
        let g = generators::erdos_renyi(80, 0.3, 1.0, 3);
        let r = verify_sparsifier(&g, &g, &CertifyOptions::default());
        assert!(r.achieved_epsilon < 1e-5);
        assert!(r.meets(0.01));
        assert_eq!(r.input_edges, r.output_edges);
        assert!((r.compression - 1.0).abs() < 1e-12);
        assert!(r.to_string().contains("edges"));
    }

    #[test]
    fn report_on_real_sparsifier() {
        let g = generators::erdos_renyi(250, 0.4, 1.0, 7);
        let cfg = SparsifyConfig::new(0.75, 4.0)
            .with_bundle_sizing(BundleSizing::Fixed(4))
            .with_seed(3);
        let out = parallel_sparsify(&g, &cfg);
        let r = verify_sparsifier(&g, &out.sparsifier, &CertifyOptions::default());
        assert!(r.compression > 1.5);
        assert!(r.output_edges < r.input_edges);
        assert!(r.bounds.lower > 0.0 && r.bounds.upper.is_finite());
        // A generous accuracy is certainly met; a ridiculous one (1e-6) is not.
        assert!(!r.meets(1e-6));
    }
}
