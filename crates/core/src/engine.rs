//! Re-entrant sparsification engine with cross-call scratch reuse.
//!
//! [`parallel_sample`](crate::parallel_sample) / [`parallel_sparsify`](crate::parallel_sparsify)
//! allocate a fresh [`SpannerEngine`] — the `O(m)` edge view, CSR incidence and
//! per-run masks — on every call. That is the right trade for one-shot use, but a batch
//! pipeline such as the semi-streaming sparsifier (`sgs-stream`) sparsifies hundreds of
//! similarly-sized graphs in sequence, and per-call setup allocation becomes steady-state
//! heap churn. [`SparsifyEngine`] owns the spanner engine and reuses its allocations
//! across calls; outputs are **byte-identical** to the free functions for the same
//! configuration and seed (the free functions are in fact one-shot wrappers over the
//! same code path).

use sgs_graph::Graph;
use sgs_spanner::SpannerEngine;

use crate::config::SparsifyConfig;
use crate::resparsify::{resparsify_on_engine, ErPassConfig, ErPassOutput};
use crate::sample::{sample_on_engine, SampleOutput};
use crate::sparsify::{sparsify_on_engine, SparsifyOutput};
use crate::strategy::SamplingScratch;

/// A reusable `PARALLELSAMPLE` / `PARALLELSPARSIFY` runner.
///
/// Construction is free (no allocation); the first call sizes the internal scratch and
/// subsequent calls on graphs of similar size reuse it. One engine serves any sequence
/// of graphs — vertex and edge counts may differ between calls.
///
/// ```
/// use sgs_graph::generators;
/// use sgs_core::{parallel_sparsify, BundleSizing, SparsifyConfig, SparsifyEngine};
///
/// let g = generators::erdos_renyi(300, 0.3, 1.0, 7);
/// let cfg = SparsifyConfig::new(0.5, 4.0)
///     .with_bundle_sizing(BundleSizing::Fixed(3))
///     .with_seed(1);
/// let mut engine = SparsifyEngine::new();
/// let a = engine.sparsify(&g, &cfg);
/// let b = parallel_sparsify(&g, &cfg);
/// assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
/// ```
#[derive(Debug)]
pub struct SparsifyEngine {
    pub(crate) spanner: SpannerEngine,
    pub(crate) sampling: SamplingScratch,
}

impl SparsifyEngine {
    /// Creates an engine with no allocations.
    pub fn new() -> SparsifyEngine {
        SparsifyEngine {
            spanner: SpannerEngine::empty(),
            sampling: SamplingScratch::new(),
        }
    }

    /// One round of `PARALLELSAMPLE` (Algorithm 1); byte-identical to
    /// [`crate::parallel_sample`].
    pub fn sample(&mut self, g: &Graph, cfg: &SparsifyConfig) -> SampleOutput {
        sample_on_engine(g, cfg, self)
    }

    /// Full `PARALLELSPARSIFY` (Algorithm 2); byte-identical to
    /// [`crate::parallel_sparsify`].
    pub fn sparsify(&mut self, g: &Graph, cfg: &SparsifyConfig) -> SparsifyOutput {
        sparsify_on_engine(g, cfg, self)
    }

    /// Effective-resistance resparsification pass (Spielman–Srivastava over a finished
    /// sparsifier); byte-identical to [`crate::resparsify_er`] but reuses this engine's
    /// JL/CG scratch.
    pub fn resparsify_er(&mut self, g: &Graph, cfg: &ErPassConfig) -> ErPassOutput {
        resparsify_on_engine(g, cfg, self)
    }
}

impl Default for SparsifyEngine {
    fn default() -> Self {
        SparsifyEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BundleSizing;
    use crate::{parallel_sample, parallel_sparsify};
    use sgs_graph::generators;

    fn cfg(seed: u64) -> SparsifyConfig {
        SparsifyConfig::new(0.75, 4.0)
            .with_bundle_sizing(BundleSizing::Fixed(3))
            .with_seed(seed)
    }

    #[test]
    fn reused_engine_matches_free_functions_across_a_graph_sequence() {
        // The engine is reused over graphs of different sizes and seeds; every output
        // must equal the one-shot free function's, including the work counters.
        let graphs = [
            generators::erdos_renyi(250, 0.3, 1.0, 3),
            generators::erdos_renyi(120, 0.5, 1.0, 4),
            generators::preferential_attachment(300, 5, 1.0, 9),
            generators::erdos_renyi(400, 0.2, 1.0, 5),
        ];
        let mut engine = SparsifyEngine::new();
        for (i, g) in graphs.iter().enumerate() {
            let c = cfg(10 + i as u64);
            let a = engine.sparsify(g, &c);
            let b = parallel_sparsify(g, &c);
            assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.rounds_executed, b.rounds_executed);

            let sa = engine.sample(g, &c);
            let sb = parallel_sample(g, &c);
            assert_eq!(sa.sparsifier.edges(), sb.sparsifier.edges());
            assert_eq!(sa.bundle_edges, sb.bundle_edges);
            assert_eq!(sa.sampled_edges, sb.sampled_edges);
            assert_eq!(sa.stats, sb.stats);
        }
    }

    #[test]
    fn default_is_new() {
        let g = generators::erdos_renyi(100, 0.3, 1.0, 2);
        let c = cfg(1);
        let a = SparsifyEngine::default().sparsify(&g, &c);
        let b = SparsifyEngine::new().sparsify(&g, &c);
        assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
    }
}
