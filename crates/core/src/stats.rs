//! Work and size accounting for the sparsification experiments.
//!
//! The paper's parallel claims are stated in the CRCW PRAM model (work and depth). On a
//! shared-memory machine we report *operation counts* — edges examined by the spanner
//! construction plus edges touched by the sampling pass — as the work proxy, and the
//! number of outer rounds as the depth proxy. Experiments E5 and E6 check that these
//! counters scale like the bounds of Theorem 5.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use sgs_spanner::SpannerPhases;

/// Wall-clock phase breakdown of one sparsification run.
///
/// Timings are *measurements*, not outputs: the struct deliberately implements neither
/// `PartialEq` nor serde, and it is excluded from every determinism comparison (the
/// golden fixtures and the thread-count invariance tests compare [`WorkStats`], never
/// this). The benchmark harness reads it to show where a run's wall-clock goes — in
/// particular, that the spanner apply phase is no longer a serial section.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelinePhases {
    /// Spanner/bundle phase timings, accumulated across all rounds.
    pub spanner: SpannerPhases,
    /// Wall-clock of the per-edge sampling passes (strategy probabilities + coin
    /// flips + output assembly), in milliseconds.
    pub sampling_ms: f64,
}

impl PipelinePhases {
    /// Accumulates another run's (or round's) timings into this one.
    pub fn absorb(&mut self, other: &PipelinePhases) {
        self.spanner.absorb(&other.spanner);
        self.sampling_ms += other.sampling_ms;
    }

    /// Total measured wall-clock across all phases, in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.spanner.total_ms() + self.sampling_ms
    }
}

/// Aggregated counters for one sparsification run.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct WorkStats {
    /// Edge examinations performed by spanner/bundle constructions.
    pub spanner_work: u64,
    /// Edges touched by the per-edge sampling passes.
    pub sampling_work: u64,
    /// Number of `PARALLELSAMPLE` rounds executed.
    pub rounds: usize,
    /// Edge count of the graph entering each round.
    pub edges_per_round: Vec<usize>,
    /// Bundle size chosen in each round (the resolved `t`).
    pub bundle_t_per_round: Vec<usize>,
    /// Number of edges placed in the bundle in each round.
    pub bundle_edges_per_round: Vec<usize>,
}

impl WorkStats {
    /// Total work proxy (spanner plus sampling operations).
    pub fn total_work(&self) -> u64 {
        self.spanner_work + self.sampling_work
    }

    /// Merges the counters of a single round into the running totals.
    pub fn absorb_round(&mut self, other: &WorkStats) {
        self.spanner_work += other.spanner_work;
        self.sampling_work += other.sampling_work;
        self.rounds += other.rounds;
        self.edges_per_round
            .extend_from_slice(&other.edges_per_round);
        self.bundle_t_per_round
            .extend_from_slice(&other.bundle_t_per_round);
        self.bundle_edges_per_round
            .extend_from_slice(&other.bundle_edges_per_round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_absorb() {
        let a = WorkStats {
            spanner_work: 10,
            sampling_work: 5,
            rounds: 1,
            edges_per_round: vec![100],
            bundle_t_per_round: vec![3],
            bundle_edges_per_round: vec![40],
        };
        let b = WorkStats {
            spanner_work: 20,
            sampling_work: 7,
            rounds: 1,
            edges_per_round: vec![60],
            bundle_t_per_round: vec![3],
            bundle_edges_per_round: vec![30],
        };
        let mut total = WorkStats::default();
        total.absorb_round(&a);
        total.absorb_round(&b);
        assert_eq!(total.total_work(), 42);
        assert_eq!(total.rounds, 2);
        assert_eq!(total.edges_per_round, vec![100, 60]);
        assert_eq!(total.bundle_edges_per_round, vec![40, 30]);
    }

    #[test]
    fn default_is_empty() {
        let s = WorkStats::default();
        assert_eq!(s.total_work(), 0);
        assert_eq!(s.rounds, 0);
        assert!(s.edges_per_round.is_empty());
    }
}
