//! `PARALLELSAMPLE` (Algorithm 1 of the paper).
//!
//! ```text
//! Input: graph G, parameter ε
//! 1: compute a (24 log² n / ε²)-bundle spanner H of G
//! 2: G̃ := H
//! 3: for each edge e ∉ H, with probability 1/4 add e to G̃ with weight 4 w_e
//! 4: return G̃
//! ```
//!
//! The bundle certifies (Lemma 1 / Corollary 1) that every off-bundle edge has leverage
//! `w_e R_e[G] ≤ log n / t`, so the matrix Chernoff bound (Theorem 3) shows the
//! uniformly sampled, reweighted graph is a `(1 ± ε)` approximation of `G` with
//! probability `1 − 1/n²` (Theorem 4). In expectation the off-bundle edge count drops by
//! a factor of 4 — the output has `O(n log³ n / ε² + m/2)` edges.

use std::time::Instant;

use rayon::prelude::*;

use sgs_graph::{Edge, Graph};
use sgs_spanner::{t_bundle_on_engine, BundleConfig, SpannerConfig};

use crate::config::SparsifyConfig;
use crate::engine::SparsifyEngine;
use crate::stats::{PipelinePhases, WorkStats};
use crate::strategy::SampleContext;

/// SplitMix64 finalizer: one add-and-mix round with full 64-bit avalanche
/// (Steele et al., *Fast splittable pseudorandom number generators*, OOPSLA 2014).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// Counter-based per-edge coin: a uniform draw in `[0, 1)` from a splitmix64 mix of
/// seed and id.
///
/// Each edge gets its own stateless stream position, so the outcome is independent of
/// thread scheduling *and* costs two multiply-xor cascades instead of a full ChaCha8
/// key schedule per edge (the previous implementation seeded a fresh `ChaCha8Rng` per
/// edge, which dominated the sampling step's runtime). The seed is avalanched *before*
/// the id is XORed in: a plain `seed + id` mix would make nearby seeds produce shifted
/// copies of the same coin stream (`coin(s, id) == coin(s + d, id − d)`), correlating
/// exactly the consecutive small seeds that multi-seed experiments sweep. After the
/// pre-mix, streams of different seeds only coincide at a pseudorandom 64-bit id
/// offset, which never lands inside a real edge-id range. The top 53 bits give a
/// dyadic uniform double, the standard `u64 → f64` conversion.
#[inline]
pub fn edge_coin(seed: u64, id: u64) -> f64 {
    (splitmix64(splitmix64(seed) ^ id) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Output of one `PARALLELSAMPLE` round.
#[derive(Debug, Clone)]
pub struct SampleOutput {
    /// The sampled graph `G̃`.
    pub sparsifier: Graph,
    /// Number of edges that came from the bundle `H`.
    pub bundle_edges: usize,
    /// Number of off-bundle edges kept by the coin flips.
    pub sampled_edges: usize,
    /// The resolved bundle parameter `t`.
    pub t: usize,
    /// Work counters for this round.
    pub stats: WorkStats,
    /// Wall-clock phase breakdown of this round (excluded from determinism checks).
    pub phases: PipelinePhases,
}

/// Runs one round of `PARALLELSAMPLE` on `g`.
///
/// `cfg` is the single source of truth for the round: accuracy (`cfg.epsilon`), bundle
/// sizing, keep probability, sampling strategy, seed and parallelism.
/// (`PARALLELSPARSIFY` derives a per-round config with `ε / ⌈log ρ⌉` before calling
/// this, so no separate `eps` argument exists any more.)
pub fn parallel_sample(g: &Graph, cfg: &SparsifyConfig) -> SampleOutput {
    sample_on_engine(g, cfg, &mut SparsifyEngine::new())
}

/// Re-entrant `PARALLELSAMPLE`: identical to [`parallel_sample`] but runs the bundle
/// construction and the strategy's probability computation on a caller-owned
/// [`SparsifyEngine`], whose view/CSR/mask/probability allocations are reused across
/// calls. Batch pipelines (`sgs-stream`) call this once per batch; outputs are
/// byte-identical to the one-shot entry point.
pub(crate) fn sample_on_engine(
    g: &Graph,
    cfg: &SparsifyConfig,
    engine: &mut SparsifyEngine,
) -> SampleOutput {
    let eps = cfg.epsilon;
    assert!(eps > 0.0, "epsilon must be positive");
    let SparsifyEngine { spanner, sampling } = engine;
    let n = g.n();
    let m = g.m();
    let t = cfg.bundle_sizing.resolve(n, eps);

    // Step 1: the t-bundle spanner, on the reusable engine.
    let bundle_cfg = BundleConfig {
        t,
        spanner: SpannerConfig {
            k: None,
            seed: cfg.seed,
            parallel: cfg.parallel,
        },
    };
    spanner.reset_from_graph(g);
    let bundle = t_bundle_on_engine(spanner, &bundle_cfg);

    // Steps 2–3: keep the bundle, flip a coin for everything else. Each edge uses its
    // own counter-based coin ([`edge_coin`]) so the outcome is independent of thread
    // scheduling. Kept edges are collected as ready-made `Edge`s (in id order — the
    // executor concatenates chunks in domain order) and moved into the output graph
    // without a second pass.
    //
    // The configured strategy may replace the uniform coin threshold with per-edge
    // probabilities (leverage-aware sampling). Both branches consume the *same* coin
    // stream — a strategy only moves each edge's threshold, never its draw — so the
    // uniform path stays byte-identical to the original Algorithm 1 implementation.
    let t_sampling = Instant::now();
    let seed = cfg.seed ^ 0xA5A5_5A5A_DEAD_BEEF;
    let ctx = SampleContext {
        graph: g,
        in_bundle: &bundle.in_bundle,
        epsilon: eps,
        t,
        keep_probability: cfg.keep_probability,
        seed: cfg.seed,
        parallel: cfg.parallel,
    };
    let weighted = cfg.sampling.strategy().keep_probabilities(&ctx, sampling);
    let kept: Vec<Edge> = if weighted {
        let probs = &sampling.probs;
        let decide = |id: usize| -> Option<Edge> {
            let e = g.edge(id);
            if bundle.in_bundle[id] {
                Some(e)
            } else {
                let p = probs[id];
                if edge_coin(seed, id as u64) < p {
                    Some(Edge::new(e.u, e.v, e.w / p))
                } else {
                    None
                }
            }
        };
        if cfg.parallel {
            (0..m).into_par_iter().filter_map(decide).collect()
        } else {
            (0..m).filter_map(decide).collect()
        }
    } else {
        let p = cfg.keep_probability;
        let reweight = 1.0 / p;
        let decide = |id: usize| -> Option<Edge> {
            let e = g.edge(id);
            if bundle.in_bundle[id] {
                Some(e)
            } else if edge_coin(seed, id as u64) < p {
                Some(Edge::new(e.u, e.v, e.w * reweight))
            } else {
                None
            }
        };
        if cfg.parallel {
            (0..m).into_par_iter().filter_map(decide).collect()
        } else {
            (0..m).filter_map(decide).collect()
        }
    };

    // Every bundle edge is kept unconditionally, so the split needs no re-scan.
    let bundle_edges = bundle.bundle_size;
    let sampled_edges = kept.len() - bundle_edges;
    sgs_obs::point!(
        "sample.pass",
        m = m,
        t = t,
        bundle_edges = bundle_edges,
        sampled_edges = sampled_edges,
        weighted = weighted,
    );
    let sparsifier = Graph::from_edges_unchecked(n, kept);
    let phases = PipelinePhases {
        spanner: bundle.phases,
        sampling_ms: t_sampling.elapsed().as_secs_f64() * 1e3,
    };

    let stats = WorkStats {
        spanner_work: bundle.work,
        sampling_work: m as u64,
        rounds: 1,
        edges_per_round: vec![m],
        bundle_t_per_round: vec![t],
        bundle_edges_per_round: vec![bundle.bundle_size],
    };

    SampleOutput {
        sparsifier,
        bundle_edges,
        sampled_edges,
        t,
        stats,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BundleSizing;
    use sgs_graph::{connectivity::is_connected, generators};
    use sgs_linalg::spectral::{approximation_bounds, CertifyOptions};

    #[test]
    fn edge_coin_is_deterministic_and_uniform() {
        // Determinism: same (seed, id) → same draw; different ids decorrelate.
        assert_eq!(edge_coin(7, 42).to_bits(), edge_coin(7, 42).to_bits());
        assert_ne!(edge_coin(7, 42).to_bits(), edge_coin(7, 43).to_bits());
        assert_ne!(edge_coin(7, 42).to_bits(), edge_coin(8, 42).to_bits());
        // Uniformity: the empirical mean over consecutive counter values must sit near
        // 1/2 and every draw must be a valid probability.
        let n = 100_000u64;
        let mut sum = 0.0;
        let mut below_quarter = 0usize;
        for id in 0..n {
            let u = edge_coin(0xDEAD_BEEF, id);
            assert!((0.0..1.0).contains(&u));
            sum += u;
            if u < 0.25 {
                below_quarter += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let frac = below_quarter as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "P[u < 1/4] ≈ {frac}");
    }

    #[test]
    fn edge_coin_streams_of_nearby_seeds_are_not_shifted_copies() {
        // A naive `splitmix64(seed + id)` mix satisfies coin(s, id) == coin(s+d, id-d),
        // turning multi-seed sweeps into correlated replicas. The pre-avalanched seed
        // must break that alignment at every small shift.
        for d in 1..4u64 {
            for id in d..1000 {
                assert_ne!(
                    edge_coin(7, id).to_bits(),
                    edge_coin(7 + d, id - d).to_bits(),
                    "shifted collision at d={d}, id={id}"
                );
            }
        }
    }

    fn base_cfg() -> SparsifyConfig {
        SparsifyConfig::new(0.5, 2.0)
            .with_bundle_sizing(BundleSizing::Fixed(3))
            .with_seed(17)
    }

    #[test]
    fn expectation_of_output_equals_input() {
        // E[G̃] = G: the total weight of the output should concentrate around the total
        // weight of the input (bundle kept at weight w, off-bundle kept at 4w w.p. 1/4).
        let g = generators::erdos_renyi(300, 0.3, 1.0, 5);
        let mut totals = Vec::new();
        for seed in 0..8 {
            let out = parallel_sample(&g, &base_cfg().with_seed(seed));
            totals.push(out.sparsifier.total_weight());
        }
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        let rel = (mean - g.total_weight()).abs() / g.total_weight();
        assert!(rel < 0.05, "mean output weight off by {rel}");
    }

    #[test]
    fn off_bundle_edges_shrink_by_roughly_keep_probability() {
        let g = generators::erdos_renyi(400, 0.3, 1.0, 3);
        let out = parallel_sample(&g, &base_cfg());
        let off_bundle_total = g.m() - out.stats.bundle_edges_per_round[0];
        let expected = off_bundle_total as f64 * 0.25;
        let got = out.sampled_edges as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "sampled {got}, expected ≈ {expected}"
        );
        // Overall the output must be smaller than the input for a dense graph.
        assert!(out.sparsifier.m() < g.m());
    }

    #[test]
    fn sampled_edges_are_reweighted_by_inverse_probability() {
        let g = generators::complete(60, 2.0);
        let out = parallel_sample(&g, &base_cfg());
        // Every edge weight is either 2.0 (bundle) or 8.0 (kept off-bundle edge).
        for e in out.sparsifier.edges() {
            assert!(
                (e.w - 2.0).abs() < 1e-12 || (e.w - 8.0).abs() < 1e-12,
                "unexpected weight {}",
                e.w
            );
        }
        assert_eq!(out.bundle_edges + out.sampled_edges, out.sparsifier.m());
    }

    #[test]
    fn output_preserves_connectivity() {
        // The bundle contains at least one full spanner, which spans the graph.
        let g = generators::preferential_attachment(300, 5, 1.0, 7);
        let out = parallel_sample(&g, &base_cfg());
        assert!(is_connected(&out.sparsifier));
    }

    #[test]
    fn spectral_quality_is_reasonable_on_dense_graph() {
        let g = generators::erdos_renyi(200, 0.5, 1.0, 11);
        let out = parallel_sample(&g, &base_cfg().with_bundle_sizing(BundleSizing::Fixed(6)));
        let bounds = approximation_bounds(&g, &out.sparsifier, &CertifyOptions::default());
        // With a practical bundle the guarantee is looser than the paper's 1±ε, but the
        // approximation must still be two-sided and far from degenerate.
        assert!(bounds.lower > 0.4, "lower bound {}", bounds.lower);
        assert!(bounds.upper < 2.5, "upper bound {}", bounds.upper);
    }

    #[test]
    fn deterministic_for_fixed_seed_and_independent_of_parallelism() {
        let g = generators::erdos_renyi(250, 0.2, 1.0, 23);
        let a = parallel_sample(&g, &base_cfg().with_parallel(true));
        let b = parallel_sample(&g, &base_cfg().with_parallel(false));
        assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
        let c = parallel_sample(&g, &base_cfg().with_seed(99));
        assert_ne!(a.sparsifier.edges(), c.sparsifier.edges());
    }

    #[test]
    fn paper_constants_swallow_small_graphs() {
        // With the paper's t = 24 log²n/ε² the bundle contains every edge of a small
        // graph, so the output equals the input exactly — the algorithm never harms.
        let g = generators::erdos_renyi(100, 0.3, 1.0, 2);
        let cfg = SparsifyConfig::new(0.5, 2.0)
            .with_paper_constants()
            .with_seed(3);
        let out = parallel_sample(&g, &cfg);
        assert_eq!(out.sparsifier.m(), g.m());
        assert_eq!(out.sampled_edges, 0);
    }

    #[test]
    fn stats_reflect_the_round() {
        let g = generators::erdos_renyi(200, 0.3, 1.0, 5);
        let out = parallel_sample(&g, &base_cfg());
        assert_eq!(out.stats.rounds, 1);
        assert_eq!(out.stats.edges_per_round, vec![g.m()]);
        assert_eq!(out.stats.bundle_t_per_round, vec![3]);
        assert_eq!(out.stats.sampling_work, g.m() as u64);
        assert!(out.stats.spanner_work > 0);
        assert_eq!(out.t, 3);
    }

    #[test]
    fn keep_probability_is_respected() {
        let g = generators::erdos_renyi(400, 0.3, 1.0, 31);
        let half = base_cfg().with_keep_probability(0.5);
        let quarter = base_cfg();
        let out_half = parallel_sample(&g, &half);
        let out_quarter = parallel_sample(&g, &quarter);
        assert!(out_half.sampled_edges > out_quarter.sampled_edges);
        // Reweighting factor should be 2x for p = 1/2.
        let has_2x = out_half
            .sparsifier
            .edges()
            .iter()
            .any(|e| (e.w - 2.0).abs() < 1e-12);
        assert!(has_2x);
    }

    #[test]
    fn er_strategy_output_is_connected_and_parallelism_invariant() {
        use crate::strategy::SamplingPolicy;
        let g = generators::erdos_renyi(150, 0.25, 1.0, 13);
        let cfg = base_cfg().with_sampling(SamplingPolicy::effective_resistance(4, 1e-3));
        let a = parallel_sample(&g, &cfg.clone().with_parallel(true));
        let b = parallel_sample(&g, &cfg.clone().with_parallel(false));
        assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
        assert!(is_connected(&a.sparsifier));
        // The weighted path must actually diverge from the uniform coin.
        let uniform = parallel_sample(&g, &base_cfg());
        assert_ne!(a.sparsifier.edges(), uniform.sparsifier.edges());
    }

    #[test]
    fn er_strategy_keeps_expected_size_near_uniform_budget() {
        use crate::strategy::SamplingPolicy;
        let g = generators::erdos_renyi(200, 0.3, 1.0, 29);
        let cfg = base_cfg().with_sampling(SamplingPolicy::effective_resistance(4, 1e-3));
        let out = parallel_sample(&g, &cfg);
        let uniform = parallel_sample(&g, &base_cfg());
        // Same expected budget → kept counts in the same ballpark (within 2x).
        let a = out.sampled_edges as f64;
        let b = uniform.sampled_edges.max(1) as f64;
        assert!(a < 2.0 * b && a > 0.3 * b, "er kept {a}, uniform kept {b}");
    }
}
