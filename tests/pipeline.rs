//! Cross-crate integration tests: the full sparsify → verify → solve pipelines that a
//! downstream user of the library would run.

use spectral_sparsify::graph::{connectivity::is_connected, generators, ops};
use spectral_sparsify::linalg::spectral::CertifyOptions;
use spectral_sparsify::linalg::{cg::CgConfig, cg_solve, csr::CsrMatrix, vector};
use spectral_sparsify::solver::{SddSolver, SolverConfig, SolverMethod};
use spectral_sparsify::sparsify::prelude::*;

/// Sparsifying a dense graph and solving on the sparsifier gives approximately the same
/// solution as solving on the original graph — the downstream use case that motivates
/// spectral sparsification in the first place.
#[test]
fn solve_on_sparsifier_approximates_solve_on_original() {
    let g = generators::erdos_renyi(400, 0.25, 1.0, 5);
    assert!(is_connected(&g));
    let cfg = SparsifyConfig::new(0.5, 4.0)
        .with_bundle_sizing(BundleSizing::Fixed(6))
        .with_seed(9);
    let sparse = parallel_sparsify(&g, &cfg).sparsifier;
    assert!(sparse.m() < g.m());

    let mut b = vec![0.0; g.n()];
    b[0] = 1.0;
    b[399] = -1.0;
    let cg_cfg = CgConfig::default();
    let x_full = cg_solve(&CsrMatrix::laplacian(&g), &b, &cg_cfg).solution;
    let x_sparse = cg_solve(&CsrMatrix::laplacian(&sparse), &b, &cg_cfg).solution;

    // Compare the energy (quadratic form) of the two solutions on the original graph:
    // for a kappa-approximation the energies agree within that factor.
    let e_full = g.quadratic_form(&x_full);
    let e_sparse = g.quadratic_form(&x_sparse);
    let ratio = e_sparse / e_full;
    assert!(ratio > 0.3 && ratio < 3.0, "energy ratio {ratio}");

    // The potential difference across the source/sink pair (the effective resistance)
    // is also approximately preserved.
    let er_full = x_full[0] - x_full[399];
    let er_sparse = x_sparse[0] - x_sparse[399];
    let er_ratio = er_sparse / er_full;
    assert!(
        er_ratio > 0.4 && er_ratio < 2.5,
        "effective resistance ratio {er_ratio}"
    );
}

/// A sparsifier of `G` can precondition solves on `G`: CG on `G` preconditioned by an
/// (exactly solved) sparsifier converges in far fewer iterations than plain CG when the
/// sparsifier is spectrally close.
#[test]
fn sparsifier_preserves_spectral_bounds_after_graph_algebra() {
    // Build G, sparsify, then check that scaling and adding graphs commutes with the
    // approximation guarantee: if H ≈ G then aH + K ≈ aG + K for any graph K.
    let g = generators::erdos_renyi(300, 0.3, 1.0, 21);
    let cfg = SparsifyConfig::new(0.5, 4.0)
        .with_bundle_sizing(BundleSizing::Fixed(5))
        .with_seed(2);
    let h = parallel_sparsify(&g, &cfg).sparsifier;
    let opts = CertifyOptions::default();
    let base = verify_sparsifier(&g, &h, &opts);

    let k = generators::cycle(300, 5.0);
    let ag_k = ops::add(&ops::scale(&g, 2.0).unwrap(), &k).unwrap();
    let ah_k = ops::add(&ops::scale(&h, 2.0).unwrap(), &k).unwrap();
    let shifted = verify_sparsifier(&ag_k, &ah_k, &opts);
    // Adding a common graph can only tighten the relative bounds.
    assert!(shifted.bounds.lower >= base.bounds.lower - 1e-6);
    assert!(shifted.bounds.upper <= base.bounds.upper + 1e-6);
}

/// The solver built on the chain (which internally uses PARALLELSPARSIFY) must agree
/// with a plain CG solve on the same system.
#[test]
fn chain_solver_agrees_with_plain_cg_end_to_end() {
    let g = generators::image_affinity_grid(20, 20, 40.0, 7);
    let n = g.n();
    let solver = SddSolver::for_laplacian(g.clone(), SolverConfig::default());
    let mut b = vec![0.0; n];
    b[5] = 1.0;
    b[n - 7] = -1.0;
    let chain = solver.solve_with(&b, SolverMethod::ChainPcg);
    let plain = solver.solve_with(&b, SolverMethod::Cg);
    assert!(chain.converged && plain.converged);
    let diff: Vec<f64> = chain
        .solution
        .iter()
        .zip(&plain.solution)
        .map(|(a, c)| a - c)
        .collect();
    assert!(vector::norm2(&diff) / vector::norm2(&plain.solution) < 1e-4);
}

/// Sparsify, then solve the sparsified system with the chain solver, and check the
/// solution against the original system: the full paper pipeline.
#[test]
fn full_pipeline_sparsify_then_chain_solve() {
    let g = generators::erdos_renyi(500, 0.2, 1.0, 33);
    assert!(is_connected(&g));
    let cfg = SparsifyConfig::new(0.5, 8.0)
        .with_bundle_sizing(BundleSizing::Fixed(5))
        .with_seed(4);
    let h = parallel_sparsify(&g, &cfg).sparsifier;

    let mut b = vec![0.0; g.n()];
    b[10] = 1.0;
    b[490] = -1.0;
    vector::project_out_ones(&mut b);

    let solver = SddSolver::for_laplacian(h, SolverConfig::default());
    let out = solver.solve(&b);
    assert!(out.converged);

    // Use the sparsifier solution as an approximate solution of the original system:
    // the relative residual in G should be bounded away from 1 (it would be ~1 for a
    // garbage vector) because H approximates G spectrally.
    let lx = g.laplacian_apply(&out.solution);
    let mut r: Vec<f64> = b.iter().zip(&lx).map(|(bi, li)| bi - li).collect();
    vector::project_out_ones(&mut r);
    let rel = vector::norm2(&r) / vector::norm2(&b);
    assert!(
        rel < 0.9,
        "sparsifier solution is a useful starting point, residual {rel}"
    );
}

/// Distributed and shared-memory sparsifiers have statistically similar sizes and both
/// produce usable spectral approximations of the same input.
#[test]
fn distributed_and_shared_memory_sparsifiers_are_comparable() {
    use spectral_sparsify::distributed::distributed_sample;

    let g = generators::erdos_renyi(200, 0.3, 1.0, 41);
    let cfg = SparsifyConfig::new(0.5, 2.0)
        .with_bundle_sizing(BundleSizing::Fixed(3))
        .with_seed(6);
    let shared = parallel_sample(&g, &cfg);
    let dist = distributed_sample(&g, &cfg);
    let ratio = shared.sparsifier.m() as f64 / dist.sparsifier.m() as f64;
    assert!(ratio > 0.5 && ratio < 2.0, "size ratio {ratio}");
    assert!(is_connected(&shared.sparsifier));
    assert!(is_connected(&dist.sparsifier));
    let opts = CertifyOptions::default();
    let b_shared = verify_sparsifier(&g, &shared.sparsifier, &opts);
    let b_dist = verify_sparsifier(&g, &dist.sparsifier, &opts);
    assert!(b_shared.bounds.lower > 0.2 && b_shared.bounds.upper < 3.0);
    assert!(b_dist.bounds.lower > 0.2 && b_dist.bounds.upper < 3.0);
}
