//! End-to-end smoke test of the README / doctest quickstart path: generate a dense
//! random graph, run `parallel_sparsify` through the facade crate exactly as a new
//! user would, and assert the output is a genuinely smaller graph that passes the
//! spectral verification helpers.

use spectral_sparsify::graph::{connectivity::is_connected, generators};
use spectral_sparsify::linalg::spectral::CertifyOptions;
use spectral_sparsify::sparsify::{
    parallel_sparsify, verify_sparsifier, BundleSizing, SparsifyConfig,
};

#[test]
fn quickstart_sparsify_and_verify() {
    // Same shape as the quickstart in src/lib.rs and README.md.
    let g = generators::erdos_renyi(400, 0.25, 1.0, 7);
    assert!(is_connected(&g), "quickstart graph must be connected");

    let cfg = SparsifyConfig::new(0.5, 4.0)
        .with_bundle_sizing(BundleSizing::Fixed(4))
        .with_seed(1);
    let out = parallel_sparsify(&g, &cfg);

    // The sparsifier is a strictly smaller graph on the same vertex set...
    assert_eq!(out.sparsifier.n(), g.n());
    assert!(
        out.sparsifier.m() < g.m(),
        "sparsifier has {} edges, input {}",
        out.sparsifier.m(),
        g.m()
    );
    assert!(is_connected(&out.sparsifier));

    // ...and the verification helper certifies two-sided spectral bounds for it.
    let report = verify_sparsifier(&g, &out.sparsifier, &CertifyOptions::default());
    assert!(report.bounds.lower > 0.0, "lower bound {:?}", report.bounds);
    assert!(
        report.bounds.upper.is_finite(),
        "upper bound {:?}",
        report.bounds
    );
    assert!(
        report.bounds.lower > 0.2 && report.bounds.upper < 5.0,
        "quickstart bounds drifted far from (1 ± eps): {:?}",
        report.bounds
    );
    assert!(report.compression > 1.0);
    // The Display impl is part of the quickstart output; it must render.
    assert!(!report.to_string().is_empty());
}
