//! Integration tests that check the paper's quantitative statements directly (small
//! instances of the experiments in EXPERIMENTS.md).

use spectral_sparsify::graph::{connectivity::is_connected, generators, stretch};
use spectral_sparsify::linalg::resistance::exact_effective_resistances;
use spectral_sparsify::spanner::{
    baswana_sen_spanner, default_stretch_bound, t_bundle, BundleConfig, SpannerConfig,
};
use spectral_sparsify::sparsify::{parallel_sample, BundleSizing, SparsifyConfig};

/// Theorem 1 (shape): the Baswana–Sen spanner has O(n log n) edges and stretch at most
/// 2 log n across several graph families.
#[test]
fn theorem_1_spanner_size_and_stretch() {
    let families: Vec<(&str, _)> = vec![
        ("erdos_renyi", generators::erdos_renyi(400, 0.1, 1.0, 3)),
        (
            "random_regular",
            generators::random_regular(400, 12, 1.0, 5),
        ),
        (
            "preferential",
            generators::preferential_attachment(400, 6, 1.0, 7),
        ),
    ];
    for (name, g) in families {
        if !is_connected(&g) {
            continue;
        }
        let r = baswana_sen_spanner(&g, &SpannerConfig::with_seed(11));
        let h = r.to_graph(&g);
        let bound = default_stretch_bound(g.n());
        let s = stretch::max_stretch(&g, &h);
        assert!(s <= bound + 1.0, "{name}: stretch {s} > {bound}");
        let size_budget = (8.0 * g.n() as f64 * (g.n() as f64).log2()) as usize;
        assert!(
            r.edge_ids.len() <= size_budget,
            "{name}: spanner size {} > O(n log n) budget {size_budget}",
            r.edge_ids.len()
        );
        // Work bound O(m log n) with a generous constant.
        assert!(r.work <= 10 * g.m() as u64 * (g.n() as f64).log2().ceil() as u64 + 1000);
    }
}

/// Lemma 1: for every edge outside a t-bundle spanner, `w_e · R_e[G] ≤ log n / t`
/// (checked against *exact* effective resistances).
#[test]
fn lemma_1_bundle_certificate_holds_exactly() {
    let g = generators::erdos_renyi(150, 0.25, 1.0, 13);
    assert!(is_connected(&g));
    let resistances = exact_effective_resistances(&g);
    let log_n = (g.n() as f64).log2();
    for t in [1usize, 2, 4, 8] {
        let bundle = t_bundle(&g, &BundleConfig::new(t).with_seed(3));
        let bound = log_n / t as f64;
        let mut worst: f64 = 0.0;
        let mut checked = 0;
        for (id, e) in g.edges().iter().enumerate() {
            if !bundle.in_bundle[id] {
                let leverage = e.w * resistances[id];
                worst = worst.max(leverage);
                checked += 1;
                assert!(
                    leverage <= bound + 1e-9,
                    "t = {t}: off-bundle edge {id} has leverage {leverage} > log n / t = {bound}"
                );
            }
        }
        // The bound must actually be exercised (off-bundle edges exist for small t on a
        // dense graph).
        if t <= 4 {
            assert!(checked > 0, "t = {t}: no off-bundle edges to check");
        }
        let _ = worst;
    }
}

/// Corollary 2 (shape): a t-bundle has O(t · n log n) edges.
#[test]
fn corollary_2_bundle_size() {
    let g = generators::erdos_renyi(300, 0.4, 1.0, 17);
    let n = g.n() as f64;
    for t in [1usize, 2, 4] {
        let bundle = t_bundle(&g, &BundleConfig::new(t).with_seed(5));
        let budget = (6.0 * t as f64 * n * n.log2()) as usize;
        assert!(
            bundle.bundle_size <= budget.min(g.m()),
            "t = {t}: bundle {} exceeds budget {budget}",
            bundle.bundle_size
        );
    }
}

/// Theorem 4 (shape): PARALLELSAMPLE's output size is about `bundle + (m − bundle)/4`
/// and the total edge weight is preserved in expectation.
#[test]
fn theorem_4_output_size_and_weight() {
    let g = generators::erdos_renyi(400, 0.4, 1.0, 19);
    let cfg = SparsifyConfig::new(0.5, 2.0)
        .with_bundle_sizing(BundleSizing::Fixed(2))
        .with_seed(23);
    let out = parallel_sample(&g, &cfg);
    let off_bundle = g.m() - out.stats.bundle_edges_per_round[0];
    let expected = out.stats.bundle_edges_per_round[0] as f64 + off_bundle as f64 / 4.0;
    let got = out.sparsifier.m() as f64;
    assert!(
        (got - expected).abs() < 5.0 * expected.sqrt() + 20.0,
        "size {got} vs expected {expected}"
    );
    let weight_ratio = out.sparsifier.total_weight() / g.total_weight();
    assert!(
        (weight_ratio - 1.0).abs() < 0.1,
        "weight ratio {weight_ratio}"
    );
}

/// Theorem 5 (shape): increasing rho increases the achieved compression while the
/// number of rounds follows ceil(log2 rho).
#[test]
fn theorem_5_rho_sweep_shape() {
    let g = generators::erdos_renyi(500, 0.3, 1.0, 29);
    let mut last_m = usize::MAX;
    for rho in [2.0, 4.0, 16.0] {
        let cfg = SparsifyConfig::new(0.75, rho)
            .with_bundle_sizing(BundleSizing::Fixed(3))
            .with_seed(31);
        let out = spectral_sparsify::sparsify::parallel_sparsify(&g, &cfg);
        assert!(out.rounds_executed <= rho.log2().ceil() as usize);
        assert!(
            out.sparsifier.m() <= last_m,
            "rho {rho}: {} edges, expected monotone decrease",
            out.sparsifier.m()
        );
        last_m = out.sparsifier.m();
    }
    // The most aggressive setting must have removed a large fraction of a dense graph.
    assert!(last_m < g.m() / 3);
}
