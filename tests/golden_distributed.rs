//! Golden equivalence fixtures for the distributed (CONGEST) protocol engine.
//!
//! These values were captured from the pre-rewrite (PR-3-era) implementation —
//! `Vec<Vec>` mailboxes, per-vertex `BTreeMap` state — across three seeds and
//! four graph families. The allocation-free engine (flat CSR mailboxes +
//! `ViewCsr` incidence + rayon vertex sweeps) must reproduce every byte of
//! them: the protocol's ChaCha8 cluster-sampling stream, the selected edge
//! ids, **and** the full `NetworkMetrics` (rounds / messages / bits) are the
//! quantities Theorem 2 and Corollary 3 are about, so the rewrite is supposed
//! to change *nothing* here.
//!
//! The one intentional stream change of this PR is pinned separately: the
//! off-bundle coin of `distributed_sample` moved from a fresh per-edge
//! `ChaCha8Rng` to the shared `sgs_core::edge_coin` counter mix, so the
//! sparsifier fingerprints below were captured *after* that satellite fix
//! (communication metrics were unaffected — sampling is local).
//!
//! If a legitimate protocol change ever alters these streams, re-pin by
//! running the committed fixture printer and pasting its output over the
//! tables below:
//!
//! ```sh
//! cargo test --release --test golden_distributed -- --ignored print_current_fixtures --nocapture
//! ```
//!
//! and call out the metric change in CHANGES.md.

use spectral_sparsify::distributed::{distributed_sample, distributed_spanner, DistSpannerConfig};
use spectral_sparsify::graph::{generators, Graph};
use spectral_sparsify::sparsify::{BundleSizing, SparsifyConfig};

/// FNV-1a over the little-endian bytes of each id: the same stable fingerprint
/// of an ordered id list that `tests/golden_spanner.rs` uses.
fn fnv1a(ids: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &id in ids {
        for b in (id as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Fingerprint of a sparsifier: FNV-1a over endpoints and weight bits of every
/// edge in order (edge order is part of the deterministic contract).
fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for e in g.edges() {
        mix(e.u as u64);
        mix(e.v as u64);
        mix(e.w.to_bits());
    }
    h
}

fn graph(name: &str) -> Graph {
    match name {
        "er120" => generators::erdos_renyi(120, 0.2, 1.0, 42),
        "pa150" => generators::preferential_attachment(150, 4, 1.0, 11),
        "grid12" => generators::grid2d(12, 12, 1.0),
        "complete40" => generators::complete(40, 1.0),
        other => panic!("unknown fixture graph {other}"),
    }
}

const FIXTURE_GRAPHS: &[&str] = &["er120", "pa150", "grid12", "complete40"];
const FIXTURE_SEEDS: &[u64] = &[1, 2, 3];

/// (graph, seed, edge_count, fnv1a(edge_ids), rounds, messages, total_bits,
/// max_message_bits) for `distributed_spanner` with the default `k`.
type SpannerFixture = (&'static str, u64, usize, u64, usize, u64, u64, usize);

const GOLDEN_SPANNER: &[SpannerFixture] = &[
    ("er120", 1, 289, 0x8a40c27e01a53caa, 34, 20832, 624146, 33),
    ("er120", 2, 434, 0xf69aab6b2642f281, 34, 22279, 662631, 33),
    ("er120", 3, 259, 0xb3d61eca6fdb0192, 34, 22776, 692793, 33),
    ("pa150", 1, 399, 0x4e55ac8f9829c4f6, 43, 9259, 244680, 33),
    ("pa150", 2, 289, 0xf0369653cbfa6aa2, 43, 10739, 269680, 33),
    ("pa150", 3, 432, 0xe93a1d449c2d7f33, 43, 9168, 243582, 33),
    ("grid12", 1, 252, 0x31b16f559e8a28df, 43, 4591, 98278, 33),
    ("grid12", 2, 244, 0x40940884046aa44a, 43, 4537, 97119, 33),
    ("grid12", 3, 249, 0x843533ab5ce525a8, 43, 4311, 94888, 33),
    (
        "complete40",
        1,
        107,
        0x58a9bae1a44d2443,
        26,
        8714,
        270466,
        33,
    ),
    (
        "complete40",
        2,
        94,
        0xddbb22fbfff43eb0,
        26,
        10100,
        316626,
        33,
    ),
    (
        "complete40",
        3,
        180,
        0x197e5d0fd4c5350d,
        26,
        10252,
        323226,
        33,
    ),
];

/// (graph, seed, bundle_edges, sparsifier_m, graph_fingerprint, rounds,
/// messages, total_bits) for `distributed_sample` with
/// `SparsifyConfig::new(0.75, 4.0)`, `BundleSizing::Fixed(2)`.
type SampleFixture = (&'static str, u64, usize, usize, u64, usize, u64, u64);

const GOLDEN_SAMPLE: &[SampleFixture] = &[
    ("er120", 1, 574, 771, 0xd327ba7bf7cd7db8, 68, 39392, 1180421),
    ("er120", 2, 740, 906, 0x7b83d1b30a150ab0, 68, 42235, 1264807),
    ("er120", 3, 804, 961, 0xa696dddc51a05ee7, 68, 44552, 1346669),
    ("pa150", 1, 567, 572, 0x0127f10fa0a29ee5, 86, 14769, 401752),
    ("pa150", 2, 512, 537, 0x21a867a6fa9e5395, 86, 20365, 524183),
    ("pa150", 3, 576, 577, 0x9ff9f7b5e2c6f48a, 86, 14718, 401761),
    ("grid12", 1, 264, 264, 0xa1f838b10024ccc1, 86, 5772, 134996),
    ("grid12", 2, 264, 264, 0xa1f838b10024ccc1, 86, 5891, 138575),
    ("grid12", 3, 264, 264, 0xa1f838b10024ccc1, 86, 5739, 137932),
    (
        "complete40",
        1,
        227,
        346,
        0xfdd7c32f3cca0a0f,
        52,
        18437,
        574173,
    ),
    (
        "complete40",
        2,
        240,
        380,
        0x6df215c4687d3744,
        52,
        20015,
        626060,
    ),
    (
        "complete40",
        3,
        252,
        394,
        0x1fae6c8b56721f83,
        52,
        19900,
        626764,
    ),
];

fn sample_cfg(seed: u64) -> SparsifyConfig {
    SparsifyConfig::new(0.75, 4.0)
        .with_bundle_sizing(BundleSizing::Fixed(2))
        .with_seed(seed)
}

/// Regenerates the fixture tables in source form (see the module docs for the
/// exact invocation). Ignored by default: running it never fails, it only
/// prints.
#[test]
#[ignore = "fixture regeneration helper, run with --ignored --nocapture"]
fn print_current_fixtures() {
    println!("const GOLDEN_SPANNER: &[SpannerFixture] = &[");
    for &name in FIXTURE_GRAPHS {
        let g = graph(name);
        for &seed in FIXTURE_SEEDS {
            let r = distributed_spanner(&g, &DistSpannerConfig::with_seed(seed));
            println!(
                "    (\"{name}\", {seed}, {}, {:#018x}, {}, {}, {}, {}),",
                r.edge_ids.len(),
                fnv1a(&r.edge_ids),
                r.metrics.rounds,
                r.metrics.messages,
                r.metrics.total_bits,
                r.metrics.max_message_bits,
            );
        }
    }
    println!("];\nconst GOLDEN_SAMPLE: &[SampleFixture] = &[");
    for &name in FIXTURE_GRAPHS {
        let g = graph(name);
        for &seed in FIXTURE_SEEDS {
            let out = distributed_sample(&g, &sample_cfg(seed));
            println!(
                "    (\"{name}\", {seed}, {}, {}, {:#018x}, {}, {}, {}),",
                out.bundle_edges,
                out.sparsifier.m(),
                graph_fingerprint(&out.sparsifier),
                out.metrics.rounds,
                out.metrics.messages,
                out.metrics.total_bits,
            );
        }
    }
    println!("];");
}

#[test]
fn distributed_spanner_matches_pre_rewrite_fixtures() {
    assert!(!GOLDEN_SPANNER.is_empty(), "fixtures not captured");
    for &(name, seed, len, hash, rounds, messages, bits, max_bits) in GOLDEN_SPANNER {
        let g = graph(name);
        let r = distributed_spanner(&g, &DistSpannerConfig::with_seed(seed));
        assert_eq!(
            (
                r.edge_ids.len(),
                fnv1a(&r.edge_ids),
                r.metrics.rounds,
                r.metrics.messages,
                r.metrics.total_bits,
                r.metrics.max_message_bits,
            ),
            (len, hash, rounds, messages, bits, max_bits),
            "{name} seed={seed}"
        );
    }
}

#[test]
fn distributed_sample_matches_fixtures() {
    assert!(!GOLDEN_SAMPLE.is_empty(), "fixtures not captured");
    for &(name, seed, bundle, m_out, fp, rounds, messages, bits) in GOLDEN_SAMPLE {
        let g = graph(name);
        let out = distributed_sample(&g, &sample_cfg(seed));
        assert_eq!(
            (
                out.bundle_edges,
                out.sparsifier.m(),
                graph_fingerprint(&out.sparsifier),
                out.metrics.rounds,
                out.metrics.messages,
                out.metrics.total_bits,
            ),
            (bundle, m_out, fp, rounds, messages, bits),
            "{name} seed={seed}"
        );
    }
}
