//! Golden fixtures for the ER-weighted final reduction pass (`resparsify_er`) and the
//! acceptance scenario of the leverage-aware sampling engine.
//!
//! Each fixture row pins the **full deterministic contract** of `resparsify_er` for
//! one (graph, seed) pair: the output edge stream (endpoints *and* weight bits,
//! FNV-hashed), the output size, the Laplacian solves consumed, and whether the pass
//! actually resampled. The pass is seed-deterministic and thread-count invariant
//! (pinned separately in `tests/parallelism.rs`), so these fixtures hold in debug and
//! release, sequential and parallel.
//!
//! If a legitimate algorithm change alters these streams, re-pin by running the
//! committed fixture printer and pasting its output over the table below:
//!
//! ```sh
//! cargo test --release --test golden_er -- --ignored print_current_fixtures --nocapture
//! ```
//!
//! and document the change in vendor/README.md (as for `golden_stream.rs`).

use spectral_sparsify::graph::{generators, Graph};
use spectral_sparsify::sparsify::{resparsify_er, BundleSizing, ErPassConfig, SamplingPolicy};
use spectral_sparsify::stream::{FinalPassConfig, StreamConfig, StreamOutput, StreamSparsifier};

/// FNV-1a over each edge's `(u, v, w)` — endpoints as little-endian u64, the weight
/// by its exact bit pattern, so any reweighting drift re-pins the fixture.
fn fingerprint(g: &Graph) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut absorb = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for e in g.edges() {
        absorb(e.u as u64);
        absorb(e.v as u64);
        absorb(e.w.to_bits());
    }
    h
}

fn graph(name: &str) -> Graph {
    match name {
        "er300" => generators::erdos_renyi(300, 0.15, 1.0, 42),
        "er250" => generators::erdos_renyi(250, 0.3, 1.0, 7),
        "pa400" => generators::preferential_attachment(400, 5, 1.0, 11),
        "complete80" => generators::complete(80, 1.0),
        other => panic!("unknown fixture graph {other}"),
    }
}

/// Small JL sketch / loose CG tolerance so the fixtures stay cheap in debug builds;
/// `oversample = 0.25` keeps the sample budget in the compressing-but-connected
/// regime on every fixture graph.
fn pass_config(seed: u64) -> ErPassConfig {
    ErPassConfig::new(0.5)
        .with_oversample(0.25)
        .with_jl_dims(4)
        .with_cg_tol(1e-3)
        .with_seed(seed)
}

/// (graph, seed, m_out, fingerprint, solves, resampled).
#[allow(clippy::type_complexity)]
const GOLDEN_ER: &[(&str, u64, usize, u64, usize, bool)] = &[
    // pa400's sample budget covers its edge count, so it pins the short-circuit
    // (identity, solve-free) branch; the other graphs pin genuine resampling.
    ("er300", 1, 2441, 0xbd00eb66682d37fc, 4, true),
    ("er300", 2, 2439, 0xc46832a564f068fe, 4, true),
    ("er300", 3, 2402, 0xaa6ed7c54c538dfa, 4, true),
    ("er250", 1, 1986, 0xa344e4a959129f89, 4, true),
    ("er250", 2, 1993, 0x1c6040fedc2d424f, 4, true),
    ("er250", 3, 1920, 0x479302c6b962f919, 4, true),
    ("pa400", 1, 1985, 0x4b84f9f1fbfbda08, 0, false),
    ("pa400", 2, 1985, 0x4b84f9f1fbfbda08, 0, false),
    ("pa400", 3, 1985, 0x4b84f9f1fbfbda08, 0, false),
    ("complete80", 1, 524, 0x8b62a245aa5e8a40, 4, true),
    ("complete80", 2, 505, 0x3045642eb31c5c51, 4, true),
    ("complete80", 3, 475, 0xed15368beaa21337, 4, true),
];

#[test]
fn er_pass_fixtures_match_across_seeds() {
    for &(name, seed, m_out, fp, solves, resampled) in GOLDEN_ER {
        let g = graph(name);
        let out = resparsify_er(&g, &pass_config(seed));
        let label = format!("{name}/seed {seed}");
        assert_eq!(out.sparsifier.m(), m_out, "{label}: m_out");
        assert_eq!(fingerprint(&out.sparsifier), fp, "{label}: fingerprint");
        assert_eq!(out.solves, solves, "{label}: solves");
        assert_eq!(out.resampled, resampled, "{label}: resampled");
        assert_eq!(out.m_in, g.m(), "{label}: m_in");
    }
}

#[test]
fn er_pass_fixtures_are_parallelism_mode_independent() {
    // `parallel: false` must reproduce the same streams: the CG rows and the final
    // filter may fan out, but the score normalisation is sequential by construction.
    for &(name, seed, m_out, fp, ..) in &GOLDEN_ER[..4] {
        let g = graph(name);
        let out = resparsify_er(&g, &pass_config(seed).with_parallel(false));
        assert_eq!(out.sparsifier.m(), m_out, "{name}/seed {seed} sequential");
        assert_eq!(
            fingerprint(&out.sparsifier),
            fp,
            "{name}/seed {seed} sequential"
        );
    }
}

/// The ISSUE-6 acceptance scenario: er(n = 4000, deg = 150) streamed under a budget of
/// `m/4` resident edges, leverage-aware configuration (ER interior sampling + the
/// ER-weighted final pass) against the uniform configuration of the same tree.
#[test]
fn acceptance_er4000_leverage_aware_beats_uniform() {
    let n = 4000usize;
    let p = 150.0 / (n as f64 - 1.0);
    let g = generators::erdos_renyi(n, p, 1.0, 51);
    let m = g.m();
    let budget = m / 4;
    let batch = m / 16;
    let uniform_cfg = StreamConfig::new(0.75, budget)
        .with_bundle_sizing(BundleSizing::Fixed(2))
        .with_keep_probability(0.22)
        .with_seed(5);
    let er_cfg = uniform_cfg
        .clone()
        .with_interior_sampling(SamplingPolicy::effective_resistance(4, 1e-3))
        .with_final_pass(
            FinalPassConfig::new()
                .with_oversample(0.02)
                .with_jl_dims(4)
                .with_cg_tol(1e-3),
        );

    let run = |cfg: &StreamConfig, chunk: usize| -> StreamOutput {
        let mut s = StreamSparsifier::new(n, cfg.clone());
        for batch in g.edges().chunks(chunk) {
            s.ingest_batch(batch).unwrap();
        }
        s.finish()
    };
    let uniform = run(&uniform_cfg, batch);
    let er = run(&er_cfg, batch);

    // The headline claim: at the same configured ε_total, the leverage-aware path
    // lands at well under 0.6× the uniform path's output size.
    assert!(
        (er.sparsifier.m() as f64) <= 0.6 * uniform.sparsifier.m() as f64,
        "er m_out {} vs uniform m_out {}",
        er.sparsifier.m(),
        uniform.sparsifier.m()
    );
    // The final pass actually ran (no short-circuit) and the ledger charges it while
    // staying within the configured total.
    let pass = er.stats.er_pass.as_ref().expect("final pass configured");
    assert!(pass.resampled, "final pass short-circuited unexpectedly");
    assert_eq!(pass.m_out as usize, er.sparsifier.m());
    assert!(er.stats.epsilon_spent() <= 0.75 + 1e-12);
    // Quality did not regress: the sparsifier spans the graph and the probe-ratio
    // envelope stays inside the window the uniform acceptance test pins.
    assert!(spectral_sparsify::graph::connectivity::is_connected(
        &er.sparsifier
    ));
    let (lo, hi) = spectral_sparsify::linalg::spectral::ratio_samples(&g, &er.sparsifier, 16, 3);
    assert!(lo > 0.5 && hi < 2.0, "probe ratio envelope [{lo}, {hi}]");

    // Batch-chop invariance of the full leverage-aware stack: the same permutation in
    // one batch gives the identical sparsifier, final-pass accounting included.
    let one = run(&er_cfg, m);
    assert_eq!(one.sparsifier.edges(), er.sparsifier.edges());
    for (x, y) in one.sparsifier.edges().iter().zip(er.sparsifier.edges()) {
        assert_eq!(x.w.to_bits(), y.w.to_bits());
    }
    assert_eq!(one.stats.er_pass, er.stats.er_pass);
    assert_eq!(one.stats.levels, er.stats.levels);
}

/// Re-pin helper: prints the fixture table in the exact source format.
#[test]
#[ignore = "fixture printer; run with --ignored --nocapture to re-pin"]
fn print_current_fixtures() {
    for name in ["er300", "er250", "pa400", "complete80"] {
        let g = graph(name);
        for seed in 1u64..=3 {
            let out = resparsify_er(&g, &pass_config(seed));
            println!(
                "    (\"{name}\", {seed}, {}, {:#018x}, {}, {}),",
                out.sparsifier.m(),
                fingerprint(&out.sparsifier),
                out.solves,
                out.resampled,
            );
        }
    }
}
