//! Golden equivalence fixtures for the Baswana–Sen / t-bundle engine.
//!
//! These values were captured from the pre-rewrite (PR-2) implementation — the
//! per-vertex `BTreeMap` grouping and per-component incidence rebuild — across
//! five seeds, five graph families, both parallelism modes, and two stretch
//! settings. The allocation-free engine (flat CSR incidence + per-worker
//! scratch) must reproduce every byte of them: the spanner's ChaCha8 cluster
//! sampling stream is part of the public deterministic contract, and the
//! scratch rewrite is supposed to change *nothing* about the output.
//!
//! If a legitimate algorithm change ever alters these streams, re-pin by running the
//! committed fixture printer and pasting its output over the tables below:
//!
//! ```sh
//! cargo test --release --test golden_spanner -- --ignored print_current_fixtures --nocapture
//! ```
//!
//! and document the change in vendor/README.md.

use spectral_sparsify::graph::{generators, Graph};
use spectral_sparsify::spanner::{baswana_sen_spanner, t_bundle, BundleConfig, SpannerConfig};

/// FNV-1a over the little-endian bytes of each id: a stable fingerprint of an
/// ordered id list that is cheap to recompute in a capture binary.
fn fnv1a(ids: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &id in ids {
        for b in (id as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn graph(name: &str) -> Graph {
    match name {
        "er300" => generators::erdos_renyi(300, 0.15, 1.0, 42),
        "er250" => generators::erdos_renyi(250, 0.3, 1.0, 7),
        "pa400" => generators::preferential_attachment(400, 5, 1.0, 11),
        "grid20" => generators::grid2d(20, 20, 1.0),
        "complete80" => generators::complete(80, 1.0),
        other => panic!("unknown fixture graph {other}"),
    }
}

/// (graph, seed, edge_count, fnv1a(edge_ids), rounds, work) with the default
/// `k = ⌈log₂ n⌉`; the same row must hold for parallel and sequential runs.
const GOLDEN_DEFAULT_K: &[(&str, u64, usize, u64, usize, u64)] = &[
    ("er300", 1, 1446, 0xacf024ffc5491afa, 9, 99337),
    ("er300", 2, 1216, 0x0f3e9dfecdf9ed99, 9, 94249),
    ("er300", 3, 1040, 0xf1a82ec6c1c52e84, 9, 83209),
    ("er300", 4, 577, 0x876d78649a73189c, 9, 65856),
    ("er300", 5, 1413, 0xac868f301b130dcf, 9, 94613),
    ("er250", 1, 519, 0xcb71ef28ab6179b4, 8, 75717),
    ("er250", 2, 1030, 0xb34bb77a57b378da, 8, 107855),
    ("er250", 3, 1245, 0x0d57fb60c6382917, 8, 121352),
    ("er250", 4, 1104, 0xb3d68bc72eccdec3, 8, 119845),
    ("er250", 5, 737, 0xc24b55b49dcb8237, 8, 85524),
    ("pa400", 1, 1087, 0xece09c5baa8978f8, 9, 21680),
    ("pa400", 2, 1358, 0xfedfc91e3eff241e, 9, 22468),
    ("pa400", 3, 886, 0x73030a138646554f, 9, 20638),
    ("pa400", 4, 1156, 0x98c3b360095e3a25, 9, 22864),
    ("pa400", 5, 1068, 0x5a4affbce23b6c30, 9, 22005),
    ("grid20", 1, 698, 0xf7501677f03fc9cb, 9, 5835),
    ("grid20", 2, 712, 0x7e56018cdd3b65fb, 9, 5983),
    ("grid20", 3, 709, 0xa4abb953194fd1e4, 9, 6109),
    ("grid20", 4, 699, 0xa6899f1d873af5bb, 9, 6054),
    ("grid20", 5, 696, 0x4df794f71458f6fe, 9, 6043),
    ("complete80", 1, 425, 0x1f6982e96d03ef54, 7, 22389),
    ("complete80", 2, 309, 0xbd039e5651cf30ae, 7, 24251),
    ("complete80", 3, 363, 0x1c4e9be1d06c9827, 7, 24404),
    ("complete80", 4, 191, 0xf5ec4e16cc15c1fc, 7, 22665),
    ("complete80", 5, 436, 0x31e57b49d8bc95bd, 7, 24373),
];

/// (graph, seed, edge_count, fnv1a(edge_ids), work) with explicit `k = 3`.
const GOLDEN_K3: &[(&str, u64, usize, u64, u64)] = &[
    ("er300", 1, 1339, 0xccaced5350b14cce, 46093),
    ("er300", 2, 1239, 0x3dff6bdf41652bca, 46676),
    ("er300", 3, 915, 0x3851ce3a1f075ebc, 48501),
    ("er300", 4, 990, 0x9b0786c8660a23f3, 47748),
    ("er300", 5, 1558, 0xca5307e483926fbc, 46563),
    ("er250", 1, 2374, 0xe04d2eab0ddb1d1d, 63817),
    ("er250", 2, 1210, 0x3ed4a75fa0fffcf5, 64097),
    ("er250", 3, 1473, 0xa71bdbb1936f6f49, 67526),
    ("er250", 4, 923, 0x85a554f533cdaba4, 63163),
    ("er250", 5, 2166, 0xcb2d7d3b49c16a2b, 65157),
    ("pa400", 1, 1666, 0x96fe7f5b30a6c23d, 11858),
    ("pa400", 2, 1567, 0x3c7376c2ed7fd48a, 11681),
    ("pa400", 3, 1687, 0xccce7533757e8ddb, 11675),
    ("pa400", 4, 1799, 0xc0e0f2dfb2da8f2e, 11719),
    ("pa400", 5, 1644, 0xb3e6f70aee70fe89, 11848),
    ("grid20", 1, 754, 0x1661920c858a5485, 3664),
    ("grid20", 2, 755, 0x325e6d6259f00836, 3661),
    ("grid20", 3, 750, 0x9159c43a4efd2dc4, 3670),
    ("grid20", 4, 752, 0xe8e4a9adfb8fae88, 3588),
    ("grid20", 5, 746, 0x6aa439f9df542945, 3639),
    ("complete80", 1, 223, 0x32b4bb1720d0e8ab, 21661),
    ("complete80", 2, 523, 0xf80ee597e01fed30, 21324),
    ("complete80", 3, 366, 0xc803e177720f63ea, 21340),
    ("complete80", 4, 449, 0xe8143f625832cb9f, 21402),
    ("complete80", 5, 675, 0xd49c347cdc291d3f, 15677),
];

/// One bundle fixture row: (graph, t, bundle_size, fnv1a(sorted in-bundle ids), work,
/// component sizes) for `BundleConfig::new(t).with_seed(99)`.
type BundleFixture = (&'static str, usize, usize, u64, u64, &'static [usize]);

const GOLDEN_BUNDLE: &[BundleFixture] = &[
    ("er300", 1, 724, 0x8182c25d9b1c6c36, 75956, &[724]),
    (
        "er300",
        3,
        2412,
        0x4567823118cf175e,
        207643,
        &[724, 909, 779],
    ),
    ("er250", 1, 908, 0xb45909719b5dd710, 96343, &[908]),
    (
        "er250",
        3,
        2665,
        0x45d5cde1b983d53a,
        293256,
        &[908, 1031, 726],
    ),
    ("pa400", 1, 1067, 0xd0195a9a99497166, 21555, &[1067]),
    (
        "pa400",
        3,
        1965,
        0x1455e22b13996dbb,
        30563,
        &[1067, 698, 200],
    ),
    ("grid20", 1, 715, 0xb884e0fa75435b28, 5839, &[715]),
    ("grid20", 3, 760, 0x99b4bebebe7d4abd, 6068, &[715, 45]),
    ("complete80", 1, 302, 0x4a76bda64cfec5a8, 30664, &[302]),
    (
        "complete80",
        3,
        908,
        0x8393689d8221126d,
        87295,
        &[302, 273, 333],
    ),
];

const FIXTURE_GRAPHS: &[&str] = &["er300", "er250", "pa400", "grid20", "complete80"];
const FIXTURE_SEEDS: &[u64] = &[1, 2, 3, 4, 5];

/// Regenerates the fixture tables in source form (see the module docs for the exact
/// invocation). Ignored by default: running it never fails, it only prints.
#[test]
#[ignore = "fixture regeneration helper, run with --ignored --nocapture"]
fn print_current_fixtures() {
    println!("const GOLDEN_DEFAULT_K: ... = &[");
    for &name in FIXTURE_GRAPHS {
        let g = graph(name);
        for &seed in FIXTURE_SEEDS {
            let r = baswana_sen_spanner(&g, &SpannerConfig::with_seed(seed));
            println!(
                "    (\"{name}\", {seed}, {}, {:#018x}, {}, {}),",
                r.edge_ids.len(),
                fnv1a(&r.edge_ids),
                r.rounds,
                r.work
            );
        }
    }
    println!("];\nconst GOLDEN_K3: ... = &[");
    for &name in FIXTURE_GRAPHS {
        let g = graph(name);
        for &seed in FIXTURE_SEEDS {
            let r = baswana_sen_spanner(&g, &SpannerConfig::with_seed(seed).with_k(3));
            println!(
                "    (\"{name}\", {seed}, {}, {:#018x}, {}),",
                r.edge_ids.len(),
                fnv1a(&r.edge_ids),
                r.work
            );
        }
    }
    println!("];\nconst GOLDEN_BUNDLE: &[BundleFixture] = &[");
    for &name in FIXTURE_GRAPHS {
        let g = graph(name);
        for t in [1usize, 3] {
            let b = t_bundle(&g, &BundleConfig::new(t).with_seed(99));
            let ids: Vec<usize> = b
                .in_bundle
                .iter()
                .enumerate()
                .filter_map(|(i, &x)| if x { Some(i) } else { None })
                .collect();
            let comp_lens: Vec<usize> = b.components.iter().map(Vec::len).collect();
            println!(
                "    (\"{name}\", {t}, {}, {:#018x}, {}, &{comp_lens:?}),",
                b.bundle_size,
                fnv1a(&ids),
                b.work
            );
        }
    }
    println!("];");
}

#[test]
fn spanner_matches_pre_rewrite_fixtures_default_k() {
    for &(name, seed, len, hash, rounds, work) in GOLDEN_DEFAULT_K {
        let g = graph(name);
        for parallel in [true, false] {
            let cfg = SpannerConfig::with_seed(seed).with_parallel(parallel);
            let r = baswana_sen_spanner(&g, &cfg);
            assert_eq!(
                (r.edge_ids.len(), fnv1a(&r.edge_ids), r.rounds, r.work),
                (len, hash, rounds, work),
                "{name} seed={seed} parallel={parallel}"
            );
        }
    }
}

#[test]
fn spanner_matches_pre_rewrite_fixtures_k3() {
    for &(name, seed, len, hash, work) in GOLDEN_K3 {
        let g = graph(name);
        let cfg = SpannerConfig::with_seed(seed).with_k(3);
        let r = baswana_sen_spanner(&g, &cfg);
        assert_eq!(
            (r.edge_ids.len(), fnv1a(&r.edge_ids), r.work),
            (len, hash, work),
            "{name} seed={seed} k=3"
        );
    }
}

#[test]
fn bundle_matches_pre_rewrite_fixtures() {
    for &(name, t, size, hash, work, comps) in GOLDEN_BUNDLE {
        let g = graph(name);
        let b = t_bundle(&g, &BundleConfig::new(t).with_seed(99));
        let ids: Vec<usize> = b
            .in_bundle
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| if x { Some(i) } else { None })
            .collect();
        let comp_lens: Vec<usize> = b.components.iter().map(Vec::len).collect();
        assert_eq!(
            (b.bundle_size, fnv1a(&ids), b.work, comp_lens.as_slice()),
            (size, hash, work, comps),
            "{name} t={t}"
        );
    }
}
