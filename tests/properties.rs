//! Property-based tests (proptest) on cross-crate invariants.
//!
//! Each property draws random graphs / parameters and asserts an invariant that must
//! hold for *every* input, not just the hand-picked cases of the unit tests.

use proptest::prelude::*;

use spectral_sparsify::graph::{connectivity, generators, ops, stretch, Graph};
use spectral_sparsify::linalg::csr::CsrMatrix;
use spectral_sparsify::linalg::resistance::{exact_effective_resistances, total_leverage};
use spectral_sparsify::linalg::spectral::ratio_samples;
use spectral_sparsify::spanner::{baswana_sen_spanner, t_bundle, BundleConfig, SpannerConfig};
use spectral_sparsify::sparsify::{parallel_sample, BundleSizing, SparsifyConfig};

/// Strategy: a connected weighted Erdős–Rényi graph of moderate size.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (20usize..80, 1u64..500, 1u32..4).prop_map(|(n, seed, wclass)| {
        let (lo, hi) = match wclass {
            1 => (1.0, 1.0),
            2 => (0.5, 2.0),
            _ => (0.1, 10.0),
        };
        // p chosen high enough that connectivity is overwhelmingly likely; fall back to
        // adding a cycle if the draw is disconnected so the property always gets a
        // connected input.
        let g = generators::erdos_renyi_weighted(n, 0.2, lo, hi, seed);
        if connectivity::is_connected(&g) {
            g
        } else {
            ops::add(&g, &generators::cycle(n, lo)).unwrap()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Laplacian quadratic form equals the weighted sum of squared differences and
    /// is invariant under coalescing parallel edges.
    #[test]
    fn quadratic_form_identities(g in connected_graph(), shift in -5.0f64..5.0) {
        let n = g.n();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() + shift).collect();
        let manual: f64 = g
            .edges()
            .iter()
            .map(|e| e.w * (x[e.u] - x[e.v]).powi(2))
            .sum();
        let via_graph = g.quadratic_form(&x);
        let via_matrix = CsrMatrix::laplacian(&g).quadratic_form(&x);
        let via_coalesced = g.coalesce().quadratic_form(&x);
        prop_assert!((via_graph - manual).abs() <= 1e-9 * manual.abs().max(1.0));
        prop_assert!((via_matrix - manual).abs() <= 1e-7 * manual.abs().max(1.0));
        prop_assert!((via_coalesced - manual).abs() <= 1e-9 * manual.abs().max(1.0));
        // Shifting x by a constant leaves the form unchanged.
        let shifted: Vec<f64> = x.iter().map(|v| v + 3.0).collect();
        prop_assert!((g.quadratic_form(&shifted) - via_graph).abs() <= 1e-9 * via_graph.abs().max(1.0));
    }

    /// Spanner invariants: stretch bounded by 2k−1 and connectivity preserved.
    #[test]
    fn spanner_invariants(g in connected_graph(), seed in 0u64..1000) {
        let cfg = SpannerConfig::with_seed(seed);
        let r = baswana_sen_spanner(&g, &cfg);
        let h = r.to_graph(&g);
        prop_assert!(connectivity::is_connected(&h));
        let k = (g.n().max(2) as f64).log2().ceil() as usize;
        let s = stretch::max_stretch(&g, &h);
        prop_assert!(s <= (2 * k) as f64 + 1e-9, "stretch {} with k {}", s, k);
        prop_assert!(r.edge_ids.len() <= g.m());
    }

    /// Lemma 1 on random inputs: off-bundle leverage scores never exceed log n / t.
    #[test]
    fn bundle_certificate(g in connected_graph(), t in 1usize..4, seed in 0u64..100) {
        let bundle = t_bundle(&g, &BundleConfig::new(t).with_seed(seed));
        let resistances = exact_effective_resistances(&g);
        let bound = (g.n() as f64).log2() / t as f64;
        for (id, e) in g.edges().iter().enumerate() {
            if !bundle.in_bundle[id] {
                prop_assert!(e.w * resistances[id] <= bound + 1e-9);
            }
        }
    }

    /// The total leverage identity: sum of w_e R_e over a connected graph equals n − 1.
    #[test]
    fn foster_theorem(g in connected_graph()) {
        let resistances = exact_effective_resistances(&g);
        let total = total_leverage(&g, &resistances);
        prop_assert!((total - (g.n() as f64 - 1.0)).abs() < 1e-4, "total {}", total);
    }

    /// PARALLELSAMPLE structural invariants: connectivity, vertex count, weight classes,
    /// and a non-degenerate quadratic-form ratio on random probe vectors.
    #[test]
    fn parallel_sample_invariants(g in connected_graph(), seed in 0u64..200) {
        let cfg = SparsifyConfig::new(0.5, 2.0)
            .with_bundle_sizing(BundleSizing::Fixed(2))
            .with_seed(seed);
        let out = parallel_sample(&g, &cfg);
        prop_assert_eq!(out.sparsifier.n(), g.n());
        prop_assert!(connectivity::is_connected(&out.sparsifier));
        prop_assert!(out.sparsifier.m() <= g.m());
        // Every output weight is either an original weight or 4x an original weight.
        for e in out.sparsifier.edges() {
            let ok = g
                .edges()
                .iter()
                .any(|orig| ((orig.w - e.w).abs() < 1e-9) || ((4.0 * orig.w - e.w).abs() < 1e-9));
            prop_assert!(ok, "unexpected weight {}", e.w);
        }
        // Quadratic-form ratios on random vectors stay within loose two-sided bounds
        // (a necessary condition of the (1 ± eps) guarantee with practical constants).
        let (lo, hi) = ratio_samples(&g, &out.sparsifier, 30, seed);
        prop_assert!(lo > 0.05, "ratio lower bound {}", lo);
        prop_assert!(hi < 6.0, "ratio upper bound {}", hi);
    }

    /// Graph algebra: the Laplacian of a*G1 + G2 acts like the weighted sum of the
    /// individual Laplacians.
    #[test]
    fn graph_algebra_is_linear(
        g1 in connected_graph(),
        scale in 0.5f64..4.0,
        seed in 0u64..50
    ) {
        let g2 = generators::erdos_renyi(g1.n(), 0.1, 1.0, seed);
        let combo = ops::add(&ops::scale(&g1, scale).unwrap(), &g2).unwrap();
        let x: Vec<f64> = (0..g1.n()).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let expect = scale * g1.quadratic_form(&x) + g2.quadratic_form(&x);
        prop_assert!((combo.quadratic_form(&x) - expect).abs() <= 1e-9 * expect.abs().max(1.0));
    }

    /// merge_union is the Laplacian sum with coalesced support: quadratic forms add
    /// exactly, the edge count never exceeds the concatenation, and self-merge
    /// doubles the form.
    #[test]
    fn merge_union_is_laplacian_sum(g1 in connected_graph(), seed in 0u64..50) {
        let g2 = generators::erdos_renyi(g1.n(), 0.15, 1.0, seed);
        let u = ops::merge_union(&g1, &g2).unwrap();
        prop_assert!(u.m() <= g1.m() + g2.m());
        let x: Vec<f64> = (0..g1.n()).map(|i| ((i as f64) * 0.61).cos()).collect();
        let expect = g1.quadratic_form(&x) + g2.quadratic_form(&x);
        prop_assert!((u.quadratic_form(&x) - expect).abs() <= 1e-9 * expect.abs().max(1.0));
        let d = ops::merge_union(&g1, &g1).unwrap();
        prop_assert!((d.quadratic_form(&x) - 2.0 * g1.quadratic_form(&x)).abs()
            <= 1e-9 * expect.abs().max(1.0));
    }
}

/// Chops `0..m` into a pseudo-random batch sequence derived from `salt` (an LCG —
/// proptest's strategies stay on the graph/seed axes, the chop must just be ragged).
fn random_batches(m: usize, salt: u64) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut left = m;
    let mut state = salt.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    while left > 0 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let take = 1 + (state >> 33) as usize % (m / 4 + 2);
        let take = take.min(left);
        sizes.push(take);
        left -= take;
    }
    sizes
}

fn stream_with_batches(
    g: &Graph,
    cfg: &spectral_sparsify::stream::StreamConfig,
    sizes: &[usize],
) -> spectral_sparsify::stream::StreamOutput {
    let mut s = spectral_sparsify::stream::StreamSparsifier::new(g.n(), cfg.clone());
    let mut at = 0usize;
    for &size in sizes {
        s.ingest_batch(&g.edges()[at..at + size]).unwrap();
        at += size;
    }
    assert_eq!(at, g.m());
    s.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The semi-streaming engine's batch-split invariance: any two chops of the same
    /// edge sequence give bitwise-identical sparsifiers with identical accounting —
    /// in particular the edge-count bound of the output never depends on the chop.
    #[test]
    fn stream_output_is_batch_split_invariant(
        g in connected_graph(),
        salt_a in 0u64..1000,
        salt_b in 1000u64..2000,
        seed in 0u64..100
    ) {
        let cfg = spectral_sparsify::stream::StreamConfig::new(0.75, (g.m() / 3).max(16))
            .with_bundle_sizing(BundleSizing::Fixed(2))
            .with_seed(seed);
        let a = stream_with_batches(&g, &cfg, &random_batches(g.m(), salt_a));
        let b = stream_with_batches(&g, &cfg, &random_batches(g.m(), salt_b));
        prop_assert_eq!(a.sparsifier.edges(), b.sparsifier.edges());
        prop_assert_eq!(&a.stats.levels, &b.stats.levels);
        prop_assert_eq!(a.stats.peak_resident_edges, b.stats.peak_resident_edges);
        prop_assert_eq!(a.stats.forced_reductions, b.stats.forced_reductions);
        // Edge-count bound: the output never exceeds the (coalesced) input support.
        prop_assert!(a.sparsifier.m() <= g.m());
        prop_assert!(connectivity::is_connected(&a.sparsifier));
    }

    /// End-to-end (1 ± ε_total) in the regime where the per-reduction guarantee
    /// actually holds (the paper's bundle constants): for random graphs, random batch
    /// chops and three stream seeds, the certified quadratic-form error of
    /// `finish()` against the full-graph Laplacian stays within ε_total.
    #[test]
    fn stream_error_within_epsilon_with_faithful_constants(
        g in connected_graph(),
        salt in 0u64..500,
    ) {
        let eps_total = 0.6f64;
        for stream_seed in [11u64, 22, 33] {
            let cfg = spectral_sparsify::stream::StreamConfig::new(eps_total, (g.m() / 2).max(16))
                .with_bundle_sizing(BundleSizing::Paper)
                .with_seed(stream_seed);
            let out = stream_with_batches(&g, &cfg, &random_batches(g.m(), salt));
            let bounds = spectral_sparsify::linalg::spectral::approximation_bounds(
                &g,
                &out.sparsifier,
                &spectral_sparsify::linalg::spectral::CertifyOptions::default(),
            );
            prop_assert!(
                bounds.within_epsilon(eps_total),
                "seed {}: bounds {:?} outside 1±{}", stream_seed, bounds, eps_total
            );
            prop_assert!(out.stats.epsilon_spent() <= eps_total + 1e-12);
            // The batch chop never changes the edge-count bound.
            prop_assert!(out.sparsifier.m() <= g.m());
        }
    }

    /// The ER-weighted final pass under the paper-faithful oversampling constant:
    /// `q = 24 · n log n / ε²` exceeds any input this strategy generates, so the pass
    /// must short-circuit honestly — zero solves, no ε charged — and the end-to-end
    /// certification of the tree (run at its reduced ε reservation) must stay within
    /// the configured ε_total. (The compressing small-constant regime is pinned by
    /// `tests/golden_er.rs`.)
    #[test]
    fn er_final_pass_preserves_certification_with_faithful_constants(
        g in connected_graph(),
        salt in 0u64..500,
    ) {
        let eps_total = 0.6f64;
        for stream_seed in [11u64, 22, 33] {
            let cfg = spectral_sparsify::stream::StreamConfig::new(eps_total, (g.m() / 2).max(16))
                .with_bundle_sizing(BundleSizing::Paper)
                .with_seed(stream_seed)
                .with_final_pass(
                    spectral_sparsify::stream::FinalPassConfig::new()
                        .with_oversample(24.0)
                        .with_jl_dims(4)
                        .with_cg_tol(1e-3),
                );
            let out = stream_with_batches(&g, &cfg, &random_batches(g.m(), salt));
            let pass = out.stats.er_pass.as_ref().expect("final pass configured");
            prop_assert!(!pass.resampled, "faithful q must cover the input");
            prop_assert_eq!(pass.solves, 0);
            prop_assert_eq!(pass.m_in, pass.m_out);
            let bounds = spectral_sparsify::linalg::spectral::approximation_bounds(
                &g,
                &out.sparsifier,
                &spectral_sparsify::linalg::spectral::CertifyOptions::default(),
            );
            prop_assert!(
                bounds.within_epsilon(eps_total),
                "seed {}: bounds {:?} outside 1±{}", stream_seed, bounds, eps_total
            );
            prop_assert!(out.stats.epsilon_spent() <= eps_total + 1e-12);
            prop_assert!(connectivity::is_connected(&out.sparsifier));
        }
    }
}

/// Strategy: adversarial near-format text — a (possibly lying) header followed by lines
/// of tokens drawn from the numeric/garbage edge-token alphabet. This hits the parser's
/// structured failure paths far more often than uniformly random bytes would.
fn near_format_text() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        (0usize..200).prop_map(|x| x.to_string()),
        (-1_000_000_000_000i64..1_000_000_000_000).prop_map(|x| x.to_string()),
        (-1e308f64..1e308).prop_map(|x| x.to_string()),
        Just("inf".to_string()),
        Just("nan".to_string()),
        Just("99999999999999999999999999".to_string()),
        Just("zebra".to_string()),
        Just("#".to_string()),
        Just("".to_string()),
    ];
    let line = proptest::collection::vec(token, 0..5).prop_map(|ts| ts.join(" "));
    let header = prop_oneof![
        (0usize..100, 0usize..100).prop_map(|(n, m)| format!("{n} {m}")),
        Just(format!("3 {}", usize::MAX)),
        Just("zebra 4".to_string()),
        Just("".to_string()),
    ];
    (header, proptest::collection::vec(line, 0..12))
        .prop_map(|(h, ls)| format!("{h}\n{}", ls.join("\n")))
}

/// Strategy: unstructured garbage bytes (control characters included), lossily decoded.
fn garbage_text() -> impl Strategy<Value = String> {
    proptest::collection::vec((0u32..256).prop_map(|b| b as u8), 0..80)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The graph parser is total on hostile input: arbitrary bytes and near-format
    /// adversarial text both come back as `Ok` or a positioned `Err` — never a panic,
    /// and never an allocation proportional to what a lying header *declares*.
    #[test]
    fn graph_parser_never_panics(garbage in garbage_text(), crafted in near_format_text()) {
        for text in [garbage.as_str(), crafted.as_str()] {
            // Whole-text and streaming paths must agree on accept/reject.
            let whole = spectral_sparsify::graph::io::from_str(text);
            let streamed = spectral_sparsify::graph::io::EdgeBatchReader::new(text.as_bytes())
                .and_then(|mut r| {
                    let mut edges = Vec::new();
                    while r.next_batch(64, &mut edges)? != 0 {}
                    Ok(edges)
                });
            prop_assert_eq!(whole.is_ok(), streamed.is_ok(), "paths disagree on {:?}", text);
            if let (Ok(g), Ok(es)) = (&whole, &streamed) {
                prop_assert_eq!(g.edges(), es.as_slice());
                for e in g.edges() {
                    prop_assert!(e.u < g.n() && e.v < g.n() && e.u != e.v);
                    prop_assert!(e.w.is_finite() && e.w > 0.0);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serialize → parse is the identity on valid graphs (both read paths).
    #[test]
    fn graph_io_round_trips(g in connected_graph()) {
        let text = spectral_sparsify::graph::io::to_string(&g);
        let h = spectral_sparsify::graph::io::from_str(&text).unwrap();
        prop_assert_eq!(g.n(), h.n());
        prop_assert_eq!(g.m(), h.m());
        for (a, b) in g.edges().iter().zip(h.edges()) {
            prop_assert_eq!((a.u, a.v), (b.u, b.v));
            prop_assert!((a.w - b.w).abs() <= 1e-12 * a.w.abs().max(1.0));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Binary serialize → parse is the **bit-exact** identity on valid graphs: unlike
    /// the text format, endpoints and weight bit patterns survive unchanged, which is
    /// what lets the spill store round-trip merge-tree nodes without perturbing the
    /// deterministic output stream.
    #[test]
    fn bin_io_round_trips_bit_exact(g in connected_graph(), chunk in 1usize..97) {
        let mut bytes = Vec::new();
        {
            let mut w = spectral_sparsify::graph::io::BinEdgeWriter::new(&mut bytes, g.n(), g.m())
                .unwrap();
            w.write_batch(g.edges()).unwrap();
            w.finish().unwrap();
        }
        let mut r = spectral_sparsify::graph::io::BinEdgeReader::new(bytes.as_slice()).unwrap();
        prop_assert_eq!(r.n(), g.n());
        let mut edges = Vec::new();
        while r.next_batch(chunk, &mut edges).unwrap() != 0 {}
        prop_assert_eq!(edges.len(), g.m());
        for (a, b) in g.edges().iter().zip(&edges) {
            prop_assert_eq!((a.u, a.v), (b.u, b.v));
            prop_assert_eq!(a.w.to_bits(), b.w.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The binary reader is total on hostile input: arbitrary bytes, truncations of a
    /// valid file at every depth, and single-byte corruptions all come back as `Ok` or
    /// a positioned `Err` — never a panic, and never an allocation proportional to
    /// what a lying header *declares*.
    #[test]
    fn bin_reader_never_panics(
        garbage in proptest::collection::vec((0u32..256).prop_map(|b| b as u8), 0..96),
        cut in 0usize..4096,
        corrupt in (0u32..256).prop_map(|b| b as u8),
        pos in 0usize..4096,
    ) {
        let g = generators::erdos_renyi(40, 0.2, 1.0, 7);
        let mut valid = Vec::new();
        {
            let mut w = spectral_sparsify::graph::io::BinEdgeWriter::new(&mut valid, g.n(), g.m())
                .unwrap();
            w.write_batch(g.edges()).unwrap();
            w.finish().unwrap();
        }
        let truncated = &valid[..cut.min(valid.len())];
        let mut corrupted = valid.clone();
        let at = pos % corrupted.len();
        corrupted[at] ^= corrupt;
        for bytes in [garbage.as_slice(), truncated, corrupted.as_slice()] {
            let fed = match spectral_sparsify::graph::io::BinEdgeReader::new(bytes) {
                Ok(mut r) => {
                    let mut edges = Vec::new();
                    let mut total = 0usize;
                    loop {
                        match r.next_batch(64, &mut edges) {
                            Ok(0) => break,
                            Ok(k) => total += k,
                            Err(_) => break,
                        }
                    }
                    total
                }
                Err(_) => 0,
            };
            // Whatever came back before any error is a prefix of real records.
            prop_assert!(fed <= g.m());
        }
    }
}
