//! Observability invariants: tracing observes, never perturbs.
//!
//! Three contracts are pinned here:
//!
//! 1. **Structure determinism** — the event stream's count, names, and field
//!    values (everything except timestamps / thread ids) are a pure function of
//!    the input: identical across rayon pool widths and stream batch chops.
//! 2. **Non-interference** — the engines' outputs are byte-identical with a
//!    recording sink installed vs. fully disabled, and the pre-existing golden
//!    fixtures still hold while recording.
//! 3. **Exporter validity** — the JSONL and Chrome `trace_event` exports parse
//!    back through `sgs_obs::json` with an exact textual round-trip, and the
//!    committed sample trace (`docs/sample_trace.json`) is valid `trace_event`
//!    JSON.
//!
//! The global sink is process-wide state, so every test that installs one
//! serialises on [`OBS_LOCK`]; the engine outputs they compare are unaffected
//! either way.

use std::sync::{Mutex, MutexGuard};

use spectral_sparsify::graph::generators;
use spectral_sparsify::obs::{self, json, EventKind};
use spectral_sparsify::solver::{SddSolver, SolverConfig, SolverMethod};
use spectral_sparsify::spanner::{baswana_sen_spanner, SpannerConfig};
use spectral_sparsify::sparsify::{parallel_sparsify, BundleSizing, SparsifyConfig};
use spectral_sparsify::stream::{StreamConfig, StreamOutput, StreamSparsifier};

/// Serialises sink-installing tests within this binary (cargo runs `#[test]`s
/// on parallel threads; the sink is a process-wide singleton).
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `op` with a fresh recording sink installed, returning its result and
/// the recorded events. Clears the sink before returning.
fn record<R>(op: impl FnOnce() -> R) -> (R, Vec<obs::Event>) {
    let sink = obs::install_recording();
    let out = op();
    obs::clear();
    (out, sink.take())
}

fn on_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    pool.install(op)
}

fn stream_run(batch_edges: usize) -> StreamOutput {
    let g = generators::erdos_renyi(350, 0.3, 1.0, 47);
    let cfg = StreamConfig::new(0.75, g.m() / 3)
        .with_bundle_sizing(BundleSizing::Fixed(2))
        .with_seed(13);
    let mut s = StreamSparsifier::new(g.n(), cfg);
    for chunk in g.edges().chunks(batch_edges) {
        s.ingest_batch(chunk).unwrap();
    }
    s.finish()
}

#[test]
fn event_structure_is_identical_across_thread_widths() {
    let _guard = lock();
    let g = generators::erdos_renyi(400, 0.2, 1.0, 31);
    let cfg = SparsifyConfig::new(0.75, 4.0)
        .with_bundle_sizing(BundleSizing::Fixed(4))
        .with_seed(5);
    let (base_out, base_events) = record(|| on_pool(1, || parallel_sparsify(&g, &cfg)));
    assert!(!base_events.is_empty(), "instrumented run recorded nothing");
    let base_fp = obs::structure_fingerprint(&base_events);
    for threads in [2usize, 4, 8] {
        let (out, events) = record(|| on_pool(threads, || parallel_sparsify(&g, &cfg)));
        assert_eq!(out.sparsifier.edges(), base_out.sparsifier.edges());
        assert_eq!(
            events.len(),
            base_events.len(),
            "event count @ {threads} threads"
        );
        assert_eq!(
            obs::structure_fingerprint(&events),
            base_fp,
            "event structure @ {threads} threads"
        );
    }
}

#[test]
fn event_structure_is_identical_across_batch_chops() {
    let _guard = lock();
    let g = generators::erdos_renyi(350, 0.3, 1.0, 47);
    let m = g.m();
    // One batch for the whole stream vs. eleven chops: the leaf/reduce event
    // stream depends only on the stream position, never on ingest granularity.
    let (out_1, events_1) = record(|| on_pool(2, || stream_run(m)));
    let (out_11, events_11) = record(|| on_pool(2, || stream_run(m.div_ceil(11))));
    assert!(events_1.iter().any(|e| e.name == "stream.leaf"));
    assert_eq!(out_1.sparsifier.edges(), out_11.sparsifier.edges());
    assert_eq!(events_1.len(), events_11.len(), "event count across chops");
    assert_eq!(
        obs::structure_fingerprint(&events_1),
        obs::structure_fingerprint(&events_11),
        "event structure across chops"
    );
}

/// Rows copied verbatim from `tests/golden_spanner.rs` (`GOLDEN_DEFAULT_K`):
/// (graph seed 42 er300, spanner seed, edge_count, fnv1a(edge_ids), rounds, work).
const GOLDEN_ER300: &[(u64, usize, u64, usize, u64)] = &[
    (1, 1446, 0xacf024ffc5491afa, 9, 99337),
    (2, 1216, 0x0f3e9dfecdf9ed99, 9, 94249),
    (3, 1040, 0xf1a82ec6c1c52e84, 9, 83209),
];

fn fnv1a(ids: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &id in ids {
        for b in (id as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[test]
fn golden_fixtures_hold_with_a_recording_sink_installed() {
    let _guard = lock();
    let g = generators::erdos_renyi(300, 0.15, 1.0, 42);
    for &(seed, len, hash, rounds, work) in GOLDEN_ER300 {
        let ((), events) = record(|| {
            let r = baswana_sen_spanner(&g, &SpannerConfig::with_seed(seed));
            assert_eq!(
                (r.edge_ids.len(), fnv1a(&r.edge_ids), r.rounds, r.work),
                (len, hash, rounds, work),
                "golden er300 seed={seed} while recording"
            );
        });
        assert!(
            events.iter().any(|e| e.name == "spanner.run"),
            "recording sink saw no spanner events"
        );
    }
}

#[test]
fn outputs_are_byte_identical_with_and_without_a_sink() {
    let _guard = lock();
    let g = generators::erdos_renyi(300, 0.2, 1.0, 33);
    let cfg = SparsifyConfig::new(0.5, 4.0)
        .with_bundle_sizing(BundleSizing::Fixed(3))
        .with_seed(7);
    assert!(!obs::enabled());
    let silent = parallel_sparsify(&g, &cfg);
    let (traced, events) = record(|| parallel_sparsify(&g, &cfg));
    assert!(!events.is_empty());
    assert_eq!(silent.sparsifier.edges(), traced.sparsifier.edges());
    for (a, b) in silent
        .sparsifier
        .edges()
        .iter()
        .zip(traced.sparsifier.edges())
    {
        assert_eq!(a.w.to_bits(), b.w.to_bits());
    }
    assert_eq!(silent.stats, traced.stats);
}

#[test]
fn solver_emits_scoped_pcg_trajectory() {
    let _guard = lock();
    let g = generators::path(300, 1.0);
    let mut b = vec![0.0; 300];
    b[0] = 1.0;
    b[299] = -1.0;
    let (outcome, events) = record(|| {
        let solver = SddSolver::for_laplacian(g, SolverConfig::default());
        solver.solve_with(&b, SolverMethod::ChainPcg)
    });
    assert!(outcome.converged);
    let iters = events.iter().filter(|e| e.name == "pcg.iter").count();
    assert_eq!(
        iters, outcome.iterations,
        "one pcg.iter event per outer PCG iteration"
    );
    assert!(events.iter().any(|e| e.name == "chain.level"));
    assert!(events.iter().any(|e| e.name == "solver.done"));
    assert_eq!(outcome.stats.iterations, outcome.iterations);
    assert!(outcome.stats.preconditioner_applies >= outcome.iterations as u64);
    assert!(!outcome.stats.per_level_work.is_empty());
}

#[test]
fn exports_round_trip_through_the_json_parser() {
    let _guard = lock();
    let g = generators::erdos_renyi(200, 0.2, 1.0, 11);
    let cfg = SparsifyConfig::new(0.5, 4.0)
        .with_bundle_sizing(BundleSizing::Fixed(3))
        .with_seed(3);
    let (_, events) = record(|| parallel_sparsify(&g, &cfg));
    assert!(!events.is_empty());

    // JSONL: every line is a standalone document with the fixed envelope, and
    // re-rendering the parsed value reproduces the line exactly.
    let jsonl = obs::export_jsonl(&events);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), events.len());
    for line in &lines {
        let v = json::parse(line).expect("jsonl line parses");
        for key in ["name", "kind", "ts_us", "tid", "fields"] {
            assert!(json::get(&v, key).is_some(), "missing {key} in {line}");
        }
        assert_eq!(&serde_json::to_string(&v).unwrap(), line);
    }

    // Chrome trace: a traceEvents array whose entries carry the trace_event
    // envelope, with span begins and ends balanced per name.
    let trace = obs::export_chrome_trace(&events);
    let v = json::parse(&trace).expect("chrome trace parses");
    let list = json::get(&v, "traceEvents")
        .and_then(json::as_array)
        .expect("traceEvents array");
    assert_eq!(list.len(), events.len());
    let mut open = 0i64;
    for entry in list {
        let ph = json::get(entry, "ph").and_then(json::as_str).unwrap();
        assert!(matches!(ph, "B" | "E" | "i" | "C"), "bad phase {ph}");
        assert!(json::get(entry, "name").is_some());
        assert!(json::get(entry, "ts").is_some());
        match ph {
            "B" => open += 1,
            "E" => {
                open -= 1;
                assert!(open >= 0, "span end before begin");
            }
            _ => {}
        }
    }
    assert_eq!(open, 0, "unbalanced spans in chrome trace");

    // The event kinds in the recording map onto the phases 1:1.
    for (event, entry) in events.iter().zip(list) {
        let ph = json::get(entry, "ph").and_then(json::as_str).unwrap();
        let expect = match event.kind {
            EventKind::SpanBegin => "B",
            EventKind::SpanEnd => "E",
            EventKind::Point => "i",
            EventKind::Counter => "C",
        };
        assert_eq!(ph, expect);
    }
}

#[test]
fn committed_sample_trace_is_valid_trace_event_json() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/sample_trace.json");
    let text = std::fs::read_to_string(path).expect("docs/sample_trace.json exists");
    let v = json::parse(&text).expect("sample trace parses as JSON");
    let list = json::get(&v, "traceEvents")
        .and_then(json::as_array)
        .expect("sample trace has a traceEvents array");
    assert!(list.len() > 100, "sample trace is implausibly small");
    for entry in list {
        assert!(json::get(entry, "name").is_some());
        let ph = json::get(entry, "ph").and_then(json::as_str).unwrap();
        assert!(matches!(ph, "B" | "E" | "i" | "C"), "bad phase {ph}");
        assert!(json::get(entry, "ts").and_then(json::as_f64).is_some());
        assert_eq!(json::get(entry, "pid").and_then(json::as_f64), Some(1.0));
    }
    // The run that produced it traced the spanner and sampler layers.
    let names: Vec<&str> = list
        .iter()
        .filter_map(|e| json::get(e, "name").and_then(json::as_str))
        .collect();
    assert!(names.contains(&"spanner.decide"));
    assert!(names.contains(&"sample.pass"));
}
